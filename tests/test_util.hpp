// Shared helpers for unit-testing sans-IO cores: pick apart Action vectors
// and build canned packets.
#pragma once

#include <optional>
#include <vector>

#include "core/actions.hpp"
#include "packet/packet.hpp"

namespace lbrm::test {

/// All packets sent (unicast or multicast) in an action list.
inline std::vector<Packet> sent_packets(const Actions& actions) {
    std::vector<Packet> out;
    for (const Action& a : actions) {
        if (const auto* u = std::get_if<SendUnicast>(&a)) out.push_back(u->packet);
        if (const auto* m = std::get_if<SendMulticast>(&a)) out.push_back(m->packet);
    }
    return out;
}

/// Packets of a given type, as (destination, packet) where destination is
/// kNoNode for multicasts.
struct Sent {
    NodeId to = kNoNode;  ///< kNoNode == multicast
    McastScope scope = McastScope::kGlobal;
    Packet packet;
};

inline std::vector<Sent> sent_of_type(const Actions& actions, PacketType type) {
    std::vector<Sent> out;
    for (const Action& a : actions) {
        if (const auto* u = std::get_if<SendUnicast>(&a)) {
            if (u->packet.type() == type) out.push_back({u->to, McastScope::kGlobal, u->packet});
        } else if (const auto* m = std::get_if<SendMulticast>(&a)) {
            if (m->packet.type() == type) out.push_back({kNoNode, m->scope, m->packet});
        }
    }
    return out;
}

inline std::size_t count_sent(const Actions& actions, PacketType type) {
    return sent_of_type(actions, type).size();
}

/// First armed timer of a given kind, if any.
inline std::optional<StartTimer> find_timer(const Actions& actions, TimerKind kind) {
    for (const Action& a : actions)
        if (const auto* t = std::get_if<StartTimer>(&a))
            if (t->id.kind == kind) return *t;
    return std::nullopt;
}

inline bool has_cancel(const Actions& actions, TimerKind kind) {
    for (const Action& a : actions)
        if (const auto* c = std::get_if<CancelTimer>(&a))
            if (c->id.kind == kind) return true;
    return false;
}

inline std::vector<DeliverData> deliveries(const Actions& actions) {
    std::vector<DeliverData> out;
    for (const Action& a : actions)
        if (const auto* d = std::get_if<DeliverData>(&a)) out.push_back(*d);
    return out;
}

inline std::vector<Notice> notices(const Actions& actions, NoticeKind kind) {
    std::vector<Notice> out;
    for (const Action& a : actions)
        if (const auto* n = std::get_if<Notice>(&a))
            if (n->kind == kind) out.push_back(*n);
    return out;
}

/// Canned payload of `n` patterned bytes.
inline std::vector<std::uint8_t> payload(std::size_t n, std::uint8_t salt = 0) {
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 7 + salt);
    return out;
}

inline TimePoint at(double seconds) { return time_zero() + secs(seconds); }

}  // namespace lbrm::test
