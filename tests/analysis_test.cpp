// Analytical-model tests: the closed-form heartbeat overhead (Figures 4-5,
// Table 1) cross-checked against step-by-step simulation of the real
// HeartbeatScheduler, plus the paper's headline numbers.
#include <gtest/gtest.h>

#include "analysis/heartbeat_math.hpp"
#include "core/heartbeat.hpp"
#include "tests/test_util.hpp"

namespace lbrm::analysis {
namespace {

using test::at;

HeartbeatConfig paper_config(double backoff = 2.0) {
    HeartbeatConfig c;
    c.h_min = secs(0.25);
    c.h_max = secs(32.0);
    c.backoff = backoff;
    return c;
}

/// Ground truth: run the actual scheduler between two data packets dt apart.
std::size_t scheduler_count(const HeartbeatConfig& config, double dt) {
    HeartbeatScheduler s{config};
    TimePoint next = s.on_data_sent(at(0.0));
    std::size_t count = 0;
    while (next < at(dt)) {
        ++count;
        next = s.on_heartbeat_sent(next);
        if (count > 100000) break;
    }
    return count;
}

class ModelVsScheduler
    : public ::testing::TestWithParam<std::tuple<double, double>> {};  // (backoff, dt)

TEST_P(ModelVsScheduler, ClosedFormMatchesSimulation) {
    const auto [backoff, dt] = GetParam();
    const HeartbeatConfig config = paper_config(backoff);
    EXPECT_EQ(variable_heartbeat_count(config, dt), scheduler_count(config, dt))
        << "backoff=" << backoff << " dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelVsScheduler,
    ::testing::Combine(::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
                       ::testing::Values(0.1, 0.25, 0.3, 1.0, 7.5, 32.0, 120.0, 1000.0)));

TEST(HeartbeatMath, OffsetsMatchFigure3Pattern) {
    // Data at t=0: heartbeats at 0.25, 0.75, 1.75, 3.75, ... (backoff 2).
    const auto offsets = variable_heartbeat_offsets(paper_config(), 10.0);
    ASSERT_GE(offsets.size(), 5u);
    EXPECT_DOUBLE_EQ(offsets[0], 0.25);
    EXPECT_DOUBLE_EQ(offsets[1], 0.75);
    EXPECT_DOUBLE_EQ(offsets[2], 1.75);
    EXPECT_DOUBLE_EQ(offsets[3], 3.75);
    EXPECT_DOUBLE_EQ(offsets[4], 7.75);
}

TEST(HeartbeatMath, FixedCount) {
    EXPECT_EQ(fixed_heartbeat_count(0.25, 1.0), 3u);    // 0.25, 0.5, 0.75 (1.0 preempted)
    EXPECT_EQ(fixed_heartbeat_count(0.25, 0.2), 0u);    // dt < h
    EXPECT_EQ(fixed_heartbeat_count(0.25, 0.25), 0u);   // exactly preempted
    EXPECT_EQ(fixed_heartbeat_count(0.25, 120.0), 479u);
}

TEST(HeartbeatMath, Figure4Asymptotes) {
    const HeartbeatConfig config = paper_config();
    // Small dt: no heartbeats under either scheme.
    EXPECT_EQ(variable_heartbeat_rate(config, 0.2), 0.0);
    EXPECT_EQ(fixed_heartbeat_rate(0.25, 0.2), 0.0);
    // Large dt: variable rate approaches 1/h_max, fixed approaches 1/h_min.
    EXPECT_NEAR(variable_heartbeat_rate(config, 100000.0), 1.0 / 32.0, 0.002);
    EXPECT_NEAR(fixed_heartbeat_rate(0.25, 100000.0), 4.0, 0.01);
}

TEST(HeartbeatMath, Figure5MarkedPoint) {
    // "At this point the variable heartbeat reduces heartbeat bandwidth by a
    // factor of 53.4 over a fixed heartbeat" (dt = 120 s).
    EXPECT_NEAR(overhead_ratio(paper_config(), 120.0), 53.3, 1.0);
}

TEST(HeartbeatMath, Table1ContinuousModelMatchesPaper) {
    // Paper values: 1.5->34.4, 2->53.3, 2.5->65.8, 3->74.8, 3.5->81.7,
    // 4->87.3.  The continuous (uncapped-geometric) model reproduces the
    // column within a few percent.
    const double paper[] = {34.4, 53.3, 65.8, 74.8, 81.7, 87.3};
    const double backoffs[] = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    for (int i = 0; i < 6; ++i) {
        const double ratio = overhead_ratio_continuous(paper_config(backoffs[i]), 120.0);
        EXPECT_NEAR(ratio, paper[i], paper[i] * 0.07) << "backoff " << backoffs[i];
    }
}

TEST(HeartbeatMath, Table1DiscreteModelShape) {
    // The exact discrete model (with the h_max cap the implementation
    // applies) is monotone nondecreasing in the backoff; it plateaus once
    // the cap dominates (large backoffs), which the continuous model and
    // the paper's column gloss over.
    const double backoffs[] = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    double previous = 0.0;
    for (double b : backoffs) {
        const double ratio = overhead_ratio(paper_config(b), 120.0);
        EXPECT_GE(ratio, previous) << "backoff " << b;
        previous = ratio;
    }
    // The paper-parameter point (backoff 2) is exact: 53.3x.
    EXPECT_NEAR(overhead_ratio(paper_config(2.0), 120.0), 53.3, 1.0);
}

TEST(HeartbeatMath, RatioIsMonotoneInDt) {
    const HeartbeatConfig config = paper_config();
    double previous = 0.0;
    for (double dt : {1.0, 2.0, 5.0, 15.0, 60.0, 120.0, 500.0}) {
        const double ratio = overhead_ratio(config, dt);
        EXPECT_GE(ratio, previous) << "dt " << dt;
        previous = ratio;
    }
}

TEST(HeartbeatMath, ScenarioRateReproducesSection212) {
    // 100,000 terrain entities, dt = 120 s.  Fixed heartbeat: 400,000 pkt/s.
    // Variable heartbeat: ~7,500 pkt/s (the factor-53 reduction).
    const HeartbeatConfig config = paper_config();
    const double fixed_rate = fixed_heartbeat_rate(0.25, 120.0) * 100000;
    const double variable_rate = scenario_heartbeat_rate(config, 120.0, 100000);
    EXPECT_NEAR(fixed_rate, 400000.0, 2000.0);
    EXPECT_NEAR(fixed_rate / variable_rate, 53.3, 1.0);
}

TEST(HeartbeatMath, FixedFlagMatchesFixedFormula) {
    HeartbeatConfig config = paper_config();
    config.fixed = true;
    for (double dt : {0.5, 3.0, 120.0})
        EXPECT_EQ(variable_heartbeat_count(config, dt), fixed_heartbeat_count(0.25, dt));
}

}  // namespace
}  // namespace lbrm::analysis
