// Tests for the paper's Section 7 future-work extensions, implemented here:
//   * dedicated retransmission channel (subscribe-to-recover),
//   * multi-level logging hierarchy (regional tier),
//   * data-carrying heartbeats for small payloads,
//   * sequence-number wraparound across the whole stack (initial_seq knob).
#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm::sim {
namespace {

// --- retransmission channel ---------------------------------------------------

ScenarioConfig retx_config() {
    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;
    config.use_retrans_channel = true;
    // Copies go out 40/120/280/600/1240 ms after the data packet.  Loss is
    // detected via the first heartbeat (~250 ms + propagation), so at least
    // two copies remain after a receiver joins the channel -- the paper's
    // caveat that this technique needs "fast multicast group subscription".
    config.retrans_channel_copies = 5;
    config.retrans_channel_first_delay = millis(40);
    return config;
}

TEST(RetransChannel, LossRecoveredWithoutAnyNack) {
    DisScenario scenario(retx_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    // Drop one packet at a site; the channel copies (40/80/160 ms after
    // send) repair it once the loss window clears.
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(5.0));

    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 9u);
    // No receiver NACKed: the channel did the repair.
    std::uint64_t nacks = 0;
    for (NodeId r : topo.all_receivers()) nacks += scenario.receiver(r).nacks_sent();
    EXPECT_EQ(nacks, 0u);
}

TEST(RetransChannel, ReceiversLeaveTheChannelAfterRecovery) {
    DisScenario scenario(retx_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(5.0));

    // After recovery + linger, further channel copies reach nobody: send a
    // packet, drop nothing, and verify the retransmission-channel copies hit
    // zero receiver LAN links.
    network.reset_link_stats();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(2.0));
    std::uint64_t channel_copies_on_lans = 0;
    for (const auto& site : topo.sites)
        for (NodeId r : site.receivers)
            channel_copies_on_lans += network.link(site.router, r)
                                          ->stats().packets_of(PacketType::kRetransmission);
    EXPECT_EQ(channel_copies_on_lans, 0u);
}

TEST(RetransChannel, FallsBackToNackWhenChannelExhausted) {
    // Loss burst outlives all channel copies: the receiver must fall back
    // to the logging hierarchy ("logging servers would provide
    // retransmissions of packets no longer being transmitted").
    ScenarioConfig config = retx_config();
    config.receiver_defaults.retrans_channel_window = millis(300);
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    // Burst of 1 s swallows the data packet AND all three channel copies
    // (40/120/280 ms after send).
    const TimePoint t0 = scenario.simulator().now();
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BurstSchedule>(std::vector<BurstSchedule::Window>{
                         {t0, t0 + secs(1.0)}}));
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(8.0));

    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 9u);
    std::uint64_t nacks = 0;
    for (NodeId r : topo.sites[0].receivers) nacks += scenario.receiver(r).nacks_sent();
    EXPECT_GE(nacks, 1u);  // fallback engaged
}

// --- multi-level hierarchy ---------------------------------------------------

ScenarioConfig hierarchy_config(bool regional) {
    ScenarioConfig config;
    config.topology.sites = 6;
    config.topology.receivers_per_site = 3;
    config.topology.sites_per_region = 3;  // two regions of three sites
    config.use_regional_loggers = regional;
    config.stat_ack.enabled = false;
    return config;
}

TEST(Hierarchy, TopologyBuildsRegions) {
    DisScenario scenario(hierarchy_config(true));
    const auto& topo = scenario.topology();
    ASSERT_EQ(topo.regions.size(), 2u);
    EXPECT_EQ(topo.regions[0].site_indices.size(), 3u);
    EXPECT_NE(topo.region_of_site(0), nullptr);
    EXPECT_EQ(topo.region_of_site(0), topo.region_of_site(2));
    EXPECT_NE(topo.region_of_site(0), topo.region_of_site(3));
}

TEST(Hierarchy, DeliveryStillReachesEveryone) {
    DisScenario scenario(hierarchy_config(true));
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(2.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{1}).size(), 18u);
}

TEST(Hierarchy, RegionalLoggerAbsorbsWholeRegionLoss) {
    // A whole region loses a packet (loss between region router and
    // backbone).  With the 3-level hierarchy only ONE NACK reaches the
    // primary (from the regional logger); flat distributed logging sends
    // one per site.
    auto run = [](bool regional) {
        DisScenario scenario(hierarchy_config(regional));
        auto& network = scenario.network();
        const auto& topo = scenario.topology();
        scenario.start();
        scenario.send_update(std::size_t{64});
        scenario.run_for(secs(2.0));
        const std::uint64_t before = scenario.primary_logger().nacks_received();

        network.set_loss(topo.backbone, topo.regions[0].router,
                         std::make_unique<BernoulliLoss>(1.0));
        scenario.send_update(std::size_t{64});
        scenario.run_for(millis(50));
        network.set_loss(topo.backbone, topo.regions[0].router,
                         std::make_unique<BernoulliLoss>(0.0));
        scenario.run_for(secs(8.0));

        EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 18u)
            << (regional ? "regional" : "flat");
        return scenario.primary_logger().nacks_received() - before;
    };

    const std::uint64_t flat = run(false);
    const std::uint64_t regional = run(true);
    EXPECT_EQ(regional, 1u);   // one call-back from the regional logger
    EXPECT_GE(flat, 3u);       // one per affected site
}

// --- data-carrying heartbeats ---------------------------------------------------

TEST(DataHeartbeat, RepairsLossWithoutRetransmissionRequest) {
    // Core-level check: the heartbeat timer emits a Data packet when the
    // last payload is small.
    SenderConfig sender_config;
    sender_config.self = NodeId{1};
    sender_config.group = GroupId{1};
    sender_config.primary_logger = NodeId{2};
    sender_config.stat_ack.enabled = false;
    sender_config.heartbeat_carries_small_data = true;
    sender_config.heartbeat_data_max_bytes = 128;
    SenderCore sender{sender_config};
    sender.start(time_zero());
    auto send_actions = sender.send(time_zero() + secs(1.0), test::payload(64));
    auto hb_timer = test::find_timer(send_actions, TimerKind::kHeartbeat);
    ASSERT_TRUE(hb_timer.has_value());
    auto hb_actions = sender.on_timer(hb_timer->deadline, hb_timer->id);
    // The "heartbeat" is a repeat of the data packet.
    EXPECT_EQ(test::count_sent(hb_actions, PacketType::kHeartbeat), 0u);
    const auto datas = test::sent_of_type(hb_actions, PacketType::kData);
    ASSERT_EQ(datas.size(), 1u);
    EXPECT_EQ(std::get<DataBody>(datas[0].packet.body).seq, SeqNum{1});
    EXPECT_EQ(std::get<DataBody>(datas[0].packet.body).payload, test::payload(64));
}

TEST(DataHeartbeat, LargePayloadsStillUseEmptyHeartbeats) {
    SenderConfig sender_config;
    sender_config.self = NodeId{1};
    sender_config.group = GroupId{1};
    sender_config.primary_logger = NodeId{2};
    sender_config.stat_ack.enabled = false;
    sender_config.heartbeat_carries_small_data = true;
    sender_config.heartbeat_data_max_bytes = 32;
    SenderCore sender{sender_config};
    sender.start(time_zero());
    auto send_actions = sender.send(time_zero() + secs(1.0), test::payload(64));
    auto hb_timer = test::find_timer(send_actions, TimerKind::kHeartbeat);
    auto hb_actions = sender.on_timer(hb_timer->deadline, hb_timer->id);
    EXPECT_EQ(test::count_sent(hb_actions, PacketType::kHeartbeat), 1u);
    EXPECT_EQ(test::count_sent(hb_actions, PacketType::kData), 0u);
}

TEST(DataHeartbeat, EndToEndRecoveryWithNoNacks) {
    // Drop a (small) data packet at one site: the first repeated-data
    // heartbeat (h_min later) delivers it outright -- zero NACK traffic,
    // the Section 7 "reduce retransmission requests" effect.
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;
    config.heartbeat_carries_small_data = true;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(3.0));

    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 6u);
    std::uint64_t nacks = 0;
    for (NodeId r : topo.all_receivers()) nacks += scenario.receiver(r).nacks_sent();
    EXPECT_EQ(nacks, 0u);
}

// --- wraparound end-to-end ---------------------------------------------------

TEST(Wraparound, StreamCrossesSequenceSpaceBoundary) {
    SenderConfig sender_config;
    sender_config.self = NodeId{1};
    sender_config.group = GroupId{1};
    sender_config.primary_logger = kNoNode;  // self-primary keeps it compact
    sender_config.stat_ack.enabled = false;
    sender_config.initial_seq = SeqNum{0xFFFFFFFDu};
    SenderCore sender{sender_config};
    sender.start(time_zero());

    ReceiverConfig receiver_config;
    receiver_config.self = NodeId{9};
    receiver_config.group = GroupId{1};
    receiver_config.source = NodeId{1};
    receiver_config.logger = NodeId{1};
    ReceiverCore receiver{receiver_config};
    receiver.start(time_zero());

    // Feed six packets across the wrap directly into the receiver.
    TimePoint t = time_zero() + secs(1.0);
    for (int i = 0; i < 6; ++i) {
        auto actions = sender.send(t, test::payload(16, static_cast<std::uint8_t>(i)));
        const auto datas = test::sent_of_type(actions, PacketType::kData);
        ASSERT_EQ(datas.size(), 1u);
        auto delivered = receiver.on_packet(t, datas[0].packet);
        EXPECT_EQ(test::deliveries(delivered).size(), 1u) << "packet " << i;
        t = t + millis(100);
    }
    EXPECT_EQ(receiver.delivered(), 6u);
    EXPECT_EQ(receiver.detector().missing_count(), 0u);
    EXPECT_EQ(sender.last_seq(), SeqNum{2});  // FFFFFFFD..FFFFFFFF, 0, 1, 2
}

TEST(Wraparound, GapAcrossBoundaryIsRecoverable) {
    SenderConfig sender_config;
    sender_config.self = NodeId{1};
    sender_config.group = GroupId{1};
    sender_config.primary_logger = kNoNode;
    sender_config.stat_ack.enabled = false;
    sender_config.initial_seq = SeqNum{0xFFFFFFFFu};
    SenderCore sender{sender_config};
    sender.start(time_zero());

    ReceiverConfig receiver_config;
    receiver_config.self = NodeId{9};
    receiver_config.group = GroupId{1};
    receiver_config.source = NodeId{1};
    receiver_config.logger = NodeId{1};
    ReceiverCore receiver{receiver_config};
    receiver.start(time_zero());

    TimePoint t = time_zero() + secs(1.0);
    auto first = sender.send(t, test::payload(8));   // seq FFFFFFFF
    auto second = sender.send(t, test::payload(8));  // seq 0 -- lost
    auto third = sender.send(t, test::payload(8));   // seq 1

    receiver.on_packet(t, test::sent_of_type(first, PacketType::kData)[0].packet);
    auto gap = receiver.on_packet(
        t + millis(10), test::sent_of_type(third, PacketType::kData)[0].packet);
    const auto lost = test::notices(gap, NoticeKind::kLossDetected);
    ASSERT_EQ(lost.size(), 1u);
    EXPECT_EQ(lost[0].arg, 0u);  // the wrapped sequence number

    // NACK fires toward the source (self-primary) and names seq 0.
    auto delay = test::find_timer(gap, TimerKind::kNackDelay);
    auto fired = receiver.on_timer(delay->deadline, delay->id);
    const auto nacks = test::sent_of_type(fired, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    auto served = sender.on_packet(t + millis(20), nacks[0].packet);
    const auto repairs = test::sent_of_type(served, PacketType::kRetransmission);
    ASSERT_EQ(repairs.size(), 1u);
    auto recovered = receiver.on_packet(t + millis(30), repairs[0].packet);
    EXPECT_EQ(test::deliveries(recovered).size(), 1u);
    EXPECT_EQ(receiver.detector().missing_count(), 0u);
}

}  // namespace
}  // namespace lbrm::sim

namespace lbrm::sim {
namespace {

// --- rotating site loggers (Section 2.2.1 alternative) ------------------------

ScenarioConfig rotation_config() {
    ScenarioConfig config;
    config.topology.sites = 1;
    config.topology.receivers_per_site = 4;
    config.topology.secondary_logger_per_site = false;  // no dedicated logger
    config.stat_ack.enabled = false;
    config.rotate_site_loggers = true;
    config.rotation_slot = secs(2.0);
    return config;
}

TEST(RotatingLoggers, RecoveryWorksInEverySlot) {
    DisScenario scenario(rotation_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    // One loss event per rotation slot, across two full rotations.
    for (int event = 0; event < 8; ++event) {
        network.set_loss(topo.backbone, topo.sites[0].router,
                         std::make_unique<BernoulliLoss>(1.0));
        scenario.send_update(std::size_t{64});
        scenario.run_for(millis(50));
        network.set_loss(topo.backbone, topo.sites[0].router,
                         std::make_unique<BernoulliLoss>(0.0));
        scenario.run_for(secs(2.0));  // one slot per event
    }
    scenario.run_for(secs(5.0));

    for (std::uint32_t s = 2; s <= 9; ++s)
        EXPECT_EQ(scenario.delivery_times(SeqNum{s}).size(), 4u) << "seq " << s;
}

TEST(RotatingLoggers, TargetRotatesAcrossSlots) {
    // The receiver's NACK target must walk through the host list slot by
    // slot (load distribution -- the point of the rotation).
    ScenarioConfig config = rotation_config();
    DisScenario scenario(config);
    const auto& topo = scenario.topology();
    const NodeId self = topo.sites[0].receivers[0];
    auto& receiver = scenario.receiver(self);

    std::set<NodeId> owners;
    for (int slot = 0; slot < 4; ++slot) {
        const TimePoint when = time_zero() + scale(config.rotation_slot,
                                                   static_cast<double>(slot)) +
                               millis(10);
        owners.insert(receiver.current_logger(when));
    }
    EXPECT_EQ(owners.size(), 4u);  // all four hosts took a turn
    for (NodeId owner : owners)
        EXPECT_NE(std::find(topo.sites[0].receivers.begin(),
                            topo.sites[0].receivers.end(), owner),
                  topo.sites[0].receivers.end());
}

TEST(RotatingLoggers, EscalationStillReachesThePrimary) {
    // If every local host misses the packet, the rotation doesn't trap
    // recovery at the site: the usual fallback escalation kicks in.
    DisScenario scenario(rotation_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(10.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 4u);
}

}  // namespace
}  // namespace lbrm::sim
