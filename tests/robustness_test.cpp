// Adversarial robustness: protocol cores must tolerate any syntactically
// valid packet at any time -- wrong state, absurd field values, mismatched
// roles -- without crashing, and long runs must keep memory bounded.
#include <gtest/gtest.h>

#include <random>

#include "core/logger.hpp"
#include "core/receiver.hpp"
#include "core/sender.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::payload;

constexpr GroupId kGroup{1};
constexpr NodeId kSource{1};
constexpr NodeId kPrimary{2};

/// Generate an arbitrary (valid-format) packet from random state.
Packet random_packet(std::mt19937& gen) {
    std::uniform_int_distribution<std::uint32_t> u32(0, 0xFFFFFFFFu);
    std::uniform_int_distribution<int> type(1, 19);
    std::uniform_int_distribution<int> small(0, 64);
    std::uniform_real_distribution<double> prob(-1.0, 2.0);  // deliberately out of range

    const Header header{GroupId{u32(gen) % 3},  // sometimes matching group 1
                        NodeId{u32(gen) % 8}, NodeId{u32(gen) % 8}};
    const SeqNum seq{u32(gen) % 128};
    const EpochId epoch{u32(gen) % 8};
    std::vector<std::uint8_t> body(static_cast<std::size_t>(small(gen)), 0x5A);

    switch (type(gen)) {
        case 1: return {header, DataBody{seq, epoch, body}};
        case 2: return {header, HeartbeatBody{seq, u32(gen)}};
        case 3: {
            NackBody nack;
            for (int i = 0; i < small(gen) % 10; ++i) nack.missing.push_back(SeqNum{u32(gen)});
            return {header, std::move(nack)};
        }
        case 4: return {header, RetransmissionBody{seq, epoch, true, body}};
        case 5: return {header, LogStoreBody{seq, epoch, body}};
        case 6: return {header, LogAckBody{seq, SeqNum{u32(gen)}, (u32(gen) & 1) != 0}};
        case 7: return {header, ReplicaUpdateBody{seq, epoch, body}};
        case 8: return {header, ReplicaAckBody{seq}};
        case 9: return {header, AckerSelectionBody{epoch, prob(gen)}};
        case 10: return {header, AckerResponseBody{epoch}};
        case 11: return {header, AckBody{epoch, seq}};
        case 12: return {header, ProbeRequestBody{u32(gen) % 16, prob(gen)}};
        case 13: return {header, ProbeReplyBody{u32(gen) % 16}};
        case 14: return {header, DiscoveryQueryBody{static_cast<std::uint8_t>(u32(gen)), u32(gen)}};
        case 15: return {header, DiscoveryReplyBody{u32(gen), NodeId{u32(gen) % 8}, true}};
        case 16: return {header, PrimaryQueryBody{}};
        case 17: return {header, PrimaryReplyBody{NodeId{u32(gen) % 8}}};
        case 18: return {header, PromoteRequestBody{}};
        default: return {header, PromoteReplyBody{seq, (u32(gen) & 1) != 0}};
    }
}

template <typename Core>
void hammer(Core& core, std::uint64_t seed, int packets = 20000) {
    std::mt19937 gen{static_cast<std::uint32_t>(seed)};
    TimePoint t = time_zero();
    for (int i = 0; i < packets; ++i) {
        t = t + micros(100);
        auto actions = core.on_packet(t, random_packet(gen));
        // Also fire arbitrary timers occasionally.
        if (i % 17 == 0) {
            const TimerId id{static_cast<TimerKind>(1 + (i % 16)),
                             static_cast<std::uint64_t>(i % 64)};
            core.on_timer(t, id);
        }
    }
}

TEST(Robustness, SenderSurvivesArbitraryPackets) {
    SenderConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.primary_logger = kPrimary;
    config.replicas = {NodeId{3}};
    SenderCore sender{config};
    sender.start(time_zero());
    sender.send(at(0.1), payload(16));
    hammer(sender, 1);
    // Still functional afterwards.
    auto actions = sender.send(at(100.0), payload(16));
    EXPECT_EQ(test::count_sent(actions, PacketType::kData), 1u);
}

TEST(Robustness, ReceiverSurvivesArbitraryPackets) {
    ReceiverConfig config;
    config.self = NodeId{5};
    config.group = kGroup;
    config.source = kSource;
    config.logger = kPrimary;
    config.retrans_channel = GroupId{2};
    ReceiverCore receiver{config};
    receiver.start(time_zero());
    hammer(receiver, 2);
    // The loss detector's missing set stays bounded even under adversarial
    // sequence numbers (it is windowed by the stream horizon).
    EXPECT_LT(receiver.detector().missing_count(), 100000u);
}

TEST(Robustness, LoggersOfEveryRoleSurviveArbitraryPackets) {
    for (LoggerRole role :
         {LoggerRole::kPrimary, LoggerRole::kSecondary, LoggerRole::kReplica}) {
        LoggerConfig config;
        config.self = NodeId{4};
        config.group = kGroup;
        config.source = kSource;
        config.role = role;
        config.upstream = kPrimary;
        config.replicas = {NodeId{6}};
        config.retention.max_entries = 256;  // bounded under garbage floods
        LoggerCore logger{config, 9};
        logger.start(time_zero());
        hammer(logger, 3 + static_cast<std::uint64_t>(role));
        EXPECT_LE(logger.store().size(), 256u) << "role " << static_cast<int>(role);
    }
}

TEST(Robustness, SoakRunStaysBoundedAndConverges) {
    // 30 minutes of simulated operation: periodic data, intermittent loss
    // bursts, a logger crash + recovery.  Memory-proxy assertions: bounded
    // log stores, empty recovery queues at the end.
    sim::ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 3;
    config.stat_ack.initial_probe_p = 0.5;
    config.stat_ack.probe_target_replies = 2;
    config.stat_ack.probe_repeats = 1;
    config.logger_defaults.retention.max_entries = 64;
    config.receiver_defaults.nack_max_retries = 6;
    sim::DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(3.0));

    int updates = 0;
    for (int minute = 0; minute < 30; ++minute) {
        // A loss burst hits a rotating site for 2 s each minute.
        const auto& site = topo.sites[static_cast<std::size_t>(minute) % 3];
        const TimePoint burst = scenario.simulator().now();
        network.set_loss(topo.backbone, site.router,
                         std::make_unique<sim::BurstSchedule>(
                             std::vector<sim::BurstSchedule::Window>{
                                 {burst, burst + secs(2.0)}}));
        for (int i = 0; i < 4; ++i) {
            scenario.send_update(std::size_t{64});
            ++updates;
            scenario.run_for(secs(15.0));
        }
    }
    scenario.run_for(secs(80.0));

    // Everyone converged on the tail of the stream.
    const SeqNum last = scenario.sender().last_seq();
    EXPECT_EQ(scenario.delivery_times(last).size(), 9u);
    for (NodeId r : topo.all_receivers()) {
        EXPECT_EQ(scenario.receiver(r).detector().missing_count(), 0u);
        EXPECT_TRUE(scenario.receiver(r).fresh());
    }
    // Bounded state everywhere.
    EXPECT_LE(scenario.primary_logger().store().size(), 64u);
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_LE(scenario.secondary_logger(s).store().size(), 64u);
    EXPECT_LE(scenario.sender().retained_count(), 8u);
    EXPECT_EQ(updates, 120);
}

}  // namespace
}  // namespace lbrm
