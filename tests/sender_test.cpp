// SenderCore unit tests: data transmission, reliable primary handoff, buffer
// release rules (Section 2.2.3), heartbeat emission, failover.
#include <gtest/gtest.h>

#include "core/sender.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::payload;
using test::sent_of_type;

constexpr NodeId kSource{1};
constexpr NodeId kPrimary{2};
constexpr NodeId kReplicaA{3};
constexpr NodeId kReplicaB{4};
constexpr GroupId kGroup{5};

SenderConfig base_config() {
    SenderConfig c;
    c.self = kSource;
    c.group = kGroup;
    c.primary_logger = kPrimary;
    c.replicas = {kReplicaA, kReplicaB};
    c.stat_ack.enabled = false;
    c.log_store_retry = millis(50);
    c.log_store_max_retries = 3;
    return c;
}

Packet from(NodeId sender, Body body) {
    return Packet{Header{kGroup, kSource, sender}, std::move(body)};
}

TEST(Sender, SendMulticastsDataAndHandsOffToPrimary) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    auto actions = sender.send(at(1.0), payload(32));

    const auto data = sent_of_type(actions, PacketType::kData);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].to, kNoNode);  // multicast
    const auto& body = std::get<DataBody>(data[0].packet.body);
    EXPECT_EQ(body.seq, SeqNum{1});
    EXPECT_EQ(body.payload, payload(32));

    const auto store = sent_of_type(actions, PacketType::kLogStore);
    ASSERT_EQ(store.size(), 1u);
    EXPECT_EQ(store[0].to, kPrimary);
    EXPECT_TRUE(find_timer(actions, TimerKind::kLogStoreRetry).has_value());
}

TEST(Sender, SequenceNumbersIncrease) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(8));
    sender.send(at(2.0), payload(8));
    auto actions = sender.send(at(3.0), payload(8));
    const auto data = sent_of_type(actions, PacketType::kData);
    EXPECT_EQ(std::get<DataBody>(data[0].packet.body).seq, SeqNum{3});
    EXPECT_EQ(sender.last_seq(), SeqNum{3});
    EXPECT_EQ(sender.data_sent(), 3u);
}

TEST(Sender, RetainsUntilReplicaAck) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(100));
    EXPECT_EQ(sender.retained_count(), 1u);

    // Primary ack without replica coverage: application may continue but the
    // buffer must be retained (Section 2.2.3).
    sender.on_packet(at(1.01), from(kPrimary, LogAckBody{SeqNum{1}, SeqNum{0}, true}));
    EXPECT_EQ(sender.retained_count(), 1u);

    // Replica catches up: now the data is droppable.
    sender.on_packet(at(1.05), from(kPrimary, LogAckBody{SeqNum{1}, SeqNum{1}, true}));
    EXPECT_EQ(sender.retained_count(), 0u);
}

TEST(Sender, UnreplicatedPrimaryAckReleasesBuffer) {
    SenderConfig c = base_config();
    c.replicas.clear();
    SenderCore sender{c};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(100));
    sender.on_packet(at(1.01), from(kPrimary, LogAckBody{SeqNum{1}, SeqNum{0}, false}));
    EXPECT_EQ(sender.retained_count(), 0u);
}

TEST(Sender, LogStoreRetriesUntilAcked) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    auto first = sender.send(at(1.0), payload(16));
    auto timer = find_timer(first, TimerKind::kLogStoreRetry);
    ASSERT_TRUE(timer.has_value());

    // No ack: the retry timer re-sends the LogStore.
    auto retry = sender.on_timer(timer->deadline, timer->id);
    EXPECT_EQ(count_sent(retry, PacketType::kLogStore), 1u);
    EXPECT_TRUE(find_timer(retry, TimerKind::kLogStoreRetry).has_value());
}

TEST(Sender, AckCancelsRetry) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));
    auto actions =
        sender.on_packet(at(1.01), from(kPrimary, LogAckBody{SeqNum{1}, SeqNum{1}, true}));
    EXPECT_TRUE(test::has_cancel(actions, TimerKind::kLogStoreRetry));
}

TEST(Sender, HeartbeatEmittedAndRescheduled) {
    SenderCore sender{base_config()};
    auto start = sender.start(at(0.0));
    auto timer = find_timer(start, TimerKind::kHeartbeat);
    ASSERT_TRUE(timer.has_value());
    EXPECT_EQ(timer->deadline, at(0.25));

    auto actions = sender.on_timer(timer->deadline, timer->id);
    const auto hb = sent_of_type(actions, PacketType::kHeartbeat);
    ASSERT_EQ(hb.size(), 1u);
    EXPECT_EQ(std::get<HeartbeatBody>(hb[0].packet.body).last_seq, SeqNum{0});
    auto next = find_timer(actions, TimerKind::kHeartbeat);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->deadline, at(0.75));  // interval doubled
    EXPECT_EQ(sender.heartbeats_sent(), 1u);
}

TEST(Sender, DataResetsHeartbeatSchedule) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    auto actions = sender.send(at(10.0), payload(8));
    auto timer = find_timer(actions, TimerKind::kHeartbeat);
    ASSERT_TRUE(timer.has_value());
    EXPECT_EQ(timer->deadline, at(10.25));
}

TEST(Sender, AnswersPrimaryQuery) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    auto actions = sender.on_packet(at(1.0), from(NodeId{42}, PrimaryQueryBody{}));
    const auto reply = sent_of_type(actions, PacketType::kPrimaryReply);
    ASSERT_EQ(reply.size(), 1u);
    EXPECT_EQ(reply[0].to, NodeId{42});
    EXPECT_EQ(std::get<PrimaryReplyBody>(reply[0].packet.body).primary, kPrimary);
}

TEST(Sender, ServesNackFromRetainedBuffer) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(64, 7));
    auto actions = sender.on_packet(at(1.5), from(NodeId{42}, NackBody{{SeqNum{1}}}));
    const auto rt = sent_of_type(actions, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt[0].to, NodeId{42});
    EXPECT_EQ(std::get<RetransmissionBody>(rt[0].packet.body).payload, payload(64, 7));
}

TEST(Sender, FailoverPromotesFirstReplica) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    auto actions = sender.send(at(1.0), payload(16));
    auto timer = find_timer(actions, TimerKind::kLogStoreRetry);

    // Exhaust the retry budget: the primary is dead.
    TimePoint t = timer->deadline;
    Actions last;
    for (std::uint32_t i = 0; i <= base_config().log_store_max_retries; ++i) {
        last = sender.on_timer(t, {TimerKind::kLogStoreRetry, 0});
        t = t + millis(50);
    }
    const auto promote = sent_of_type(last, PacketType::kPromoteRequest);
    ASSERT_EQ(promote.size(), 1u);
    EXPECT_EQ(promote[0].to, kReplicaA);

    // The replica accepts with a stale high-water mark: the sender switches
    // primaries and replays the missing packet.
    auto replay =
        sender.on_packet(t, from(kReplicaA, PromoteReplyBody{SeqNum{0}, true}));
    EXPECT_EQ(sender.current_primary(), kReplicaA);
    EXPECT_EQ(count_sent(replay, PacketType::kLogStore), 1u);
    EXPECT_EQ(test::notices(replay, NoticeKind::kPrimaryFailover).size(), 1u);
}

TEST(Sender, FailoverTriesNextReplicaOnSilence) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));

    TimePoint t = at(1.05);
    Actions last;
    for (std::uint32_t i = 0; i <= base_config().log_store_max_retries; ++i) {
        last = sender.on_timer(t, {TimerKind::kLogStoreRetry, 0});
        t = t + millis(50);
    }
    // Replica A never replies; the failover timer moves to replica B.
    auto failover_timer = find_timer(last, TimerKind::kFailover);
    ASSERT_TRUE(failover_timer.has_value());
    auto next = sender.on_timer(failover_timer->deadline, failover_timer->id);
    const auto promote = sent_of_type(next, PacketType::kPromoteRequest);
    ASSERT_EQ(promote.size(), 1u);
    EXPECT_EQ(promote[0].to, kReplicaB);
}

TEST(Sender, SelfPrimaryModeLogsLocally) {
    SenderConfig c = base_config();
    c.primary_logger = kNoNode;  // source is its own primary
    c.replicas.clear();
    SenderCore sender{c};
    sender.start(at(0.0));
    auto actions = sender.send(at(1.0), payload(16));
    EXPECT_EQ(count_sent(actions, PacketType::kLogStore), 0u);
    EXPECT_TRUE(sender.is_self_primary());
    // Serves recovery directly.
    auto nack = sender.on_packet(at(2.0), from(NodeId{9}, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(nack, PacketType::kRetransmission), 1u);
}

TEST(Sender, IgnoresForeignGroupTraffic) {
    SenderCore sender{base_config()};
    sender.start(at(0.0));
    Packet foreign{Header{GroupId{99}, kSource, NodeId{42}}, NackBody{{SeqNum{1}}}};
    EXPECT_TRUE(sender.on_packet(at(1.0), foreign).empty());
}

}  // namespace
}  // namespace lbrm
