// Loss-detector unit tests: gap detection, heartbeat-revealed losses,
// reordering tolerance, duplicates and recovery bookkeeping.
#include <gtest/gtest.h>

#include "core/loss_detector.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;

TEST(LossDetector, InOrderStreamHasNoLoss) {
    LossDetector d;
    for (std::uint32_t s = 1; s <= 100; ++s) {
        auto obs = d.observe(at(s), SeqNum{s});
        EXPECT_TRUE(obs.newly_missing.empty());
        EXPECT_FALSE(obs.duplicate);
        EXPECT_FALSE(obs.fills_gap);
    }
    EXPECT_EQ(d.missing_count(), 0u);
    EXPECT_EQ(d.highest_seen(), SeqNum{100});
}

TEST(LossDetector, SingleGapDetected) {
    LossDetector d;
    d.observe(at(1), SeqNum{1});
    auto obs = d.observe(at(2), SeqNum{3});
    ASSERT_EQ(obs.newly_missing.size(), 1u);
    EXPECT_EQ(obs.newly_missing[0], SeqNum{2});
    EXPECT_TRUE(d.is_missing(SeqNum{2}));
    EXPECT_EQ(d.detected_at(SeqNum{2}), at(2));
}

TEST(LossDetector, MultiPacketGap) {
    LossDetector d;
    d.observe(at(1), SeqNum{10});
    auto obs = d.observe(at(2), SeqNum{15});
    EXPECT_EQ(obs.newly_missing.size(), 4u);  // 11..14
    EXPECT_EQ(d.missing(), (std::vector<SeqNum>{SeqNum{11}, SeqNum{12}, SeqNum{13}, SeqNum{14}}));
}

TEST(LossDetector, HeartbeatRevealsLostDataPacket) {
    LossDetector d;
    d.observe(at(1), SeqNum{5});
    // Heartbeat repeating seq 6 proves data 6 was sent and we missed it.
    auto obs = d.observe(at(2), SeqNum{6}, /*is_heartbeat=*/true);
    ASSERT_EQ(obs.newly_missing.size(), 1u);
    EXPECT_EQ(obs.newly_missing[0], SeqNum{6});
}

TEST(LossDetector, HeartbeatForReceivedPacketIsQuiet) {
    LossDetector d;
    d.observe(at(1), SeqNum{5});
    auto obs = d.observe(at(2), SeqNum{5}, /*is_heartbeat=*/true);
    EXPECT_TRUE(obs.newly_missing.empty());
    EXPECT_FALSE(obs.duplicate);
}

TEST(LossDetector, RepeatedHeartbeatsDontRededect) {
    LossDetector d;
    d.observe(at(1), SeqNum{5});
    auto first = d.observe(at(2), SeqNum{6}, true);
    EXPECT_EQ(first.newly_missing.size(), 1u);
    auto second = d.observe(at(3), SeqNum{6}, true);
    EXPECT_TRUE(second.newly_missing.empty());
}

TEST(LossDetector, RecoveryFillsGap) {
    LossDetector d;
    d.observe(at(1), SeqNum{1});
    d.observe(at(2), SeqNum{3});
    auto obs = d.observe(at(3), SeqNum{2});
    EXPECT_TRUE(obs.fills_gap);
    EXPECT_FALSE(obs.duplicate);
    EXPECT_EQ(d.missing_count(), 0u);
}

TEST(LossDetector, ReorderingRetractsMissing) {
    // 1, 3, 2 arrive: 2 is briefly "missing" then retracted on arrival.
    LossDetector d;
    d.observe(at(1), SeqNum{1});
    EXPECT_EQ(d.observe(at(2), SeqNum{3}).newly_missing.size(), 1u);
    EXPECT_TRUE(d.observe(at(3), SeqNum{2}).fills_gap);
}

TEST(LossDetector, DuplicateDataDetected) {
    LossDetector d;
    d.observe(at(1), SeqNum{1});
    d.observe(at(2), SeqNum{2});
    auto obs = d.observe(at(3), SeqNum{2});
    EXPECT_TRUE(obs.duplicate);
}

TEST(LossDetector, AbandonStopsTracking) {
    LossDetector d;
    d.observe(at(1), SeqNum{1});
    d.observe(at(2), SeqNum{5});
    d.abandon(SeqNum{2});
    EXPECT_FALSE(d.is_missing(SeqNum{2}));
    EXPECT_EQ(d.missing_count(), 2u);  // 3, 4 remain
}

TEST(LossDetector, FirstPacketEverIsNotALoss) {
    // Joining an in-progress stream at seq 1000 must not declare 1..999 lost.
    LossDetector d;
    auto obs = d.observe(at(1), SeqNum{1000});
    EXPECT_TRUE(obs.newly_missing.empty());
}

TEST(LossDetector, JoinViaHeartbeatThenData) {
    LossDetector d;
    d.observe(at(1), SeqNum{7}, /*is_heartbeat=*/true);  // join late, silent
    auto obs = d.observe(at(2), SeqNum{8});
    EXPECT_TRUE(obs.newly_missing.empty());
    EXPECT_EQ(d.highest_seen(), SeqNum{8});
}

TEST(LossDetector, LastHeardTracksEverything) {
    LossDetector d;
    EXPECT_FALSE(d.last_heard().has_value());
    d.observe(at(1), SeqNum{1});
    d.observe(at(5), SeqNum{1}, true);
    EXPECT_EQ(d.last_heard(), at(5));
}

TEST(LossDetector, WrapAroundGap) {
    LossDetector d;
    d.observe(at(1), SeqNum{0xFFFFFFFEu});
    auto obs = d.observe(at(2), SeqNum{1});
    EXPECT_EQ(obs.newly_missing.size(), 2u);  // FFFFFFFF and 0
    EXPECT_TRUE(d.is_missing(SeqNum{0xFFFFFFFFu}));
    EXPECT_TRUE(d.is_missing(SeqNum{0}));
}

TEST(LossDetector, LargeStreamStaysBounded) {
    // The received-set trims behind the horizon; memory must not grow
    // unboundedly over long streams.
    LossDetector d;
    for (std::uint32_t s = 1; s <= 100'000; ++s) d.observe(at(s), SeqNum{s});
    EXPECT_EQ(d.missing_count(), 0u);
    EXPECT_EQ(d.highest_seen(), SeqNum{100'000});
}

}  // namespace
}  // namespace lbrm
