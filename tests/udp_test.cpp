// Real-socket transport tests: loopback UDP endpoints running the actual
// LBRM cores through the epoll reactor -- sockets, timers, encode/decode on
// the wire, and loss recovery with an artificial drop.
#include <gtest/gtest.h>

#include "transport/reactor.hpp"
#include "transport/udp_endpoint.hpp"
#include "transport/udp_socket.hpp"

namespace lbrm::transport {
namespace {

TEST(SockAddr, ParseAndFormat) {
    const SockAddr a = SockAddr::parse("127.0.0.1:9000");
    EXPECT_EQ(a.ip, 0x7F000001u);
    EXPECT_EQ(a.port, 9000);
    EXPECT_EQ(a.to_string(), "127.0.0.1:9000");
    EXPECT_THROW(SockAddr::parse("no-colon"), std::invalid_argument);
    EXPECT_THROW(SockAddr::parse("999.0.0.1:1"), std::invalid_argument);
    EXPECT_THROW(SockAddr::parse("127.0.0.1:70000"), std::invalid_argument);
    EXPECT_TRUE(SockAddr::parse("239.1.2.3:5000").is_multicast());
    EXPECT_FALSE(a.is_multicast());
}

TEST(UdpSocket, LoopbackSendReceive) {
    UdpSocket receiver = UdpSocket::bind(SockAddr::loopback(0));
    UdpSocket sender = UdpSocket::bind(SockAddr::loopback(0));
    const SockAddr dest = receiver.local_addr();

    const std::vector<std::uint8_t> message{1, 2, 3, 4, 5};
    ASSERT_TRUE(sender.send_to(dest, message));

    // Loopback delivery is immediate but give the kernel a poll's grace.
    std::array<std::uint8_t, 64> buffer;
    std::optional<UdpSocket::Datagram> got;
    for (int i = 0; i < 100 && !got; ++i) got = receiver.recv_into(buffer);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->size, 5u);
    EXPECT_EQ(buffer[0], 1);
    EXPECT_EQ(got->from, sender.local_addr());
}

TEST(Reactor, TimersFireInOrder) {
    Reactor reactor;
    std::vector<int> order;
    const TimePoint now = reactor.now();
    reactor.arm_timer(now + millis(30), [&] { order.push_back(2); });
    reactor.arm_timer(now + millis(10), [&] {
        order.push_back(1);
    });
    reactor.arm_timer(now + millis(50), [&] {
        order.push_back(3);
        reactor.stop();
    });
    reactor.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelledTimerDoesNotFire) {
    Reactor reactor;
    bool fired = false;
    const auto token = reactor.arm_timer(reactor.now() + millis(10), [&] { fired = true; });
    reactor.cancel_timer(token);
    reactor.arm_timer(reactor.now() + millis(30), [&] { reactor.stop(); });
    reactor.run();
    EXPECT_FALSE(fired);
}

/// Build a three-endpoint deployment on loopback: source+primary+receiver,
/// wired in unicast fan-out mode (works in any container).
struct LoopbackDeployment {
    Reactor reactor;
    std::unique_ptr<UdpEndpoint> source;
    std::unique_ptr<UdpEndpoint> primary;
    std::unique_ptr<UdpEndpoint> receiver;

    static constexpr NodeId kSourceId{1};
    static constexpr NodeId kPrimaryId{2};
    static constexpr NodeId kReceiverId{3};
    static constexpr GroupId kGroup{1};

    LoopbackDeployment() {
        auto make = [this](NodeId id) {
            UdpEndpointConfig config;
            config.self = id;
            return std::make_unique<UdpEndpoint>(reactor, std::move(config));
        };
        source = make(kSourceId);
        primary = make(kPrimaryId);
        receiver = make(kReceiverId);

        // Everyone learns everyone's ephemeral address.
        for (auto* a : {source.get(), primary.get(), receiver.get()}) {
            a->add_peer(kSourceId, source->unicast_addr());
            a->add_peer(kPrimaryId, primary->unicast_addr());
            a->add_peer(kReceiverId, receiver->unicast_addr());
        }
    }

    void pump_for(Duration d) {
        const TimePoint deadline = reactor.now() + d;
        while (reactor.now() < deadline) reactor.run_once(millis(5));
    }
};

TEST(UdpEndpoint, EndToEndDeliveryOverRealSockets) {
    LoopbackDeployment net;

    SenderConfig sender_config;
    sender_config.self = LoopbackDeployment::kSourceId;
    sender_config.group = LoopbackDeployment::kGroup;
    sender_config.primary_logger = LoopbackDeployment::kPrimaryId;
    sender_config.stat_ack.enabled = false;
    net.source->protocol().add_sender(sender_config);

    LoggerConfig logger_config;
    logger_config.self = LoopbackDeployment::kPrimaryId;
    logger_config.group = LoopbackDeployment::kGroup;
    logger_config.source = LoopbackDeployment::kSourceId;
    logger_config.role = LoggerRole::kPrimary;
    net.primary->protocol().add_logger(logger_config, 1);

    ReceiverConfig receiver_config;
    receiver_config.self = LoopbackDeployment::kReceiverId;
    receiver_config.group = LoopbackDeployment::kGroup;
    receiver_config.source = LoopbackDeployment::kSourceId;
    receiver_config.logger = LoopbackDeployment::kPrimaryId;
    std::vector<std::vector<std::uint8_t>> delivered;
    AppHandlers handlers;
    handlers.on_data = [&](TimePoint, const DeliverData& d) {
        delivered.push_back(d.payload);
    };
    net.receiver->protocol().add_receiver(receiver_config, handlers);

    const TimePoint now = net.reactor.now();
    net.source->protocol().start(now);
    net.primary->protocol().start(now);
    net.receiver->protocol().start(now);

    const std::vector<std::uint8_t> message{'h', 'i', '!', 0x00, 0xFF};
    net.source->protocol().send(net.reactor.now(), message);
    net.pump_for(millis(200));

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], message);
    // The primary logged the packet via LogStore.
    EXPECT_GE(net.primary->datagrams_received(), 1u);
}

TEST(UdpEndpoint, LostDataRecoveredFromLoggerOverRealSockets) {
    LoopbackDeployment net;

    SenderConfig sender_config;
    sender_config.self = LoopbackDeployment::kSourceId;
    sender_config.group = LoopbackDeployment::kGroup;
    sender_config.primary_logger = LoopbackDeployment::kPrimaryId;
    sender_config.stat_ack.enabled = false;
    // Fast heartbeats so the gap is revealed quickly in real time.
    sender_config.heartbeat.h_min = millis(30);
    auto& sender = net.source->protocol().add_sender(sender_config);
    (void)sender;

    LoggerConfig logger_config;
    logger_config.self = LoopbackDeployment::kPrimaryId;
    logger_config.group = LoopbackDeployment::kGroup;
    logger_config.source = LoopbackDeployment::kSourceId;
    logger_config.role = LoggerRole::kPrimary;
    net.primary->protocol().add_logger(logger_config, 1);

    ReceiverConfig receiver_config;
    receiver_config.self = LoopbackDeployment::kReceiverId;
    receiver_config.group = LoopbackDeployment::kGroup;
    receiver_config.source = LoopbackDeployment::kSourceId;
    receiver_config.logger = LoopbackDeployment::kPrimaryId;
    receiver_config.heartbeat.h_min = millis(30);
    std::vector<SeqNum> delivered;
    std::vector<bool> recovered_flags;
    AppHandlers handlers;
    handlers.on_data = [&](TimePoint, const DeliverData& d) {
        delivered.push_back(d.seq);
        recovered_flags.push_back(d.recovered);
    };
    net.receiver->protocol().add_receiver(receiver_config, handlers);

    const TimePoint now = net.reactor.now();
    net.source->protocol().start(now);
    net.primary->protocol().start(now);
    net.receiver->protocol().start(now);

    // Packet 1 delivered normally.
    net.source->protocol().send(net.reactor.now(), std::vector<std::uint8_t>{1});
    net.pump_for(millis(100));

    // "Lose" packet 2 at the receiver: remove the receiver from the
    // source's directory so the fan-out multicast misses it, while the
    // LogStore to the primary still goes through.
    net.source->add_peer(LoopbackDeployment::kReceiverId, SockAddr::loopback(1));
    net.source->protocol().send(net.reactor.now(), std::vector<std::uint8_t>{2});
    net.pump_for(millis(50));
    net.source->add_peer(LoopbackDeployment::kReceiverId, net.receiver->unicast_addr());

    // Heartbeats reveal the gap; the receiver NACKs the primary logger and
    // recovers seq 2 as a retransmission.
    net.pump_for(millis(700));

    ASSERT_GE(delivered.size(), 2u);
    bool saw_recovered_2 = false;
    for (std::size_t i = 0; i < delivered.size(); ++i)
        if (delivered[i] == SeqNum{2} && recovered_flags[i]) saw_recovered_2 = true;
    EXPECT_TRUE(saw_recovered_2);
}

}  // namespace
}  // namespace lbrm::transport

namespace lbrm::transport {
namespace {

/// Real IP multicast on loopback; skipped cleanly where the kernel or
/// container forbids group membership.
TEST(UdpMulticast, LoopbackGroupDelivery) {
    const SockAddr group = SockAddr::parse("239.255.42.99:0");
    std::unique_ptr<UdpSocket> listener;
    SockAddr group_addr{};
    try {
        listener = std::make_unique<UdpSocket>(UdpSocket::bind(SockAddr{0, 0}));
        group_addr = SockAddr{group.ip, listener->local_addr().port};
        listener->join_multicast(group_addr);
    } catch (const std::system_error& e) {
        GTEST_SKIP() << "IP multicast unavailable here: " << e.what();
    }

    UdpSocket sender = UdpSocket::bind(SockAddr::loopback(0));
    sender.set_multicast_ttl(1);
    const std::vector<std::uint8_t> message{9, 8, 7};
    if (!sender.send_to(group_addr, message))
        GTEST_SKIP() << "multicast send refused (no route)";

    std::array<std::uint8_t, 64> buffer;
    std::optional<UdpSocket::Datagram> got;
    for (int i = 0; i < 2000 && !got; ++i) got = listener->recv_into(buffer);
    if (!got) GTEST_SKIP() << "multicast loopback not delivered (no mcast route)";
    EXPECT_EQ(got->size, 3u);
    EXPECT_EQ(buffer[0], 9);
}

TEST(UdpEndpoint, DynamicGroupJoinLeave) {
    // Endpoint-level join/leave of a configured group address; exercises
    // the Section 7 retransmission-channel plumbing on real sockets.
    Reactor reactor;
    UdpEndpointConfig config;
    config.self = NodeId{1};
    config.group_addrs[GroupId{9}] = SockAddr::parse("239.255.43.1:47123");
    UdpEndpoint endpoint{reactor, std::move(config)};

    try {
        endpoint.join_group(GroupId{9});
    } catch (const std::system_error& e) {
        GTEST_SKIP() << "IP multicast unavailable here: " << e.what();
    }
    endpoint.join_group(GroupId{9});   // idempotent
    endpoint.leave_group(GroupId{9});
    endpoint.leave_group(GroupId{9});  // idempotent
    endpoint.join_group(GroupId{42});  // unknown group: silently ignored
    SUCCEED();
}

}  // namespace
}  // namespace lbrm::transport
