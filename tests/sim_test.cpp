// Simulator substrate tests: event queue ordering/cancellation, link
// timing/queueing, loss models, routing, multicast trees, TTL scoping and
// traffic accounting.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_host.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "tests/test_util.hpp"

namespace lbrm::sim {
namespace {

using test::at;

// --- event queue -------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(at(3.0), [&] { order.push_back(3); });
    q.schedule(at(1.0), [&] { order.push_back(1); });
    q.schedule(at(2.0), [&] { order.push_back(2); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) q.schedule(at(1.0), [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop().fn();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelledEventsDoNotRun) {
    EventQueue q;
    bool ran = false;
    const auto id = q.schedule(at(1.0), [&] { ran = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsBoundedNoOp) {
    // Regression: cancelling an id whose event already fired used to park
    // the id in a cancelled-set forever.  Bookkeeping must be bounded by
    // peak concurrency, not by lifetime schedule/cancel counts.
    EventQueue q;
    for (int round = 0; round < 10000; ++round) {
        const auto id = q.schedule(at(static_cast<double>(round)), [] {});
        q.pop().fn();
        q.cancel(id);  // already fired: must be a no-op
        q.cancel(id);  // repeated cancel: still a no-op
    }
    EXPECT_TRUE(q.empty());
    EXPECT_LE(q.slab_slots(), 2u);
}

TEST(EventQueue, StaleCancelDoesNotHitRecycledSlot) {
    EventQueue q;
    const auto stale = q.schedule(at(1.0), [] {});
    q.pop().fn();  // fires; its slot is recycled
    bool ran = false;
    q.schedule(at(2.0), [&] { ran = true; });  // reuses the slot
    q.cancel(stale);  // id of the fired event: must not cancel the new one
    while (!q.empty()) q.pop().fn();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelInterleavedWithEqualTimestamps) {
    EventQueue q;
    std::vector<int> order;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(q.schedule(at(1.0), [&order, i] { order.push_back(i); }));
    q.cancel(ids[1]);
    q.cancel(ids[4]);
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
}

TEST(Simulator, ClockAdvancesWithEvents) {
    Simulator sim;
    TimePoint seen{};
    sim.schedule_in(secs(5.0), [&] { seen = sim.now(); });
    sim.run_for(secs(10.0));
    EXPECT_EQ(seen, at(5.0));
    EXPECT_EQ(sim.now(), at(10.0));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(at(1.0), [&] { ++count; });
    sim.schedule_at(at(3.0), [&] { ++count; });
    sim.run_until(at(2.0));
    EXPECT_EQ(count, 1);
    sim.run_until(at(4.0));
    EXPECT_EQ(count, 2);
}

TEST(Simulator, PastSchedulingClampsToNow) {
    Simulator sim;
    sim.schedule_at(at(5.0), [] {});
    sim.run_for(secs(5.0));
    bool ran = false;
    sim.schedule_at(at(1.0), [&] { ran = true; });  // in the past
    sim.run_for(secs(0.1));
    EXPECT_TRUE(ran);
}

// --- link ---------------------------------------------------------------------

TEST(Link, PropagationOnlyForInfiniteBandwidth) {
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{millis(10), 0.0, Duration::zero()}};
    Link& link = cable.dir[0];
    Rng rng{1};
    auto arrival = link.transmit(rng, at(1.0), 1000, PacketType::kData);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(*arrival, at(1.0) + millis(10));
}

TEST(Link, SerializationDelayFromBandwidth) {
    // 1000 bytes at 1 Mb/s = 8 ms serialization + 1 ms propagation.
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{millis(1), 1e6, Duration::zero()}};
    Link& link = cable.dir[0];
    Rng rng{1};
    auto arrival = link.transmit(rng, at(0.0), 1000, PacketType::kData);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(*arrival, at(0.009));
}

TEST(Link, FifoQueueingAccumulates) {
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{Duration::zero(), 1e6, Duration::zero()}};
    Link& link = cable.dir[0];
    Rng rng{1};
    auto first = link.transmit(rng, at(0.0), 1000, PacketType::kData);
    auto second = link.transmit(rng, at(0.0), 1000, PacketType::kData);
    EXPECT_EQ(*first, at(0.008));
    EXPECT_EQ(*second, at(0.016));  // waited behind the first
}

TEST(Link, DropTailWhenQueueDelayExceeded) {
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{Duration::zero(), 1e6, millis(10)}};
    Link& link = cable.dir[0];
    Rng rng{1};
    // Each packet occupies 8 ms of line time; the third would wait 16 ms.
    EXPECT_TRUE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_TRUE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_FALSE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_EQ(link.stats().drops_queue, 1u);
}

TEST(Link, StatsCountByType) {
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{}};
    Link& link = cable.dir[0];
    Rng rng{1};
    link.transmit(rng, at(0.0), 100, PacketType::kData);
    link.transmit(rng, at(0.1), 50, PacketType::kNack);
    link.transmit(rng, at(0.2), 50, PacketType::kNack);
    EXPECT_EQ(link.stats().packets, 3u);
    EXPECT_EQ(link.stats().bytes, 200u);
    EXPECT_EQ(link.stats().packets_of(PacketType::kNack), 2u);
    EXPECT_EQ(link.stats().packets_of(PacketType::kData), 1u);
}

// --- loss models -----------------------------------------------------------------

TEST(LossModel, BernoulliRate) {
    BernoulliLoss loss{0.25};
    Rng rng{42};
    int drops = 0;
    for (int i = 0; i < 100000; ++i) drops += loss.drop(rng, at(0.0)) ? 1 : 0;
    EXPECT_NEAR(drops / 100000.0, 0.25, 0.01);
}

TEST(LossModel, BurstScheduleIsDeterministic) {
    BurstSchedule burst{{{at(1.0), at(2.0)}, {at(5.0), at(6.0)}}};
    Rng rng{1};
    EXPECT_FALSE(burst.drop(rng, at(0.5)));
    EXPECT_TRUE(burst.drop(rng, at(1.5)));
    EXPECT_FALSE(burst.drop(rng, at(2.0)));  // end exclusive
    EXPECT_TRUE(burst.drop(rng, at(5.0)));   // start inclusive
    EXPECT_FALSE(burst.drop(rng, at(7.0)));
}

TEST(LossModel, GilbertElliottHasBurstyStructure) {
    GilbertElliottLoss ge{0.01, 0.2, 0.001, 0.9};
    Rng rng{7};
    int drops = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) drops += ge.drop(rng, at(0.0)) ? 1 : 0;
    // Stationary bad-state probability = 0.01/(0.01+0.2) ~ 4.8%; overall
    // loss ~ 0.048*0.9 + 0.952*0.001 ~ 4.4%.
    EXPECT_NEAR(drops / static_cast<double>(n), 0.044, 0.01);
}

// --- topology & routing ---------------------------------------------------------

TEST(Topology, DisTopologyShape) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 3;
    spec.receivers_per_site = 4;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    EXPECT_EQ(topo.sites.size(), 3u);
    EXPECT_EQ(topo.all_receivers().size(), 12u);
    // 1 backbone + source router + source + primary + 1 replica +
    // 3 * (router + secondary + 4 receivers).
    EXPECT_EQ(net.node_count(), 5u + 3u * 6u);
    EXPECT_EQ(net.site_of(topo.source), net.site_of(topo.primary));
    EXPECT_NE(net.site_of(topo.sites[0].receivers[0]),
              net.site_of(topo.sites[1].receivers[0]));
}

TEST(Topology, PaperLatencyBudget) {
    // Receiver -> local secondary RTT ~3-4 ms; receiver -> primary ~80 ms,
    // matching the paper's Section 2.2.2 ping measurements.
    const DisTopologySpec spec;
    const Duration local_one_way = spec.lan_delay + spec.lan_delay;  // host->rtr->sec
    EXPECT_GE(2 * local_one_way, millis(2));
    EXPECT_LE(2 * local_one_way, millis(4));

    const Duration remote_one_way =
        spec.lan_delay + spec.tail_delay + spec.backbone_delay + spec.lan_delay;
    EXPECT_NEAR(to_seconds(2 * remote_one_way), 0.080, 0.005);
}

TEST(Network, UnicastDeliversThroughRouters) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 2;
    spec.receivers_per_site = 1;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const NodeId from = topo.source;
    const NodeId to = topo.sites[1].receivers[0];
    std::vector<TimePoint> arrivals;
    net.set_tap([&](TimePoint t, const Link& link, const Packet&, bool delivered) {
        if (delivered && link.to() == to) arrivals.push_back(t);
    });
    net.unicast(from, to, Packet{Header{GroupId{1}, from, from}, PrimaryQueryBody{}});
    sim.run_for(secs(1.0));
    ASSERT_EQ(arrivals.size(), 1u);
}

TEST(Network, MulticastUsesOneCopyPerSharedLink) {
    // The defining economy of multicast: 20 receivers behind one tail
    // circuit receive ONE copy on that circuit.
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 1;
    spec.receivers_per_site = 20;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);

    net.multicast(topo.source,
                  Packet{Header{group, topo.source, topo.source},
                         DataBody{SeqNum{1}, EpochId{0}, {1, 2, 3}}},
                  McastScope::kGlobal);
    sim.run_for(secs(1.0));

    const Link* tail = net.link(topo.backbone, topo.sites[0].router);
    ASSERT_NE(tail, nullptr);
    EXPECT_EQ(tail->stats().packets_of(PacketType::kData), 1u);

    // But each receiver LAN link carried its own copy.
    std::uint64_t lan_copies = 0;
    for (NodeId r : topo.sites[0].receivers)
        lan_copies += net.link(topo.sites[0].router, r)->stats().packets_of(PacketType::kData);
    EXPECT_EQ(lan_copies, 20u);
}

TEST(Network, SiteScopedMulticastNeverLeavesSite) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 2;
    spec.receivers_per_site = 3;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);
    net.join(group, topo.sites[0].secondary);

    // Secondary at site 0 re-multicasts with site scope.
    const NodeId secondary = topo.sites[0].secondary;
    net.multicast(secondary,
                  Packet{Header{group, topo.source, secondary},
                         RetransmissionBody{SeqNum{1}, EpochId{0}, true, {1}}},
                  McastScope::kSite);
    sim.run_for(secs(1.0));

    // Tail circuits saw nothing.
    EXPECT_EQ(net.link(topo.sites[0].router, topo.backbone)
                  ->stats().packets_of(PacketType::kRetransmission),
              0u);
    // Site-0 receivers got it; site-1 receivers did not.
    std::uint64_t site0 = 0, site1 = 0;
    for (NodeId r : topo.sites[0].receivers)
        site0 += net.link(topo.sites[0].router, r)->stats().packets_of(
            PacketType::kRetransmission);
    for (NodeId r : topo.sites[1].receivers)
        site1 += net.link(topo.sites[1].router, r)->stats().packets_of(
            PacketType::kRetransmission);
    EXPECT_EQ(site0, 3u);
    EXPECT_EQ(site1, 0u);
}

TEST(Network, RegionScopeLimitsToFourHops) {
    // Region scope = up to 4 hops (adjacent sites through the backbone).
    // On a 7-node chain, the member 4 hops out is reached, 5 hops is not.
    Simulator sim;
    Network net{sim, 1};
    std::vector<NodeId> chain;
    for (std::uint32_t i = 0; i < 7; ++i) chain.push_back(net.add_node(SiteId{i}));
    for (std::size_t i = 0; i + 1 < chain.size(); ++i)
        net.add_link(chain[i], chain[i + 1], LinkSpec{});
    net.finalize();

    const GroupId group{1};
    net.join(group, chain[4]);  // 4 hops from chain[0]
    net.join(group, chain[5]);  // 5 hops from chain[0]
    net.multicast(chain[0],
                  Packet{Header{group, chain[0], chain[0]},
                         DataBody{SeqNum{1}, EpochId{0}, {1}}},
                  McastScope::kRegion);
    sim.run_for(secs(1.0));

    EXPECT_EQ(net.link(chain[3], chain[4])->stats().packets, 1u);
    EXPECT_EQ(net.link(chain[4], chain[5])->stats().packets, 0u);

    // Global scope from the same sender reaches the 5-hop member too.
    net.multicast(chain[0],
                  Packet{Header{group, chain[0], chain[0]},
                         DataBody{SeqNum{2}, EpochId{0}, {1}}},
                  McastScope::kGlobal);
    sim.run_for(secs(1.0));
    EXPECT_EQ(net.link(chain[4], chain[5])->stats().packets, 1u);
}

// --- multicast tree cache ----------------------------------------------------

namespace cache_test {

struct Fixture {
    Simulator sim;
    Network net{sim, 7};
    DisTopology topo;
    GroupId group{1};

    Fixture() {
        DisTopologySpec spec;
        spec.sites = 2;
        spec.receivers_per_site = 3;
        topo = make_dis_topology(net, spec);
        net.finalize();
        for (NodeId r : topo.all_receivers()) net.join(group, r);
    }

    void send(std::uint32_t seq) {
        net.multicast(topo.source,
                      Packet{Header{group, topo.source, topo.source},
                             DataBody{SeqNum{seq}, EpochId{0}, {1, 2}}},
                      McastScope::kGlobal);
        sim.run_for(secs(1.0));
    }

    [[nodiscard]] std::uint64_t copies_to(NodeId receiver) {
        for (const auto& site : topo.sites)
            for (NodeId r : site.receivers)
                if (r == receiver)
                    return net.link(site.router, r)->stats().packets_of(PacketType::kData);
        return 0;
    }
};

TEST(NetworkTreeCache, RepeatSendsReuseOneCachedTree) {
    Fixture f;
    EXPECT_EQ(f.net.cached_tree_count(), 0u);
    f.send(1);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    f.send(2);
    f.send(3);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 3u);
}

TEST(NetworkTreeCache, JoinRebuildsAndDeliversToNewMember) {
    Fixture f;
    const NodeId late = f.topo.sites[1].secondary;
    f.send(1);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    f.net.join(f.group, late);
    EXPECT_EQ(f.net.cached_tree_count(), 0u);  // invalidated
    f.send(2);
    // The late joiner got exactly the post-join packet...
    EXPECT_EQ(f.net.link(f.topo.sites[1].router, late)->stats().packets_of(
                  PacketType::kData),
              1u);
    // ...and existing members got both.
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 2u);
}

TEST(NetworkTreeCache, LeaveRebuildsAndStopsDelivering) {
    Fixture f;
    const NodeId leaver = f.topo.sites[0].receivers[0];
    f.send(1);
    f.net.leave(f.group, leaver);
    EXPECT_EQ(f.net.cached_tree_count(), 0u);
    f.send(2);
    EXPECT_EQ(f.copies_to(leaver), 1u);  // only the pre-leave packet
    for (NodeId r : f.topo.sites[1].receivers) EXPECT_EQ(f.copies_to(r), 2u);
}

TEST(NetworkTreeCache, NodeDownRebuildsAndPrunesMember) {
    Fixture f;
    const NodeId dead = f.topo.sites[0].receivers[1];
    f.send(1);
    f.net.set_node_down(dead, true);
    EXPECT_EQ(f.net.cached_tree_count(), 0u);
    f.send(2);
    EXPECT_EQ(f.copies_to(dead), 1u);
    f.net.set_node_down(dead, false);
    f.send(3);
    EXPECT_EQ(f.copies_to(dead), 2u);  // rejoins delivery after revival
    for (NodeId r : f.topo.sites[1].receivers) EXPECT_EQ(f.copies_to(r), 3u);
}

TEST(NetworkTreeCache, RefinalizeAfterTopologyChangeRebuilds) {
    Fixture f;
    f.send(1);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    // Attach a brand-new receiver behind site 0's router and re-finalize.
    const NodeId extra = f.net.add_node(f.topo.sites[0].id);
    f.net.add_link(f.topo.sites[0].router, extra, LinkSpec{});
    f.net.finalize();
    EXPECT_EQ(f.net.cached_tree_count(), 0u);
    f.net.join(f.group, extra);
    f.send(2);
    EXPECT_EQ(f.net.link(f.topo.sites[0].router, extra)->stats().packets_of(
                  PacketType::kData),
              1u);
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 2u);
}

TEST(NetworkTreeCache, ScopedTreesCacheIndependently) {
    Fixture f;
    f.net.join(f.group, f.topo.sites[0].secondary);
    const NodeId secondary = f.topo.sites[0].secondary;
    auto send_scoped = [&](McastScope scope) {
        f.net.multicast(secondary,
                        Packet{Header{f.group, f.topo.source, secondary},
                               RetransmissionBody{SeqNum{1}, EpochId{0}, true, {1}}},
                        scope);
        f.sim.run_for(secs(1.0));
    };
    send_scoped(McastScope::kSite);
    send_scoped(McastScope::kGlobal);
    EXPECT_EQ(f.net.cached_tree_count(), 2u);  // one per scope
    // Site scope stayed local both times.
    EXPECT_EQ(f.net.link(f.topo.sites[0].router, f.topo.backbone)
                  ->stats().packets_of(PacketType::kRetransmission),
              1u);  // only the global send crossed the tail
}

// --- bounded tree cache (SimConfig::tree_cache_capacity) ---------------------

TEST(NetworkTreeCache, BoundedCacheEvictsLruAndRebuildsOnMiss) {
    Fixture f;
    f.net.set_tree_cache_capacity(2);
    // Three groups with the same members => three distinct cache keys.
    const GroupId g2{2}, g3{3};
    for (NodeId r : f.topo.all_receivers()) {
        f.net.join(g2, r);
        f.net.join(g3, r);
    }
    auto send_group = [&](GroupId g, std::uint32_t seq) {
        f.net.multicast(f.topo.source,
                        Packet{Header{g, f.topo.source, f.topo.source},
                               DataBody{SeqNum{seq}, EpochId{0}, {1, 2}}},
                        McastScope::kGlobal);
        f.sim.run_for(secs(1.0));
        EXPECT_LE(f.net.cached_tree_count(), 2u);  // never exceeds the bound
    };
    send_group(f.group, 1);
    send_group(g2, 2);
    EXPECT_EQ(f.net.cached_tree_count(), 2u);
    const std::uint64_t builds_before = f.net.tree_builds();
    send_group(g3, 3);  // evicts group 1's tree (LRU)
    EXPECT_EQ(f.net.cached_tree_count(), 2u);
    EXPECT_EQ(f.net.tree_builds(), builds_before + 1);
    send_group(g2, 4);  // still cached: no rebuild
    EXPECT_EQ(f.net.tree_builds(), builds_before + 1);
    send_group(f.group, 5);  // evicted earlier: rebuilt on miss
    EXPECT_EQ(f.net.tree_builds(), builds_before + 2);
    // Every send delivered despite the churn (2 packets to groups 1 and 2's
    // shared members... all groups share the same receiver set, so each
    // receiver saw all 5 sends).
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 5u);
}

TEST(NetworkTreeCache, ShrinkingCapacityEvictsDownToBound) {
    Fixture f;
    const GroupId g2{2};
    for (NodeId r : f.topo.all_receivers()) f.net.join(g2, r);
    f.send(1);
    f.net.multicast(f.topo.source,
                    Packet{Header{g2, f.topo.source, f.topo.source},
                           DataBody{SeqNum{2}, EpochId{0}, {1}}},
                    McastScope::kGlobal);
    f.sim.run_for(secs(1.0));
    EXPECT_EQ(f.net.cached_tree_count(), 2u);
    f.net.set_tree_cache_capacity(1);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    f.net.set_tree_cache_capacity(0);  // back to unbounded: nothing dropped
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    f.send(3);  // group 1 was the LRU victim; rebuilt on miss and delivered
    // 3 data sends total (group 1 twice, group 2 once), all to every receiver.
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 3u);
}

TEST(NetworkTreeCache, InvalidationStillClearsBoundedCache) {
    Fixture f;
    f.net.set_tree_cache_capacity(2);
    f.send(1);
    EXPECT_EQ(f.net.cached_tree_count(), 1u);
    f.net.join(f.group, f.topo.sites[1].secondary);
    EXPECT_EQ(f.net.cached_tree_count(), 0u);  // join invalidates as before
    f.send(2);
    f.net.set_node_down(f.topo.sites[0].receivers[0], true);
    EXPECT_EQ(f.net.cached_tree_count(), 0u);  // node-down too
}

// --- mid-run topology mutation (regression: add_link must drop caches) -------

TEST(NetworkTreeCache, AddLinkMidRunDropsTreesAndPathsBeforeRefinalize) {
    Fixture f;
    f.send(1);
    EXPECT_GE(f.net.cached_tree_count(), 1u);
    // Re-adding an EXISTING pair with a new spec must invalidate cached
    // trees and cached paths immediately -- the regression was an add_link
    // that only flipped finalized_, leaving stale trees serving the old
    // edge until some unrelated invalidation.
    f.net.add_link(f.topo.sites[0].router, f.topo.sites[0].receivers[0],
                   LinkSpec{millis(5), 0.0, Duration::zero()});
    EXPECT_EQ(f.net.cached_tree_count(), 0u);
    EXPECT_EQ(f.net.path_cache_entries(), 0u);
    f.net.finalize();
    f.send(2);
    for (NodeId r : f.topo.all_receivers()) EXPECT_EQ(f.copies_to(r), 2u);
    // The respec'd LAN link now adds 5 ms: the slow receiver's copy arrives
    // later than its site peers' but still arrives.
}

}  // namespace cache_test

TEST(Network, DownNodeNeitherSendsNorReceives) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 1;
    spec.receivers_per_site = 2;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const GroupId group{1};
    const NodeId dead = topo.sites[0].receivers[0];
    const NodeId alive = topo.sites[0].receivers[1];
    net.join(group, dead);
    net.join(group, alive);
    net.set_node_down(dead, true);

    net.multicast(topo.source,
                  Packet{Header{group, topo.source, topo.source},
                         DataBody{SeqNum{1}, EpochId{0}, {1}}},
                  McastScope::kGlobal);
    sim.run_for(secs(1.0));

    EXPECT_EQ(net.link(topo.sites[0].router, dead)->stats().packets, 0u);
    EXPECT_EQ(net.link(topo.sites[0].router, alive)->stats().packets, 1u);
}

TEST(Network, LossModelDropsOnConfiguredLink) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 1;
    spec.receivers_per_site = 1;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();
    net.set_loss(topo.backbone, topo.sites[0].router, std::make_unique<BernoulliLoss>(1.0));

    const GroupId group{1};
    const NodeId rx = topo.sites[0].receivers[0];
    net.join(group, rx);
    net.multicast(topo.source,
                  Packet{Header{group, topo.source, topo.source},
                         DataBody{SeqNum{1}, EpochId{0}, {1}}},
                  McastScope::kGlobal);
    sim.run_for(secs(1.0));
    EXPECT_EQ(net.link(topo.sites[0].router, rx)->stats().packets, 0u);
    EXPECT_EQ(net.link(topo.backbone, topo.sites[0].router)->stats().drops_loss, 1u);
}

TEST(Network, DeterministicAcrossRuns) {
    auto run_once = [] {
        ScenarioConfig config;
        config.topology.sites = 3;
        config.topology.receivers_per_site = 5;
        config.seed = 99;
        DisScenario scenario(config);
        scenario.network().set_loss(scenario.topology().backbone,
                                    scenario.topology().sites[0].router,
                                    std::make_unique<BernoulliLoss>(0.3));
        scenario.start();
        for (int i = 0; i < 5; ++i) {
            scenario.send_update(std::size_t{64});
            scenario.run_for(millis(300));
        }
        scenario.run_for(secs(5.0));
        return std::make_pair(scenario.simulator().events_processed(),
                              scenario.deliveries().size());
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lbrm::sim
