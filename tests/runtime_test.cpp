// ProtocolHost tests: action execution against fake driver services, timer
// keying across cores, packet fan-in to all attached cores, datagram
// decode-and-dispatch, generic-core attachment and inject().
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runtime/protocol_host.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::payload;

/// Records everything the host asks the driver to do.
class FakeNetwork final : public NetworkService {
public:
    struct Sent {
        bool unicast;
        NodeId to;
        Packet packet;
    };
    std::vector<Sent> sent;
    std::vector<GroupId> joined;
    std::vector<GroupId> left;

    void send_unicast(NodeId to, const Packet& packet) override {
        sent.push_back({true, to, packet});
    }
    void send_multicast(const Packet& packet, McastScope) override {
        sent.push_back({false, kNoNode, packet});
    }
    void join_group(GroupId group) override { joined.push_back(group); }
    void leave_group(GroupId group) override { left.push_back(group); }

    [[nodiscard]] std::size_t count(PacketType type) const {
        std::size_t n = 0;
        for (const auto& s : sent)
            if (s.packet.type() == type) ++n;
        return n;
    }
};

class FakeTimers final : public TimerService {
public:
    struct Key {
        std::uint32_t tag;
        TimerId id;
        friend bool operator<(const Key& a, const Key& b) {
            if (a.tag != b.tag) return a.tag < b.tag;
            return a.id < b.id;
        }
    };
    std::map<Key, TimePoint> armed;

    void arm(std::uint32_t tag, TimerId id, TimePoint deadline) override {
        armed[{tag, id}] = deadline;
    }
    void cancel(std::uint32_t tag, TimerId id) override { armed.erase({tag, id}); }
};

constexpr GroupId kGroup{1};
constexpr NodeId kSource{1};
constexpr NodeId kPrimary{2};
constexpr NodeId kReceiver{3};

TEST(ProtocolHost, SenderActionsReachTheDriver) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    SenderConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.primary_logger = kPrimary;
    config.stat_ack.enabled = false;
    host.add_sender(config);
    host.start(at(0.0));

    // start() armed the heartbeat under the sender's tag (0).
    EXPECT_TRUE(timers.armed.contains({0, {TimerKind::kHeartbeat, 0}}));

    host.send(at(1.0), payload(32));
    EXPECT_EQ(network.count(PacketType::kData), 1u);
    EXPECT_EQ(network.count(PacketType::kLogStore), 1u);
    EXPECT_TRUE(timers.armed.contains({0, {TimerKind::kLogStoreRetry, 0}}));
}

TEST(ProtocolHost, PacketsFanInToEveryCore) {
    // A host that is simultaneously a receiver for the group and a
    // secondary logger (the paper's co-hosting recursion): one incoming
    // data packet must reach both cores.
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    ReceiverConfig receiver_config;
    receiver_config.self = kReceiver;
    receiver_config.group = kGroup;
    receiver_config.source = kSource;
    receiver_config.logger = kPrimary;
    std::vector<SeqNum> delivered;
    AppHandlers handlers;
    handlers.on_data = [&](TimePoint, const DeliverData& d) { delivered.push_back(d.seq); };
    host.add_receiver(receiver_config, handlers);

    LoggerConfig logger_config;
    logger_config.self = kReceiver;
    logger_config.group = kGroup;
    logger_config.source = kSource;
    logger_config.role = LoggerRole::kSecondary;
    logger_config.upstream = kPrimary;
    LoggerCore& logger = host.add_logger(logger_config, 7);

    host.start(at(0.0));
    Packet data{Header{kGroup, kSource, kSource},
                DataBody{SeqNum{1}, EpochId{0}, payload(16)}};
    host.on_packet(at(1.0), data);

    EXPECT_EQ(delivered.size(), 1u);            // receiver delivered it
    EXPECT_TRUE(logger.store().contains(SeqNum{1}));  // logger logged it
}

TEST(ProtocolHost, TimerKeysAreScopedPerCore) {
    // Two receivers on one host: both arm kIdle; the keys must not collide.
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    for (std::uint32_t group : {1u, 2u}) {
        ReceiverConfig config;
        config.self = kReceiver;
        config.group = GroupId{group};
        config.source = kSource;
        config.logger = kPrimary;
        host.add_receiver(config);
    }
    host.start(at(0.0));

    int idle_timers = 0;
    for (const auto& [key, deadline] : timers.armed)
        if (key.id.kind == TimerKind::kIdle) ++idle_timers;
    EXPECT_EQ(idle_timers, 2);
}

TEST(ProtocolHost, TimerDispatchReachesTheRightCore) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    SenderConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.primary_logger = kPrimary;
    config.stat_ack.enabled = false;
    SenderCore& sender = host.add_sender(config);
    host.start(at(0.0));

    host.on_timer(at(0.25), 0, {TimerKind::kHeartbeat, 0});
    EXPECT_EQ(sender.heartbeats_sent(), 1u);
    EXPECT_EQ(network.count(PacketType::kHeartbeat), 1u);

    // A timer for an unknown tag is ignored.
    host.on_timer(at(0.5), 99, {TimerKind::kHeartbeat, 0});
    EXPECT_EQ(sender.heartbeats_sent(), 1u);
}

TEST(ProtocolHost, DatagramPathDecodesAndDrops) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    ReceiverConfig config;
    config.self = kReceiver;
    config.group = kGroup;
    config.source = kSource;
    config.logger = kPrimary;
    std::vector<SeqNum> delivered;
    AppHandlers handlers;
    handlers.on_data = [&](TimePoint, const DeliverData& d) { delivered.push_back(d.seq); };
    host.add_receiver(config, handlers);
    host.start(at(0.0));

    Packet data{Header{kGroup, kSource, kSource},
                DataBody{SeqNum{1}, EpochId{0}, payload(8)}};
    const auto wire = encode(data);
    host.on_datagram(at(1.0), wire);
    EXPECT_EQ(delivered.size(), 1u);

    // Garbage is silently ignored.
    const std::vector<std::uint8_t> junk{0x00, 0x01, 0x02};
    host.on_datagram(at(1.1), junk);
    EXPECT_EQ(delivered.size(), 1u);
}

/// Minimal generic core: counts starts, echoes a heartbeat on any packet.
class EchoCore final : public CoreBase {
public:
    int started = 0;
    int packets = 0;
    int timers = 0;

    Actions start(TimePoint) override {
        ++started;
        return {};
    }
    Actions on_packet(TimePoint, const Packet& packet) override {
        ++packets;
        Actions actions;
        actions.push_back(SendMulticast{
            Packet{packet.header, HeartbeatBody{SeqNum{0}, 0}}});
        return actions;
    }
    Actions on_timer(TimePoint, TimerId) override {
        ++timers;
        return {};
    }
};

TEST(ProtocolHost, GenericCoreAttachAndInject) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    auto owned = std::make_unique<EchoCore>();
    EchoCore* echo = owned.get();
    CoreBase& attached = host.add_core(std::move(owned));
    EXPECT_EQ(&attached, echo);
    EXPECT_EQ(host.core_count(), 1u);

    host.start(at(0.0));
    EXPECT_EQ(echo->started, 1);

    Packet data{Header{kGroup, kSource, kSource},
                DataBody{SeqNum{1}, EpochId{0}, payload(4)}};
    host.on_packet(at(1.0), data);
    EXPECT_EQ(echo->packets, 1);
    EXPECT_EQ(network.count(PacketType::kHeartbeat), 1u);

    // inject() executes externally produced actions under the core's tag.
    Actions extra;
    extra.push_back(StartTimer{{TimerKind::kHeartbeat, 7}, at(9.0)});
    extra.push_back(JoinGroup{GroupId{42}});
    host.inject(at(2.0), *echo, std::move(extra));
    EXPECT_EQ(timers.armed.size(), 1u);
    ASSERT_EQ(network.joined.size(), 1u);
    EXPECT_EQ(network.joined[0], GroupId{42});

    // The injected timer dispatches back into the generic core.
    const auto key = timers.armed.begin()->first;
    host.on_timer(at(9.0), key.tag, key.id);
    EXPECT_EQ(echo->timers, 1);
}

TEST(ProtocolHost, InjectForUnknownCoreIsIgnored) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};
    EchoCore stray;  // never attached
    Actions actions;
    actions.push_back(JoinGroup{GroupId{1}});
    host.inject(at(0.0), stray, std::move(actions));
    EXPECT_TRUE(network.joined.empty());
}

TEST(ProtocolHost, JoinLeaveActionsReachTheDriver) {
    FakeNetwork network;
    FakeTimers timers;
    ProtocolHost host{network, timers};

    ReceiverConfig config;
    config.self = kReceiver;
    config.group = kGroup;
    config.source = kSource;
    config.logger = kPrimary;
    config.retrans_channel = GroupId{2};
    host.add_receiver(config);
    host.start(at(0.0));

    // Loss on the stream triggers a JoinGroup of the retrans channel.
    Packet d1{Header{kGroup, kSource, kSource}, DataBody{SeqNum{1}, EpochId{0}, payload(4)}};
    Packet d3{Header{kGroup, kSource, kSource}, DataBody{SeqNum{3}, EpochId{0}, payload(4)}};
    host.on_packet(at(1.0), d1);
    host.on_packet(at(1.1), d3);
    ASSERT_EQ(network.joined.size(), 1u);
    EXPECT_EQ(network.joined[0], GroupId{2});
}

}  // namespace
}  // namespace lbrm
