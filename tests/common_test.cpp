// Unit tests for the foundation library: byte codec, serial sequence
// numbers, EWMA, statistics and the deterministic RNG.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"
#include "common/ewma.hpp"
#include "common/rng.hpp"
#include "common/seqnum.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace lbrm {
namespace {

// --- bytes -----------------------------------------------------------------

TEST(Bytes, RoundTripsAllWidths) {
    ByteWriter w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(3.14159);
    w.str16("hello LBRM");

    ByteReader r{w.data()};
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str16(), "hello LBRM");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianOnTheWire) {
    ByteWriter w;
    w.u32(0x01020304);
    const auto& d = w.data();
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d[0], 0x01);
    EXPECT_EQ(d[3], 0x04);
}

TEST(Bytes, ReaderFailsGracefullyOnTruncation) {
    ByteWriter w;
    w.u32(7);
    ByteReader r{w.data()};
    EXPECT_TRUE(r.u16().has_value());
    EXPECT_TRUE(r.u16().has_value());
    EXPECT_FALSE(r.u8().has_value());  // exhausted
    EXPECT_FALSE(r.ok());
    // Failure latches: all further reads fail.
    EXPECT_FALSE(r.u8().has_value());
}

TEST(Bytes, Blob16LengthIsValidated) {
    ByteWriter w;
    w.u16(100);  // claims 100 bytes follow
    w.u8(1);     // ...but only one does
    ByteReader r{w.data()};
    EXPECT_FALSE(r.blob16().has_value());
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, Blob16RejectsOversizedPayloadOnWrite) {
    ByteWriter w;
    std::vector<std::uint8_t> big(70000, 0);
    EXPECT_THROW(w.blob16(big), std::length_error);
}

TEST(Bytes, EmptyStringRoundTrips) {
    ByteWriter w;
    w.str16("");
    ByteReader r{w.data()};
    EXPECT_EQ(r.str16(), "");
    EXPECT_TRUE(r.at_end());
}

TEST(Bytes, F64SpecialValues) {
    ByteWriter w;
    w.f64(0.0);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::infinity());
    ByteReader r{w.data()};
    EXPECT_EQ(r.f64(), 0.0);
    EXPECT_EQ(r.f64(), -0.0);
    EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

// --- seqnum ----------------------------------------------------------------

TEST(SeqNum, BasicOrdering) {
    EXPECT_LT(SeqNum{1}, SeqNum{2});
    EXPECT_GT(SeqNum{100}, SeqNum{99});
    EXPECT_EQ(SeqNum{5}, SeqNum{5});
}

TEST(SeqNum, WrapAroundOrdering) {
    const SeqNum near_max{0xFFFFFFFFu};
    const SeqNum wrapped{2};
    EXPECT_LT(near_max, wrapped);  // serial arithmetic: 2 is "after" max
    EXPECT_GT(wrapped, near_max);
    EXPECT_EQ(near_max.next(), SeqNum{0});
}

TEST(SeqNum, DistanceSignedness) {
    EXPECT_EQ(SeqNum{10}.distance_to(SeqNum{15}), 5);
    EXPECT_EQ(SeqNum{15}.distance_to(SeqNum{10}), -5);
    EXPECT_EQ(SeqNum{0xFFFFFFFFu}.distance_to(SeqNum{1}), 2);
}

TEST(SeqNum, IncrementAndPlus) {
    SeqNum s{41};
    EXPECT_EQ((++s).value(), 42u);
    EXPECT_EQ(s.plus(-2), SeqNum{40});
    EXPECT_EQ(s.prev(), SeqNum{41});
}

TEST(SeqNum, IterationAcrossWrapTerminates) {
    int count = 0;
    for (SeqNum s{0xFFFFFFFEu}; s <= SeqNum{1}; ++s) ++count;
    EXPECT_EQ(count, 4);  // FFFFFFFE, FFFFFFFF, 0, 1
}

// --- ewma ------------------------------------------------------------------

TEST(Ewma, AdoptsFirstSampleWhenUnseeded) {
    Ewma e{0.125};
    EXPECT_FALSE(e.seeded());
    e.update(80.0);
    EXPECT_DOUBLE_EQ(e.value(), 80.0);
}

TEST(Ewma, JacobsonUpdateMatchesFormula) {
    Ewma e{0.125, 100.0};
    // t' = 0.125 * 60 + 0.875 * 100 = 95
    EXPECT_DOUBLE_EQ(e.update(60.0), 95.0);
}

TEST(Ewma, ConvergesToConstantInput) {
    Ewma e{0.25, 0.0};
    for (int i = 0; i < 100; ++i) e.update(42.0);
    EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(Ewma, RejectsBadAlpha) {
    EXPECT_THROW(Ewma(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Ewma(1.5, 1.0), std::invalid_argument);
}

// --- stats -----------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example: sigma = 2
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, Quantiles) {
    SampleSet s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.p99(), 99.01, 0.1);
}

TEST(SampleSet, QuantileValidatesRange) {
    SampleSet s;
    s.add(1.0);
    EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
    Histogram h{0.0, 10.0, 10};
    h.add(0.5);    // bucket 0
    h.add(9.99);   // bucket 9
    h.add(-5.0);   // clamps to 0
    h.add(50.0);   // clamps to 9
    EXPECT_EQ(h.count_at(0), 2u);
    EXPECT_EQ(h.count_at(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
    Rng a{7};
    Rng b{7};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, BernoulliEdgeCases) {
    Rng rng{1};
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliFrequency) {
    Rng rng{99};
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, UniformDurationWithinBounds) {
    Rng rng{5};
    for (int i = 0; i < 1000; ++i) {
        const Duration d = rng.uniform_duration(millis(5), millis(15));
        EXPECT_GE(d, millis(5));
        EXPECT_LT(d, millis(15));
    }
}

// --- time helpers -------------------------------------------------------------

TEST(Time, SecondsRoundTrip) {
    EXPECT_DOUBLE_EQ(to_seconds(secs(0.25)), 0.25);
    EXPECT_EQ(millis(1500), secs(1.5));
    EXPECT_EQ(scale(secs(2.0), 2.0), secs(4.0));
}

}  // namespace
}  // namespace lbrm
