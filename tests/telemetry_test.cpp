// Observability subsystem tests: the metrics registry, the protocol handle
// blocks, the sim-time sampler, the trace recorder, and -- the load-bearing
// property -- that telemetry never feeds back into simulation behavior:
// identical runs produce identical snapshots, and attaching a sampler and a
// trace recorder leaves the link-level packet trace bit-identical.
//
// Counter-value assertions are guarded by obs::kTelemetryEnabled so this
// suite also compiles (and the determinism half still runs) under
// -DLBRM_NO_TELEMETRY, even though CI never runs ctest on that build.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "packet/packet.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::sim;

// --- registry units ---------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
    obs::Metrics m;
    obs::Counter& c = m.counter("c");
    c.inc();
    c.inc(4);
    obs::Gauge& g = m.gauge("g");
    g.set(7);
    obs::Histogram& h = m.histogram("h", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);

    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_EQ(c.value(), 5u);
        EXPECT_EQ(m.value("c"), 5u);
        EXPECT_EQ(m.value("g"), 7u);
        ASSERT_EQ(h.counts().size(), 3u);  // two bounds + inf
        EXPECT_EQ(h.counts()[0], 1u);
        EXPECT_EQ(h.counts()[1], 1u);
        EXPECT_EQ(h.counts()[2], 1u);
        EXPECT_EQ(h.count(), 3u);
        EXPECT_DOUBLE_EQ(h.sum(), 55.5);
    }
    EXPECT_TRUE(m.has("c"));
    EXPECT_TRUE(m.has("h"));
    EXPECT_FALSE(m.has("nope"));
    EXPECT_EQ(m.value("nope"), 0u);

    // Find-or-create: same name, same handle.
    EXPECT_EQ(&m.counter("c"), &c);
    EXPECT_EQ(&m.histogram("h", {}), &h);
}

TEST(MetricsRegistry, PullGaugesEvaluateAtReadTime) {
    obs::Metrics m;
    std::uint64_t live = 3;
    m.gauge_fn("pull", [&] { return live; });
    EXPECT_EQ(m.value("pull"), 3u);
    live = 9;
    EXPECT_EQ(m.value("pull"), 9u);
    m.remove_gauge_fn("pull");
    EXPECT_FALSE(m.has("pull"));
    EXPECT_EQ(m.value("pull"), 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndJsonDeterministic) {
    obs::Metrics m;
    m.counter("z.last").inc(2);
    m.counter("a.first").inc(1);
    m.gauge_fn("m.middle", [] { return std::uint64_t{5}; });
    const auto snap = m.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.middle");
    EXPECT_EQ(snap[2].name, "z.last");
    const std::string j = m.to_json();
    EXPECT_EQ(j, m.to_json());  // stable across calls
    EXPECT_NE(j.find("\"m.middle\":5"), std::string::npos);
}

TEST(MetricsRegistry, HistogramRowsExpandInSnapshot) {
    obs::Metrics m;
    m.histogram("lat", {0.5}).observe(0.1);
    const auto snap = m.snapshot();
    std::vector<std::string> names;
    for (const auto& s : snap) names.push_back(s.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "lat.le_0.5"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lat.le_inf"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lat.count"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lat.sum"), names.end());
}

TEST(MetricsRegistry, DisabledBlocksPointAtSinks) {
    // Unbound cores increment the shared sinks: must be callable, and the
    // same object for every disabled block (no per-core allocation).
    const obs::ProtocolMetrics& d = obs::ProtocolMetrics::disabled();
    d.sender.data_sent->inc();
    d.receiver.recovery_latency->observe(0.01);
    d.host.send_by_type[1]->inc();
    EXPECT_EQ(d.sender.data_sent, &obs::Counter::sink());
    EXPECT_EQ(d.receiver.recovery_latency, &obs::Histogram::sink());
    EXPECT_EQ(obs::SenderMetrics::disabled().data_sent, d.sender.data_sent);
    EXPECT_EQ(obs::HostMetrics::disabled().notices, &obs::Counter::sink());
}

// The "host.send.<TYPE>" rows are named from a table in metrics.cpp that
// must stay in sync with packet.cpp's to_string(); this is the cross-check.
TEST(MetricsRegistry, HostSendRowsMatchWireTypeNames) {
    obs::Metrics m;
    const obs::ProtocolMetrics& pm = m.protocol();
    EXPECT_EQ(pm.host.send_by_type[0], &obs::Counter::sink());
    for (int t = 1; t <= 19; ++t) {
        const std::string name =
            std::string("host.send.") + to_string(static_cast<PacketType>(t));
        EXPECT_TRUE(m.has(name)) << name;
        EXPECT_EQ(pm.host.send_by_type[static_cast<std::size_t>(t)],
                  &m.counter(name))
            << name;
    }
    // Cached: the second resolve is the same block.
    EXPECT_EQ(&m.protocol(), &pm);
}

// --- sampler ----------------------------------------------------------------

TimePoint secs_point(double s) { return time_zero() + secs(s); }

TEST(Sampler, RatesAreDeltasAndLevelsAreSampled) {
    obs::Metrics m;
    obs::Counter& c = m.counter("events");
    std::uint64_t depth = 2;
    m.gauge_fn("depth", [&] { return depth; });

    obs::Sampler sampler(m);
    sampler.add_rate("events");
    sampler.add_level("depth");
    sampler.set_interval(secs(1.0));

    c.inc(10);
    sampler.tick(secs_point(1.0));
    c.inc(5);
    depth = 8;
    sampler.tick(secs_point(2.0));

    ASSERT_EQ(sampler.rows(), 2u);
    const auto* events = sampler.series("events");
    const auto* levels = sampler.series("depth");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(levels, nullptr);
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_EQ((*events)[0], 10u);
        EXPECT_EQ((*events)[1], 5u);
        EXPECT_EQ((*levels)[0], 2u);
        EXPECT_EQ((*levels)[1], 8u);
    }
    EXPECT_EQ(sampler.series("unknown"), nullptr);

    const std::string json = sampler.to_json();
    EXPECT_NE(json.find("\"interval_s\":1"), std::string::npos);
    EXPECT_NE(json.find("\"events\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"rate\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"level\""), std::string::npos);
}

// --- trace recorder ---------------------------------------------------------

TEST(TraceRecorder, RecordsScopedSpansAndExportsChromeJson) {
    obs::TraceRecorder rec;
    rec.install();
    {
        LBRM_TRACE_SPAN("outer");
        LBRM_TRACE_SPAN("inner");
    }
    rec.uninstall();
    {
        LBRM_TRACE_SPAN("after_uninstall");  // must not record
    }
    if constexpr (obs::kTelemetryEnabled) {
        const auto spans = rec.spans();
        ASSERT_EQ(spans.size(), 2u);
        // Sorted by start: outer opened first.
        EXPECT_STREQ(spans[0].name, "outer");
        EXPECT_STREQ(spans[1].name, "inner");
        EXPECT_GE(spans[0].start_ns + spans[0].dur_ns,
                  spans[1].start_ns + spans[1].dur_ns);
        EXPECT_EQ(rec.dropped(), 0u);
        const std::string json = rec.to_chrome_json();
        EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
        EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
        EXPECT_EQ(json.find("after_uninstall"), std::string::npos);
    }
}

TEST(TraceRecorder, RingWraparoundKeepsNewestAndCountsDropped) {
    obs::TraceRecorder rec(4);
    rec.install();
    for (int i = 0; i < 10; ++i) {
        LBRM_TRACE_SPAN("span");
    }
    rec.uninstall();
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_EQ(rec.spans().size(), 4u);
        EXPECT_EQ(rec.dropped(), 6u);
    }
}

// --- end-to-end determinism -------------------------------------------------

struct TapTrace {
    std::vector<std::uint8_t> bytes;
    void attach(Network& net) {
        net.set_tap([this](TimePoint at, const Link& link, const Packet& packet,
                           bool delivered) {
            const auto t = at.time_since_epoch().count();
            const auto* tp = reinterpret_cast<const std::uint8_t*>(&t);
            bytes.insert(bytes.end(), tp, tp + sizeof t);
            const std::uint32_t ends[2] = {link.from().value(), link.to().value()};
            const auto* ep = reinterpret_cast<const std::uint8_t*>(ends);
            bytes.insert(bytes.end(), ep, ep + sizeof ends);
            bytes.push_back(delivered ? 1 : 0);
            const auto wire = encode(packet);
            bytes.insert(bytes.end(), wire.begin(), wire.end());
        });
    }
};

ScenarioConfig small_lossy_config() {
    ScenarioConfig config;
    config.topology.sites = 20;
    config.topology.receivers_per_site = 3;
    return config;
}

/// Run the reference scenario; optionally with sampling and tracing live.
void run_health_scenario(DisScenario& scenario, bool observe) {
    Network& net = scenario.network();
    const DisTopology& topo = scenario.topology();
    for (const auto& site : topo.sites)
        net.set_loss(topo.backbone, site.router, std::make_unique<BernoulliLoss>(0.05));
    scenario.start();
    if (observe) scenario.start_sampling(millis(50));
    for (int i = 0; i < 30; ++i) {
        scenario.send_update(120);
        scenario.run_for(millis(15));
    }
    scenario.run_for(secs(1.5));
}

TEST(TelemetryDeterminism, IdenticalRunsProduceIdenticalSnapshots) {
    DisScenario a{small_lossy_config()};
    DisScenario b{small_lossy_config()};
    run_health_scenario(a, /*observe=*/true);
    run_health_scenario(b, /*observe=*/true);
    EXPECT_EQ(a.metrics().to_json(), b.metrics().to_json());
    EXPECT_EQ(a.sampler().to_json(), b.sampler().to_json());
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_GT(a.metrics().value("proto.receiver.delivered"), 0u);
        EXPECT_GT(a.metrics().value("proto.receiver.nacks_sent"), 0u);
        EXPECT_GT(a.metrics().value("proto.sender.data_sent"), 0u);
        EXPECT_GT(a.metrics().value("host.send.DATA"), 0u);
        EXPECT_GT(a.sampler().rows(), 0u);
    }
}

TEST(TelemetryDeterminism, ObservationLeavesPacketTraceBitIdentical) {
    // Baseline: no sampler, no trace recorder.
    DisScenario plain{small_lossy_config()};
    TapTrace plain_tap;
    plain_tap.attach(plain.network());
    run_health_scenario(plain, /*observe=*/false);

    // Observed: live sampling plus an installed trace recorder.
    DisScenario observed{small_lossy_config()};
    TapTrace observed_tap;
    observed_tap.attach(observed.network());
    obs::TraceRecorder rec;
    rec.install();
    run_health_scenario(observed, /*observe=*/true);
    rec.uninstall();

    EXPECT_EQ(plain_tap.bytes, observed_tap.bytes);
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_GT(observed.sampler().rows(), 0u);
        EXPECT_GT(rec.spans().size(), 0u);  // event_drain spans at least
    }
}

TEST(TelemetryDeterminism, StopSamplingFreezesTheSeries) {
    DisScenario scenario{small_lossy_config()};
    scenario.start();
    scenario.start_sampling(millis(50));
    scenario.run_for(secs(0.5));
    const std::size_t rows = scenario.sampler().rows();
    EXPECT_EQ(rows, 10u);
    scenario.stop_sampling();
    scenario.run_for(secs(0.5));
    EXPECT_EQ(scenario.sampler().rows(), rows);
    // Restart keeps accumulating into the same series.
    scenario.start_sampling(millis(100));
    scenario.run_for(secs(0.4));
    EXPECT_EQ(scenario.sampler().rows(), rows + 4);
}

// --- satellite accessors ----------------------------------------------------

TEST(ProtocolHostHealth, GapOverflowsSurfaceThroughHost) {
    ScenarioConfig config = small_lossy_config();
    config.receiver_defaults.max_detector_gap = 8;
    config.logger_defaults.max_detector_gap = 8;
    DisScenario scenario{config};
    Network& net = scenario.network();
    const DisTopology& topo = scenario.topology();
    scenario.start();

    // Anchor every detector first (the first packet a detector ever sees
    // only defines the stream position -- it can open no gap).
    scenario.send_update(64);
    scenario.run_for(millis(200));

    // Black out one site, stream far past the gap limit, then reconnect:
    // the next packet opens a gap wider than max_detector_gap.
    net.set_loss(topo.backbone, topo.sites[0].router,
                 std::make_unique<BernoulliLoss>(1.0));
    for (int i = 0; i < 40; ++i) {
        scenario.send_update(64);
        scenario.run_for(millis(10));
    }
    net.set_loss(topo.backbone, topo.sites[0].router,
                 std::make_unique<BernoulliLoss>(0.0));
    scenario.send_update(64);
    scenario.run_for(secs(2.0));

    std::uint64_t total = 0;
    for (NodeId node : topo.sites[0].receivers)
        total += net.host(node)->protocol().gap_overflows();
    total += net.host(topo.sites[0].secondary)->protocol().gap_overflows();
    EXPECT_GT(total, 0u);
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_GT(scenario.metrics().value("proto.loss.gap_overflows"), 0u);
    }

    // An untouched site saw a contiguous stream: no overflows there.
    std::uint64_t clean = 0;
    for (NodeId node : topo.sites[1].receivers)
        clean += net.host(node)->protocol().gap_overflows();
    EXPECT_EQ(clean, 0u);
}

TEST(ProtocolHostHealth, ZeroVolunteerResolicitsSurfaceThroughHost) {
    ScenarioConfig config = small_lossy_config();
    // No secondary volunteers for designated-acker duty: every epoch window
    // closes empty and the sender must re-solicit.
    config.logger_defaults.participate_in_acking = false;
    config.stat_ack.enabled = true;
    config.stat_ack.initial_probe_p = 0.5;
    config.stat_ack.probe_repeats = 1;
    config.stat_ack.empty_epoch_retry = secs(0.5);
    DisScenario scenario{config};
    scenario.start();
    scenario.send_update(64);
    scenario.run_for(secs(5.0));

    ProtocolHost& sender_host =
        scenario.network().host(scenario.topology().source)->protocol();
    EXPECT_GT(sender_host.zero_volunteer_resolicits(), 0u);
    EXPECT_EQ(sender_host.gap_overflows(), 0u);  // no receivers on this host
    if constexpr (obs::kTelemetryEnabled) {
        EXPECT_EQ(scenario.metrics().value("proto.stat_ack.empty_epoch_resolicits"),
                  sender_host.zero_volunteer_resolicits());
        EXPECT_GT(scenario.metrics().value("host.notices"), 0u);
    }
}

TEST(NetworkHealth, DropBreakdownSeparatesLossFromQueueOverflow) {
    ScenarioConfig config = small_lossy_config();
    // T1 tails with a tight queue cap so a burst overflows the queue, plus
    // random loss on one feed so both columns are exercised.
    config.topology.tail_queue_limit = millis(5);
    DisScenario scenario{config};
    Network& net = scenario.network();
    const DisTopology& topo = scenario.topology();
    net.set_loss(topo.backbone, topo.sites[0].router,
                 std::make_unique<BernoulliLoss>(0.3));
    scenario.start();
    for (int i = 0; i < 40; ++i) scenario.send_update(400);  // back-to-back burst
    scenario.run_for(secs(3.0));

    const Network::DropBreakdown drops = net.drop_breakdown();
    EXPECT_GT(drops.loss, 0u);
    EXPECT_GT(drops.queue, 0u);
    EXPECT_EQ(drops.total(), drops.loss + drops.queue);
    // The registry's pull gauges read the same tallies.
    EXPECT_EQ(scenario.metrics().value("sim.drops_loss"), drops.loss);
    EXPECT_EQ(scenario.metrics().value("sim.drops_queue"), drops.queue);
}

}  // namespace
