// ReceiverCore unit tests: delivery, NACK generation/batching, retry and
// escalation through the logger hierarchy, freshness watchdog, discovery.
#include <gtest/gtest.h>

#include "core/receiver.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::deliveries;
using test::find_timer;
using test::payload;
using test::sent_of_type;

constexpr NodeId kSelf{10};
constexpr NodeId kSource{1};
constexpr NodeId kSecondary{2};
constexpr NodeId kPrimary{3};
constexpr GroupId kGroup{5};

ReceiverConfig base_config() {
    ReceiverConfig c;
    c.self = kSelf;
    c.group = kGroup;
    c.source = kSource;
    c.logger = kSecondary;
    c.fallback_logger = kPrimary;
    c.nack_delay_min = millis(5);
    c.nack_delay_max = millis(15);
    c.nack_retry = millis(200);
    c.nack_max_retries = 2;
    return c;
}

Packet data(SeqNum seq, std::uint8_t salt = 0) {
    return Packet{Header{kGroup, kSource, kSource}, DataBody{seq, EpochId{0}, payload(8, salt)}};
}

Packet heartbeat(SeqNum last, std::uint32_t index = 0) {
    return Packet{Header{kGroup, kSource, kSource}, HeartbeatBody{last, index}};
}

Packet retransmission(NodeId from, SeqNum seq) {
    return Packet{Header{kGroup, kSource, from},
                  RetransmissionBody{seq, EpochId{0}, false, payload(8)}};
}

TEST(Receiver, DeliversDataInArrivalOrder) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    auto a1 = r.on_packet(at(1.0), data(SeqNum{1}));
    auto a2 = r.on_packet(at(1.1), data(SeqNum{2}));
    ASSERT_EQ(deliveries(a1).size(), 1u);
    ASSERT_EQ(deliveries(a2).size(), 1u);
    EXPECT_EQ(deliveries(a1)[0].seq, SeqNum{1});
    EXPECT_FALSE(deliveries(a1)[0].recovered);
    EXPECT_EQ(r.delivered(), 2u);
}

TEST(Receiver, DuplicateDataNotRedelivered) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto again = r.on_packet(at(1.1), data(SeqNum{1}));
    EXPECT_TRUE(deliveries(again).empty());
    EXPECT_EQ(r.duplicates(), 1u);
}

TEST(Receiver, GapSchedulesDelayedNackToLocalLogger) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));

    // Loss notice plus a short randomized NACK delay (Appendix A).
    EXPECT_EQ(test::notices(gap, NoticeKind::kLossDetected).size(), 1u);
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    ASSERT_TRUE(delay.has_value());
    EXPECT_GE(delay->deadline, at(1.1) + millis(5));
    EXPECT_LE(delay->deadline, at(1.1) + millis(15));

    auto fired = r.on_timer(delay->deadline, delay->id);
    const auto nacks = sent_of_type(fired, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, kSecondary);
    EXPECT_EQ(std::get<NackBody>(nacks[0].packet.body).missing,
              std::vector<SeqNum>{SeqNum{2}});
    EXPECT_EQ(r.nacks_sent(), 1u);
}

TEST(Receiver, NackBatchesMultipleMissing) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{5}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    auto fired = r.on_timer(delay->deadline, delay->id);
    const auto nacks = sent_of_type(fired, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(std::get<NackBody>(nacks[0].packet.body).missing.size(), 3u);  // 2,3,4
}

TEST(Receiver, ReorderedArrivalBeforeNackTimerSuppressesNack) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    // Packet 2 was merely reordered and arrives before the timer.
    auto fill = r.on_packet(at(1.105), data(SeqNum{2}));
    ASSERT_EQ(deliveries(fill).size(), 1u);
    EXPECT_TRUE(deliveries(fill)[0].recovered);  // arrived out of order, filled gap

    auto fired = r.on_timer(delay->deadline, delay->id);
    EXPECT_EQ(count_sent(fired, PacketType::kNack), 0u);
    EXPECT_EQ(r.nacks_sent(), 0u);
}

TEST(Receiver, HeartbeatRevealsLoss) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto hb = r.on_packet(at(1.3), heartbeat(SeqNum{2}));
    EXPECT_EQ(test::notices(hb, NoticeKind::kLossDetected).size(), 1u);
    EXPECT_TRUE(find_timer(hb, TimerKind::kNackDelay).has_value());
}

TEST(Receiver, RetransmissionFillsGapAndStopsRetry) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    r.on_timer(delay->deadline, delay->id);

    auto repair = r.on_packet(at(1.2), retransmission(kSecondary, SeqNum{2}));
    ASSERT_EQ(deliveries(repair).size(), 1u);
    EXPECT_TRUE(deliveries(repair)[0].recovered);
    EXPECT_TRUE(test::has_cancel(repair, TimerKind::kNackRetry));
    EXPECT_EQ(r.recovered(), 1u);
}

TEST(Receiver, RetryThenEscalateToFallback) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    auto first = r.on_timer(delay->deadline, delay->id);
    auto retry_timer = find_timer(first, TimerKind::kNackRetry);
    ASSERT_TRUE(retry_timer.has_value());

    // First retry goes to the same (secondary) logger.
    auto retry1 = r.on_timer(retry_timer->deadline, retry_timer->id);
    auto nacks = sent_of_type(retry1, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, kSecondary);

    // Second retry exhausts the per-level budget: escalate to the fallback.
    auto rt2 = find_timer(retry1, TimerKind::kNackRetry);
    auto retry2 = r.on_timer(rt2->deadline, rt2->id);
    nacks = sent_of_type(retry2, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, kPrimary);
    EXPECT_EQ(test::notices(retry2, NoticeKind::kLoggerChanged).size(), 1u);
}

TEST(Receiver, FinalEscalationQueriesSourceForPrimary) {
    ReceiverConfig c = base_config();
    c.nack_max_retries = 1;
    ReceiverCore r{c};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    auto fired = r.on_timer(delay->deadline, delay->id);

    // Exhaust local level -> fallback; exhaust fallback -> PrimaryQuery.
    auto t1 = find_timer(fired, TimerKind::kNackRetry);
    auto esc1 = r.on_timer(t1->deadline, t1->id);  // -> fallback nack
    auto t2 = find_timer(esc1, TimerKind::kNackRetry);
    auto esc2 = r.on_timer(t2->deadline, t2->id);  // -> PrimaryQuery
    const auto query = sent_of_type(esc2, PacketType::kPrimaryQuery);
    ASSERT_EQ(query.size(), 1u);
    EXPECT_EQ(query[0].to, kSource);

    // Source answers with a (new) primary; the receiver re-NACKs there
    // after its usual short batching delay.
    auto reply = r.on_packet(
        at(3.0), Packet{Header{kGroup, kSource, kSource}, PrimaryReplyBody{NodeId{77}}});
    auto delay2 = find_timer(reply, TimerKind::kNackDelay);
    ASSERT_TRUE(delay2.has_value());
    auto renack = r.on_timer(delay2->deadline, delay2->id);
    const auto nacks = sent_of_type(renack, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, NodeId{77});
}

TEST(Receiver, RecoveryEventuallyAbandons) {
    ReceiverConfig c = base_config();
    c.nack_max_retries = 1;
    c.recovery_cold_cycles = 0;  // walk the chain once, then give up
    ReceiverCore r{c};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    Actions last = r.on_timer(delay->deadline, delay->id);

    // Walk every escalation level to exhaustion.
    for (int i = 0; i < 10; ++i) {
        auto t = find_timer(last, TimerKind::kNackRetry);
        if (!t) break;
        last = r.on_timer(t->deadline, t->id);
        if (!test::notices(last, NoticeKind::kRecoveryFailed).empty()) break;
    }
    EXPECT_EQ(r.recovery_failures(), 1u);
    EXPECT_FALSE(r.detector().is_missing(SeqNum{2}));
}

TEST(Receiver, ExhaustedRecoveryParksBeforeAbandoning) {
    // With cold cycles enabled (the default), one unanswered walk of the
    // escalation chain is an outage signal, not packet death: the gap is
    // parked and the chain restarts after recovery_cold_retry.  Only the
    // configured number of whole walks later is the packet abandoned.
    ReceiverConfig c = base_config();
    c.nack_max_retries = 1;
    c.recovery_cold_cycles = 1;
    ReceiverCore r{c};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    TimePoint now = delay->deadline;
    Actions last = r.on_timer(now, delay->id);

    // First walk: ends in a park (a retry armed one cold pause out), not a
    // kRecoveryFailed.
    bool parked = false;
    for (int i = 0; i < 30 && !parked; ++i) {
        ASSERT_TRUE(test::notices(last, NoticeKind::kRecoveryFailed).empty());
        auto t = find_timer(last, TimerKind::kNackRetry);
        ASSERT_TRUE(t.has_value()) << "chain stalled without parking";
        if (t->deadline - now == c.recovery_cold_retry) {
            parked = true;
            now = t->deadline;
            last = r.on_timer(now, t->id);
            break;
        }
        now = t->deadline;
        last = r.on_timer(now, t->id);
    }
    ASSERT_TRUE(parked);
    EXPECT_EQ(r.recovery_failures(), 0u);
    EXPECT_TRUE(r.detector().is_missing(SeqNum{2}));

    // Second walk (the one cold cycle spent): terminal.
    for (int i = 0; i < 30; ++i) {
        if (!test::notices(last, NoticeKind::kRecoveryFailed).empty()) break;
        auto t = find_timer(last, TimerKind::kNackRetry);
        ASSERT_TRUE(t.has_value());
        now = t->deadline;
        last = r.on_timer(now, t->id);
    }
    EXPECT_EQ(r.recovery_failures(), 1u);
    EXPECT_FALSE(r.detector().is_missing(SeqNum{2}));
}

TEST(Receiver, ParkedRecoveryStillAcceptsLateRepair) {
    ReceiverConfig c = base_config();
    c.nack_max_retries = 1;
    ReceiverCore r{c};
    r.start(at(0.0));
    r.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = r.on_packet(at(1.1), data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    TimePoint now = delay->deadline;
    Actions last = r.on_timer(now, delay->id);
    for (int i = 0; i < 10; ++i) {  // run the chain into its first park
        auto t = find_timer(last, TimerKind::kNackRetry);
        if (!t) break;
        if (t->deadline - now == c.recovery_cold_retry) break;
        now = t->deadline;
        last = r.on_timer(now, t->id);
    }
    ASSERT_TRUE(r.detector().is_missing(SeqNum{2}));

    // A repair landing mid-pause (the healed logger flushing its backlog)
    // closes the gap and delivers normally.
    auto repair = r.on_packet(
        at(5.0), Packet{Header{kGroup, kSource, kSecondary},
                        RetransmissionBody{SeqNum{2}, EpochId{0}, false, payload(8)}});
    EXPECT_EQ(test::deliveries(repair).size(), 1u);
    EXPECT_FALSE(r.detector().is_missing(SeqNum{2}));
    EXPECT_EQ(r.recovery_failures(), 0u);
}

TEST(Receiver, FreshnessLostAfterSilenceAndRestored) {
    ReceiverCore r{base_config()};
    auto start = r.start(at(0.0));
    r.on_packet(at(0.1), data(SeqNum{1}));
    EXPECT_TRUE(r.fresh());

    // Idle timer armed by the data packet: h_min expected, x2 safety.
    auto idle = find_timer(r.on_packet(at(0.2), data(SeqNum{2})), TimerKind::kIdle);
    ASSERT_TRUE(idle.has_value());
    EXPECT_EQ(idle->deadline, at(0.2) + secs(0.5));

    auto fired = r.on_timer(idle->deadline, idle->id);
    EXPECT_EQ(test::notices(fired, NoticeKind::kFreshnessLost).size(), 1u);
    EXPECT_FALSE(r.fresh());

    auto back = r.on_packet(at(2.0), data(SeqNum{3}));
    EXPECT_EQ(test::notices(back, NoticeKind::kFreshnessRestored).size(), 1u);
    EXPECT_TRUE(r.fresh());
}

TEST(Receiver, IdleThresholdTracksHeartbeatBackoff) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    // Heartbeat index 3: next gap = 0.25 * 2^4 = 4 s; threshold = 8 s.
    auto actions = r.on_packet(at(1.0), heartbeat(SeqNum{0}, 3));
    auto idle = find_timer(actions, TimerKind::kIdle);
    ASSERT_TRUE(idle.has_value());
    EXPECT_EQ(idle->deadline, at(1.0) + secs(8.0));
}

TEST(Receiver, IdleThresholdCapsAtHMax) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    auto actions = r.on_packet(at(1.0), heartbeat(SeqNum{0}, 60));
    auto idle = find_timer(actions, TimerKind::kIdle);
    EXPECT_EQ(idle->deadline, at(1.0) + secs(64.0));  // 2 x h_max
}

TEST(Receiver, DiscoveryExpandsRings) {
    ReceiverConfig c = base_config();
    c.logger = kNoNode;  // force discovery
    ReceiverCore r{c};
    auto start = r.start(at(0.0));
    auto queries = sent_of_type(start, PacketType::kDiscoveryQuery);
    ASSERT_EQ(queries.size(), 1u);
    EXPECT_EQ(queries[0].scope, McastScope::kSite);

    // No answer: rings widen.
    auto t = find_timer(start, TimerKind::kDiscovery);
    auto round2 = r.on_timer(t->deadline, t->id);
    EXPECT_EQ(sent_of_type(round2, PacketType::kDiscoveryQuery)[0].scope, McastScope::kSite);
    t = find_timer(round2, TimerKind::kDiscovery);
    auto round3 = r.on_timer(t->deadline, t->id);
    EXPECT_EQ(sent_of_type(round3, PacketType::kDiscoveryQuery)[0].scope,
              McastScope::kRegion);
}

TEST(Receiver, DiscoveryReplyAdoptsLogger) {
    ReceiverConfig c = base_config();
    c.logger = kNoNode;
    ReceiverCore r{c};
    auto start = r.start(at(0.0));
    const auto query = sent_of_type(start, PacketType::kDiscoveryQuery)[0];
    const auto nonce = std::get<DiscoveryQueryBody>(query.packet.body).nonce;

    auto reply = r.on_packet(at(0.05), Packet{Header{kGroup, kSource, kSecondary},
                                              DiscoveryReplyBody{nonce, kSecondary, false}});
    EXPECT_EQ(test::notices(reply, NoticeKind::kLoggerChanged).size(), 1u);
    EXPECT_EQ(r.current_logger(), kSecondary);
}

TEST(Receiver, StaleDiscoveryReplyIgnored) {
    ReceiverConfig c = base_config();
    c.logger = kNoNode;
    ReceiverCore r{c};
    auto start = r.start(at(0.0));
    auto reply = r.on_packet(at(0.05), Packet{Header{kGroup, kSource, kSecondary},
                                              DiscoveryReplyBody{9999, kSecondary, false}});
    EXPECT_TRUE(test::notices(reply, NoticeKind::kLoggerChanged).empty());
}

TEST(Receiver, IgnoresForeignGroup) {
    ReceiverCore r{base_config()};
    r.start(at(0.0));
    Packet foreign{Header{GroupId{99}, kSource, kSource},
                   DataBody{SeqNum{1}, EpochId{0}, payload(8)}};
    EXPECT_TRUE(r.on_packet(at(1.0), foreign).empty());
    EXPECT_EQ(r.delivered(), 0u);
}

}  // namespace
}  // namespace lbrm
