// A/B identity tests for the two routing schemes (DESIGN.md "Hierarchical
// routing"): the hierarchical site/backbone tables must produce exactly the
// paths, delivery times, drop decisions and RNG draw order of the flat
// O(n^2) matrices on every workload here -- all on topologies with unique
// shortest paths, the scope of the identity guarantee (see DESIGN.md,
// tie-breaking).  Each test runs the identical scenario
// under both schemes (SimConfig::flat_routes, the LBRM_SIM_FLAT_ROUTES
// escape hatch's programmatic form) and compares full fingerprints --
// per-packet tap traces or end-to-end protocol records -- for equality.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/loss_model.hpp"
#include "sim/network.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::sim;

/// One tap observation, exact to the nanosecond: enough to detect any
/// divergence in path choice, timing, ordering or loss decisions.
struct TapEvent {
    std::int64_t at_ns;
    std::uint32_t from;
    std::uint32_t to;
    std::uint8_t type;
    bool delivered;

    bool operator==(const TapEvent& o) const {
        return at_ns == o.at_ns && from == o.from && to == o.to && type == o.type &&
               delivered == o.delivered;
    }
};

void record_taps(Network& net, std::vector<TapEvent>& out) {
    net.set_tap([&out](TimePoint t, const Link& link, const Packet& p, bool delivered) {
        out.push_back(TapEvent{t.time_since_epoch().count(), link.from().value(),
                               link.to().value(), static_cast<std::uint8_t>(p.type()),
                               delivered});
    });
}

// --- raw-network A/B: scoped multicast + unicast on the DIS topology --------

/// Fire a mixed workload (global/site/region multicast from several senders
/// plus cross-site unicasts) and return the full tap trace.
std::vector<TapEvent> run_network_workload(bool flat, std::uint32_t sites_per_region) {
    Simulator sim;
    SimConfig config;
    config.flat_routes = flat;
    Network net{sim, 1234, config};
    DisTopologySpec spec;
    spec.sites = 6;
    spec.receivers_per_site = 4;
    spec.sites_per_region = sites_per_region;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    // Light Bernoulli loss on one tail so RNG draw order is part of the
    // fingerprint, not just the deterministic paths.  Site 2's upstream is
    // the backbone, or its region's router when the regional tier exists.
    const NodeId upstream = sites_per_region > 0
                                ? topo.regions[2 / sites_per_region].router
                                : topo.backbone;
    net.set_loss(upstream, topo.sites[2].router, std::make_unique<BernoulliLoss>(0.2));

    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);
    for (const auto& site : topo.sites)
        if (site.secondary != kNoNode) net.join(group, site.secondary);

    std::vector<TapEvent> taps;
    record_taps(net, taps);

    std::uint32_t seq = 0;
    auto send = [&](NodeId from, McastScope scope) {
        net.multicast(from,
                      Packet{Header{group, topo.source, from},
                             DataBody{SeqNum{++seq}, EpochId{0}, {1, 2, 3}}},
                      scope);
        sim.run_for(millis(50));
    };
    send(topo.source, McastScope::kGlobal);
    send(topo.sites[0].secondary, McastScope::kSite);
    send(topo.sites[3].secondary, McastScope::kRegion);
    send(topo.sites[5].receivers[0], McastScope::kGlobal);
    net.unicast(topo.sites[1].receivers[2], topo.sites[4].receivers[3],
                Packet{Header{group, topo.source, topo.sites[1].receivers[2]},
                       PrimaryQueryBody{}});
    net.unicast(topo.sites[4].receivers[1], topo.source,
                Packet{Header{group, topo.source, topo.sites[4].receivers[1]},
                       PrimaryQueryBody{}});
    sim.run_for(secs(1.0));
    return taps;
}

TEST(RoutingAB, ScopedMulticastAndUnicastTraceIdentical) {
    const auto hier = run_network_workload(/*flat=*/false, /*sites_per_region=*/0);
    const auto flat = run_network_workload(/*flat=*/true, /*sites_per_region=*/0);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t i = 0; i < hier.size(); ++i)
        ASSERT_TRUE(hier[i] == flat[i]) << "trace diverges at event " << i;
}

TEST(RoutingAB, RegionalTierTraceIdentical) {
    const auto hier = run_network_workload(/*flat=*/false, /*sites_per_region=*/2);
    const auto flat = run_network_workload(/*flat=*/true, /*sites_per_region=*/2);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t i = 0; i < hier.size(); ++i)
        ASSERT_TRUE(hier[i] == flat[i]) << "trace diverges at event " << i;
}

// --- full-protocol A/B: the 20-site scenario ---------------------------------

struct ScenarioFingerprint {
    std::vector<std::string> deliveries;
    std::vector<std::string> notices;
    std::uint64_t events_processed = 0;
};

ScenarioFingerprint run_scenario(bool flat) {
    ScenarioConfig config;
    config.topology.sites = 20;
    config.topology.receivers_per_site = 5;
    config.sim.flat_routes = flat;
    config.seed = 99;
    DisScenario scenario(config);

    // Loss on two tails so the whole recovery machinery (NACKs, repairs,
    // heartbeats, stat-acks) runs and its RNG draws enter the fingerprint.
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[4].router,
                                std::make_unique<BernoulliLoss>(0.3));
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[11].router,
                                std::make_unique<BernoulliLoss>(0.3));

    scenario.start();
    for (int i = 0; i < 20; ++i) {
        scenario.send_update(128);
        scenario.run_for(millis(37));
    }
    scenario.run_for(secs(10.0));

    ScenarioFingerprint fp;
    for (const auto& d : scenario.deliveries())
        fp.deliveries.push_back(std::to_string(d.node.value()) + ":" +
                                std::to_string(d.seq.value()) + "@" +
                                std::to_string(d.at.time_since_epoch().count()) +
                                (d.recovered ? "r" : ""));
    for (const auto& n : scenario.notices())
        fp.notices.push_back(std::to_string(n.node.value()) + ":" +
                             std::to_string(static_cast<int>(n.kind)) + ":" +
                             std::to_string(n.arg) + "@" +
                             std::to_string(n.at.time_since_epoch().count()));
    fp.events_processed = scenario.simulator().events_processed();
    return fp;
}

TEST(RoutingAB, TwentySiteScenarioBitIdentical) {
    const ScenarioFingerprint hier = run_scenario(/*flat=*/false);
    const ScenarioFingerprint flat = run_scenario(/*flat=*/true);
    EXPECT_EQ(hier.events_processed, flat.events_processed);
    ASSERT_EQ(hier.deliveries.size(), flat.deliveries.size());
    EXPECT_EQ(hier.deliveries, flat.deliveries);
    EXPECT_EQ(hier.notices, flat.notices);
}

// --- downed router forcing a backbone detour ---------------------------------

/// Two sites, each with two border routers and redundant inter-site cables:
///
///   a_host -- a_r1 ---- b_r1 -- b_host
///        \___ a_r2 ---- b_r2 ___/
///
/// The r1 corridor is faster, so traffic prefers it; downing a_r1 and
/// re-finalizing must detour everything over the r2 corridor, in both
/// schemes, with identical traces.
struct DetourNet {
    Simulator sim;
    Network net;
    NodeId a_host, a_r1, a_r2, b_host, b_r1, b_r2;

    explicit DetourNet(bool flat, std::size_t path_cache_capacity = 65536)
        : net(sim, 7, [&] {
              SimConfig c;
              c.flat_routes = flat;
              c.path_cache_capacity = path_cache_capacity;
              return c;
          }()) {
        a_host = net.add_node(SiteId{1});
        a_r1 = net.add_node(SiteId{1}, /*is_router=*/true);
        a_r2 = net.add_node(SiteId{1}, /*is_router=*/true);
        b_host = net.add_node(SiteId{2});
        b_r1 = net.add_node(SiteId{2}, /*is_router=*/true);
        b_r2 = net.add_node(SiteId{2}, /*is_router=*/true);
        const LinkSpec fast{millis(1), 0.0, Duration::zero()};
        const LinkSpec slow{millis(3), 0.0, Duration::zero()};
        net.add_link(a_host, a_r1, fast);
        net.add_link(a_host, a_r2, fast);
        net.add_link(b_host, b_r1, fast);
        net.add_link(b_host, b_r2, fast);
        net.add_link(a_r1, b_r1, fast);  // preferred corridor
        net.add_link(a_r2, b_r2, slow);  // detour corridor
        net.finalize();
    }
};

std::vector<TapEvent> run_detour(bool flat) {
    DetourNet d(flat);
    const GroupId group{1};
    d.net.join(group, d.b_host);

    std::vector<TapEvent> taps;
    record_taps(d.net, taps);

    auto send = [&](std::uint32_t seq) {
        d.net.multicast(d.a_host,
                        Packet{Header{group, d.a_host, d.a_host},
                               DataBody{SeqNum{seq}, EpochId{0}, {9}}},
                        McastScope::kGlobal);
        d.net.unicast(d.b_host, d.a_host,
                      Packet{Header{group, d.a_host, d.b_host}, PrimaryQueryBody{}});
        d.sim.run_for(secs(1.0));
    };
    send(1);  // via the r1 corridor

    d.net.set_node_down(d.a_r1, true);
    d.net.finalize();  // reconverge: a_r1 no longer relays
    send(2);  // must detour via r2

    return taps;
}

TEST(RoutingAB, DownedRouterForcesIdenticalBackboneDetour) {
    const auto hier = run_detour(/*flat=*/false);
    const auto flat = run_detour(/*flat=*/true);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t i = 0; i < hier.size(); ++i)
        ASSERT_TRUE(hier[i] == flat[i]) << "trace diverges at event " << i;
}

TEST(Routing, DownedRouterDetourUsesBackupCorridor) {
    DetourNet d(/*flat=*/false);
    const GroupId group{1};
    d.net.join(group, d.b_host);
    auto send = [&](std::uint32_t seq) {
        d.net.multicast(d.a_host,
                        Packet{Header{group, d.a_host, d.a_host},
                               DataBody{SeqNum{seq}, EpochId{0}, {9}}},
                        McastScope::kGlobal);
        d.sim.run_for(secs(1.0));
    };
    send(1);
    EXPECT_EQ(d.net.link(d.a_r1, d.b_r1)->stats().packets, 1u);  // fast corridor
    EXPECT_EQ(d.net.link(d.a_r2, d.b_r2)->stats().packets, 0u);

    d.net.set_node_down(d.a_r1, true);
    d.net.finalize();
    send(2);
    EXPECT_EQ(d.net.link(d.a_r1, d.b_r1)->stats().packets, 1u);  // unchanged
    EXPECT_EQ(d.net.link(d.a_r2, d.b_r2)->stats().packets, 1u);  // detour taken
    EXPECT_EQ(d.net.link(d.b_r2, d.b_host)->stats().packets, 1u);

    // Revive and reconverge: traffic returns to the fast corridor.
    d.net.set_node_down(d.a_r1, false);
    d.net.finalize();
    send(3);
    EXPECT_EQ(d.net.link(d.a_r1, d.b_r1)->stats().packets, 2u);
    EXPECT_EQ(d.net.link(d.a_r2, d.b_r2)->stats().packets, 1u);
}

// --- set_node_down without re-finalize: blackhole semantics ------------------

/// Routes must be a pure function of the last finalize() in both schemes:
/// a mid-run set_node_down changes nothing (packets blackhole into the
/// downed border) until finalize() reconverges.  Regression for a bug
/// where compose_hop read live down flags, so hierarchical routes shifted
/// immediately -- and differently for cached vs freshly-composed hops.
std::vector<TapEvent> run_down_no_refinalize(bool flat, std::size_t path_cache_cap) {
    DetourNet d(flat, path_cache_cap);
    const GroupId group{1};
    d.net.join(group, d.b_host);

    std::vector<TapEvent> taps;
    record_taps(d.net, taps);

    auto send = [&](std::uint32_t seq) {
        d.net.multicast(d.a_host,
                        Packet{Header{group, d.a_host, d.a_host},
                               DataBody{SeqNum{seq}, EpochId{0}, {9}}},
                        McastScope::kGlobal);
        d.net.unicast(d.b_host, d.a_host,
                      Packet{Header{group, d.a_host, d.b_host}, PrimaryQueryBody{}});
        d.sim.run_for(secs(1.0));
    };
    send(1);  // primes the path cache with routes through the r1 corridor

    d.net.set_node_down(d.a_r1, true);
    send(2);  // no re-finalize: still routed into a_r1, dying on arrival

    d.net.finalize();
    send(3);  // reconverged: detour via r2

    return taps;
}

TEST(RoutingAB, DownWithoutRefinalizeTraceIdentical) {
    const auto hier = run_down_no_refinalize(/*flat=*/false, 65536);
    const auto flat = run_down_no_refinalize(/*flat=*/true, 65536);
    ASSERT_EQ(hier.size(), flat.size());
    for (std::size_t i = 0; i < hier.size(); ++i)
        ASSERT_TRUE(hier[i] == flat[i]) << "trace diverges at event " << i;
}

TEST(Routing, PathCacheCapacityNeverChangesOutcomes) {
    // Unbounded, single-entry (every lookup evicts) and default-sized
    // caches must produce the same trace, even across a down transition
    // that is not yet finalized -- cached and freshly-composed hops agree.
    const auto unbounded = run_down_no_refinalize(/*flat=*/false, 0);
    const auto tiny = run_down_no_refinalize(/*flat=*/false, 1);
    const auto roomy = run_down_no_refinalize(/*flat=*/false, 65536);
    EXPECT_EQ(unbounded, tiny);
    EXPECT_EQ(unbounded, roomy);
}

TEST(Routing, DownedRouterBlackholesUntilRefinalize) {
    DetourNet d(/*flat=*/false);
    const GroupId group{1};
    d.net.join(group, d.b_host);
    auto send = [&](std::uint32_t seq) {
        d.net.multicast(d.a_host,
                        Packet{Header{group, d.a_host, d.a_host},
                               DataBody{SeqNum{seq}, EpochId{0}, {9}}},
                        McastScope::kGlobal);
        d.sim.run_for(secs(1.0));
    };
    send(1);
    EXPECT_EQ(d.net.link(d.a_host, d.a_r1)->stats().packets, 1u);

    d.net.set_node_down(d.a_r1, true);
    send(2);  // tree rebuilt (down drops caches) but on the *old* tables
    EXPECT_EQ(d.net.link(d.a_host, d.a_r1)->stats().packets, 2u);  // into the hole
    EXPECT_EQ(d.net.link(d.a_r1, d.b_r1)->stats().packets, 1u);  // died at a_r1
    EXPECT_EQ(d.net.link(d.a_r2, d.b_r2)->stats().packets, 0u);  // no early detour

    d.net.finalize();
    send(3);
    EXPECT_EQ(d.net.link(d.a_host, d.a_r1)->stats().packets, 2u);  // unchanged
    EXPECT_EQ(d.net.link(d.a_r2, d.b_r2)->stats().packets, 1u);  // detour taken
}

TEST(Routing, HierarchicalIsDefaultAndReportsTables) {
    Simulator sim;
    Network net{sim, 1};
    DisTopologySpec spec;
    spec.sites = 3;
    spec.receivers_per_site = 2;
    make_dis_topology(net, spec);
    net.finalize();
    EXPECT_FALSE(net.flat_routes());
    EXPECT_GT(net.routing_table_bytes(), 0u);

    SimConfig config;
    config.flat_routes = true;
    Network flat_net{sim, 1, config};
    make_dis_topology(flat_net, spec);
    flat_net.finalize();
    EXPECT_TRUE(flat_net.flat_routes());
}

}  // namespace
