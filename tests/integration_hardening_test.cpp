// Hardening integrations: statistical-ack probing under loss, regional
// hierarchy latency sanity, discovery when the local secondary is dead,
// heartbeat piggyback at scenario level, and back-to-back failovers.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace lbrm::sim {
namespace {

TEST(Hardening, ProbingConvergesDespiteProbeLoss) {
    // The source's probe rounds lose 30% of traffic in both directions;
    // escalation (doubling p_ack per silent round) must still converge to
    // a usable estimate.
    ScenarioConfig config;
    config.topology.sites = 15;
    config.topology.receivers_per_site = 2;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 4;
    config.stat_ack.initial_probe_p = 0.1;
    config.stat_ack.probe_target_replies = 4;
    config.stat_ack.probe_repeats = 2;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(0.3));
    network.set_loss(topo.backbone, topo.source_router,
                     std::make_unique<BernoulliLoss>(0.3));

    scenario.start();
    scenario.run_for(secs(20.0));

    auto& engine = scenario.sender().stat_ack();
    EXPECT_FALSE(engine.probing());
    // 15 secondaries; with 30% bidirectional loss the estimate skews low
    // (replies are lost) but must stay within a workable band.
    EXPECT_GT(engine.n_sl(), 3.0);
    EXPECT_LT(engine.n_sl(), 40.0);
}

TEST(Hardening, RegionalTierPreservesDeliveryLatency) {
    // Adding the regional tier must not meaningfully slow live delivery
    // (one extra router hop, +5 ms region link).
    auto worst_latency = [](bool regional) {
        ScenarioConfig config;
        config.topology.sites = 4;
        config.topology.receivers_per_site = 3;
        config.topology.sites_per_region = 2;
        config.use_regional_loggers = regional;
        config.stat_ack.enabled = false;
        DisScenario scenario(config);
        scenario.start();
        scenario.send_update(std::size_t{128});
        scenario.run_for(secs(1.0));
        const auto times = scenario.delivery_times(SeqNum{1});
        EXPECT_EQ(times.size(), 12u);
        Duration worst = Duration::zero();
        for (const auto& [node, at] : times)
            worst = std::max(worst, at - *scenario.sent_at(SeqNum{1}));
        return worst;
    };
    const Duration flat = worst_latency(false);
    const Duration tiered = worst_latency(true);
    EXPECT_LT(tiered, flat + millis(15));
}

TEST(Hardening, DiscoveryFallsBackWhenSecondaryIsDead) {
    // Receivers discover loggers dynamically, but their site's secondary is
    // down: the ring search must widen and settle on another logger
    // (a neighbouring site's secondary via the region ring, or the
    // primary), and recovery must still work through it.
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 2;
    config.discover_loggers = true;
    config.stat_ack.enabled = false;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    network.set_node_down(topo.sites[0].secondary, true);

    scenario.start();
    scenario.run_for(secs(3.0));  // discovery rings run

    for (NodeId r : topo.sites[0].receivers) {
        const NodeId logger = scenario.receiver(r).current_logger();
        EXPECT_NE(logger, topo.sites[0].secondary) << "receiver " << r;
        EXPECT_NE(logger, kNoNode) << "receiver " << r;
    }

    // Lose a packet at site 0: recovery must flow through the fallback.
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(8.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 4u);
}

TEST(Hardening, DataHeartbeatKeepsFreshnessThroughQuietPeriods) {
    // With data-carrying heartbeats on, long quiet periods still keep
    // receivers fresh (the repeated data acts as the keep-alive) and no
    // duplicate deliveries occur.
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 2;
    config.stat_ack.enabled = false;
    config.heartbeat_carries_small_data = true;
    DisScenario scenario(config);
    scenario.start();
    scenario.send_update(std::size_t{32});
    scenario.run_for(secs(120.0));  // two quiet minutes of repeated-data HBs

    EXPECT_EQ(scenario.notice_count(NoticeKind::kFreshnessLost), 0u);
    std::map<NodeId, int> copies;
    for (const auto& d : scenario.deliveries())
        if (d.seq == SeqNum{1}) ++copies[d.node];
    for (const auto& [node, count] : copies) EXPECT_EQ(count, 1) << node;
    EXPECT_EQ(copies.size(), 4u);
}

TEST(Hardening, DoubleFailoverSurvives) {
    // The promoted replica dies too: the source must fail over again to
    // the next replica and the stream keeps flowing.
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 2;
    config.topology.replicas = 2;
    config.stat_ack.enabled = false;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_node_down(topo.primary, true);
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(3.0));
    ASSERT_EQ(scenario.sender().current_primary(), topo.replicas[0]);

    network.set_node_down(topo.replicas[0], true);
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(4.0));
    EXPECT_EQ(scenario.sender().current_primary(), topo.replicas[1]);

    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(2.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{4}).size(), 4u);
    EXPECT_GE(scenario.notice_count(NoticeKind::kPrimaryFailover), 2u);
}

}  // namespace
}  // namespace lbrm::sim
