// Sequence-number wraparound regression suite plus link-batching
// equivalence tests.
//
// Every SeqNum-keyed container in the protocol cores is ordered by
// SeqNum::WireOrder (raw uint32) with wrap-aware oldest-first walks via
// serial_begin() -- see seqnum.hpp.  These tests pin the behaviors that the
// old serial-comparator maps got wrong (or relied on by accident) when a
// stream crosses 2^32: loss-detector gap tracking, log-store eviction and
// release, sender retention anchors, and statistical-ACK bookkeeping.
//
// The link tests pin the transmit() accounting order (queue drop before any
// loss roll; lost packets burn wire time) and prove the burst-batching fast
// path is bit-for-bit equivalent to per-packet event scheduling.
#include <gtest/gtest.h>

#include <tuple>

#include "core/log_store.hpp"
#include "core/loss_detector.hpp"
#include "core/sender.hpp"
#include "core/stat_ack.hpp"
#include "sim/link.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::payload;
using test::sent_of_type;

constexpr std::uint32_t kMax = 0xFFFFFFFFu;

// --- LossDetector across the wrap ---------------------------------------

TEST(WrapLossDetector, GapSpanningWrapIsDetected) {
    LossDetector d;
    d.observe(at(0.0), SeqNum{kMax - 2});
    auto obs = d.observe(at(1.0), SeqNum{2});

    // FFFFFFFE, FFFFFFFF, 0, 1 are now missing, in serial (oldest-first)
    // order even though raw uint32 order would put 0 and 1 first.
    const std::vector<SeqNum> expected{SeqNum{kMax - 1}, SeqNum{kMax}, SeqNum{0},
                                       SeqNum{1}};
    EXPECT_EQ(obs.newly_missing, expected);
    EXPECT_EQ(d.missing(), expected);
    EXPECT_EQ(d.highest_seen(), SeqNum{2});
}

TEST(WrapLossDetector, FillingAcrossWrapRetractsMissing) {
    LossDetector d;
    d.observe(at(0.0), SeqNum{kMax - 2});
    d.observe(at(1.0), SeqNum{2});

    auto fill = d.observe(at(2.0), SeqNum{kMax});
    EXPECT_TRUE(fill.fills_gap);
    EXPECT_FALSE(d.is_missing(SeqNum{kMax}));
    const std::vector<SeqNum> expected{SeqNum{kMax - 1}, SeqNum{0}, SeqNum{1}};
    EXPECT_EQ(d.missing(), expected);
}

TEST(WrapLossDetector, DuplicatesRecognizedAcrossWrap) {
    LossDetector d;
    d.observe(at(0.0), SeqNum{kMax});
    d.observe(at(1.0), SeqNum{0});
    d.observe(at(2.0), SeqNum{1});
    EXPECT_TRUE(d.observe(at(3.0), SeqNum{0}).duplicate);
    EXPECT_TRUE(d.observe(at(4.0), SeqNum{kMax}).duplicate);
}

// --- bounded gap opening --------------------------------------------------

TEST(BoundedGap, SingleObservationCannotOpenUnboundedGap) {
    LossDetector d{16};
    d.observe(at(0.0), SeqNum{1});
    auto obs = d.observe(at(1.0), SeqNum{100000});

    // Only the most recent max_gap numbers become missing; the rest of the
    // (likely corrupt) gap is dropped and counted.
    EXPECT_EQ(obs.newly_missing.size(), 16u);
    EXPECT_EQ(obs.newly_missing.front(), SeqNum{100000 - 16});
    EXPECT_EQ(obs.newly_missing.back(), SeqNum{100000 - 1});
    EXPECT_EQ(d.gap_overflows(), 1u);
    EXPECT_EQ(d.highest_seen(), SeqNum{100000});
}

TEST(BoundedGap, StreamResyncsAfterOverflow) {
    LossDetector d{16};
    d.observe(at(0.0), SeqNum{1});
    d.observe(at(1.0), SeqNum{100000});
    // Position resynced to the far-future number: the next-in-order packet
    // opens no gap at all.
    auto next = d.observe(at(2.0), SeqNum{100001});
    EXPECT_TRUE(next.newly_missing.empty());
    EXPECT_FALSE(next.duplicate);
    EXPECT_EQ(d.gap_overflows(), 1u);
}

TEST(BoundedGap, WithinCapGapIsFullyTracked) {
    LossDetector d{16};
    d.observe(at(0.0), SeqNum{1});
    auto obs = d.observe(at(1.0), SeqNum{10});
    EXPECT_EQ(obs.newly_missing.size(), 8u);
    EXPECT_EQ(d.gap_overflows(), 0u);
}

TEST(BoundedGap, OverflowTruncationWorksAcrossWrap) {
    LossDetector d{8};
    d.observe(at(0.0), SeqNum{kMax - 100});
    // Gap of ~110 crossing the wrap: truncated to the 8 just below seq 10.
    auto obs = d.observe(at(1.0), SeqNum{10});
    EXPECT_EQ(obs.newly_missing.size(), 8u);
    EXPECT_EQ(obs.newly_missing.front(), SeqNum{2});
    EXPECT_EQ(d.gap_overflows(), 1u);
}

TEST(BoundedGap, DefaultCapApplies) {
    LossDetector d;
    EXPECT_EQ(d.max_gap(), LossDetector::kDefaultMaxGap);
    // Non-positive caps fall back to the default rather than disabling.
    EXPECT_EQ(LossDetector{-5}.max_gap(), LossDetector::kDefaultMaxGap);
    EXPECT_EQ(LossDetector{0}.max_gap(), LossDetector::kDefaultMaxGap);
}

// --- LogStore across the wrap --------------------------------------------

TEST(WrapLogStore, LowestHighestAndReleaseAcrossWrap) {
    LogStore store;
    for (std::uint32_t i = 0; i < 5; ++i) {
        const SeqNum seq = SeqNum{kMax - 1}.plus(static_cast<std::int32_t>(i));
        store.insert(at(0.0), seq, EpochId{0}, payload(4));
    }
    // Entries are FFFFFFFE, FFFFFFFF, 0, 1, 2.
    EXPECT_EQ(store.lowest(), SeqNum{kMax - 1});
    EXPECT_EQ(store.highest(), SeqNum{2});

    store.release_through(SeqNum{0});
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.lowest(), SeqNum{1});
}

TEST(WrapLogStore, CountBoundEvictsSeriallyOldestAcrossWrap) {
    RetentionPolicy policy;
    policy.max_entries = 3;
    LogStore store{policy};
    for (std::uint32_t i = 0; i < 5; ++i) {
        const SeqNum seq = SeqNum{kMax - 1}.plus(static_cast<std::int32_t>(i));
        store.insert(at(0.0), seq, EpochId{0}, payload(4));
    }
    // The two serially-oldest entries (FFFFFFFE, FFFFFFFF) were evicted --
    // not the raw-smallest keys 0 and 1.
    EXPECT_EQ(store.size(), 3u);
    EXPECT_FALSE(store.contains(SeqNum{kMax - 1}));
    EXPECT_FALSE(store.contains(SeqNum{kMax}));
    EXPECT_TRUE(store.contains(SeqNum{0}));
    EXPECT_EQ(store.evicted(), 2u);
}

TEST(WrapLogStore, GapsAcrossWrap) {
    LogStore store;
    store.insert(at(0.0), SeqNum{kMax - 1}, EpochId{0}, payload(4));
    store.insert(at(0.0), SeqNum{1}, EpochId{0}, payload(4));
    const std::vector<SeqNum> expected{SeqNum{kMax}, SeqNum{0}, SeqNum{2}};
    EXPECT_EQ(store.gaps(SeqNum{kMax - 2}, SeqNum{2}), expected);
}

// --- SenderCore stream starting near the wrap ----------------------------

SenderConfig wrap_sender_config() {
    SenderConfig c;
    c.self = NodeId{1};
    c.group = GroupId{5};
    c.primary_logger = NodeId{2};
    c.replicas = {NodeId{3}};
    c.stat_ack.enabled = false;
    c.initial_seq = SeqNum{kMax - 1};
    return c;
}

Packet from_primary(Body body) {
    return Packet{Header{GroupId{5}, NodeId{1}, NodeId{2}}, std::move(body)};
}

TEST(WrapSender, SequencesCrossTheWrap) {
    SenderCore sender{wrap_sender_config()};
    sender.start(at(0.0));
    std::vector<SeqNum> seqs;
    for (int i = 0; i < 4; ++i) {
        auto actions = sender.send(at(1.0 + i), payload(8));
        const auto data = sent_of_type(actions, PacketType::kData);
        ASSERT_EQ(data.size(), 1u);
        seqs.push_back(std::get<DataBody>(data[0].packet.body).seq);
    }
    const std::vector<SeqNum> expected{SeqNum{kMax - 1}, SeqNum{kMax}, SeqNum{0},
                                       SeqNum{1}};
    EXPECT_EQ(seqs, expected);
    EXPECT_EQ(sender.last_seq(), SeqNum{1});
}

TEST(WrapSender, NothingAckedAnchorDoesNotReleaseRetained) {
    // The "nothing acked yet" anchor is initial_seq.prev().  The old
    // SeqNum{0} sentinel sat serially AHEAD of a stream starting at
    // FFFFFFFE and instantly (and wrongly) released everything.
    SenderCore sender{wrap_sender_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(64));
    sender.send(at(2.0), payload(64));
    EXPECT_EQ(sender.retained_count(), 2u);
}

TEST(WrapSender, ReplicaAckReleasesAcrossWrap) {
    SenderCore sender{wrap_sender_config()};
    sender.start(at(0.0));
    for (int i = 0; i < 4; ++i) sender.send(at(1.0 + i), payload(64));
    EXPECT_EQ(sender.retained_count(), 4u);

    // Replica covered through seq 0 (third packet, past the wrap).
    sender.on_packet(at(5.0), from_primary(LogAckBody{SeqNum{0}, SeqNum{0}, true}));
    EXPECT_EQ(sender.retained_count(), 1u);

    sender.on_packet(at(6.0), from_primary(LogAckBody{SeqNum{1}, SeqNum{1}, true}));
    EXPECT_EQ(sender.retained_count(), 0u);
}

// --- StatAckEngine --------------------------------------------------------

StatAckConfig stat_config() {
    StatAckConfig c;
    c.enabled = true;
    c.k = 3;
    c.initial_t_wait = millis(100);
    c.epoch_interval = secs(30);
    return c;
}

Packet from_logger(NodeId logger, Body body) {
    return Packet{Header{GroupId{9}, NodeId{1}, logger}, std::move(body)};
}

/// Drive `engine` through epoch setup with the given volunteers.
TimePoint open_epoch(StatAckEngine& engine, const std::vector<NodeId>& volunteers) {
    auto result = engine.start(at(0.0));
    const auto sel = sent_of_type(result.actions, PacketType::kAckerSelection);
    EXPECT_EQ(sel.size(), 1u);
    const auto& body = std::get<AckerSelectionBody>(sel.at(0).packet.body);
    for (NodeId v : volunteers)
        engine.on_packet(at(0.01), from_logger(v, AckerResponseBody{body.epoch}));
    const auto window = find_timer(result.actions, TimerKind::kEpochOpen);
    EXPECT_TRUE(window.has_value());
    engine.on_timer(window->deadline, {TimerKind::kEpochOpen, 0});
    return window->deadline;
}

TEST(WrapStatAck, LowestPendingAcrossWrap) {
    StatAckEngine engine{NodeId{1}, GroupId{9}, stat_config()};
    engine.set_group_size(50.0);
    const TimePoint t0 = open_epoch(engine, {NodeId{10}, NodeId{11}});

    engine.on_data_sent(t0 + millis(1), SeqNum{kMax});
    engine.on_data_sent(t0 + millis(2), SeqNum{0});
    engine.on_data_sent(t0 + millis(3), SeqNum{1});
    // Serially oldest, not raw-smallest (which would be 0).
    EXPECT_EQ(engine.lowest_pending(), SeqNum{kMax});
}

TEST(ZeroVolunteerEpoch, OutageNoticeAndFastResolicit) {
    StatAckEngine engine{NodeId{1}, GroupId{9}, stat_config()};
    engine.set_group_size(50.0);

    auto result = engine.start(at(0.0));
    const auto window = find_timer(result.actions, TimerKind::kEpochOpen);
    ASSERT_TRUE(window.has_value());

    // Window closes with zero volunteers: outage notice + a re-solicit
    // scheduled after the short empty-epoch retry, not a full epoch.
    auto closed = engine.on_timer(window->deadline, {TimerKind::kEpochOpen, 0});
    EXPECT_EQ(test::notices(closed.actions, NoticeKind::kAckerOutage).size(), 1u);
    EXPECT_TRUE(test::notices(closed.actions, NoticeKind::kEpochStarted).empty());
    const auto rotate = find_timer(closed.actions, TimerKind::kEpochRotate);
    ASSERT_TRUE(rotate.has_value());
    EXPECT_EQ(rotate->deadline, window->deadline + engine.config().empty_epoch_retry);
    EXPECT_LT(engine.config().empty_epoch_retry, engine.config().epoch_interval);

    // Data sent during the dark window gets no ACK accounting...
    auto sent = engine.on_data_sent(window->deadline + millis(1), SeqNum{1});
    EXPECT_TRUE(sent.actions.empty());

    // ...and the rotate timer re-solicits a fresh epoch.
    auto retry = engine.on_timer(rotate->deadline, {TimerKind::kEpochRotate, 0});
    EXPECT_EQ(count_sent(retry.actions, PacketType::kAckerSelection), 1u);
}

}  // namespace
}  // namespace lbrm

namespace lbrm::sim {
namespace {

using lbrm::test::at;

const LinkSpec kT1{millis(1), 1e6, Duration::zero()};  // 1000 B = 8 ms serialization

// --- Link accounting order ------------------------------------------------

TEST(LinkAccounting, LostPacketStillBurnsWireTime) {
    Cable cable{NodeId{1}, NodeId{2}, kT1};
    Link& link = cable.dir[0];
    Rng rng{1};

    auto a = link.transmit(rng, at(0.0), 1000, PacketType::kData);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, at(0.0) + millis(8) + millis(1));

    // Packet B is lost in flight -- but it was serialized first, so it
    // occupies its slot of the busy horizon.
    link.set_loss_model(std::make_unique<BernoulliLoss>(1.0));
    EXPECT_FALSE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_EQ(link.stats().drops_loss, 1u);

    // Packet C queues behind BOTH predecessors, including the lost one.
    link.set_loss_model(std::make_unique<NoLoss>());
    auto c = link.transmit(rng, at(0.0), 1000, PacketType::kData);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, at(0.0) + 3 * millis(8) + millis(1));
    EXPECT_TRUE(link.busy(at(0.020)));
}

TEST(LinkAccounting, QueueDropNeverConsultsLossModel) {
    struct CountingLoss final : LossModel {
        explicit CountingLoss(int& calls) : calls_(calls) {}
        bool drop(Rng&, TimePoint) override {
            ++calls_;
            return false;
        }
        int& calls_;
    };

    LinkSpec spec = kT1;
    spec.max_queue_delay = millis(10);  // fits one 8 ms packet in queue, not two
    Cable cable{NodeId{1}, NodeId{2}, spec};
    Link& link = cable.dir[0];
    int rolls = 0;
    link.set_loss_model(std::make_unique<CountingLoss>(rolls));
    Rng rng{1};

    EXPECT_TRUE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_TRUE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_EQ(rolls, 2);

    // Third packet would queue 16 ms > 10 ms: dropped at the tail without
    // ever reaching the wire, so the loss model must not be rolled (RNG
    // draw order stays identical whether or not the queue overflows).
    EXPECT_FALSE(link.transmit(rng, at(0.0), 1000, PacketType::kData).has_value());
    EXPECT_EQ(link.stats().drops_queue, 1u);
    EXPECT_EQ(rolls, 2);
}

// --- burst batching equivalence ------------------------------------------

ScenarioConfig burst_config() {
    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 5;
    config.seed = 1234;
    return config;
}

struct RunResult {
    std::vector<std::tuple<std::uint64_t, std::uint32_t, TimePoint, bool>> deliveries;
    std::size_t notice_count = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t events_total = 0;  ///< heap pushes: schedules + recurring arms
    std::uint64_t tail_packets = 0;

    // Not part of the equivalence relation: how the heap pushes split
    // between slab-backed schedules and recurring-drain arms.
    std::uint64_t heap_schedules = 0;
    std::uint64_t recurring_arms = 0;

    friend bool operator==(const RunResult& a, const RunResult& b) {
        return a.deliveries == b.deliveries && a.notice_count == b.notice_count &&
               a.events_processed == b.events_processed &&
               a.events_total == b.events_total && a.tail_packets == b.tail_packets;
    }
};

RunResult run_burst(bool batching) {
    ScenarioConfig config = burst_config();
    DisScenario scenario{config};
    scenario.network().set_batching(batching);
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<BernoulliLoss>(0.2));
    scenario.start();
    // Bursts of back-to-back sends force queueing on every tail circuit.
    for (int burst = 0; burst < 4; ++burst) {
        for (int i = 0; i < 12; ++i) scenario.send_update(std::size_t{400});
        scenario.run_for(millis(250));
    }
    scenario.run_for(secs(5.0));

    RunResult out;
    for (const auto& d : scenario.deliveries())
        out.deliveries.emplace_back(d.node.value(), d.seq.value(), d.at, d.recovered);
    out.notice_count = scenario.notices().size();
    out.events_processed = scenario.simulator().events_processed();
    out.heap_schedules = scenario.simulator().events_scheduled();
    out.recurring_arms = scenario.simulator().recurring_arms();
    out.events_total = out.heap_schedules + out.recurring_arms;
    const Link* tail = scenario.network().link(scenario.topology().backbone,
                                               scenario.topology().sites[1].router);
    out.tail_packets = tail->stats().packets;
    return out;
}

TEST(BurstBatching, BitIdenticalToUnbatchedPath) {
    const RunResult batched = run_burst(true);
    const RunResult unbatched = run_burst(false);

    // Same deliveries at the same times, same notices, same link traffic,
    // same number of event firings AND the same total (schedule + arm)
    // count -- the batched path reserves the identical tiebreaks, so the
    // whole execution is bit-for-bit equivalent.
    EXPECT_EQ(batched, unbatched);
    EXPECT_FALSE(batched.deliveries.empty());
}

TEST(BurstBatching, BatchingReducesHeapScheduling) {
    const RunResult batched = run_burst(true);
    const RunResult unbatched = run_burst(false);

    // The win: queued arrivals park in per-link FIFOs instead of taking a
    // slab slot + std::function each through the schedule path.  Total heap
    // pushes stay equal (one recurring arm per drained arrival), but the
    // heap never holds more than one entry per busy link.
    EXPECT_GT(batched.recurring_arms, 0u);
    EXPECT_EQ(unbatched.recurring_arms, 0u);
    EXPECT_LT(batched.heap_schedules, unbatched.heap_schedules);
    EXPECT_EQ(batched.events_total, unbatched.events_total);
    EXPECT_EQ(batched.events_processed, unbatched.events_processed);
}

TEST(BurstBatching, EnvEscapeHatchDisablesBatching) {
    // LBRM_SIM_NO_BATCH is read at Network construction; the setter mirrors
    // what the env hatch does, and the default is on.
    Simulator sim;
    Network net{sim, 1};
    EXPECT_TRUE(net.batching_enabled());
    net.set_batching(false);
    EXPECT_FALSE(net.batching_enabled());
}

// --- end-to-end wraparound integration -----------------------------------

TEST(WrapIntegration, StreamStartingNearWrapDeliversEverywhere) {
    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 4;
    config.seed = 77;
    config.initial_seq = SeqNum{0xFFFFFFF0u};
    DisScenario scenario{config};
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[0].router,
                                std::make_unique<BernoulliLoss>(0.3));
    scenario.start();

    // 32 updates: the stream runs FFFFFFF0..FFFFFFFF then wraps to 0..F.
    for (int i = 0; i < 32; ++i) {
        scenario.send_update(std::size_t{64});
        scenario.run_for(millis(100));
    }
    scenario.run_for(secs(20.0));

    const std::size_t receivers = scenario.topology().all_receivers().size();
    ASSERT_EQ(receivers, 12u);
    for (int i = 0; i < 32; ++i) {
        const SeqNum seq = SeqNum{0xFFFFFFF0u}.plus(i);
        EXPECT_EQ(scenario.delivery_times(seq).size(), receivers)
            << "seq " << seq.value() << " not delivered everywhere";
    }
    // Losses on the site-0 tail actually happened and were recovered.
    EXPECT_GT(scenario.network()
                  .link(scenario.topology().backbone, scenario.topology().sites[0].router)
                  ->stats()
                  .drops_loss,
              0u);
}

}  // namespace
}  // namespace lbrm::sim
