// Variable-heartbeat scheduler unit tests (Section 2.1), including the
// parameterized backoff sweep and the "variable never exceeds fixed"
// invariant of Section 2.1.2.
#include <gtest/gtest.h>

#include "core/heartbeat.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;

HeartbeatConfig paper_config() {
    HeartbeatConfig c;
    c.h_min = secs(0.25);
    c.h_max = secs(32.0);
    c.backoff = 2.0;
    return c;
}

TEST(Heartbeat, FirstHeartbeatComesHMinAfterData) {
    HeartbeatScheduler s{paper_config()};
    EXPECT_EQ(s.on_data_sent(at(10.0)), at(10.25));
    EXPECT_EQ(s.current_interval(), secs(0.25));
}

TEST(Heartbeat, IntervalDoublesAfterEachHeartbeat) {
    HeartbeatScheduler s{paper_config()};
    TimePoint t = s.on_data_sent(at(0.0));
    EXPECT_EQ(t, at(0.25));
    t = s.on_heartbeat_sent(t);
    EXPECT_EQ(t, at(0.75));  // +0.5
    t = s.on_heartbeat_sent(t);
    EXPECT_EQ(t, at(1.75));  // +1.0
    t = s.on_heartbeat_sent(t);
    EXPECT_EQ(t, at(3.75));  // +2.0
}

TEST(Heartbeat, IntervalSaturatesAtHMax) {
    HeartbeatScheduler s{paper_config()};
    TimePoint t = s.on_data_sent(at(0.0));
    for (int i = 0; i < 40; ++i) t = s.on_heartbeat_sent(t);
    EXPECT_EQ(s.current_interval(), secs(32.0));
}

TEST(Heartbeat, DataResetsTheBackoff) {
    HeartbeatScheduler s{paper_config()};
    TimePoint t = s.on_data_sent(at(0.0));
    for (int i = 0; i < 10; ++i) t = s.on_heartbeat_sent(t);
    EXPECT_GT(s.current_interval(), secs(0.25));
    s.on_data_sent(at(100.0));
    EXPECT_EQ(s.current_interval(), secs(0.25));
    EXPECT_EQ(s.heartbeat_index(), 0u);
}

TEST(Heartbeat, HeartbeatIndexCounts) {
    HeartbeatScheduler s{paper_config()};
    TimePoint t = s.on_data_sent(at(0.0));
    EXPECT_EQ(s.heartbeat_index(), 0u);
    t = s.on_heartbeat_sent(t);
    EXPECT_EQ(s.heartbeat_index(), 1u);
    t = s.on_heartbeat_sent(t);
    EXPECT_EQ(s.heartbeat_index(), 2u);
}

TEST(Heartbeat, FixedModeNeverGrows) {
    HeartbeatConfig c = paper_config();
    c.fixed = true;
    HeartbeatScheduler s{c};
    TimePoint t = s.on_data_sent(at(0.0));
    for (int i = 0; i < 100; ++i) {
        const TimePoint next = s.on_heartbeat_sent(t);
        EXPECT_EQ(next - t, secs(0.25));
        t = next;
    }
}

TEST(Heartbeat, RejectsInvalidParameters) {
    HeartbeatConfig c = paper_config();
    c.backoff = 0.5;
    EXPECT_THROW(HeartbeatScheduler{c}, std::invalid_argument);
    c = paper_config();
    c.h_min = Duration::zero();
    EXPECT_THROW(HeartbeatScheduler{c}, std::invalid_argument);
    c = paper_config();
    c.h_max = secs(0.1);  // < h_min
    EXPECT_THROW(HeartbeatScheduler{c}, std::invalid_argument);
}

/// Count heartbeats the scheduler emits between two data packets dt apart.
std::size_t simulate_count(const HeartbeatConfig& config, double dt) {
    HeartbeatScheduler s{config};
    TimePoint next = s.on_data_sent(at(0.0));
    std::size_t count = 0;
    while (next < at(dt)) {
        ++count;
        next = s.on_heartbeat_sent(next);
        if (count > 1'000'000) break;
    }
    return count;
}

class HeartbeatBackoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(HeartbeatBackoffSweep, VariableNeverSendsMoreThanFixed) {
    HeartbeatConfig variable = paper_config();
    variable.backoff = GetParam();
    HeartbeatConfig fixed = paper_config();
    fixed.fixed = true;

    for (double dt : {0.1, 0.3, 1.0, 5.0, 30.0, 120.0, 1000.0}) {
        EXPECT_LE(simulate_count(variable, dt), simulate_count(fixed, dt))
            << "backoff " << GetParam() << " dt " << dt;
    }
}

TEST_P(HeartbeatBackoffSweep, LargerBackoffNeverSendsMore) {
    HeartbeatConfig narrow = paper_config();
    narrow.backoff = GetParam();
    HeartbeatConfig wide = paper_config();
    wide.backoff = GetParam() + 0.5;
    for (double dt : {0.5, 2.0, 20.0, 120.0, 500.0})
        EXPECT_GE(simulate_count(narrow, dt), simulate_count(wide, dt));
}

INSTANTIATE_TEST_SUITE_P(Backoffs, HeartbeatBackoffSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5, 4.0));

TEST(Heartbeat, DisScenarioSavingsMatchPaperScale) {
    // dt = 120 s (terrain changes every two minutes): the paper reports a
    // ~53x heartbeat reduction for backoff 2.
    HeartbeatConfig variable = paper_config();
    HeartbeatConfig fixed = paper_config();
    fixed.fixed = true;
    const double ratio = static_cast<double>(simulate_count(fixed, 120.0)) /
                         static_cast<double>(simulate_count(variable, 120.0));
    EXPECT_NEAR(ratio, 53.3, 1.0);
}

TEST(Heartbeat, NoHeartbeatsWhenDataOutpacesHMin) {
    // dt < h_min: every heartbeat is preempted by the next data packet.
    EXPECT_EQ(simulate_count(paper_config(), 0.2), 0u);
}

}  // namespace
}  // namespace lbrm
