// Wire-format tests: every packet type round-trips; malformed input decodes
// to nullopt without UB.
#include <gtest/gtest.h>

#include <random>

#include "packet/packet.hpp"

namespace lbrm {
namespace {

Header header() { return Header{GroupId{7}, NodeId{3}, NodeId{12}}; }

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
    std::vector<std::uint8_t> out;
    for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
    return out;
}

/// Every packet type once, with non-trivial field values.
std::vector<Packet> all_packets() {
    return {
        {header(), DataBody{SeqNum{42}, EpochId{3}, bytes({1, 2, 3, 255})}},
        {header(), HeartbeatBody{SeqNum{42}, 7}},
        {header(), NackBody{{SeqNum{1}, SeqNum{5}, SeqNum{0xFFFFFFFF}}}},
        {header(), RetransmissionBody{SeqNum{9}, EpochId{2}, true, bytes({9})}},
        {header(), LogStoreBody{SeqNum{10}, EpochId{1}, bytes({})}},
        {header(), LogAckBody{SeqNum{10}, SeqNum{8}, true}},
        {header(), ReplicaUpdateBody{SeqNum{11}, EpochId{1}, bytes({4, 5})}},
        {header(), ReplicaAckBody{SeqNum{11}}},
        {header(), AckerSelectionBody{EpochId{4}, 0.04}},
        {header(), AckerResponseBody{EpochId{4}}},
        {header(), AckBody{EpochId{4}, SeqNum{42}}},
        {header(), ProbeRequestBody{2, 0.2}},
        {header(), ProbeReplyBody{2}},
        {header(), DiscoveryQueryBody{16, 0xCAFE}},
        {header(), DiscoveryReplyBody{0xCAFE, NodeId{55}, true}},
        {header(), PrimaryQueryBody{}},
        {header(), PrimaryReplyBody{NodeId{55}}},
        {header(), PromoteRequestBody{}},
        {header(), PromoteReplyBody{SeqNum{99}, true}},
    };
}

class PacketRoundTrip : public ::testing::TestWithParam<Packet> {};

TEST_P(PacketRoundTrip, EncodeDecodeIsIdentity) {
    const Packet& original = GetParam();
    const auto wire = encode(original);
    const auto decoded = decode(wire);
    ASSERT_TRUE(decoded.has_value()) << to_string(original.type());
    EXPECT_EQ(*decoded, original);
    EXPECT_EQ(decoded->type(), original.type());
}

TEST_P(PacketRoundTrip, EncodedSizeMatchesEncode) {
    const Packet& packet = GetParam();
    EXPECT_EQ(encoded_size(packet), encode(packet).size()) << to_string(packet.type());
}

TEST_P(PacketRoundTrip, AnyTruncationFailsCleanly) {
    const auto wire = encode(GetParam());
    for (std::size_t len = 0; len < wire.size(); ++len) {
        const auto decoded = decode(std::span(wire.data(), len));
        EXPECT_FALSE(decoded.has_value())
            << to_string(GetParam().type()) << " truncated to " << len;
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PacketRoundTrip, ::testing::ValuesIn(all_packets()),
                         [](const auto& info) { return to_string(info.param.type()); });

TEST(PacketDecode, RejectsBadMagic) {
    auto wire = encode({header(), HeartbeatBody{SeqNum{1}, 0}});
    wire[0] ^= 0xFF;
    EXPECT_FALSE(decode(wire).has_value());
}

TEST(PacketDecode, RejectsBadVersion) {
    auto wire = encode({header(), HeartbeatBody{SeqNum{1}, 0}});
    wire[2] = kVersion + 1;
    EXPECT_FALSE(decode(wire).has_value());
}

TEST(PacketDecode, RejectsUnknownType) {
    auto wire = encode({header(), HeartbeatBody{SeqNum{1}, 0}});
    wire[3] = 0;  // below kData
    EXPECT_FALSE(decode(wire).has_value());
    wire[3] = 200;  // above the last type
    EXPECT_FALSE(decode(wire).has_value());
}

TEST(PacketDecode, RejectsTrailingGarbage) {
    auto wire = encode({header(), HeartbeatBody{SeqNum{1}, 0}});
    wire.push_back(0x00);
    // Trailing bytes are tolerated only if the reader consumed everything it
    // needed; we choose strictness at the decode() level: extra bytes mean a
    // framing error somewhere.
    const auto decoded = decode(wire);
    // Either policy is defensible; this pins the current one (lenient):
    // decode ignores trailing bytes because UDP preserves datagram framing.
    EXPECT_TRUE(decoded.has_value());
}

TEST(PacketDecode, RandomBytesNeverCrash) {
    std::mt19937 gen{1234};
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> length(0, 200);
    for (int i = 0; i < 20000; ++i) {
        std::vector<std::uint8_t> junk(static_cast<std::size_t>(length(gen)));
        for (auto& b : junk) b = static_cast<std::uint8_t>(byte(gen));
        (void)decode(junk);  // must not crash, throw or read OOB
    }
}

TEST(PacketDecode, FuzzedValidPacketsNeverCrash) {
    // Flip bytes of valid encodings; decode must never misbehave.
    std::mt19937 gen{99};
    std::uniform_int_distribution<int> byte(0, 255);
    for (const Packet& p : all_packets()) {
        auto wire = encode(p);
        for (int i = 0; i < 500; ++i) {
            auto corrupted = wire;
            const std::size_t pos = static_cast<std::size_t>(gen()) % corrupted.size();
            corrupted[pos] = static_cast<std::uint8_t>(byte(gen));
            (void)decode(corrupted);
        }
    }
}

TEST(PacketEncode, HeaderLayoutIsStable) {
    const auto wire = encode({header(), PrimaryQueryBody{}});
    ASSERT_EQ(wire.size(), kHeaderSize);
    EXPECT_EQ(wire[0], 0x4C);  // 'L'
    EXPECT_EQ(wire[1], 0x42);  // 'B'
    EXPECT_EQ(wire[2], kVersion);
    EXPECT_EQ(wire[3], static_cast<std::uint8_t>(PacketType::kPrimaryQuery));
}

TEST(PacketEncode, NackSizeScalesWithMissingList) {
    NackBody small{{SeqNum{1}}};
    NackBody large{{SeqNum{1}, SeqNum{2}, SeqNum{3}, SeqNum{4}, SeqNum{5}}};
    const auto s = encode({header(), small});
    const auto l = encode({header(), large});
    EXPECT_EQ(l.size() - s.size(), 4u * 4u);
}

TEST(PacketEncode, EncodedSizeTracksVariableLengthFields) {
    for (std::size_t len : {0u, 1u, 17u, 1500u}) {
        const Packet p{header(),
                       DataBody{SeqNum{1}, EpochId{0}, std::vector<std::uint8_t>(len, 0x5A)}};
        EXPECT_EQ(encoded_size(p), encode(p).size()) << "payload " << len;
    }
    for (std::size_t count : {0u, 1u, 300u}) {
        NackBody b;
        b.missing.assign(count, SeqNum{9});
        const Packet p{header(), std::move(b)};
        EXPECT_EQ(encoded_size(p), encode(p).size()) << "missing " << count;
    }
}

}  // namespace
}  // namespace lbrm
