// Coverage for smaller seams: the logging facility, the SRM sender's
// repair suppression (Section 6 model fidelity), the receiver's adaptive
// idle gap under data-carrying heartbeats, and sender buffering floors.
#include <gtest/gtest.h>

#include "baseline/srm.hpp"
#include "common/log.hpp"
#include "core/receiver.hpp"
#include "core/sender.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::payload;
using test::sent_of_type;

// --- logging facility --------------------------------------------------------

struct SinkCapture {
    std::vector<std::string> lines;
};

TEST(Logging, LevelGateSuppressesBelowThreshold) {
    SinkCapture capture;
    logging::set_sink([&](logging::Level level, std::string_view component,
                          std::string_view message) {
        capture.lines.push_back(std::string(logging::level_name(level)) + " " +
                                std::string(component) + ": " + std::string(message));
    });
    logging::set_level(logging::Level::kWarn);

    LBRM_LOG(Debug, "test") << "invisible " << 42;
    LBRM_LOG(Warn, "test") << "visible " << 43;
    LBRM_LOG(Error, "test") << "also visible";

    ASSERT_EQ(capture.lines.size(), 2u);
    EXPECT_EQ(capture.lines[0], "WARN test: visible 43");
    EXPECT_EQ(capture.lines[1], "ERROR test: also visible");

    logging::set_sink(nullptr);
    logging::set_level(logging::Level::kInfo);
}

TEST(Logging, LevelNames) {
    EXPECT_EQ(logging::level_name(logging::Level::kTrace), "TRACE");
    EXPECT_EQ(logging::level_name(logging::Level::kOff), "OFF");
}

// --- SRM sender repair suppression (Section 6 model) ---------------------------

TEST(SrmSender, DelaysRepairsAndSuppressesOnForeignRepair) {
    baseline::SrmConfig config;
    config.self = NodeId{1};
    config.group = GroupId{1};
    config.source = NodeId{1};
    config.rtt_to_source = millis(80);
    baseline::SrmSenderCore sender{config, 5};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));

    // A repair request arrives: the sender must NOT answer instantly -- it
    // schedules a randomized repair window like any member.
    Packet request{Header{GroupId{1}, NodeId{1}, NodeId{9}}, NackBody{{SeqNum{1}}}};
    auto heard = sender.on_packet(at(2.0), request);
    EXPECT_EQ(count_sent(heard, PacketType::kRetransmission), 0u);
    auto timer = find_timer(heard, TimerKind::kRemcastWindow);
    ASSERT_TRUE(timer.has_value());
    EXPECT_GE(timer->deadline, at(2.0) + millis(80));
    EXPECT_LE(timer->deadline, at(2.0) + millis(160));

    // Another member repairs first: the sender's pending repair cancels.
    Packet foreign{Header{GroupId{1}, NodeId{1}, NodeId{7}},
                   RetransmissionBody{SeqNum{1}, EpochId{0}, true, payload(16)}};
    auto suppressed = sender.on_packet(at(2.05), foreign);
    EXPECT_TRUE(test::has_cancel(suppressed, TimerKind::kRemcastWindow));
    auto fired = sender.on_timer(timer->deadline, timer->id);
    EXPECT_EQ(count_sent(fired, PacketType::kRetransmission), 0u);
}

TEST(SrmSender, UnsuppressedRepairFiresOnce) {
    baseline::SrmConfig config;
    config.self = NodeId{1};
    config.group = GroupId{1};
    config.source = NodeId{1};
    baseline::SrmSenderCore sender{config, 5};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));

    Packet request{Header{GroupId{1}, NodeId{1}, NodeId{9}}, NackBody{{SeqNum{1}}}};
    auto heard = sender.on_packet(at(2.0), request);
    auto timer = find_timer(heard, TimerKind::kRemcastWindow);

    // A duplicate request inside the armed window does not double-arm.
    auto again = sender.on_packet(at(2.01), request);
    EXPECT_FALSE(find_timer(again, TimerKind::kRemcastWindow).has_value());

    auto fired = sender.on_timer(timer->deadline, timer->id);
    const auto repairs = sent_of_type(fired, PacketType::kRetransmission);
    ASSERT_EQ(repairs.size(), 1u);
    EXPECT_EQ(repairs[0].to, kNoNode);  // multicast, wb-style

    // Firing the (now disarmed) window again repairs nothing.
    auto refire = sender.on_timer(timer->deadline + millis(1), timer->id);
    EXPECT_EQ(count_sent(refire, PacketType::kRetransmission), 0u);
}

// --- receiver idle gap under repeated data (Section 7 data heartbeats) --------

TEST(Receiver, RepeatedDataGrowsTheExpectedGapLikeHeartbeats) {
    ReceiverConfig config;
    config.self = NodeId{5};
    config.group = GroupId{1};
    config.source = NodeId{1};
    config.logger = NodeId{2};
    ReceiverCore receiver{config};
    receiver.start(at(0.0));

    Packet data{Header{GroupId{1}, NodeId{1}, NodeId{1}},
                DataBody{SeqNum{1}, EpochId{0}, payload(8)}};

    // Fresh data: watchdog armed for 2 x h_min = 0.5 s.
    auto first = receiver.on_packet(at(1.0), data);
    auto idle = find_timer(first, TimerKind::kIdle);
    ASSERT_TRUE(idle.has_value());
    EXPECT_EQ(idle->deadline, at(1.5));

    // The same packet repeated (a data-carrying heartbeat): the expected
    // gap doubles each time, exactly like heartbeat indices.
    auto second = receiver.on_packet(at(1.25), data);
    idle = find_timer(second, TimerKind::kIdle);
    ASSERT_TRUE(idle.has_value());
    EXPECT_EQ(idle->deadline, at(1.25) + secs(1.0));  // gap 0.5 x safety 2

    auto third = receiver.on_packet(at(1.75), data);
    idle = find_timer(third, TimerKind::kIdle);
    EXPECT_EQ(idle->deadline, at(1.75) + secs(2.0));  // gap 1.0 x safety 2

    // No duplicate deliveries happened along the way.
    EXPECT_EQ(receiver.delivered(), 1u);
    EXPECT_EQ(receiver.duplicates(), 2u);
}

TEST(Receiver, FreshDataResetsTheGap) {
    ReceiverConfig config;
    config.self = NodeId{5};
    config.group = GroupId{1};
    config.source = NodeId{1};
    config.logger = NodeId{2};
    ReceiverCore receiver{config};
    receiver.start(at(0.0));

    Packet d1{Header{GroupId{1}, NodeId{1}, NodeId{1}},
              DataBody{SeqNum{1}, EpochId{0}, payload(8)}};
    receiver.on_packet(at(1.0), d1);
    receiver.on_packet(at(1.25), d1);  // repeat grows gap to 0.5
    Packet d2{Header{GroupId{1}, NodeId{1}, NodeId{1}},
              DataBody{SeqNum{2}, EpochId{0}, payload(8)}};
    auto fresh = receiver.on_packet(at(1.5), d2);
    auto idle = find_timer(fresh, TimerKind::kIdle);
    EXPECT_EQ(idle->deadline, at(1.5) + secs(0.5));  // back to 2 x h_min
}

// --- sender buffering floors -----------------------------------------------

TEST(Sender, RetransChannelKeepsPayloadUntilCopiesDone) {
    SenderConfig config;
    config.self = NodeId{1};
    config.group = GroupId{1};
    config.primary_logger = NodeId{2};
    config.stat_ack.enabled = false;
    config.retrans_channel = GroupId{9};
    config.retrans_channel_copies = 2;
    config.retrans_channel_first_delay = millis(40);
    SenderCore sender{config};
    sender.start(at(0.0));
    auto sent = sender.send(at(1.0), payload(64));

    // Replica-safe immediately...
    sender.on_packet(at(1.01),
                     Packet{Header{GroupId{1}, NodeId{1}, NodeId{2}},
                            LogAckBody{SeqNum{1}, SeqNum{1}, true}});
    // ...but the channel still owes two copies: the payload is retained.
    EXPECT_EQ(sender.retained_count(), 1u);

    auto t1 = find_timer(sent, TimerKind::kRetxChannel);
    ASSERT_TRUE(t1.has_value());
    auto copy1 = sender.on_timer(t1->deadline, t1->id);
    const auto out1 = sent_of_type(copy1, PacketType::kRetransmission);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(out1[0].packet.header.group, GroupId{9});  // on the channel

    auto t2 = find_timer(copy1, TimerKind::kRetxChannel);
    ASSERT_TRUE(t2.has_value());
    auto copy2 = sender.on_timer(t2->deadline, t2->id);
    EXPECT_EQ(count_sent(copy2, PacketType::kRetransmission), 1u);
    // Copies exhausted: buffer released.
    EXPECT_EQ(sender.retained_count(), 0u);
    EXPECT_FALSE(find_timer(copy2, TimerKind::kRetxChannel).has_value());
}

}  // namespace
}  // namespace lbrm
