// DIS substrate tests: dead reckoning, terrain replication over real LBRM
// delivery, and the Section 2.1.2 battlefield bandwidth arithmetic.
#include <gtest/gtest.h>

#include "dis/bandwidth_model.hpp"
#include "dis/dead_reckoning.hpp"
#include "dis/terrain_db.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm::dis {
namespace {

using test::at;

// --- dead reckoning --------------------------------------------------------

EntityState state_at(double t, Vec3 p, Vec3 v, Vec3 a = {}) {
    return EntityState{EntityId{1}, p, v, a, at(t)};
}

TEST(DeadReckoning, ExtrapolationModels) {
    const EntityState s = state_at(0.0, {0, 0, 0}, {10, 0, 0}, {0, 2, 0});
    EXPECT_EQ(extrapolate(s, DrModel::kStatic, at(5.0)), (Vec3{0, 0, 0}));
    EXPECT_EQ(extrapolate(s, DrModel::kConstantVelocity, at(5.0)), (Vec3{50, 0, 0}));
    EXPECT_EQ(extrapolate(s, DrModel::kConstantAcceleration, at(5.0)),
              (Vec3{50, 25, 0}));
}

TEST(DeadReckoning, FirstObservationAlwaysPublishes) {
    DeadReckoner dr{DeadReckoningConfig{}};
    EXPECT_TRUE(dr.observe(state_at(0.0, {0, 0, 0}, {1, 0, 0})));
}

TEST(DeadReckoning, StraightLineMotionIsSuppressed) {
    DeadReckoningConfig config;
    config.error_threshold_m = 1.0;
    config.max_silence = secs(100.0);
    DeadReckoner dr{config};
    dr.observe(state_at(0.0, {0, 0, 0}, {10, 0, 0}));
    // Constant velocity: the model tracks exactly; nothing to publish.
    for (int i = 1; i <= 50; ++i)
        EXPECT_FALSE(dr.observe(state_at(i * 0.1, {i * 1.0, 0, 0}, {10, 0, 0})))
            << "tick " << i;
    EXPECT_EQ(dr.updates_published(), 0u);  // first publish isn't counted
    EXPECT_EQ(dr.updates_suppressed(), 50u);
}

TEST(DeadReckoning, ManeuverTriggersUpdate) {
    DeadReckoningConfig config;
    config.error_threshold_m = 1.0;
    DeadReckoner dr{config};
    dr.observe(state_at(0.0, {0, 0, 0}, {10, 0, 0}));
    // The tank turns: true position diverges from the DR track.
    EXPECT_FALSE(dr.observe(state_at(0.1, {1.0, 0.05, 0}, {10, 1, 0})));  // < 1 m off
    EXPECT_TRUE(dr.observe(state_at(1.0, {10.0, 3.0, 0}, {10, 5, 0})));   // 3 m off
}

TEST(DeadReckoning, KeepaliveAfterMaxSilence) {
    DeadReckoningConfig config;
    config.error_threshold_m = 1e9;  // never drift-triggered
    config.max_silence = secs(5.0);
    DeadReckoner dr{config};
    dr.observe(state_at(0.0, {0, 0, 0}, {0, 0, 0}));
    EXPECT_FALSE(dr.observe(state_at(4.9, {0, 0, 0}, {0, 0, 0})));
    EXPECT_TRUE(dr.observe(state_at(5.0, {0, 0, 0}, {0, 0, 0})));
}

TEST(DeadReckoning, RemoteViewMatchesExtrapolation) {
    DeadReckoner dr{DeadReckoningConfig{}};
    EXPECT_FALSE(dr.remote_view(at(0.0)).has_value());
    dr.observe(state_at(0.0, {0, 0, 0}, {2, 0, 0}));
    EXPECT_EQ(dr.remote_view(at(3.0)), (Vec3{6, 0, 0}));
}

// --- terrain database ---------------------------------------------------------

TEST(TerrainDb, AuthorityVersionsUpdates) {
    TerrainAuthority authority;
    authority.set_status(EntityId{7}, "bridge:INTACT");
    const auto payload = authority.set_status(EntityId{7}, "bridge:DESTROYED");
    ASSERT_NE(authority.find(EntityId{7}), nullptr);
    EXPECT_EQ(authority.find(EntityId{7})->version, 2u);

    const auto decoded = TerrainState::decode(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, "bridge:DESTROYED");
    EXPECT_EQ(decoded->version, 2u);
}

TEST(TerrainDb, ReplicaAppliesInOrder) {
    TerrainAuthority authority;
    TerrainReplica replica;
    const auto v1 = authority.set_status(EntityId{7}, "intact");
    const auto v2 = authority.set_status(EntityId{7}, "destroyed");
    EXPECT_TRUE(replica.apply(v1, at(1.0)));
    EXPECT_TRUE(replica.apply(v2, at(2.0)));
    EXPECT_TRUE(replica.agrees_with(authority, EntityId{7}));
    EXPECT_EQ(replica.applied_at(EntityId{7}), at(2.0));
}

TEST(TerrainDb, StaleAndDuplicateUpdatesIgnored) {
    TerrainAuthority authority;
    TerrainReplica replica;
    const auto v1 = authority.set_status(EntityId{7}, "intact");
    const auto v2 = authority.set_status(EntityId{7}, "destroyed");
    EXPECT_TRUE(replica.apply(v2, at(1.0)));
    // A late retransmission of v1 (receiver-reliable delivery is unordered)
    // must not regress the replica.
    EXPECT_FALSE(replica.apply(v1, at(2.0)));
    EXPECT_FALSE(replica.apply(v2, at(3.0)));  // duplicate
    EXPECT_EQ(replica.find(EntityId{7})->status, "destroyed");
    EXPECT_TRUE(replica.agrees_with(authority, EntityId{7}));
}

TEST(TerrainDb, GarbagePayloadRejected) {
    TerrainReplica replica;
    const std::vector<std::uint8_t> junk{1, 2, 3};
    EXPECT_FALSE(replica.apply(junk, at(1.0)));
    EXPECT_EQ(replica.size(), 0u);
}

TEST(TerrainDb, ReplicationOverLbrmWithLoss) {
    // Full-stack: authority updates flow over the simulated LBRM group with
    // a loss burst; every replica converges to the authority's view.
    sim::ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;
    sim::DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();

    TerrainAuthority authority;
    std::map<NodeId, TerrainReplica> replicas;
    for (NodeId r : topo.all_receivers()) replicas[r];

    scenario.start();
    scenario.send_update(authority.set_status(EntityId{1}, "bridge:INTACT"));
    scenario.run_for(secs(1.0));

    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<sim::BernoulliLoss>(1.0));
    scenario.send_update(authority.set_status(EntityId{1}, "bridge:DESTROYED"));
    scenario.send_update(authority.set_status(EntityId{2}, "minefield:ACTIVE"));
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<sim::BernoulliLoss>(0.0));
    scenario.run_for(secs(5.0));

    for (const auto& d : scenario.deliveries()) replicas[d.node].apply(d.payload, d.at);
    for (NodeId r : topo.all_receivers()) {
        EXPECT_TRUE(replicas[r].agrees_with(authority, EntityId{1})) << r;
        EXPECT_TRUE(replicas[r].agrees_with(authority, EntityId{2})) << r;
    }
}

// --- Section 2.1.2 battlefield arithmetic ------------------------------------

TEST(BandwidthModel, PaperHeadlineNumbers) {
    BattlefieldSpec spec;  // the paper's 100k + 100k, dt = 120 s
    const BandwidthBreakdown fixed = fixed_heartbeat_budget(spec);

    // "100,000 packets per second" of dynamic traffic.
    EXPECT_DOUBLE_EQ(fixed.dynamic_pps, 100'000.0);
    // "each would generate 4 packets per second, for a total of 400,000".
    EXPECT_NEAR(fixed.terrain_heartbeat_pps, 400'000.0, 1700.0);
    // "4/5 of the simulation's 500,000 packets per second".
    EXPECT_NEAR(fixed.total(), 500'000.0, 2000.0);
    EXPECT_NEAR(fixed.heartbeat_fraction(), 0.8, 0.005);
}

TEST(BandwidthModel, VariableHeartbeatCollapsesTheBudget) {
    BattlefieldSpec spec;
    const BandwidthBreakdown fixed = fixed_heartbeat_budget(spec);
    const BandwidthBreakdown variable = variable_heartbeat_budget(spec);
    // Heartbeat traffic drops by the Figure-5 factor (~53x)...
    EXPECT_NEAR(fixed.terrain_heartbeat_pps / variable.terrain_heartbeat_pps, 53.3, 1.0);
    // ...taking the whole simulation from 500k to ~107.5k packets/s.
    EXPECT_NEAR(variable.total(), 108'300.0, 1000.0);
    EXPECT_LT(variable.heartbeat_fraction(), 0.08);
}

TEST(BandwidthModel, DeadReckoningJustifiesTheDynamicRate) {
    // A tank driving mostly straight with occasional turns publishes ~1
    // PDU/s, matching the paper's observed average -- the premise of the
    // 100k pkt/s dynamic share.
    DeadReckoningConfig config;
    config.error_threshold_m = 2.0;
    config.max_silence = secs(5.0);
    DeadReckoner dr{config};

    Rng rng{7};
    Vec3 position{0, 0, 0};
    Vec3 velocity{10, 0, 0};
    int published = 0;
    const double tick = 1.0 / 30.0;  // 30 Hz simulation
    const double total_s = 120.0;
    for (double t = 0; t < total_s; t += tick) {
        if (rng.bernoulli(0.005)) {  // occasional turn
            velocity = Vec3{rng.uniform(-12, 12), rng.uniform(-12, 12), 0};
        }
        position = position + velocity * tick;
        if (dr.observe(EntityState{EntityId{1}, position, velocity, {}, at(t)}))
            ++published;
    }
    const double rate = published / total_s;
    EXPECT_GT(rate, 0.15);
    EXPECT_LT(rate, 3.0);  // same order as the paper's 1 PDU/s average
}

}  // namespace
}  // namespace lbrm::dis
