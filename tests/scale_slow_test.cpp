// Slow-labelled scale smoke: build and drive a ~1M-node DIS scenario end to
// end (topology build, lazy finalize, real protocol traffic) under the O(1)
// CountingObserver.  Gated behind LBRM_SLOW_TESTS so the default ctest run
// stays fast; CI runs it in a dedicated step via `ctest -L slow`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "sim/observer.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::sim;

TEST(ScaleSlow, MillionNodeFullProtocolSmoke) {
    if (std::getenv("LBRM_SLOW_TESTS") == nullptr)
        GTEST_SKIP() << "set LBRM_SLOW_TESTS=1 to run the ~1M-node smoke";

    ScenarioConfig config;
    config.topology.sites = 2000;
    config.topology.receivers_per_site = 499;
    config.sim.finalize_mode = SimFinalizeMode::kLazy;
    config.sim.path_cache_capacity = 1u << 16;
    auto counter = std::make_shared<CountingObserver>();
    config.observer = counter;

    DisScenario scenario(config);
    ASSERT_GE(scenario.network().node_count(), 1'000'000u);

    scenario.start();
    for (int i = 0; i < 3; ++i) {
        scenario.send_update(200);
        scenario.run_for(millis(50));
    }
    scenario.run_for(secs(0.5));

    EXPECT_EQ(counter->sends(), 3u);
    EXPECT_GT(counter->deliveries(), 0u);
    // Every receiver that got anything should have all three updates by now
    // (loss-free links): spot-check the aggregate.
    EXPECT_GT(counter->nodes_with_at_least(3), 0u);
    // Lazy build: nowhere near every interior row should have materialised.
    EXPECT_LT(scenario.network().site_rows_built(),
              scenario.network().node_count() / 2);
}

}  // namespace
