// Statistical-acknowledgement engine tests (Section 2.3): epoch lifecycle,
// designated-acker accounting, the multicast-vs-unicast retransmission
// decision, t_wait adaptation and the faulty-acker hotlist.
#include <gtest/gtest.h>

#include "core/stat_ack.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::sent_of_type;

constexpr NodeId kSelf{1};
constexpr GroupId kGroup{9};

Packet from_logger(NodeId logger, Body body) {
    return Packet{Header{kGroup, kSelf, logger}, std::move(body)};
}

StatAckConfig test_config(std::uint32_t k = 3) {
    StatAckConfig c;
    c.enabled = true;
    c.k = k;
    c.initial_t_wait = millis(100);
    c.epoch_interval = secs(30);
    c.remulticast_site_threshold = 2.0;
    return c;
}

/// Drive an engine through epoch setup with `volunteers` responding loggers.
/// Returns the time right after the epoch-open window closed.
TimePoint open_epoch(StatAckEngine& engine, std::vector<NodeId> volunteers,
                     TimePoint start = at(0.0)) {
    auto result = engine.start(start);
    // start() with a static size goes straight to AckerSelection.
    EXPECT_EQ(count_sent(result.actions, PacketType::kAckerSelection), 1u);
    const auto sel = sent_of_type(result.actions, PacketType::kAckerSelection).at(0);
    const auto& body = std::get<AckerSelectionBody>(sel.packet.body);

    TimePoint t = start + millis(10);
    for (NodeId v : volunteers)
        engine.on_packet(t, from_logger(v, AckerResponseBody{body.epoch}));

    const auto window = find_timer(result.actions, TimerKind::kEpochOpen);
    EXPECT_TRUE(window.has_value());
    engine.on_timer(window->deadline, {TimerKind::kEpochOpen, 0});
    return window->deadline;
}

TEST(StatAck, EpochOpensWithPackComputedFromGroupSize) {
    StatAckEngine engine{kSelf, kGroup, test_config(10)};
    engine.set_group_size(100.0);
    auto result = engine.start(at(0.0));
    const auto sel = sent_of_type(result.actions, PacketType::kAckerSelection);
    ASSERT_EQ(sel.size(), 1u);
    const auto& body = std::get<AckerSelectionBody>(sel[0].packet.body);
    EXPECT_NEAR(body.p_ack, 0.1, 1e-9);  // k / N_sl = 10 / 100
}

TEST(StatAck, ExpectedAcksEqualsVolunteerCount) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(50.0);
    open_epoch(engine, {NodeId{10}, NodeId{11}, NodeId{12}});
    EXPECT_EQ(engine.expected_acks(), 3u);
}

TEST(StatAck, AllAcksNoRemulticast) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(50.0);
    const TimePoint t0 = open_epoch(engine, {NodeId{10}, NodeId{11}, NodeId{12}});

    auto sent = engine.on_data_sent(t0 + millis(1), SeqNum{1});
    ASSERT_TRUE(find_timer(sent.actions, TimerKind::kAckWait).has_value());

    // All three designated ackers acknowledge promptly.
    for (std::uint32_t node : {10u, 11u, 12u}) {
        auto r = engine.on_packet(t0 + millis(20),
                                  from_logger(NodeId{node},
                                              AckBody{engine.current_epoch(), SeqNum{1}}));
        EXPECT_TRUE(r.remulticast.empty());
    }
    // Completing all ACKs cancels the wait timer.
    EXPECT_EQ(engine.remulticast_decisions(), 0u);
}

TEST(StatAck, MissingAcksTriggerRemulticast) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(500.0);  // each acker represents ~167 sites
    const TimePoint t0 = open_epoch(engine, {NodeId{10}, NodeId{11}, NodeId{12}});

    auto sent = engine.on_data_sent(t0 + millis(1), SeqNum{1});
    const auto wait = find_timer(sent.actions, TimerKind::kAckWait);
    ASSERT_TRUE(wait.has_value());

    // Only one ACK arrives; two missing ackers represent ~333 sites >> 2.
    engine.on_packet(t0 + millis(20),
                     from_logger(NodeId{10}, AckBody{engine.current_epoch(), SeqNum{1}}));
    auto decision = engine.on_timer(wait->deadline, wait->id);
    ASSERT_EQ(decision.remulticast.size(), 1u);
    EXPECT_EQ(decision.remulticast[0], SeqNum{1});
    EXPECT_EQ(engine.remulticast_decisions(), 1u);
}

TEST(StatAck, SmallLossBelowThresholdWaitsForNacks) {
    StatAckConfig c = test_config(10);
    c.remulticast_site_threshold = 5.0;
    StatAckEngine engine{kSelf, kGroup, c};
    engine.set_group_size(10.0);  // 10 loggers, 10 volunteers: 1 site each
    std::vector<NodeId> volunteers;
    for (std::uint32_t i = 0; i < 10; ++i) volunteers.push_back(NodeId{100 + i});
    const TimePoint t0 = open_epoch(engine, volunteers);

    auto sent = engine.on_data_sent(t0 + millis(1), SeqNum{1});
    const auto wait = find_timer(sent.actions, TimerKind::kAckWait);

    // 9 of 10 ack: one missing acker represents 1 site < threshold 5.
    for (std::uint32_t i = 0; i < 9; ++i)
        engine.on_packet(t0 + millis(20),
                         from_logger(NodeId{100 + i},
                                     AckBody{engine.current_epoch(), SeqNum{1}}));
    auto decision = engine.on_timer(wait->deadline, wait->id);
    EXPECT_TRUE(decision.remulticast.empty());
}

TEST(StatAck, RemulticastBudgetIsBounded) {
    StatAckConfig c = test_config();
    c.max_remulticasts = 2;
    StatAckEngine engine{kSelf, kGroup, c};
    engine.set_group_size(500.0);
    const TimePoint t0 = open_epoch(engine, {NodeId{10}, NodeId{11}});

    auto sent = engine.on_data_sent(t0 + millis(1), SeqNum{1});
    auto wait = find_timer(sent.actions, TimerKind::kAckWait);
    std::size_t remulticasts = 0;
    TimePoint t = wait->deadline;
    // Nobody ever ACKs; the engine may re-multicast at most max_remulticasts
    // times, then gives up on the packet.
    for (int i = 0; i < 10; ++i) {
        auto r = engine.on_timer(t, {TimerKind::kAckWait, 1});
        remulticasts += r.remulticast.size();
        t = t + engine.t_wait();
    }
    EXPECT_EQ(remulticasts, 2u);
}

TEST(StatAck, TWaitAdaptsTowardAckLatency) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(50.0);
    TimePoint t = open_epoch(engine, {NodeId{10}});

    const Duration initial = engine.t_wait();
    // Many packets whose single ACK arrives after 20 ms: t_wait EWMAs toward
    // 20 ms (alpha = 1/8).
    for (std::uint32_t s = 1; s <= 60; ++s) {
        t = t + millis(50);
        auto sent = engine.on_data_sent(t, SeqNum{s});
        engine.on_packet(t + millis(20),
                         from_logger(NodeId{10}, AckBody{engine.current_epoch(), SeqNum{s}}));
    }
    EXPECT_LT(engine.t_wait(), initial);
    EXPECT_NEAR(to_seconds(engine.t_wait()), 0.020, 0.010);
}

TEST(StatAck, SpuriousAckersGetBlacklisted) {
    StatAckConfig c = test_config();
    c.faulty_acker_limit = 3;
    StatAckEngine engine{kSelf, kGroup, c};
    engine.set_group_size(50.0);
    const TimePoint t0 = open_epoch(engine, {NodeId{10}});

    engine.on_data_sent(t0 + millis(1), SeqNum{1});
    // Node 66 was never designated yet ACKs everything (faulty logger).
    for (int i = 0; i < 3; ++i)
        engine.on_packet(t0 + millis(5),
                         from_logger(NodeId{66}, AckBody{engine.current_epoch(), SeqNum{1}}));
    EXPECT_EQ(engine.blacklisted_count(), 1u);
}

TEST(StatAck, ProbingPhaseEmitsProbesThenFirstEpoch) {
    StatAckConfig c = test_config();
    c.initial_probe_p = 0.5;
    c.probe_target_replies = 2;
    c.probe_repeats = 1;
    StatAckEngine engine{kSelf, kGroup, c};
    // No set_group_size: engine must probe first.
    auto result = engine.start(at(0.0));
    ASSERT_EQ(count_sent(result.actions, PacketType::kProbeRequest), 1u);
    const auto probe = sent_of_type(result.actions, PacketType::kProbeRequest)[0];
    const auto& body = std::get<ProbeRequestBody>(probe.packet.body);

    // Two replies satisfy the round; the next timer closes probing and the
    // engine immediately opens the first epoch.
    engine.on_packet(at(0.01), from_logger(NodeId{20}, ProbeReplyBody{body.round}));
    engine.on_packet(at(0.01), from_logger(NodeId{21}, ProbeReplyBody{body.round}));
    const auto window = find_timer(result.actions, TimerKind::kProbeRound);
    auto next = engine.on_timer(window->deadline, window->id);
    EXPECT_EQ(count_sent(next.actions, PacketType::kAckerSelection), 1u);
    EXPECT_FALSE(engine.probing());
}

TEST(StatAck, EpochRotationStartsNewSelection) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(50.0);
    open_epoch(engine, {NodeId{10}});
    auto rotation = engine.on_timer(at(30.0), {TimerKind::kEpochRotate, 0});
    EXPECT_EQ(count_sent(rotation.actions, PacketType::kAckerSelection), 1u);
    const auto sel = sent_of_type(rotation.actions, PacketType::kAckerSelection)[0];
    EXPECT_EQ(std::get<AckerSelectionBody>(sel.packet.body).epoch, EpochId{2});
}

TEST(StatAck, AcksFromPreviousEpochOverlapAreAccepted) {
    StatAckEngine engine{kSelf, kGroup, test_config()};
    engine.set_group_size(500.0);
    const TimePoint t0 = open_epoch(engine, {NodeId{10}, NodeId{11}});

    // Data sent in epoch 1.
    auto sent = engine.on_data_sent(t0 + millis(1), SeqNum{1});
    const auto wait = find_timer(sent.actions, TimerKind::kAckWait);

    // Epoch rotates before the ACKs arrive.
    auto rotation = engine.on_timer(t0 + millis(5), {TimerKind::kEpochRotate, 0});
    ASSERT_EQ(count_sent(rotation.actions, PacketType::kAckerSelection), 1u);

    // Old designated ackers answer for the epoch-1 packet: still counted.
    engine.on_packet(t0 + millis(10),
                     from_logger(NodeId{10}, AckBody{EpochId{1}, SeqNum{1}}));
    engine.on_packet(t0 + millis(10),
                     from_logger(NodeId{11}, AckBody{EpochId{1}, SeqNum{1}}));
    auto decision = engine.on_timer(wait->deadline, wait->id);
    EXPECT_TRUE(decision.remulticast.empty());
    EXPECT_EQ(engine.blacklisted_count(), 0u);
}

TEST(StatAck, DisabledEngineDoesNothingOnData) {
    StatAckConfig c = test_config();
    c.enabled = false;
    StatAckEngine engine{kSelf, kGroup, c};
    engine.set_group_size(50.0);
    auto r = engine.on_data_sent(at(1.0), SeqNum{1});
    EXPECT_TRUE(r.actions.empty());
}

}  // namespace
}  // namespace lbrm
