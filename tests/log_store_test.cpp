// Packet-log tests: retention policies (count / bytes / age / unbounded),
// release, gap queries.
#include <gtest/gtest.h>

#include "core/log_store.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::payload;

TEST(LogStore, InsertAndFind) {
    LogStore log;
    EXPECT_TRUE(log.insert(at(1), SeqNum{1}, EpochId{0}, payload(16)));
    const auto* entry = log.find(SeqNum{1});
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->payload, payload(16));
    EXPECT_EQ(entry->stored_at, at(1));
    EXPECT_EQ(log.payload_bytes(), 16u);
}

TEST(LogStore, InsertIsIdempotent) {
    LogStore log;
    EXPECT_TRUE(log.insert(at(1), SeqNum{1}, EpochId{0}, payload(16)));
    EXPECT_FALSE(log.insert(at(2), SeqNum{1}, EpochId{0}, payload(32, 1)));
    EXPECT_EQ(log.find(SeqNum{1})->payload.size(), 16u);  // first write wins
    EXPECT_EQ(log.size(), 1u);
}

TEST(LogStore, MaxEntriesEvictsOldest) {
    RetentionPolicy policy;
    policy.max_entries = 3;
    LogStore log{policy};
    for (std::uint32_t s = 1; s <= 5; ++s) log.insert(at(s), SeqNum{s}, EpochId{0}, payload(8));
    EXPECT_EQ(log.size(), 3u);
    EXPECT_FALSE(log.contains(SeqNum{1}));
    EXPECT_FALSE(log.contains(SeqNum{2}));
    EXPECT_TRUE(log.contains(SeqNum{3}));
    EXPECT_EQ(log.evicted(), 2u);
}

TEST(LogStore, MaxBytesEvictsOldest) {
    RetentionPolicy policy;
    policy.max_bytes = 100;
    LogStore log{policy};
    for (std::uint32_t s = 1; s <= 5; ++s) log.insert(at(s), SeqNum{s}, EpochId{0}, payload(40));
    EXPECT_LE(log.payload_bytes(), 100u);
    EXPECT_TRUE(log.contains(SeqNum{5}));
    EXPECT_FALSE(log.contains(SeqNum{1}));
}

TEST(LogStore, AgeExpiry) {
    RetentionPolicy policy;
    policy.max_age = secs(10.0);
    LogStore log{policy};
    log.insert(at(0), SeqNum{1}, EpochId{0}, payload(8));
    log.insert(at(5), SeqNum{2}, EpochId{0}, payload(8));
    EXPECT_EQ(log.expire(at(12)), 1u);  // seq 1 is 12 s old
    EXPECT_FALSE(log.contains(SeqNum{1}));
    EXPECT_TRUE(log.contains(SeqNum{2}));
}

TEST(LogStore, UnboundedKeepsEverything) {
    LogStore log;  // default policy: keep forever
    for (std::uint32_t s = 1; s <= 1000; ++s)
        log.insert(at(s), SeqNum{s}, EpochId{0}, payload(8));
    EXPECT_EQ(log.size(), 1000u);
    EXPECT_EQ(log.expire(at(100000)), 0u);
}

TEST(LogStore, ReleaseThrough) {
    LogStore log;
    for (std::uint32_t s = 1; s <= 10; ++s) log.insert(at(s), SeqNum{s}, EpochId{0}, payload(8));
    log.release_through(SeqNum{7});
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.lowest(), SeqNum{8});
    EXPECT_EQ(log.highest(), SeqNum{10});
    EXPECT_EQ(log.payload_bytes(), 24u);
}

TEST(LogStore, RemoveSingle) {
    LogStore log;
    log.insert(at(1), SeqNum{1}, EpochId{0}, payload(8));
    log.insert(at(1), SeqNum{2}, EpochId{0}, payload(8));
    EXPECT_TRUE(log.remove(SeqNum{1}));
    EXPECT_FALSE(log.remove(SeqNum{1}));
    EXPECT_TRUE(log.contains(SeqNum{2}));
    EXPECT_EQ(log.payload_bytes(), 8u);
}

TEST(LogStore, GapsBetween) {
    LogStore log;
    log.insert(at(1), SeqNum{1}, EpochId{0}, payload(8));
    log.insert(at(1), SeqNum{3}, EpochId{0}, payload(8));
    log.insert(at(1), SeqNum{6}, EpochId{0}, payload(8));
    EXPECT_EQ(log.gaps(SeqNum{1}, SeqNum{6}),
              (std::vector<SeqNum>{SeqNum{2}, SeqNum{4}, SeqNum{5}}));
    EXPECT_TRUE(log.gaps(SeqNum{0}, SeqNum{0}).empty());
}

TEST(LogStore, EmptyStoreQueries) {
    LogStore log;
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(log.lowest().has_value());
    EXPECT_FALSE(log.highest().has_value());
    EXPECT_EQ(log.find(SeqNum{1}), nullptr);
}

TEST(LogStore, WrapAroundOrdering) {
    LogStore log;
    log.insert(at(1), SeqNum{0xFFFFFFFEu}, EpochId{0}, payload(8));
    log.insert(at(2), SeqNum{0xFFFFFFFFu}, EpochId{0}, payload(8));
    log.insert(at(3), SeqNum{0}, EpochId{0}, payload(8));
    log.insert(at(4), SeqNum{1}, EpochId{0}, payload(8));
    EXPECT_EQ(log.lowest(), SeqNum{0xFFFFFFFEu});
    EXPECT_EQ(log.highest(), SeqNum{1});
    log.release_through(SeqNum{0});
    EXPECT_EQ(log.lowest(), SeqNum{1});
}

TEST(LogStore, ZeroLengthPayloadIsValid) {
    LogStore log;
    EXPECT_TRUE(log.insert(at(1), SeqNum{1}, EpochId{0}, {}));
    ASSERT_NE(log.find(SeqNum{1}), nullptr);
    EXPECT_TRUE(log.find(SeqNum{1})->payload.empty());
}

}  // namespace
}  // namespace lbrm
