// Group-size estimator tests (Section 2.3.3): probe escalation, repeat
// averaging, continuous EWMA refresh, and the Table 2 accuracy property
// (repeated probes shrink the estimate's standard deviation by 1/sqrt(n)).
#include <gtest/gtest.h>

#include "analysis/estimator_math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/group_estimate.hpp"

namespace lbrm {
namespace {

StatAckConfig config_with(double initial_p, std::uint32_t repeats,
                          std::uint32_t target = 10) {
    StatAckConfig c;
    c.initial_probe_p = initial_p;
    c.probe_repeats = repeats;
    c.probe_target_replies = target;
    c.alpha = 0.125;
    return c;
}

/// Simulate one probe round: N loggers reply independently with prob p.
std::uint32_t probe_replies(Rng& rng, std::uint32_t n, double p) {
    std::uint32_t replies = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        if (rng.bernoulli(p)) ++replies;
    return replies;
}

TEST(GroupEstimate, EscalatesUntilEnoughReplies) {
    GroupSizeEstimator est{config_with(0.01, 1, 10)};
    Rng rng{7};
    const std::uint32_t n = 1000;

    std::uint32_t rounds = 0;
    double last_p = 0.0;
    while (est.probing() && rounds < 20) {
        const auto spec = est.current_round();
        EXPECT_GT(spec.p, last_p * 0.99);  // p never decreases
        last_p = spec.p;
        const std::uint32_t replies = probe_replies(rng, n, spec.p);
        for (std::uint32_t i = 0; i < replies; ++i) est.on_probe_reply(spec.round);
        est.finish_round();
        ++rounds;
    }
    ASSERT_FALSE(est.probing());
    ASSERT_TRUE(est.estimate().has_value());
    EXPECT_NEAR(*est.estimate(), 1000.0, 350.0);  // within a few sigma
}

TEST(GroupEstimate, StaleRepliesIgnored) {
    GroupSizeEstimator est{config_with(0.5, 1, 1)};
    const auto spec = est.current_round();
    est.on_probe_reply(spec.round + 5);  // wrong round: must not count
    est.finish_round();                  // 0 replies -> escalate p to 1.0
    EXPECT_TRUE(est.probing());
    est.finish_round();  // p == 1.0 round with 0 replies -> converges
    ASSERT_TRUE(est.estimate().has_value());
    EXPECT_DOUBLE_EQ(*est.estimate(), 1.0);  // clamped floor
}

TEST(GroupEstimate, SetEstimateSkipsProbing) {
    GroupSizeEstimator est{config_with(0.05, 3)};
    est.set_estimate(500.0);
    EXPECT_FALSE(est.probing());
    EXPECT_DOUBLE_EQ(*est.estimate(), 500.0);
}

TEST(GroupEstimate, ContinuousRefreshTracksGrowth) {
    GroupSizeEstimator est{config_with(0.05, 1)};
    est.set_estimate(100.0);
    // The group doubles: k' samples now suggest 200 loggers at p = 0.1.
    for (int i = 0; i < 200; ++i) est.update_continuous(20, 0.1);
    EXPECT_NEAR(*est.estimate(), 200.0, 5.0);
}

TEST(GroupEstimate, ContinuousRefreshIgnoresZeroProbability) {
    GroupSizeEstimator est{config_with(0.05, 1)};
    est.set_estimate(100.0);
    est.update_continuous(50, 0.0);
    EXPECT_DOUBLE_EQ(*est.estimate(), 100.0);
}

TEST(GroupEstimate, NoEstimateBeforeFirstInformativeRound) {
    GroupSizeEstimator est{config_with(0.05, 3)};
    EXPECT_FALSE(est.estimate().has_value());
}

// --- Table 2: repeated probes reduce sigma by 1/sqrt(n) ---------------------

class ProbeAccuracy : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProbeAccuracy, RepeatedProbesShrinkStdDev) {
    const std::uint32_t probes = GetParam();
    const std::uint32_t n = 1000;
    const double p = 0.05;
    Rng rng{1234 + probes};

    // Monte Carlo: estimate N with `probes` averaged probes, many trials.
    RunningStats stats;
    for (int trial = 0; trial < 4000; ++trial) {
        double sum = 0.0;
        for (std::uint32_t j = 0; j < probes; ++j)
            sum += static_cast<double>(probe_replies(rng, n, p)) / p;
        stats.add(sum / probes);
    }

    const double expected_sigma = analysis::repeated_probe_stddev(n, p, probes);
    EXPECT_NEAR(stats.mean(), 1000.0, 10.0);
    EXPECT_NEAR(stats.sample_stddev(), expected_sigma, expected_sigma * 0.1)
        << "probes = " << probes;
}

INSTANTIATE_TEST_SUITE_P(Table2, ProbeAccuracy, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(EstimatorMath, Table2ReductionColumn) {
    EXPECT_DOUBLE_EQ(analysis::stddev_reduction_factor(1), 1.0);
    EXPECT_NEAR(analysis::stddev_reduction_factor(2), 0.707, 0.001);
    EXPECT_NEAR(analysis::stddev_reduction_factor(3), 0.577, 0.001);
    EXPECT_NEAR(analysis::stddev_reduction_factor(4), 0.500, 0.001);
    EXPECT_NEAR(analysis::stddev_reduction_factor(5), 0.447, 0.001);
}

TEST(EstimatorMath, SigmaFormula) {
    // sigma_1 = sqrt(N (1-p) / p)
    EXPECT_NEAR(analysis::single_probe_stddev(1000, 0.05), std::sqrt(1000 * 0.95 / 0.05),
                1e-9);
    EXPECT_THROW((void)analysis::single_probe_stddev(1000, 0.0), std::invalid_argument);
    EXPECT_THROW((void)analysis::repeated_probe_stddev(1000, 0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lbrm
