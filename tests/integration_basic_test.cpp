// End-to-end integration tests on the simulated DIS topology: live
// delivery, loss recovery through the logging hierarchy, freshness and
// heartbeat-driven detection.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace lbrm::sim {
namespace {

ScenarioConfig small_config() {
    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 4;
    config.stat_ack.enabled = false;  // exercised separately
    return config;
}

TEST(IntegrationBasic, LosslessDeliveryReachesEveryReceiver) {
    DisScenario scenario(small_config());
    scenario.start();
    scenario.run_for(secs(0.1));

    scenario.send_update(128);
    scenario.run_for(secs(1.0));

    const auto times = scenario.delivery_times(SeqNum{1});
    EXPECT_EQ(times.size(), 12u);  // 3 sites x 4 receivers
    for (const auto& [node, at] : times) {
        const Duration latency = at - *scenario.sent_at(SeqNum{1});
        EXPECT_GT(latency, Duration::zero());
        EXPECT_LT(latency, millis(100)) << "node " << node;
    }
}

TEST(IntegrationBasic, MultipleUpdatesAllDelivered) {
    DisScenario scenario(small_config());
    scenario.start();
    for (int i = 0; i < 10; ++i) {
        scenario.send_update(64);
        scenario.run_for(millis(200));
    }
    scenario.run_for(secs(1.0));

    for (std::uint32_t s = 1; s <= 10; ++s)
        EXPECT_EQ(scenario.delivery_times(SeqNum{s}).size(), 12u) << "seq " << s;
}

TEST(IntegrationBasic, TailCircuitLossRecoveredViaSecondaryLogger) {
    DisScenario scenario(small_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(0.1));

    // Prime: one lossless packet so loggers and receivers are in sync.
    scenario.send_update(128);
    scenario.run_for(secs(1.0));

    // Site 0's incoming tail circuit drops everything for a moment.
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(128);
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));

    // Heartbeats (h_min = 250 ms) reveal the gap; the secondary fetches the
    // packet from the primary and repairs the site.
    scenario.run_for(secs(5.0));

    const auto times = scenario.delivery_times(SeqNum{2});
    EXPECT_EQ(times.size(), 12u);
    // Receivers at the lossy site got it recovered.
    int recovered = 0;
    for (const auto& d : scenario.deliveries())
        if (d.seq == SeqNum{2} && d.recovered) ++recovered;
    EXPECT_GE(recovered, 4);
}

TEST(IntegrationBasic, HeartbeatBoundsDetectionOfLastPacketLoss) {
    ScenarioConfig config = small_config();
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(128);
    scenario.run_for(secs(1.0));

    // Drop the *final* data packet on one site's tail: only heartbeats can
    // reveal it (there is no subsequent data packet).
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(128);
    scenario.run_for(millis(100));
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(0.0));
    const TimePoint sent = *scenario.sent_at(SeqNum{2});

    scenario.run_for(secs(5.0));

    // All receivers eventually have seq 2.
    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 12u);

    // Loss was detected at the lossy site within ~h_min plus network delays,
    // not h_max.
    bool found = false;
    for (const auto& r : scenario.notices()) {
        if (r.kind == NoticeKind::kLossDetected && r.arg == 2) {
            found = true;
            EXPECT_LT(r.at - sent, secs(1.0));
        }
    }
    EXPECT_TRUE(found);
}

TEST(IntegrationBasic, FreshnessLostWhenSourceGoesSilent) {
    ScenarioConfig config = small_config();
    config.max_idle = secs(0.25);
    DisScenario scenario(config);
    scenario.start();
    scenario.send_update(64);
    scenario.run_for(secs(1.0));
    EXPECT_EQ(scenario.notice_count(NoticeKind::kFreshnessLost), 0u);

    // Kill the source: heartbeats stop; every receiver notices within MaxIT.
    scenario.network().set_node_down(scenario.topology().source, true);
    scenario.run_for(secs(2.0));
    EXPECT_GE(scenario.notice_count(NoticeKind::kFreshnessLost), 12u);
}

}  // namespace
}  // namespace lbrm::sim
