// Multi-source / multi-group deployments.
//
// The paper's model is fine-grained: one multicast group per source
// ("multicast sources in certain distributed applications...each
// containing a single data source"), and logging processes are shared:
// "a single logging process may serve as the primary logger for one group
// and as the secondary logger for another" (Section 2.2.1, footnote).
// These tests run two sources with crossed logging duties on one simulated
// network and verify full isolation and recovery per group.
#include <gtest/gtest.h>

#include <map>

#include "sim/network.hpp"
#include "sim/sim_host.hpp"
#include "sim/simulator.hpp"
#include "tests/test_util.hpp"

namespace lbrm::sim {
namespace {

using test::payload;

/// Two sites; source A lives at site 1, source B at site 2.  The logger
/// host at each site is PRIMARY for its local source and SECONDARY for the
/// remote one -- the paper's crossed configuration.
struct CrossedDeployment {
    Simulator simulator;
    Network network{simulator, 99};

    NodeId backbone, router1, router2;
    NodeId source_a, source_b, logger1, logger2;
    std::vector<NodeId> receivers1, receivers2;

    GroupId group_a{1}, group_b{2};

    std::map<NodeId, std::map<std::uint32_t, std::vector<SeqNum>>> delivered;
    // delivered[node][group] -> seqs

    CrossedDeployment() {
        const LinkSpec lan{micros(500), 10e6, Duration::zero()};
        const LinkSpec wan{millis(10), 45e6, Duration::zero()};

        backbone = network.add_node(SiteId{0}, true);
        router1 = network.add_node(SiteId{1}, true);
        router2 = network.add_node(SiteId{2}, true);
        network.add_link(router1, backbone, wan);
        network.add_link(router2, backbone, wan);

        source_a = network.add_node(SiteId{1});
        logger1 = network.add_node(SiteId{1});
        source_b = network.add_node(SiteId{2});
        logger2 = network.add_node(SiteId{2});
        network.add_link(source_a, router1, lan);
        network.add_link(logger1, router1, lan);
        network.add_link(source_b, router2, lan);
        network.add_link(logger2, router2, lan);

        for (int i = 0; i < 2; ++i) {
            NodeId r1 = network.add_node(SiteId{1});
            network.add_link(r1, router1, lan);
            receivers1.push_back(r1);
            NodeId r2 = network.add_node(SiteId{2});
            network.add_link(r2, router2, lan);
            receivers2.push_back(r2);
        }
        network.finalize();

        wire_source(source_a, group_a, logger1);
        wire_source(source_b, group_b, logger2);

        // logger1: primary for A (above), secondary for B; vice versa.
        wire_logger(logger1, group_a, source_a, LoggerRole::kPrimary, kNoNode);
        wire_logger(logger1, group_b, source_b, LoggerRole::kSecondary, logger2);
        wire_logger(logger2, group_b, source_b, LoggerRole::kPrimary, kNoNode);
        wire_logger(logger2, group_a, source_a, LoggerRole::kSecondary, logger1);
        network.join(group_a, logger1);
        network.join(group_b, logger1);
        network.join(group_a, logger2);
        network.join(group_b, logger2);

        // Every receiver subscribes to both groups, using its *site* logger
        // for both (primary for the local group, secondary for the remote).
        for (NodeId r : receivers1) wire_receiver(r, logger1);
        for (NodeId r : receivers2) wire_receiver(r, logger2);

        for (NodeId n : {source_a, source_b, logger1, logger2}) start_host(n);
        for (NodeId r : receivers1) start_host(r);
        for (NodeId r : receivers2) start_host(r);
    }

    void wire_source(NodeId self, GroupId group, NodeId primary) {
        SenderConfig config;
        config.self = self;
        config.group = group;
        config.primary_logger = primary;
        config.stat_ack.enabled = false;
        network.attach_host(self).protocol().add_sender(config);
    }

    void wire_logger(NodeId self, GroupId group, NodeId source, LoggerRole role,
                     NodeId upstream) {
        LoggerConfig config;
        config.self = self;
        config.group = group;
        config.source = source;
        config.role = role;
        config.upstream = upstream;
        network.attach_host(self).protocol().add_logger(config, self.value() * 31 +
                                                                    group.value());
    }

    void wire_receiver(NodeId self, NodeId site_logger) {
        for (auto [group, source] :
             {std::pair{group_a, source_a}, std::pair{group_b, source_b}}) {
            ReceiverConfig config;
            config.self = self;
            config.group = group;
            config.source = source;
            config.logger = site_logger;
            AppHandlers handlers;
            const std::uint32_t g = group.value();
            handlers.on_data = [this, self, g](TimePoint, const DeliverData& d) {
                delivered[self][g].push_back(d.seq);
            };
            network.attach_host(self).protocol().add_receiver(config, handlers);
            network.join(group, self);
        }
    }

    void start_host(NodeId n) { network.host(n)->protocol().start(simulator.now()); }

    void send(NodeId source, std::uint8_t salt) {
        network.host(source)->protocol().send(simulator.now(), payload(32, salt));
    }
};

TEST(MultiGroup, TwoSourcesDeliverIndependently) {
    CrossedDeployment net;
    net.send(net.source_a, 1);
    net.send(net.source_b, 2);
    net.simulator.run_for(secs(1.0));

    for (NodeId r : net.receivers1) {
        EXPECT_EQ(net.delivered[r][1].size(), 1u) << "receiver " << r << " group A";
        EXPECT_EQ(net.delivered[r][2].size(), 1u) << "receiver " << r << " group B";
    }
    for (NodeId r : net.receivers2) {
        EXPECT_EQ(net.delivered[r][1].size(), 1u);
        EXPECT_EQ(net.delivered[r][2].size(), 1u);
    }
}

TEST(MultiGroup, SharedLoggerServesBothRolesAtOnce) {
    CrossedDeployment net;
    net.send(net.source_a, 1);
    net.send(net.source_b, 2);
    net.simulator.run_for(secs(1.0));

    // logger1 logged group A via LogStore (primary) AND group B off the
    // multicast stream (secondary): the host carries two LoggerCores.
    SimHost* host = net.network.host(net.logger1);
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->protocol().core_count(), 2u);
}

TEST(MultiGroup, CrossGroupRecoveryThroughTheSharedLogger) {
    CrossedDeployment net;
    // Prime both streams.
    net.send(net.source_a, 1);
    net.send(net.source_b, 2);
    net.simulator.run_for(secs(1.0));

    // Site 1 loses source B's next packet on the WAN: receivers at site 1
    // recover group-B data from logger1 acting as a *secondary* for B
    // (which itself fetches from logger2, B's primary).
    net.network.set_loss(net.backbone, net.router1, std::make_unique<BernoulliLoss>(1.0));
    net.send(net.source_b, 3);
    net.simulator.run_for(millis(30));
    net.network.set_loss(net.backbone, net.router1, std::make_unique<BernoulliLoss>(0.0));
    net.simulator.run_for(secs(5.0));

    for (NodeId r : net.receivers1)
        EXPECT_EQ(net.delivered[r][2].size(), 2u) << "receiver " << r;

    // Group A traffic was never disturbed.
    net.send(net.source_a, 4);
    net.simulator.run_for(secs(1.0));
    for (NodeId r : net.receivers2) EXPECT_EQ(net.delivered[r][1].size(), 2u);
}

TEST(MultiGroup, GroupIsolationUnderCrossTraffic) {
    CrossedDeployment net;
    for (int i = 0; i < 5; ++i) {
        net.send(net.source_a, static_cast<std::uint8_t>(i));
        net.send(net.source_b, static_cast<std::uint8_t>(i + 100));
        net.simulator.run_for(millis(300));
    }
    net.simulator.run_for(secs(1.0));

    // Sequence spaces are independent per group: both streams run 1..5.
    for (NodeId r : net.receivers1) {
        ASSERT_EQ(net.delivered[r][1].size(), 5u);
        ASSERT_EQ(net.delivered[r][2].size(), 5u);
        for (std::uint32_t i = 0; i < 5; ++i) {
            EXPECT_EQ(net.delivered[r][1][i], SeqNum{i + 1});
            EXPECT_EQ(net.delivered[r][2][i], SeqNum{i + 1});
        }
    }
}

}  // namespace
}  // namespace lbrm::sim
