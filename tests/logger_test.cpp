// LoggerCore unit tests across all three roles: primary handoff + replica
// fan-out + dual-sequence LogAcks, secondary stream logging + NACK service +
// re-multicast decisions + upstream fetch, replica promotion, acker duty.
#include <gtest/gtest.h>

#include "core/logger.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::payload;
using test::sent_of_type;

constexpr NodeId kSource{1};
constexpr NodeId kPrimary{2};
constexpr NodeId kReplica{3};
constexpr NodeId kSecondary{4};
constexpr NodeId kReceiverA{10};
constexpr NodeId kReceiverB{11};
constexpr NodeId kReceiverC{12};
constexpr GroupId kGroup{5};

LoggerConfig primary_config() {
    LoggerConfig c;
    c.self = kPrimary;
    c.group = kGroup;
    c.source = kSource;
    c.role = LoggerRole::kPrimary;
    c.replicas = {kReplica};
    return c;
}

LoggerConfig secondary_config() {
    LoggerConfig c;
    c.self = kSecondary;
    c.group = kGroup;
    c.source = kSource;
    c.role = LoggerRole::kSecondary;
    c.upstream = kPrimary;
    c.remulticast_request_threshold = 3;
    c.fetch_delay = millis(20);
    return c;
}

LoggerConfig replica_config() {
    LoggerConfig c;
    c.self = kReplica;
    c.group = kGroup;
    c.source = kSource;
    c.role = LoggerRole::kReplica;
    c.upstream = kPrimary;
    return c;
}

Packet from(NodeId sender, Body body) {
    return Packet{Header{kGroup, kSource, sender}, std::move(body)};
}

Packet log_store(SeqNum seq, std::uint8_t salt = 0) {
    return from(kSource, LogStoreBody{seq, EpochId{0}, payload(16, salt)});
}

Packet mcast_data(SeqNum seq, std::uint8_t salt = 0) {
    return from(kSource, DataBody{seq, EpochId{0}, payload(16, salt)});
}

// --- primary ---------------------------------------------------------------

TEST(PrimaryLogger, LogStoreStoredAckedAndFannedOut) {
    LoggerCore logger{primary_config(), 1};
    auto actions = logger.on_packet(at(1.0), log_store(SeqNum{1}));

    // Dual-sequence ack to the source: logged at primary, replica not yet.
    const auto acks = sent_of_type(actions, PacketType::kLogAck);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0].to, kSource);
    const auto& ack = std::get<LogAckBody>(acks[0].packet.body);
    EXPECT_EQ(ack.primary_seq, SeqNum{1});
    EXPECT_EQ(ack.replica_seq, SeqNum{0});
    EXPECT_TRUE(ack.has_replica);

    // Replica update fan-out.
    const auto updates = sent_of_type(actions, PacketType::kReplicaUpdate);
    ASSERT_EQ(updates.size(), 1u);
    EXPECT_EQ(updates[0].to, kReplica);
    EXPECT_TRUE(logger.store().contains(SeqNum{1}));
}

TEST(PrimaryLogger, ReplicaAckAdvancesReplicaSeq) {
    LoggerCore logger{primary_config(), 1};
    logger.on_packet(at(1.0), log_store(SeqNum{1}));
    auto actions = logger.on_packet(at(1.1), from(kReplica, ReplicaAckBody{SeqNum{1}}));
    const auto acks = sent_of_type(actions, PacketType::kLogAck);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(std::get<LogAckBody>(acks[0].packet.body).replica_seq, SeqNum{1});
}

TEST(PrimaryLogger, DuplicateLogStoreIsIdempotent) {
    LoggerCore logger{primary_config(), 1};
    logger.on_packet(at(1.0), log_store(SeqNum{1}));
    auto again = logger.on_packet(at(1.1), log_store(SeqNum{1}));
    // Re-acked (the source clearly missed our ack) but not re-fanned-out.
    EXPECT_EQ(count_sent(again, PacketType::kLogAck), 1u);
    EXPECT_EQ(count_sent(again, PacketType::kReplicaUpdate), 0u);
}

TEST(PrimaryLogger, ContiguousAckWithOutOfOrderArrival) {
    LoggerCore logger{primary_config(), 1};
    logger.on_packet(at(1.0), log_store(SeqNum{1}));
    auto gap = logger.on_packet(at(1.1), log_store(SeqNum{3}));
    // Cumulative ack stays at 1 until 2 arrives.
    EXPECT_EQ(std::get<LogAckBody>(sent_of_type(gap, PacketType::kLogAck)[0].packet.body)
                  .primary_seq,
              SeqNum{1});
    auto fill = logger.on_packet(at(1.2), log_store(SeqNum{2}));
    EXPECT_EQ(std::get<LogAckBody>(sent_of_type(fill, PacketType::kLogAck)[0].packet.body)
                  .primary_seq,
              SeqNum{3});
}

TEST(PrimaryLogger, ServesNackUnicast) {
    LoggerCore logger{primary_config(), 1};
    logger.on_packet(at(1.0), log_store(SeqNum{1}, 9));
    auto actions = logger.on_packet(at(2.0), from(kReceiverA, NackBody{{SeqNum{1}}}));
    const auto rt = sent_of_type(actions, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt[0].to, kReceiverA);
    EXPECT_EQ(std::get<RetransmissionBody>(rt[0].packet.body).payload, payload(16, 9));
    EXPECT_EQ(logger.nacks_served_unicast(), 1u);
}

TEST(PrimaryLogger, ReplicaRetryResendsUnacked) {
    LoggerCore logger{primary_config(), 1};
    auto first = logger.on_packet(at(1.0), log_store(SeqNum{1}));
    auto timer = find_timer(first, TimerKind::kReplicaRetry);
    ASSERT_TRUE(timer.has_value());
    // Replica never acked: retry re-sends the update and re-arms.
    auto retry = logger.on_timer(timer->deadline, timer->id);
    EXPECT_EQ(count_sent(retry, PacketType::kReplicaUpdate), 1u);
    EXPECT_TRUE(find_timer(retry, TimerKind::kReplicaRetry).has_value());
}

// --- secondary ----------------------------------------------------------------

TEST(SecondaryLogger, LogsTheMulticastStream) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    logger.on_packet(at(1.1), mcast_data(SeqNum{2}));
    EXPECT_EQ(logger.store().size(), 2u);
    EXPECT_EQ(logger.contiguous_high_water(), SeqNum{2});
}

TEST(SecondaryLogger, ServesLocalNackFromLog) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto actions = logger.on_packet(at(1.5), from(kReceiverA, NackBody{{SeqNum{1}}}));
    const auto rt = sent_of_type(actions, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt[0].to, kReceiverA);
    EXPECT_FALSE(std::get<RetransmissionBody>(rt[0].packet.body).multicast);
}

TEST(SecondaryLogger, ManyRequestsTriggerSiteScopedRemulticast) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto a1 = logger.on_packet(at(1.5), from(kReceiverA, NackBody{{SeqNum{1}}}));
    auto a2 = logger.on_packet(at(1.501), from(kReceiverB, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(a1, PacketType::kRetransmission) +
                  count_sent(a2, PacketType::kRetransmission),
              2u);  // below threshold: unicasts
    // Third request within the window crosses the threshold.
    auto a3 = logger.on_packet(at(1.502), from(kReceiverC, NackBody{{SeqNum{1}}}));
    const auto rt = sent_of_type(a3, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt[0].to, kNoNode);  // multicast
    EXPECT_EQ(rt[0].scope, McastScope::kSite);
    EXPECT_TRUE(std::get<RetransmissionBody>(rt[0].packet.body).multicast);
    EXPECT_EQ(logger.nacks_served_multicast(), 1u);

    // A fourth request inside the same window is absorbed by the multicast.
    auto a4 = logger.on_packet(at(1.503), from(NodeId{13}, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(a4, PacketType::kRetransmission), 0u);
}

TEST(SecondaryLogger, WindowExpiryResetsRemulticastCounting) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto a1 = logger.on_packet(at(1.5), from(kReceiverA, NackBody{{SeqNum{1}}}));
    auto window = find_timer(a1, TimerKind::kRemcastWindow);
    ASSERT_TRUE(window.has_value());
    logger.on_timer(window->deadline, window->id);
    // Window closed: counting restarts, so two more requests stay unicast.
    auto a2 = logger.on_packet(at(2.0), from(kReceiverB, NackBody{{SeqNum{1}}}));
    auto a3 = logger.on_packet(at(2.001), from(kReceiverC, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(a2, PacketType::kRetransmission), 1u);
    EXPECT_EQ(count_sent(a3, PacketType::kRetransmission), 1u);
    EXPECT_EQ(sent_of_type(a3, PacketType::kRetransmission)[0].to, kReceiverC);
}

TEST(SecondaryLogger, StreamGapTriggersUpstreamFetch) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto gap = logger.on_packet(at(1.1), mcast_data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    ASSERT_TRUE(delay.has_value());
    EXPECT_EQ(delay->deadline, at(1.1) + millis(20));  // fetch_delay

    auto fetch = logger.on_timer(delay->deadline, delay->id);
    const auto nacks = sent_of_type(fetch, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, kPrimary);
    EXPECT_EQ(std::get<NackBody>(nacks[0].packet.body).missing,
              std::vector<SeqNum>{SeqNum{2}});
    EXPECT_EQ(logger.upstream_fetches(), 1u);
}

TEST(SecondaryLogger, NackForUnloggedSeqFetchesAndServesRequesters) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    // Local receivers ask for seq 2, which we never saw either (whole-site
    // loss on the tail circuit).
    auto a1 = logger.on_packet(at(1.2), from(kReceiverA, NackBody{{SeqNum{2}}}));
    auto delay = find_timer(a1, TimerKind::kNackDelay);
    ASSERT_TRUE(delay.has_value());
    logger.on_packet(at(1.21), from(kReceiverB, NackBody{{SeqNum{2}}}));
    auto fetch = logger.on_timer(delay->deadline, delay->id);
    EXPECT_EQ(count_sent(fetch, PacketType::kNack), 1u);

    // The primary's retransmission arrives: since the secondary itself
    // missed the packet, the whole site likely did -> one site-scoped
    // re-multicast repairs everyone.
    auto repair = logger.on_packet(
        at(1.4), from(kPrimary, RetransmissionBody{SeqNum{2}, EpochId{0}, false, payload(16)}));
    const auto rt = sent_of_type(repair, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt[0].to, kNoNode);
    EXPECT_EQ(rt[0].scope, McastScope::kSite);
}

TEST(SecondaryLogger, FetchRetriesOnSilence) {
    LoggerCore logger{secondary_config(), 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto gap = logger.on_packet(at(1.1), mcast_data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    auto fetch = logger.on_timer(delay->deadline, delay->id);
    auto retry_timer = find_timer(fetch, TimerKind::kNackRetry);
    ASSERT_TRUE(retry_timer.has_value());
    auto retry = logger.on_timer(retry_timer->deadline, retry_timer->id);
    EXPECT_EQ(count_sent(retry, PacketType::kNack), 1u);
}

TEST(SecondaryLogger, FetchExhaustionRefreshesUpstreamInsteadOfAbandoning) {
    // A full fetch-attempt budget going unanswered means the configured
    // upstream is dark (crashed, mid-failover) or does not hold the packet
    // yet -- not that the packet is dead.  The secondary asks the source
    // who the primary is *now*, parks the fetch for a cold pause, and
    // retries against the refreshed target.
    LoggerConfig c = secondary_config();
    c.fetch_max_retries = 1;
    c.fetch_cold_cycles = 1;
    LoggerCore logger{c, 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    auto gap = logger.on_packet(at(1.1), mcast_data(SeqNum{3}));
    auto delay = find_timer(gap, TimerKind::kNackDelay);
    ASSERT_TRUE(delay.has_value());
    auto fetch = logger.on_timer(delay->deadline, delay->id);
    ASSERT_EQ(count_sent(fetch, PacketType::kNack), 1u);
    EXPECT_EQ(sent_of_type(fetch, PacketType::kNack)[0].to, kPrimary);

    // Budget exhausted on the next retry tick: a PrimaryQuery goes to the
    // source, no abandonment, and the fetch keeps its retry timer.
    auto t = find_timer(fetch, TimerKind::kNackRetry);
    ASSERT_TRUE(t.has_value());
    TimePoint now = t->deadline;
    Actions parked = logger.on_timer(now, t->id);
    EXPECT_EQ(count_sent(parked, PacketType::kNack), 0u);
    ASSERT_EQ(count_sent(parked, PacketType::kPrimaryQuery), 1u);
    EXPECT_EQ(sent_of_type(parked, PacketType::kPrimaryQuery)[0].to, kSource);
    EXPECT_TRUE(test::notices(parked, NoticeKind::kRecoveryFailed).empty());

    // The source names the promoted replica; after the cold pause the next
    // fetch goes there.
    logger.on_packet(now + millis(10), from(kSource, PrimaryReplyBody{NodeId{30}}));
    EXPECT_EQ(logger.upstream(), NodeId{30});
    Actions last = std::move(parked);
    std::vector<test::Sent> nacks;
    for (int i = 0; i < 10 && nacks.empty(); ++i) {
        auto rt = find_timer(last, TimerKind::kNackRetry);
        ASSERT_TRUE(rt.has_value());
        now = rt->deadline;
        last = logger.on_timer(now, rt->id);
        nacks = sent_of_type(last, PacketType::kNack);
    }
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, NodeId{30});

    // The single cold cycle is spent: the next exhaustion is terminal.
    for (int i = 0; i < 10; ++i) {
        if (!test::notices(last, NoticeKind::kRecoveryFailed).empty()) break;
        auto rt = find_timer(last, TimerKind::kNackRetry);
        ASSERT_TRUE(rt.has_value());
        now = rt->deadline;
        last = logger.on_timer(now, rt->id);
    }
    EXPECT_EQ(test::notices(last, NoticeKind::kRecoveryFailed).size(), 1u);
    EXPECT_FALSE(logger.detector().is_missing(SeqNum{2}));
}

TEST(SecondaryLogger, VolunteersAsDesignatedAcker) {
    LoggerConfig c = secondary_config();
    LoggerCore logger{c, /*rng_seed=*/7};
    // p_ack = 1.0 guarantees volunteering regardless of seed.
    auto actions =
        logger.on_packet(at(1.0), from(kSource, AckerSelectionBody{EpochId{1}, 1.0}));
    const auto responses = sent_of_type(actions, PacketType::kAckerResponse);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].to, kSource);
    EXPECT_TRUE(logger.is_designated_acker());

    // Designated: every data packet of the epoch gets a unicast ACK.
    auto data = logger.on_packet(at(1.5), from(kSource, DataBody{SeqNum{1}, EpochId{1},
                                                                 payload(8)}));
    const auto acks = sent_of_type(data, PacketType::kAck);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(std::get<AckBody>(acks[0].packet.body).seq, SeqNum{1});
    EXPECT_EQ(logger.acks_sent(), 1u);
}

TEST(SecondaryLogger, NeverVolunteersAtZeroProbability) {
    LoggerCore logger{secondary_config(), 7};
    auto actions =
        logger.on_packet(at(1.0), from(kSource, AckerSelectionBody{EpochId{1}, 0.0}));
    EXPECT_EQ(count_sent(actions, PacketType::kAckerResponse), 0u);
    EXPECT_FALSE(logger.is_designated_acker());
}

TEST(SecondaryLogger, RecoveredPacketOfDesignatedEpochIsAcked) {
    LoggerCore logger{secondary_config(), 7};
    logger.on_packet(at(1.0), from(kSource, AckerSelectionBody{EpochId{1}, 1.0}));
    // The packet arrives via retransmission, not the live stream: Section
    // 2.3.1 says designated ackers ack "each packet of the epoch they
    // receive", however it got there.
    auto repair = logger.on_packet(
        at(1.5), from(kPrimary, RetransmissionBody{SeqNum{1}, EpochId{1}, false, payload(8)}));
    EXPECT_EQ(count_sent(repair, PacketType::kAck), 1u);
}

TEST(SecondaryLogger, AnswersProbesProbabilistically) {
    LoggerCore logger{secondary_config(), 7};
    auto yes = logger.on_packet(at(1.0), from(kSource, ProbeRequestBody{1, 1.0}));
    EXPECT_EQ(count_sent(yes, PacketType::kProbeReply), 1u);
    auto no = logger.on_packet(at(1.1), from(kSource, ProbeRequestBody{2, 0.0}));
    EXPECT_EQ(count_sent(no, PacketType::kProbeReply), 0u);
}

TEST(Logger, AnswersDiscoveryQueries) {
    LoggerCore logger{secondary_config(), 1};
    auto actions = logger.on_packet(at(1.0),
                                    from(kReceiverA, DiscoveryQueryBody{1, 0xAB}));
    const auto replies = sent_of_type(actions, PacketType::kDiscoveryReply);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].to, kReceiverA);
    const auto& body = std::get<DiscoveryReplyBody>(replies[0].packet.body);
    EXPECT_EQ(body.logger, kSecondary);
    EXPECT_EQ(body.nonce, 0xABu);
    EXPECT_FALSE(body.is_primary);
}

// --- replica -----------------------------------------------------------------

TEST(ReplicaLogger, StoresUpdatesAndAcksCumulatively) {
    LoggerCore logger{replica_config(), 1};
    auto a1 = logger.on_packet(at(1.0),
                               from(kPrimary, ReplicaUpdateBody{SeqNum{1}, EpochId{0},
                                                                payload(8)}));
    const auto acks = sent_of_type(a1, PacketType::kReplicaAck);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(std::get<ReplicaAckBody>(acks[0].packet.body).cumulative_seq, SeqNum{1});

    // Out of order: cumulative ack does not jump the gap.
    auto a3 = logger.on_packet(at(1.1),
                               from(kPrimary, ReplicaUpdateBody{SeqNum{3}, EpochId{0},
                                                                payload(8)}));
    EXPECT_EQ(std::get<ReplicaAckBody>(sent_of_type(a3, PacketType::kReplicaAck)[0]
                                           .packet.body)
                  .cumulative_seq,
              SeqNum{1});
}

TEST(ReplicaLogger, PromotionMakesItPrimary) {
    LoggerCore logger{replica_config(), 1};
    logger.on_packet(at(1.0), from(kPrimary, ReplicaUpdateBody{SeqNum{1}, EpochId{0},
                                                               payload(8)}));
    auto actions = logger.on_packet(at(2.0), from(kSource, PromoteRequestBody{}));
    const auto replies = sent_of_type(actions, PacketType::kPromoteReply);
    ASSERT_EQ(replies.size(), 1u);
    const auto& body = std::get<PromoteReplyBody>(replies[0].packet.body);
    EXPECT_TRUE(body.accepted);
    EXPECT_EQ(body.log_high_water, SeqNum{1});
    EXPECT_EQ(logger.role(), LoggerRole::kPrimary);

    // Now accepts LogStore like any primary.
    auto store = logger.on_packet(at(2.1), log_store(SeqNum{2}));
    EXPECT_EQ(count_sent(store, PacketType::kLogAck), 1u);
}

TEST(ReplicaLogger, SecondaryIgnoresPromotion) {
    LoggerCore logger{secondary_config(), 1};
    auto actions = logger.on_packet(at(2.0), from(kSource, PromoteRequestBody{}));
    const auto replies = sent_of_type(actions, PacketType::kPromoteReply);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_FALSE(std::get<PromoteReplyBody>(replies[0].packet.body).accepted);
    EXPECT_EQ(logger.role(), LoggerRole::kSecondary);
}

TEST(Logger, RetentionPolicyEnforcedOnNackService) {
    LoggerConfig c = secondary_config();
    c.retention.max_age = secs(1.0);
    LoggerCore logger{c, 1};
    logger.on_packet(at(1.0), mcast_data(SeqNum{1}));
    logger.on_packet(at(1.1), mcast_data(SeqNum{2}));
    // Much later the packets have aged out: a NACK triggers an upstream
    // fetch instead of local service.
    auto actions = logger.on_packet(at(10.0), from(kReceiverA, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(actions, PacketType::kRetransmission), 0u);
    EXPECT_TRUE(find_timer(actions, TimerKind::kNackDelay).has_value());
}

}  // namespace
}  // namespace lbrm
