// Primary-logger failure and recovery (Section 2.2.3), plus expanding-ring
// logger discovery (Section 2.2.1), end-to-end on the simulated topology.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace lbrm::sim {
namespace {

ScenarioConfig failover_config() {
    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 3;
    config.topology.replicas = 2;
    config.stat_ack.enabled = false;
    return config;
}

TEST(IntegrationFailover, ReplicaMirrorsTheLog) {
    DisScenario scenario(failover_config());
    scenario.start();
    for (int i = 0; i < 5; ++i) {
        scenario.send_update(std::size_t{64});
        scenario.run_for(millis(300));
    }
    scenario.run_for(secs(1.0));
    EXPECT_EQ(scenario.primary_logger().store().size(), 5u);
    EXPECT_EQ(scenario.primary_logger().contiguous_high_water(), SeqNum{5});
    // Source buffers were released once replicas acked (Section 2.2.3).
    EXPECT_EQ(scenario.sender().retained_count(), 0u);
}

TEST(IntegrationFailover, PrimaryDeathPromotesReplicaAndStreamContinues) {
    DisScenario scenario(failover_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    // Kill the primary logger.
    network.set_node_down(topo.primary, true);
    scenario.send_update(std::size_t{64});  // seq 2: LogStore will time out
    scenario.run_for(secs(3.0));

    // The sender promoted the first replica.
    EXPECT_GE(scenario.notice_count(NoticeKind::kPrimaryFailover), 1u);
    EXPECT_EQ(scenario.sender().current_primary(), topo.replicas[0]);

    // New data flows and is logged by the new primary.
    scenario.send_update(std::size_t{64});  // seq 3
    scenario.run_for(secs(2.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{3}).size(), 9u);
}

TEST(IntegrationFailover, RecoveryWorksThroughPromotedPrimary) {
    DisScenario scenario(failover_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_node_down(topo.primary, true);
    scenario.send_update(std::size_t{64});  // seq 2
    scenario.run_for(secs(3.0));            // failover completes

    // Now lose a packet at one site; the secondary must fetch it from the
    // *new* primary.  Secondaries cache the primary address and fall back
    // to... the configured upstream is the dead primary, so this exercises
    // the receiver-side escalation path too.
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});  // seq 3
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));

    scenario.run_for(secs(10.0));
    // All receivers eventually hold seq 3 (site-0 receivers via escalated
    // recovery: local secondary failed upstream -> receiver asks source ->
    // learns the promoted primary).
    EXPECT_EQ(scenario.delivery_times(SeqNum{3}).size(), 9u);
}

TEST(IntegrationFailover, SourceSurvivesTotalReplicaLoss) {
    // Primary and all replicas die: the source falls back to serving as its
    // own primary so the stream never stalls.
    DisScenario scenario(failover_config());
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_node_down(topo.primary, true);
    for (NodeId r : topo.replicas) network.set_node_down(r, true);
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(5.0));

    EXPECT_TRUE(scenario.sender().is_self_primary());
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(2.0));
    EXPECT_EQ(scenario.delivery_times(SeqNum{3}).size(), 9u);
}

TEST(IntegrationDiscovery, ReceiversFindTheirSiteLogger) {
    ScenarioConfig config = failover_config();
    config.discover_loggers = true;  // no static logger configuration
    DisScenario scenario(config);
    scenario.start();
    scenario.run_for(secs(2.0));

    // Every receiver found a logger (its site's secondary answers the first
    // site-scoped ring).
    EXPECT_GE(scenario.notice_count(NoticeKind::kLoggerChanged), 9u);
    for (const auto& site : scenario.topology().sites) {
        for (NodeId r : site.receivers) {
            EXPECT_EQ(scenario.receiver(r).current_logger(), site.secondary)
                << "receiver " << r;
        }
    }
}

TEST(IntegrationDiscovery, RecoveryWorksWithDiscoveredLoggers) {
    ScenarioConfig config = failover_config();
    config.discover_loggers = true;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(2.0));  // discovery settles
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(1.0));

    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(5.0));

    EXPECT_EQ(scenario.delivery_times(SeqNum{2}).size(), 9u);
}

}  // namespace
}  // namespace lbrm::sim
