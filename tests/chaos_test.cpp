// Chaos & failover suite (sim/chaos.hpp; DESIGN.md "Chaos suite").
//
// The protocol's headline claim is *receiver reliability*: no subscribed
// receiver may permanently lose a packet, no matter what the log hierarchy
// and the network do underneath (Section 2.2).  These tests script the
// faults the paper worries about -- correlated site blackouts, primary
// crashes and failover storms (2.2.3), partition-and-rejoin with group
// re-estimation (2.3.3), crash-on-receive / send-and-crash, and logger
// rotation under churn (2.2.1) -- and pin three properties:
//   * lost_forever == 0 once every fault heals and the run drains,
//   * fault-free runs are bit-identical with the chaos layer idle
//     (packet-trace hash + full observation trace), and
//   * the failover edge cases (stale PromoteReply, retry racing failover,
//     candidate exhaustion) resolve cleanly instead of double-promoting or
//     stalling silently.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/protocol_host.hpp"
#include "sim/chaos.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm::sim {
namespace {

using lbrm::test::at;
using lbrm::test::count_sent;
using lbrm::test::find_timer;
using lbrm::test::notices;
using lbrm::test::payload;
using lbrm::test::sent_of_type;

// --- sender failover edge cases (unit) -------------------------------------

constexpr NodeId kSource{1};
constexpr NodeId kPrimary{2};
constexpr NodeId kReplicaA{3};
constexpr NodeId kReplicaB{4};
constexpr GroupId kGroup{5};

SenderConfig failover_config() {
    SenderConfig c;
    c.self = kSource;
    c.group = kGroup;
    c.primary_logger = kPrimary;
    c.replicas = {kReplicaA, kReplicaB};
    c.stat_ack.enabled = false;
    c.log_store_retry = millis(50);
    c.log_store_max_retries = 3;
    return c;
}

Packet from(NodeId sender, Body body) {
    return Packet{Header{kGroup, kSource, sender}, std::move(body)};
}

/// Exhaust the LogStore retry budget so the sender enters failover; returns
/// the actions of the transition (PromoteRequest to replica A) and leaves
/// `t` just past the last retry.
Actions drive_into_failover(SenderCore& sender, TimePoint& t) {
    Actions last;
    for (std::uint32_t i = 0; i <= failover_config().log_store_max_retries; ++i) {
        last = sender.on_timer(t, {TimerKind::kLogStoreRetry, 0});
        t = t + millis(50);
    }
    return last;
}

TEST(SenderFailover, LogStoreRetryDuringFailoverIsInert) {
    // A send() that races the failover arms a fresh kLogStoreRetry timer.
    // When it fires mid-failover it must not restart the promotion chain
    // (double promotion); the failover round owns recovery until it ends.
    SenderCore sender{failover_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));
    TimePoint t = at(1.05);
    auto entered = drive_into_failover(sender, t);
    ASSERT_EQ(count_sent(entered, PacketType::kPromoteRequest), 1u);

    sender.send(t, payload(16));  // races the in-flight failover
    auto stray = sender.on_timer(t + millis(50), {TimerKind::kLogStoreRetry, 0});
    EXPECT_EQ(count_sent(stray, PacketType::kPromoteRequest), 0u);
    EXPECT_EQ(count_sent(stray, PacketType::kLogStore), 0u);
    EXPECT_TRUE(stray.empty());

    // The original candidate still wins, exactly once.
    auto replay = sender.on_packet(t + millis(60),
                                   from(kReplicaA, PromoteReplyBody{SeqNum{0}, true}));
    EXPECT_EQ(sender.current_primary(), kReplicaA);
    EXPECT_EQ(notices(replay, NoticeKind::kPrimaryFailover).size(), 1u);
}

TEST(SenderFailover, StalePromoteReplyAfterCandidateAdvanceIgnored) {
    SenderCore sender{failover_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));
    TimePoint t = at(1.05);
    auto entered = drive_into_failover(sender, t);

    // Replica A stays silent; the kFailover timer advances to replica B.
    auto timer = find_timer(entered, TimerKind::kFailover);
    ASSERT_TRUE(timer.has_value());
    auto next = sender.on_timer(timer->deadline, timer->id);
    ASSERT_EQ(sent_of_type(next, PacketType::kPromoteRequest)[0].to, kReplicaB);

    // A's reply limps in late: it is no longer the candidate and must be
    // ignored cleanly -- no primary switch, no replay, no notice.
    auto stale = sender.on_packet(timer->deadline + millis(1),
                                  from(kReplicaA, PromoteReplyBody{SeqNum{0}, true}));
    EXPECT_TRUE(stale.empty());
    EXPECT_NE(sender.current_primary(), kReplicaA);

    // B's acceptance still lands normally.
    auto won = sender.on_packet(timer->deadline + millis(2),
                                from(kReplicaB, PromoteReplyBody{SeqNum{0}, true}));
    EXPECT_EQ(sender.current_primary(), kReplicaB);
    EXPECT_EQ(notices(won, NoticeKind::kPrimaryFailover).size(), 1u);
}

TEST(SenderFailover, ExhaustionFallsBackToSelfPrimaryLoudly) {
    SenderCore sender{failover_config()};
    obs::Metrics metrics;
    sender.bind_metrics(metrics.protocol());
    sender.start(at(0.0));
    sender.send(at(1.0), payload(64, 7));
    TimePoint t = at(1.05);
    auto entered = drive_into_failover(sender, t);

    // Both replicas stay silent: two kFailover timeouts exhaust the list.
    auto timer = find_timer(entered, TimerKind::kFailover);
    ASSERT_TRUE(timer.has_value());
    auto second = sender.on_timer(timer->deadline, timer->id);
    timer = find_timer(second, TimerKind::kFailover);
    ASSERT_TRUE(timer.has_value());
    auto terminal = sender.on_timer(timer->deadline, timer->id);

    // Terminal: a loud notice pair instead of a silent stall.
    const auto exhausted = notices(terminal, NoticeKind::kFailoverExhausted);
    ASSERT_EQ(exhausted.size(), 1u);
    EXPECT_EQ(exhausted[0].arg, 2u);  // replicas tried
    const auto promoted = notices(terminal, NoticeKind::kPrimaryFailover);
    ASSERT_EQ(promoted.size(), 1u);
    EXPECT_EQ(promoted[0].arg, kSource.value());
    EXPECT_TRUE(sender.is_self_primary());
    EXPECT_EQ(metrics.value("proto.sender.failover_exhausted"), 1u);

    // The retained buffer keeps serving recovery directly.
    auto nack = sender.on_packet(t, from(NodeId{9}, NackBody{{SeqNum{1}}}));
    EXPECT_EQ(count_sent(nack, PacketType::kRetransmission), 1u);
}

TEST(SenderFailover, PromoteReplyAfterExhaustionIgnored) {
    SenderCore sender{failover_config()};
    sender.start(at(0.0));
    sender.send(at(1.0), payload(16));
    TimePoint t = at(1.05);
    auto entered = drive_into_failover(sender, t);
    auto timer = find_timer(entered, TimerKind::kFailover);
    auto second = sender.on_timer(timer->deadline, timer->id);
    timer = find_timer(second, TimerKind::kFailover);
    sender.on_timer(timer->deadline, timer->id);  // exhaustion: self-primary
    ASSERT_TRUE(sender.is_self_primary());

    // A replica's acceptance arriving after the round closed must not
    // resurrect the failover.
    auto ghost = sender.on_packet(timer->deadline + millis(5),
                                  from(kReplicaB, PromoteReplyBody{SeqNum{0}, true}));
    EXPECT_TRUE(ghost.empty());
    EXPECT_TRUE(sender.is_self_primary());
}

// --- dormant sweep vs reentrant wake (unit) --------------------------------

class SinkNetwork final : public NetworkService {
public:
    void send_unicast(NodeId, const Packet&) override {}
    void send_multicast(const Packet&, McastScope) override {}
    void join_group(GroupId) override {}
    void leave_group(GroupId) override {}
};

class SinkTimers final : public TimerService {
public:
    void arm(std::uint32_t, TimerId, TimePoint) override {}
    void cancel(std::uint32_t, TimerId) override {}
};

TEST(DormantSweep, ReentrantWakeDuringSweepNeitherSkipsNorDoubles) {
    // A sweep notice handler that wakes *another* dormant record mid-sweep
    // mutates the vector being iterated.  The tag-cursor loop must still
    // visit every record present at entry exactly once and skip the one the
    // handler woke (it is no longer dormant, so the sweep no longer owns
    // its watchdog).
    SinkNetwork net;
    SinkTimers timers;
    ProtocolHost host{net, timers};
    std::vector<std::pair<std::uint32_t, NoticeKind>> seen;

    auto tmpl = std::make_shared<ProtocolHost::DormantReceiverTemplate>();
    tmpl->config.group = kGroup;
    tmpl->config.source = kSource;
    tmpl->make_handlers = [&host, &seen](NodeId self) {
        AppHandlers handlers;
        handlers.on_notice = [&host, &seen, self](TimePoint, const Notice& n) {
            seen.emplace_back(self.value(), n.kind);
            if (self == NodeId{11}) {
                ASSERT_NE(host.receiver_for(NodeId{13}), nullptr);  // reentrant wake
            }
        };
        return handlers;
    };

    host.defer_dormant_watchdogs();
    for (std::uint32_t node = 10; node <= 13; ++node)
        host.add_dormant_receiver(tmpl, NodeId{node}, kPrimary);
    host.start(at(0.0));
    ASSERT_EQ(host.dormant_count(), 4u);

    host.fire_dormant_watchdogs(at(10.0));  // far past every idle deadline

    // 13 woke while 11's notice ran: it keeps its freshness (a live core now
    // owns its watchdog); 10, 11, 12 each lost freshness exactly once.
    const std::vector<std::pair<std::uint32_t, NoticeKind>> expected = {
        {10, NoticeKind::kFreshnessLost},
        {11, NoticeKind::kFreshnessLost},
        {12, NoticeKind::kFreshnessLost},
    };
    EXPECT_EQ(seen, expected);
    EXPECT_EQ(host.dormant_count(), 3u);
    EXPECT_EQ(host.dormant_wakes(), 1u);

    // A second sweep is a no-op: nothing fires twice.
    host.fire_dormant_watchdogs(at(20.0));
    EXPECT_EQ(seen.size(), 3u);
}

// --- schedule generation (unit) --------------------------------------------

TEST(ChaosSchedule, CorrelatedBlackoutsAreSeedDeterministicAndBounded) {
    const auto generate = [](std::uint64_t seed) {
        Rng rng{seed};
        return ChaosSchedule::correlated_blackouts(rng, 8, 12, secs(5.0),
                                                   millis(100), millis(800));
    };
    const ChaosSchedule a = generate(42);
    const ChaosSchedule b = generate(42);
    ASSERT_EQ(a.events.size(), 12u);
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        const auto& ea = std::get<SiteBlackout>(a.events[i]);
        const auto& eb = std::get<SiteBlackout>(b.events[i]);
        EXPECT_EQ(ea.site, eb.site);
        EXPECT_EQ(ea.at, eb.at);
        EXPECT_EQ(ea.duration, eb.duration);
        EXPECT_LT(ea.site, 8u);
        EXPECT_GE(ea.at, Duration::zero());
        EXPECT_LE(ea.at, secs(5.0));
        EXPECT_GE(ea.duration, millis(100));
        EXPECT_LE(ea.duration, millis(800));
    }
}

TEST(ChaosEngine, ArmTwiceThrows) {
    DisScenario scenario{ScenarioConfig{}};
    ChaosEngine engine{scenario, ChaosSchedule{}};
    engine.arm();
    EXPECT_THROW(engine.arm(), std::logic_error);
}

// --- scenario A/B harness ---------------------------------------------------

struct Trace {
    std::vector<std::tuple<std::uint64_t, std::uint32_t, TimePoint, bool>> deliveries;
    std::vector<std::tuple<std::uint64_t, NoticeKind, TimePoint>> notices;
    std::uint64_t nacks_sent = 0;
    std::uint64_t recovered = 0;
    std::uint64_t packet_hash = 0;  ///< FNV-1a over every link transmission

    friend bool operator==(const Trace& a, const Trace& b) = default;
};

struct Fnv1a {
    std::uint64_t h = 14695981039346656037ULL;
    void feed(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    }
    template <typename T>
    void feed_value(T v) {
        feed(&v, sizeof v);
    }
};

/// Human-readable first divergence between two traces (failure diagnostics:
/// the byte dump gtest prints for tuple vectors is useless).
std::string first_difference(const Trace& a, const Trace& b) {
    std::ostringstream out;
    const auto when = [](TimePoint t) { return to_seconds(t.time_since_epoch()); };
    if (a.deliveries != b.deliveries) {
        const std::size_t n = std::min(a.deliveries.size(), b.deliveries.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (a.deliveries[i] == b.deliveries[i]) continue;
            const auto& [an, as, aat, ar] = a.deliveries[i];
            const auto& [bn, bs, bat, br] = b.deliveries[i];
            out << "deliveries[" << i << "]: node " << an << " seq " << as
                << " at " << when(aat) << " rec " << ar << "  vs  node " << bn
                << " seq " << bs << " at " << when(bat) << " rec " << br;
            return out.str();
        }
        out << "delivery counts " << a.deliveries.size() << " vs "
            << b.deliveries.size();
        return out.str();
    }
    if (a.notices != b.notices) {
        const std::size_t n = std::min(a.notices.size(), b.notices.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (a.notices[i] == b.notices[i]) continue;
            const auto& [an, ak, aat] = a.notices[i];
            const auto& [bn, bk, bat] = b.notices[i];
            out << "notices[" << i << "]: node " << an << " kind "
                << static_cast<int>(ak) << " at " << when(aat) << "  vs  node "
                << bn << " kind " << static_cast<int>(bk) << " at " << when(bat);
            return out.str();
        }
        out << "notice counts " << a.notices.size() << " vs " << b.notices.size();
        return out.str();
    }
    out << "nacks " << a.nacks_sent << "/" << b.nacks_sent << " recovered "
        << a.recovered << "/" << b.recovered << " hash " << a.packet_hash << "/"
        << b.packet_hash;
    return out.str();
}

ScenarioConfig chaos_config() {
    ScenarioConfig config;
    config.topology.sites = 4;
    config.topology.receivers_per_site = 4;
    config.topology.replicas = 2;
    config.seed = 77;
    return config;
}

void hash_packets(DisScenario& scenario, Fnv1a& hash) {
    scenario.network().set_tap([&hash](TimePoint at, const Link& link,
                                       const Packet& packet, bool delivered) {
        hash.feed_value(at.time_since_epoch().count());
        hash.feed_value(link.from().value());
        hash.feed_value(link.to().value());
        hash.feed_value(static_cast<std::uint8_t>(delivered));
        const std::vector<std::uint8_t> bytes = encode(packet);
        hash.feed(bytes.data(), bytes.size());
    });
}

Trace collect(DisScenario& scenario, const Fnv1a& hash) {
    Trace out;
    for (const auto& d : scenario.deliveries())
        out.deliveries.emplace_back(d.node.value(), d.seq.value(), d.at, d.recovered);
    for (const auto& n : scenario.notices())
        out.notices.emplace_back(n.node.value(), n.kind, n.at);
    out.nacks_sent = scenario.metrics().value("proto.receiver.nacks_sent");
    out.recovered = scenario.metrics().value("proto.receiver.recovered");
    out.packet_hash = hash.h;
    return out;
}

/// Idle second (watchdogs fire), four bursts through the lossy phase, then a
/// long drain so every recovery completes.
void standard_traffic(DisScenario& scenario) {
    scenario.run_for(secs(1.2));
    for (int burst = 0; burst < 4; ++burst) {
        for (int i = 0; i < 6; ++i) scenario.send_update(std::size_t{200});
        scenario.run_for(millis(250));
    }
    scenario.run_for(secs(6.0));
}

/// Full chaos run: lossy tail on site 1, optional fault schedule, standard
/// traffic.  `engine_out` (optional) receives the engine for log inspection.
Trace run_chaos(ScenarioConfig config, const ChaosSchedule* schedule) {
    DisScenario scenario{std::move(config)};
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<BernoulliLoss>(0.25));
    Fnv1a hash;
    hash_packets(scenario, hash);

    std::unique_ptr<ChaosEngine> engine;
    if (schedule != nullptr) {
        engine = std::make_unique<ChaosEngine>(scenario, *schedule);
    }
    scenario.start();
    if (engine) engine->arm();
    standard_traffic(scenario);
    return collect(scenario, hash);
}

// --- idle-engine bit-identity ------------------------------------------------

TEST(ChaosIdle, ArmedEmptyScheduleIsBitIdenticalToNoEngine) {
    const Trace bare = run_chaos(chaos_config(), nullptr);
    const ChaosSchedule empty;
    const Trace idle = run_chaos(chaos_config(), &empty);
    EXPECT_EQ(bare, idle);
    EXPECT_FALSE(bare.deliveries.empty());
    EXPECT_GT(bare.nacks_sent, 0u);  // the loss model actually bit
}

TEST(ChaosIdle, IdleEngineTouchesNoCounters) {
    DisScenario scenario{chaos_config()};
    ChaosEngine engine{scenario, ChaosSchedule{}};
    scenario.start();
    engine.arm();
    scenario.send_update(std::size_t{200});
    scenario.run_for(secs(2.0));
    EXPECT_EQ(engine.faults_applied(), 0u);
    EXPECT_EQ(engine.revivals(), 0u);
    EXPECT_TRUE(engine.log().empty());
    EXPECT_EQ(scenario.metrics().value("chaos.site_blackouts"), 0u);
    EXPECT_EQ(scenario.metrics().value("chaos.refinalizes"), 0u);
}

// --- deterministic replay ----------------------------------------------------

TEST(ChaosEngine, ScriptedRunReplaysBitIdentically) {
    ChaosSchedule schedule;
    schedule.events.push_back(SiteBlackout{2, secs(1.4), millis(600)});
    schedule.events.push_back(PrimaryCrash{secs(1.5), secs(2.0)});
    const Trace first = run_chaos(chaos_config(), &schedule);
    const Trace second = run_chaos(chaos_config(), &schedule);
    EXPECT_EQ(first, second);
}

TEST(ChaosEngine, ScheduleGenerationNeverPerturbsTheRun) {
    // correlated_blackouts consumes only the Rng it is handed; generating a
    // (discarded) schedule mid-run must not shift a single packet outcome.
    ChaosSchedule schedule;
    schedule.events.push_back(SiteBlackout{2, secs(1.4), millis(600)});

    const Trace plain = run_chaos(chaos_config(), &schedule);

    DisScenario scenario{chaos_config()};
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<BernoulliLoss>(0.25));
    Fnv1a hash;
    hash_packets(scenario, hash);
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    scenario.run_for(secs(1.2));
    Rng side_stream{991};
    const ChaosSchedule discarded = ChaosSchedule::correlated_blackouts(
        side_stream, 4, 20, secs(3.0), millis(50), millis(500));
    ASSERT_EQ(discarded.events.size(), 20u);
    for (int burst = 0; burst < 4; ++burst) {
        for (int i = 0; i < 6; ++i) scenario.send_update(std::size_t{200});
        scenario.run_for(millis(250));
    }
    scenario.run_for(secs(6.0));
    EXPECT_EQ(collect(scenario, hash), plain);
}

// --- fault classes end to end ------------------------------------------------

TEST(ChaosBlackout, SiteBlackoutHealsWithNothingLostForever) {
    ChaosSchedule schedule;
    schedule.events.push_back(SiteBlackout{2, secs(1.3), millis(700)});

    DisScenario scenario{chaos_config()};
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    standard_traffic(scenario);  // bursts at 1.2s..2.2s straddle the outage

    EXPECT_EQ(engine.faults_applied(), 1u);
    EXPECT_EQ(engine.revivals(), 1u);
    EXPECT_EQ(scenario.metrics().value("chaos.site_blackouts"), 1u);
    EXPECT_EQ(scenario.metrics().value("chaos.revivals"), 1u);
    EXPECT_EQ(scenario.metrics().value("chaos.refinalizes"), 2u);
    ASSERT_EQ(engine.windows().size(), 1u);

    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_GT(audit.expected, 0u);
    EXPECT_EQ(audit.lost_forever, 0u);
    // Blacked-out receivers closed their gaps through recovery, not luck.
    EXPECT_GT(scenario.metrics().value("proto.receiver.recovered"), 0u);

    const RecoveryStats stats =
        settle_latency(scenario, TimePoint{}, scenario.simulator().now());
    EXPECT_GT(stats.samples, 0u);
    EXPECT_GE(stats.p99_s, stats.p50_s);
    EXPECT_GE(stats.max_s, stats.p99_s);
}

TEST(ChaosPartition, PartitionAndRejoinReestimatesGroupSize) {
    ScenarioConfig config = chaos_config();
    config.topology.sites = 8;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 5;
    config.stat_ack.initial_probe_p = 0.2;
    config.stat_ack.probe_repeats = 2;
    config.stat_ack.probe_target_replies = 3;
    config.stat_ack.epoch_interval = secs(2.0);

    ChaosSchedule schedule;
    schedule.events.push_back(SitePartition{1, secs(6.0), secs(4.0)});

    DisScenario scenario{config};
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();

    // Warm up: probing converges on the acker population.
    scenario.run_for(secs(5.0));
    const double pre = scenario.sender().stat_ack().n_sl();
    ASSERT_GT(pre, 0.0);

    // Steady sends through partition (6s..10s) and past the rejoin.
    for (int i = 0; i < 40; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(250));
    }
    scenario.run_for(secs(8.0));  // drain: rejoined site recovers everything

    EXPECT_EQ(scenario.metrics().value("chaos.partitions"), 1u);
    EXPECT_EQ(engine.revivals(), 1u);
    // Partition isolates the site's hosts without killing them; the source
    // never loses its primary in this fault class.
    EXPECT_EQ(scenario.notice_count(NoticeKind::kPrimaryFailover), 0u);

    // Group-size re-estimation reconverged after the rejoin.
    const double post = scenario.sender().stat_ack().n_sl();
    EXPECT_GT(post, 0.5 * pre);
    EXPECT_LT(post, 2.0 * pre);

    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_GT(audit.expected, 0u);
    EXPECT_EQ(audit.lost_forever, 0u);
}

TEST(ChaosFailover, StormPromotesExactlyOncePerPromotion) {
    // The primary and the first replica die together; the failover chain
    // must walk past the dead candidate and promote replicas[1] with exactly
    // one kPrimaryFailover -- no double promotion from retries racing the
    // round (the sender.cpp guard this PR adds).
    ScenarioConfig config = chaos_config();
    ChaosSchedule schedule;
    schedule.events.push_back(PrimaryCrash{millis(1400), secs(4.0)});
    schedule.events.push_back(ReplicaCrash{0, millis(1400), Duration::zero()});

    DisScenario scenario{config};
    // Loss on two receiver LAN drops: recovery keeps running against the
    // site secondaries while the log hierarchy is mid-failover.
    const auto& site2 = scenario.topology().sites[2];
    scenario.network().set_loss(site2.router, site2.receivers[0],
                                std::make_unique<BernoulliLoss>(0.25));
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    standard_traffic(scenario);

    EXPECT_EQ(scenario.metrics().value("chaos.primary_crashes"), 1u);
    EXPECT_EQ(scenario.metrics().value("chaos.replica_crashes"), 1u);
    EXPECT_EQ(scenario.notice_count(NoticeKind::kFailoverExhausted), 0u);
    const NodeId promoted = scenario.topology().replicas[1];
    EXPECT_EQ(scenario.sender().current_primary(), promoted);

    // Exactly one promotion: the source announces the switch once and the
    // promoted replica announces its new role once -- nobody else, and
    // neither of them twice (the double-promotion shape the retry/failover
    // guard exists to prevent).
    std::map<std::uint32_t, int> failover_notices_by_node;
    for (const auto& n : scenario.notices())
        if (n.kind == NoticeKind::kPrimaryFailover)
            ++failover_notices_by_node[n.node.value()];
    const std::map<std::uint32_t, int> expected_failovers = {
        {scenario.topology().source.value(), 1},
        {promoted.value(), 1},
    };
    EXPECT_EQ(failover_notices_by_node, expected_failovers);

    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_GT(audit.expected, 0u);
    EXPECT_EQ(audit.lost_forever, 0u);
}

TEST(ChaosFailover, ExhaustionSurfacesTerminalNoticeAndSelfPrimary) {
    ScenarioConfig config = chaos_config();
    config.topology.replicas = 1;
    ChaosSchedule schedule;
    schedule.events.push_back(PrimaryCrash{millis(1400), Duration::zero()});
    schedule.events.push_back(ReplicaCrash{0, millis(1400), Duration::zero()});

    DisScenario scenario{config};
    const auto& site1 = scenario.topology().sites[1];
    scenario.network().set_loss(site1.router, site1.receivers[1],
                                std::make_unique<BernoulliLoss>(0.25));
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    standard_traffic(scenario);

    // The whole log hierarchy is gone: the source says so once, loudly, and
    // keeps the stream alive as its own primary.
    EXPECT_EQ(scenario.notice_count(NoticeKind::kFailoverExhausted), 1u);
    EXPECT_EQ(scenario.notice_count(NoticeKind::kPrimaryFailover), 1u);
    EXPECT_TRUE(scenario.sender().is_self_primary());
    EXPECT_EQ(scenario.metrics().value("proto.sender.failover_exhausted"), 1u);

    // Receiver reliability holds throughout: site secondaries hold the
    // multicast stream, so recovery never needed the dead loggers.
    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_GT(audit.expected, 0u);
    EXPECT_EQ(audit.lost_forever, 0u);
}

TEST(ChaosCrash, CrashOnReceiveRecoversEverythingAfterRevival) {
    ScenarioConfig config = chaos_config();
    DisScenario scenario{config};
    const NodeId victim = scenario.topology().sites[1].receivers[0];
    ChaosSchedule schedule;
    schedule.events.push_back(CrashOnReceive{victim, SeqNum{3}, millis(400)});

    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    for (int i = 0; i < 10; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(150));
    }
    scenario.run_for(secs(6.0));

    EXPECT_EQ(scenario.metrics().value("chaos.crash_on_receive"), 1u);
    EXPECT_EQ(engine.faults_applied(), 1u);
    EXPECT_EQ(engine.revivals(), 1u);
    ASSERT_EQ(engine.windows().size(), 1u);
    ASSERT_EQ(engine.log().size(), 2u);  // crash + revive

    // The victim delivered seq 3 (the crash fired *after* the delivery),
    // went dark, and closed every gap after waking.
    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_EQ(audit.lost_forever, 0u);
    bool victim_recovered = false;
    for (const auto& d : scenario.deliveries())
        if (d.node == victim && d.recovered) victim_recovered = true;
    EXPECT_TRUE(victim_recovered);
}

TEST(ChaosCrash, SendAndCrashKeepsStreamRecoverable) {
    ScenarioConfig config = chaos_config();
    DisScenario scenario{config};
    ChaosSchedule schedule;
    schedule.events.push_back(SendAndCrash{SeqNum{3}, millis(200)});

    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    // The app on the source host is down with it: no sends in the window.
    for (int i = 0; i < 3; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(100));
    }
    scenario.run_for(millis(500));  // crash window + revival
    for (int i = 0; i < 3; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(100));
    }
    scenario.run_for(secs(6.0));

    EXPECT_EQ(scenario.metrics().value("chaos.send_and_crash"), 1u);
    EXPECT_EQ(scenario.sends().size(), 6u);
    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_EQ(audit.expected, 6u * scenario.topology().all_receivers().size());
    EXPECT_EQ(audit.lost_forever, 0u);
}

TEST(ChaosRotation, BlackoutUnderLoggerRotationStaysReliable) {
    // Section 2.2.1 rotation: every receiver doubles as a site logger and
    // NACK targets rotate each slot.  A blackout kills the current rotation
    // targets along with everyone else at the site; after the heal the
    // rotated loggers must fetch what they missed from the primary before
    // they can serve their peers.
    ScenarioConfig config = chaos_config();
    config.rotate_site_loggers = true;
    config.rotation_slot = secs(1.0);
    ChaosSchedule schedule;
    schedule.events.push_back(SiteBlackout{1, secs(1.3), millis(700)});

    DisScenario scenario{config};
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    standard_traffic(scenario);

    EXPECT_EQ(scenario.metrics().value("chaos.site_blackouts"), 1u);
    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_GT(audit.expected, 0u);
    EXPECT_EQ(audit.lost_forever, 0u);
}

// --- node-revival semantics (satellite regression) ---------------------------

TEST(NodeRevival, FlapBeforeTrafficMatchesNeverDownedRun) {
    // Down + revive + re-finalize with no traffic in between must restore
    // the exact routing (relaying, border liveness) of a never-downed
    // network: identical routing-table hash, identical packet trace.
    ScenarioConfig config = chaos_config();

    DisScenario plain{config};
    const std::uint64_t plain_routes = plain.network().routing_table_hash();
    Fnv1a plain_hash;
    hash_packets(plain, plain_hash);
    plain.start();
    standard_traffic(plain);
    const Trace plain_trace = collect(plain, plain_hash);

    DisScenario flapped{config};
    Network& net = flapped.network();
    const NodeId router = flapped.topology().sites[2].router;
    net.set_node_down(router, true);
    net.finalize();
    net.set_node_down(router, false);
    net.finalize();
    EXPECT_EQ(net.routing_table_hash(), plain_routes);
    Fnv1a flapped_hash;
    hash_packets(flapped, flapped_hash);
    flapped.start();
    standard_traffic(flapped);
    EXPECT_EQ(collect(flapped, flapped_hash), plain_trace);
}

TEST(NodeRevival, MidRunFlapRestoresDeliveryAndRecovery) {
    // Down a site router mid-stream (blackholing the site), revive it, and
    // re-finalize: relaying must resume and the site must recover every
    // packet it missed.
    DisScenario scenario{chaos_config()};
    Network& net = scenario.network();
    const NodeId router = scenario.topology().sites[1].router;
    scenario.start();
    scenario.run_for(millis(500));
    for (int i = 0; i < 4; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(100));
    }
    net.set_node_down(router, true);
    net.finalize();
    for (int i = 0; i < 4; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(100));
    }
    net.set_node_down(router, false);
    net.finalize();
    for (int i = 0; i < 4; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(100));
    }
    scenario.run_for(secs(6.0));

    const ReliabilityAudit audit = audit_reliability(scenario);
    EXPECT_EQ(audit.expected, 12u * scenario.topology().all_receivers().size());
    EXPECT_EQ(audit.lost_forever, 0u);
}

// --- dormant wake vs watchdog sweep under blackout (satellite) ---------------

Trace run_sweep_overlap(bool dormant) {
    // The deferred-watchdog sweep fires at the shared idle deadline
    // (~0.5s); the blackout [0.02s, 0.8s] straddles it and starts *before*
    // the sender's stat-ack probe (~0.04s), so site 1's receivers are still
    // dormant when the sweep runs while their site is dark, and their wakes
    // race revived traffic right after -- while everyone else was woken
    // early by a probe their core ignores (no watchdog re-arm from
    // on_packet).  Both sweep-fired and wake-armed watchdog paths are
    // exercised in one run.  Eager per-receiver watchdog timers and the
    // dormant sweep must tell the application the exact same story.
    ScenarioConfig config = chaos_config();
    config.dormant_receivers = dormant;
    ChaosSchedule schedule;
    schedule.events.push_back(SiteBlackout{1, millis(20), millis(780)});

    DisScenario scenario{config};
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[2].router,
                                std::make_unique<BernoulliLoss>(0.25));
    Fnv1a hash;
    hash_packets(scenario, hash);
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    engine.arm();
    standard_traffic(scenario);
    return collect(scenario, hash);
}

TEST(DormantChaos, BlackoutOverlappingSweepTickIsTraceIdentical) {
    const Trace eager = run_sweep_overlap(false);
    const Trace dormant = run_sweep_overlap(true);
    EXPECT_EQ(eager, dormant) << first_difference(eager, dormant);
    // The scenario exercised what it claims to: idle watchdogs fired and
    // packets were lost and recovered.
    std::size_t freshness_lost = 0;
    for (const auto& n : eager.notices)
        if (std::get<1>(n) == NoticeKind::kFreshnessLost) ++freshness_lost;
    EXPECT_GT(freshness_lost, 0u);
    EXPECT_GT(eager.recovered, 0u);
}

}  // namespace
}  // namespace lbrm::sim
