// Scale-engine tests (DESIGN.md "Scale engineering"): the struct-of-arrays
// node store, the serial/parallel/lazy finalize modes and the pluggable
// scenario observer must all be invisible to results -- every mode and every
// observer produces bit-identical routing tables and protocol traces.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/stable_vector.hpp"
#include "sim/loss_model.hpp"
#include "sim/network.hpp"
#include "sim/observer.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::sim;

// --- StableVector ------------------------------------------------------------

TEST(StableVector, ReferencesSurviveGrowth) {
    StableVector<int> v;
    std::vector<int*> addrs;
    for (int i = 0; i < 1000; ++i) addrs.push_back(&v.emplace_back(i));
    ASSERT_EQ(v.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(*addrs[i], i);          // no element ever moved
        EXPECT_EQ(&v[static_cast<std::size_t>(i)], addrs[i]);
    }
}

TEST(StableVector, HoldsNonMovableElements) {
    struct Pinned {
        explicit Pinned(int x) : value(x) {}
        Pinned(const Pinned&) = delete;
        Pinned& operator=(const Pinned&) = delete;
        int value;
    };
    StableVector<Pinned> v;
    for (int i = 0; i < 100; ++i) v.emplace_back(i);
    int sum = 0;
    for (const Pinned& p : v) sum += p.value;
    EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(StableVector, ClearDestroysEveryElement) {
    static int live = 0;
    struct Counted {
        Counted() { ++live; }
        ~Counted() { --live; }
    };
    {
        StableVector<Counted> v;
        for (int i = 0; i < 37; ++i) v.emplace_back();
        EXPECT_EQ(live, 37);
        v.clear();
        EXPECT_EQ(live, 0);
        for (int i = 0; i < 5; ++i) v.emplace_back();  // reusable after clear
        EXPECT_EQ(live, 5);
    }
    EXPECT_EQ(live, 0);  // destructor path too
}

// --- link() fast path --------------------------------------------------------

TEST(NetworkLink, MissingSelfAndOutOfRangePairsReturnNull) {
    Simulator sim;
    Network net{sim, 1};
    const NodeId a = net.add_node(SiteId{1});
    const NodeId b = net.add_node(SiteId{1});
    const NodeId c = net.add_node(SiteId{2});
    net.add_link(a, b, LinkSpec{});

    EXPECT_NE(net.link(a, b), nullptr);
    EXPECT_NE(net.link(b, a), nullptr);
    EXPECT_NE(net.link(a, b), net.link(b, a));  // two directed links
    EXPECT_EQ(net.link(a, c), nullptr);         // no such cable
    EXPECT_EQ(net.link(a, a), nullptr);         // self pair
    EXPECT_EQ(net.link(a, NodeId{999}), nullptr);  // out of range
    EXPECT_EQ(net.link(NodeId{999}, a), nullptr);
}

TEST(NetworkLink, SiteAndRouterFlagsSurviveSoAStorage) {
    Simulator sim;
    Network net{sim, 1};
    const NodeId host = net.add_node(SiteId{7});
    const NodeId router = net.add_node(SiteId{7}, /*is_router=*/true);
    EXPECT_EQ(net.site_of(host), SiteId{7});
    EXPECT_FALSE(net.is_router(host));
    EXPECT_TRUE(net.is_router(router));
    EXPECT_EQ(net.node_count(), 2u);
    net.add_link(host, router, LinkSpec{});
    EXPECT_EQ(net.link_count(), 2u);  // one cable = two directed links
}

// --- finalize-mode determinism ----------------------------------------------

std::uint64_t table_hash(SimFinalizeMode mode, unsigned threads,
                         std::uint32_t sites_per_region = 0) {
    Simulator sim;
    SimConfig config;
    config.finalize_mode = mode;
    config.finalize_threads = threads;
    Network net{sim, 5, config};
    DisTopologySpec spec;
    spec.sites = 12;
    spec.receivers_per_site = 6;
    spec.sites_per_region = sites_per_region;
    make_dis_topology(net, spec);
    net.finalize();
    EXPECT_EQ(net.finalize_mode(), mode);
    return net.routing_table_hash();
}

TEST(FinalizeModes, TableHashIdenticalAcrossSerialParallelLazy) {
    const std::uint64_t serial = table_hash(SimFinalizeMode::kSerial, 0);
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kParallel, 1));
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kParallel, 2));
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kParallel, 8));
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kLazy, 0));
}

TEST(FinalizeModes, TableHashIdenticalWithRegionalTier) {
    const std::uint64_t serial = table_hash(SimFinalizeMode::kSerial, 0, 3);
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kParallel, 8, 3));
    EXPECT_EQ(serial, table_hash(SimFinalizeMode::kLazy, 0, 3));
}

TEST(FinalizeModes, LazyMaterialisesRowsOnDemand) {
    Simulator sim;
    SimConfig config;
    config.finalize_mode = SimFinalizeMode::kLazy;
    Network net{sim, 5, config};
    DisTopologySpec spec;
    spec.sites = 8;
    spec.receivers_per_site = 10;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    // Only border rows were built eagerly (one per site router here).
    const std::size_t after_finalize = net.site_rows_built();
    EXPECT_GT(after_finalize, 0u);
    EXPECT_LT(after_finalize, net.node_count());

    // Traffic touches rows; the count grows but only where needed.
    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);
    net.multicast(topo.source,
                  Packet{Header{group, topo.source, topo.source},
                         DataBody{SeqNum{1}, EpochId{0}, {1}}},
                  McastScope::kGlobal);
    sim.run_for(secs(1.0));
    EXPECT_GT(net.site_rows_built(), after_finalize);

    // Hashing forces the rest; a serial build of the same topology ends at
    // the same row count and the same bytes.
    (void)net.routing_table_hash();
    Simulator sim2;
    Network serial_net{sim2, 5};
    make_dis_topology(serial_net, spec);
    serial_net.finalize();
    EXPECT_EQ(net.site_rows_built(), serial_net.site_rows_built());
}

// --- finalize-mode full-protocol trace A/B -----------------------------------

struct ScenarioFingerprint {
    std::vector<std::string> deliveries;
    std::vector<std::string> notices;
    std::uint64_t events_processed = 0;

    bool operator==(const ScenarioFingerprint&) const = default;
};

ScenarioFingerprint run_scenario(SimFinalizeMode mode, unsigned threads) {
    ScenarioConfig config;
    config.topology.sites = 20;
    config.topology.receivers_per_site = 5;
    config.sim.finalize_mode = mode;
    config.sim.finalize_threads = threads;
    config.seed = 99;
    DisScenario scenario(config);

    // Loss on two tails so the whole recovery machinery (NACKs, repairs,
    // heartbeats, stat-acks) runs and its RNG draws enter the fingerprint.
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[4].router,
                                std::make_unique<BernoulliLoss>(0.3));
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[11].router,
                                std::make_unique<BernoulliLoss>(0.3));

    scenario.start();
    for (int i = 0; i < 20; ++i) {
        scenario.send_update(128);
        scenario.run_for(millis(37));
    }
    scenario.run_for(secs(10.0));

    ScenarioFingerprint fp;
    for (const auto& d : scenario.deliveries())
        fp.deliveries.push_back(std::to_string(d.node.value()) + ":" +
                                std::to_string(d.seq.value()) + "@" +
                                std::to_string(d.at.time_since_epoch().count()) +
                                (d.recovered ? "r" : ""));
    for (const auto& n : scenario.notices())
        fp.notices.push_back(std::to_string(n.node.value()) + ":" +
                             std::to_string(static_cast<int>(n.kind)) + ":" +
                             std::to_string(n.arg) + "@" +
                             std::to_string(n.at.time_since_epoch().count()));
    fp.events_processed = scenario.simulator().events_processed();
    return fp;
}

TEST(FinalizeModes, TwentySiteScenarioBitIdenticalAcrossModes) {
    const ScenarioFingerprint serial = run_scenario(SimFinalizeMode::kSerial, 0);
    const ScenarioFingerprint parallel = run_scenario(SimFinalizeMode::kParallel, 8);
    const ScenarioFingerprint lazy = run_scenario(SimFinalizeMode::kLazy, 0);
    ASSERT_GT(serial.deliveries.size(), 0u);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, lazy);
}

// --- lazy rows vs mid-run liveness/topology changes --------------------------

/// Mid-run set_node_down must not leak into rows built lazily afterwards:
/// they read the finalize-time snapshot, so serial and lazy traces agree
/// even when a row materialises after the down transition.
struct TapEvent {
    std::int64_t at_ns;
    std::uint32_t from;
    std::uint32_t to;
    bool delivered;
    bool operator==(const TapEvent&) const = default;
};

std::vector<TapEvent> run_down_then_touch(SimFinalizeMode mode,
                                          std::size_t path_cache_cap) {
    Simulator sim;
    SimConfig config;
    config.finalize_mode = mode;
    config.path_cache_capacity = path_cache_cap;
    Network net{sim, 7, config};
    // Two sites, two corridors; c_host sits in a third site whose rows are
    // only touched after the down transition.
    const NodeId a_host = net.add_node(SiteId{1});
    const NodeId a_r1 = net.add_node(SiteId{1}, true);
    const NodeId a_r2 = net.add_node(SiteId{1}, true);
    const NodeId b_host = net.add_node(SiteId{2});
    const NodeId b_r1 = net.add_node(SiteId{2}, true);
    const NodeId b_r2 = net.add_node(SiteId{2}, true);
    const NodeId c_host = net.add_node(SiteId{3});
    const NodeId c_r = net.add_node(SiteId{3}, true);
    const LinkSpec fast{millis(1), 0.0, Duration::zero()};
    const LinkSpec slow{millis(3), 0.0, Duration::zero()};
    net.add_link(a_host, a_r1, fast);
    net.add_link(a_host, a_r2, fast);
    net.add_link(b_host, b_r1, fast);
    net.add_link(b_host, b_r2, fast);
    net.add_link(a_r1, b_r1, fast);  // preferred corridor
    net.add_link(a_r2, b_r2, slow);  // detour corridor
    net.add_link(c_host, c_r, fast);
    net.add_link(c_r, b_r1, slow);
    net.add_link(c_r, a_r1, slow);
    net.finalize();

    std::vector<TapEvent> taps;
    net.set_tap([&taps](TimePoint t, const Link& link, const Packet&, bool delivered) {
        taps.push_back(TapEvent{t.time_since_epoch().count(), link.from().value(),
                                link.to().value(), delivered});
    });

    const GroupId group{1};
    net.join(group, b_host);
    auto send = [&](NodeId from, std::uint32_t seq) {
        net.multicast(from,
                      Packet{Header{group, a_host, from},
                             DataBody{SeqNum{seq}, EpochId{0}, {9}}},
                      McastScope::kGlobal);
        sim.run_for(secs(1.0));
    };
    send(a_host, 1);  // builds a's rows (lazy) and primes the path cache

    net.set_node_down(a_r1, true);
    // c's rows have never been touched: under lazy they are built *now*,
    // after the down transition -- and must still route via a_r1/b_r1
    // exactly like the serial tables built at finalize().
    net.unicast(c_host, b_host,
                Packet{Header{group, a_host, c_host}, PrimaryQueryBody{}});
    sim.run_for(secs(1.0));
    send(a_host, 2);  // still into the blackhole

    net.finalize();  // reconverge
    send(a_host, 3);
    net.unicast(c_host, b_host,
                Packet{Header{group, a_host, c_host}, PrimaryQueryBody{}});
    sim.run_for(secs(1.0));
    return taps;
}

TEST(FinalizeModes, LazyRowsUseFinalizeTimeLivenessSnapshot) {
    const auto serial = run_down_then_touch(SimFinalizeMode::kSerial, 65536);
    const auto lazy = run_down_then_touch(SimFinalizeMode::kLazy, 65536);
    ASSERT_EQ(serial.size(), lazy.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_TRUE(serial[i] == lazy[i]) << "trace diverges at event " << i;
}

TEST(FinalizeModes, PathCacheCapacityNeverChangesLazyOutcomes) {
    const auto unbounded = run_down_then_touch(SimFinalizeMode::kLazy, 0);
    const auto tiny = run_down_then_touch(SimFinalizeMode::kLazy, 1);
    EXPECT_EQ(unbounded, tiny);
}

// --- observer A/B ------------------------------------------------------------

ScenarioConfig observer_scenario_config(std::shared_ptr<ScenarioObserver> observer) {
    ScenarioConfig config;
    config.topology.sites = 6;
    config.topology.receivers_per_site = 4;
    config.seed = 77;
    config.observer = std::move(observer);
    return config;
}

TEST(Observers, CountingMatchesRecordingAndLeavesSimBitIdentical) {
    auto counting = std::make_shared<CountingObserver>();

    DisScenario recorded{observer_scenario_config(nullptr)};  // default recorder
    DisScenario counted{observer_scenario_config(counting)};

    for (DisScenario* s : {&recorded, &counted}) {
        s->start();
        for (int i = 0; i < 5; ++i) {
            s->send_update(std::vector<std::uint8_t>{1, 2, 3, 4});
            s->run_for(millis(40));
        }
        s->run_for(secs(5.0));
    }

    // The observer must not perturb the simulation itself.
    EXPECT_EQ(recorded.simulator().events_processed(),
              counted.simulator().events_processed());

    // Tallies agree with the full records.
    EXPECT_EQ(counting->deliveries(), recorded.deliveries().size());
    EXPECT_EQ(counting->notices(), recorded.notices().size());
    EXPECT_EQ(counting->sends(), recorded.sends().size());
    ASSERT_GT(counting->deliveries(), 0u);

    std::uint64_t recorded_bytes = 0;
    for (const auto& d : recorded.deliveries()) recorded_bytes += d.payload.size();
    EXPECT_EQ(counting->payload_bytes(), recorded_bytes);

    for (const auto& site : recorded.topology().sites)
        for (NodeId r : site.receivers) {
            std::uint32_t expect = 0;
            for (const auto& d : recorded.deliveries())
                if (d.node == r) ++expect;
            EXPECT_EQ(counting->deliveries_at(r), expect);
        }

    // Record accessors require the recording observer.
    EXPECT_THROW((void)counted.deliveries(), std::logic_error);
    EXPECT_THROW((void)counted.notices(), std::logic_error);
    EXPECT_THROW((void)counted.sends(), std::logic_error);
    (void)counted.observer();  // the observer itself is always reachable

    // clear() resets tallies.
    counted.clear_records();
    EXPECT_EQ(counting->deliveries(), 0u);
    EXPECT_EQ(counting->nodes_with_at_least(1), 0u);
}

}  // namespace
