// Property tests for the protocol's central invariant, swept over loss
// regimes and configurations with parameterized gtest:
//
//   RECEIVER-RELIABILITY: as long as the logging hierarchy retains the
//   packets and the network eventually delivers something, every receiver
//   that stays connected ends up with every data packet (live, repaired, or
//   recovered), each exactly once, and ends the run fresh.
//
// Each parameter combination runs a randomized-loss simulation and checks
// the full cross-product of receivers x sequence numbers.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "sim/scenario.hpp"

namespace lbrm::sim {
namespace {

struct SweepParam {
    double loss_rate;          // Bernoulli loss on every tail circuit
    bool stat_ack;             // statistical acknowledgement on?
    bool retrans_channel;      // Section 7 channel recovery?
    std::uint64_t seed;

    friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
        return os << "loss" << static_cast<int>(p.loss_rate * 100) << "_sa"
                  << p.stat_ack << "_rc" << p.retrans_channel << "_s" << p.seed;
    }
};

class ConvergenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConvergenceSweep, EveryReceiverGetsEveryPacketExactlyOnce) {
    const SweepParam param = GetParam();

    ScenarioConfig config;
    config.topology.sites = 4;
    config.topology.receivers_per_site = 4;
    config.seed = param.seed;
    config.stat_ack.enabled = param.stat_ack;
    config.stat_ack.k = 4;
    config.stat_ack.initial_probe_p = 0.5;
    config.stat_ack.probe_target_replies = 2;
    config.stat_ack.probe_repeats = 1;
    config.use_retrans_channel = param.retrans_channel;
    config.retrans_channel_copies = 4;
    // Generous retry budgets: giving up after a few NACKs is legitimate
    // receiver-reliable behaviour, but this test checks the convergence
    // invariant, so make abandonment astronomically unlikely.
    config.receiver_defaults.nack_max_retries = 8;
    config.logger_defaults.fetch_max_retries = 12;

    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();

    scenario.start();
    if (param.stat_ack) scenario.run_for(secs(3.0));

    // Establish the stream losslessly first: a receiver that never observes
    // the stream's beginning starts fresh there by design (receiver-reliable
    // semantics cover the stream from first observation onward).
    constexpr int kPackets = 15;
    scenario.send_update(std::size_t{100});
    scenario.run_for(millis(700));

    // Now random loss on every tail circuit, both directions, for the rest
    // of the run.
    for (const auto& site : topo.sites) {
        network.set_loss(topo.backbone, site.router,
                         std::make_unique<BernoulliLoss>(param.loss_rate));
        network.set_loss(site.router, topo.backbone,
                         std::make_unique<BernoulliLoss>(param.loss_rate));
    }

    for (int i = 1; i < kPackets; ++i) {
        scenario.send_update(std::size_t{100});
        scenario.run_for(millis(700));
    }
    // Lossy links stay lossy: recovery has to punch through them.  Give the
    // retry machinery ample virtual time.
    scenario.run_for(secs(60.0));

    // Then the network heals; after 2 x h_max every receiver must be fresh
    // again (freshness legitimately flaps *during* sustained heartbeat
    // loss -- that is the protocol reporting the truth).
    for (const auto& site : topo.sites) {
        network.set_loss(topo.backbone, site.router, std::make_unique<BernoulliLoss>(0.0));
        network.set_loss(site.router, topo.backbone, std::make_unique<BernoulliLoss>(0.0));
    }
    scenario.run_for(secs(70.0));

    const auto receivers = topo.all_receivers();
    std::map<NodeId, std::set<std::uint32_t>> got;
    std::map<NodeId, std::map<std::uint32_t, int>> copies;
    for (const auto& d : scenario.deliveries()) {
        got[d.node].insert(d.seq.value());
        copies[d.node][d.seq.value()]++;
    }

    for (NodeId r : receivers) {
        EXPECT_EQ(got[r].size(), static_cast<std::size_t>(kPackets))
            << "receiver " << r << " missing packets";
        for (const auto& [seq, count] : copies[r])
            EXPECT_EQ(count, 1) << "receiver " << r << " seq " << seq
                                << " delivered more than once";
        EXPECT_TRUE(scenario.receiver(r).fresh()) << "receiver " << r;
        EXPECT_EQ(scenario.receiver(r).detector().missing_count(), 0u)
            << "receiver " << r;
    }
    EXPECT_EQ(scenario.notice_count(NoticeKind::kRecoveryFailed), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, ConvergenceSweep,
    ::testing::Values(SweepParam{0.0, false, false, 11}, SweepParam{0.05, false, false, 12},
                      SweepParam{0.15, false, false, 13}, SweepParam{0.30, false, false, 14},
                      SweepParam{0.05, true, false, 15}, SweepParam{0.15, true, false, 16},
                      SweepParam{0.30, true, false, 17}, SweepParam{0.15, false, true, 18},
                      SweepParam{0.30, false, true, 19}, SweepParam{0.15, true, false, 20},
                      SweepParam{0.15, false, false, 21}, SweepParam{0.15, false, false, 22},
                      SweepParam{0.15, true, true, 23}, SweepParam{0.30, true, true, 24}),
    [](const auto& info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// --- log-retention property -----------------------------------------------

class RetentionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RetentionSweep, BoundedLogsNeverExceedTheirBudget) {
    const std::size_t max_entries = GetParam();
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 2;
    config.stat_ack.enabled = false;
    config.logger_defaults.retention.max_entries = max_entries;
    DisScenario scenario(config);
    scenario.start();
    for (int i = 0; i < 30; ++i) {
        scenario.send_update(std::size_t{64});
        scenario.run_for(millis(100));
    }
    scenario.run_for(secs(2.0));
    EXPECT_LE(scenario.primary_logger().store().size(), max_entries);
    EXPECT_LE(scenario.secondary_logger(0).store().size(), max_entries);
    // The newest packets are the ones retained.
    EXPECT_EQ(scenario.primary_logger().store().highest(), SeqNum{30});
}

INSTANTIATE_TEST_SUITE_P(Budgets, RetentionSweep, ::testing::Values(5u, 10u, 50u));

// --- heartbeat-parameter sweep property --------------------------------------

struct HbParam {
    double h_min_s;
    double backoff;
    friend std::ostream& operator<<(std::ostream& os, const HbParam& p) {
        return os << "hmin" << static_cast<int>(p.h_min_s * 1000) << "_b"
                  << static_cast<int>(p.backoff * 10);
    }
};

class HeartbeatSweep : public ::testing::TestWithParam<HbParam> {};

TEST_P(HeartbeatSweep, LastPacketLossIsAlwaysDetectedAndRepaired) {
    // Whatever the heartbeat parameters, a lost *final* packet -- the case
    // only heartbeats can reveal -- is detected within ~2 x h_min + RTT and
    // repaired.
    const HbParam param = GetParam();
    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;
    config.heartbeat.h_min = secs(param.h_min_s);
    config.heartbeat.backoff = param.backoff;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{64});
    scenario.run_for(secs(2.0));

    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{64});
    const TimePoint sent = *scenario.sent_at(SeqNum{2});
    scenario.run_for(secs(param.h_min_s * 0.5));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(20.0));

    ASSERT_EQ(scenario.delivery_times(SeqNum{2}).size(), 6u);
    // Detection bound: the burst lasted h_min/2 < h_min, so the first
    // heartbeat after the burst reveals the loss within ~h_min + slack.
    for (const auto& n : scenario.notices()) {
        if (n.kind == NoticeKind::kLossDetected && n.arg == 2) {
            EXPECT_LT(to_seconds(n.at - sent), param.h_min_s * param.backoff + 0.2);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Params, HeartbeatSweep,
                         ::testing::Values(HbParam{0.1, 2.0}, HbParam{0.25, 2.0},
                                           HbParam{0.25, 3.0}, HbParam{0.5, 2.0},
                                           HbParam{0.25, 1.5}, HbParam{1.0, 4.0}));

}  // namespace
}  // namespace lbrm::sim
