// Appendix-A protocol tests: exact wire grammar round-trips (including the
// paper's own example lines), malformed-input rejection, page-binding
// parsing, and the browser-cache model.
#include <gtest/gtest.h>

#include "apps/html_invalidation.hpp"

namespace lbrm::apps {
namespace {

TEST(HtmlInvalidation, RendersThePapersExampleLines) {
    // Both example messages appear verbatim in Appendix A.
    EXPECT_EQ(render_update(SeqNum{17}, "http://www-DSG.Stanford.EDU/groupMembers.html"),
              "TRANS:17.0:UPDATE:http://www-DSG.Stanford.EDU/groupMembers.html");
    EXPECT_EQ(render_heartbeat(SeqNum{17}, 12), "TRANS:17.12:HEARTBEAT");
}

TEST(HtmlInvalidation, ParsesUpdate) {
    const auto m = parse_message("TRANS:17.0:UPDATE:http://x/y.html");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, InvalidationMessage::Kind::kUpdate);
    EXPECT_FALSE(m->retransmission);
    EXPECT_EQ(m->seq, SeqNum{17});
    EXPECT_EQ(m->heartbeat_index, 0u);
    EXPECT_EQ(m->url, "http://x/y.html");
}

TEST(HtmlInvalidation, ParsesHeartbeat) {
    const auto m = parse_message("TRANS:17.12:HEARTBEAT");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, InvalidationMessage::Kind::kHeartbeat);
    EXPECT_EQ(m->seq, SeqNum{17});
    EXPECT_EQ(m->heartbeat_index, 12u);
    EXPECT_TRUE(m->url.empty());
}

TEST(HtmlInvalidation, ParsesRetransmission) {
    // "A retransmission of update 17 would contain the tag RETRANS".
    const auto m = parse_message("RETRANS:17.0:UPDATE:http://x/y.html");
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->retransmission);
    EXPECT_EQ(m->seq, SeqNum{17});
}

TEST(HtmlInvalidation, RoundTripsThroughRender) {
    for (const std::string& text :
         {render_update(SeqNum{1}, "http://a/b"), render_heartbeat(SeqNum{9}, 3),
          render_update(SeqNum{0xFFFFFFFFu}, "u", true)}) {
        const auto m = parse_message(text);
        ASSERT_TRUE(m.has_value()) << text;
    }
}

TEST(HtmlInvalidation, RejectsMalformedMessages) {
    for (const char* bad :
         {"", "TRANS", "TRANS:", "TRANS:x.0:UPDATE:u", "TRANS:1:UPDATE:u",
          "TRANS:1.0:", "TRANS:1.0:UPDATE:", "TRANS:1.y:HEARTBEAT",
          "XRANS:1.0:UPDATE:u", "TRANS:1.0:INVALIDATE:u", "RETRANS:1.0:HB"}) {
        EXPECT_FALSE(parse_message(bad).has_value()) << "accepted: " << bad;
    }
}

TEST(HtmlInvalidation, PageBindingParsesThePapersComment) {
    // "<!MULTICAST.234.12.29.72.> associates the file with multicast
    // address 234.12.29.72."
    const auto address = parse_page_binding("<!MULTICAST.234.12.29.72.>");
    ASSERT_TRUE(address.has_value());
    EXPECT_EQ(*address, "234.12.29.72");
}

TEST(HtmlInvalidation, PageBindingRoundTrip) {
    EXPECT_EQ(parse_page_binding(render_page_binding("239.1.2.3")), "239.1.2.3");
}

TEST(HtmlInvalidation, PageBindingRejectsGarbage) {
    for (const char* bad :
         {"", "<html>", "<!MULTICAST.>", "<!MULTICAST.1.2.3.>",
          "<!MULTICAST.1.2.3.4.5.>", "<!MULTICAST.999.2.3.4.>",
          "<!MULTICAST.a.b.c.d.>"}) {
        EXPECT_FALSE(parse_page_binding(bad).has_value()) << "accepted: " << bad;
    }
}

TEST(HtmlInvalidation, BindingFoundAnywhereInTheFirstLine) {
    EXPECT_TRUE(parse_page_binding("<html><!MULTICAST.234.12.29.72.></html>")
                    .has_value());
}

// --- browser cache ------------------------------------------------------------

TEST(BrowserCache, DisplaySubscribeInvalidateReload) {
    BrowserCache cache;
    cache.display("http://x/a.html");
    EXPECT_TRUE(cache.is_cached("http://x/a.html"));
    EXPECT_FALSE(cache.reload_highlighted("http://x/a.html"));

    const auto update = parse_message("TRANS:1.0:UPDATE:http://x/a.html");
    EXPECT_TRUE(cache.apply(*update));
    EXPECT_TRUE(cache.reload_highlighted("http://x/a.html"));

    // A second invalidation while already highlighted changes nothing.
    EXPECT_FALSE(cache.apply(*update));

    // "The flag is cleared when the document has been reloaded."
    cache.reload("http://x/a.html");
    EXPECT_FALSE(cache.reload_highlighted("http://x/a.html"));
}

TEST(BrowserCache, UnknownPagesIgnored) {
    BrowserCache cache;
    cache.display("http://x/a.html");
    const auto update = parse_message("TRANS:1.0:UPDATE:http://x/OTHER.html");
    EXPECT_FALSE(cache.apply(*update));
}

TEST(BrowserCache, HeartbeatsDontHighlight) {
    BrowserCache cache;
    cache.display("http://x/a.html");
    const auto hb = parse_message("TRANS:1.4:HEARTBEAT");
    EXPECT_FALSE(cache.apply(*hb));
    EXPECT_FALSE(cache.reload_highlighted("http://x/a.html"));
}

TEST(BrowserCache, EvictionEndsTheSubscription) {
    BrowserCache cache;
    cache.display("http://x/a.html");
    cache.evict("http://x/a.html");
    EXPECT_FALSE(cache.is_cached("http://x/a.html"));
    const auto update = parse_message("TRANS:1.0:UPDATE:http://x/a.html");
    EXPECT_FALSE(cache.apply(*update));
}

}  // namespace
}  // namespace lbrm::apps
