// Baseline-protocol tests: the wb/SRM-style recovery model and the
// positive-ACK sender-reliable protocol, both as units and end-to-end on
// the simulated topology.
#include <gtest/gtest.h>

#include "baseline/ack_protocol.hpp"
#include "baseline/srm.hpp"
#include "sim/network.hpp"
#include "sim/sim_host.hpp"
#include "sim/topology.hpp"
#include "tests/test_util.hpp"

namespace lbrm::baseline {
namespace {

using test::at;
using test::count_sent;
using test::find_timer;
using test::payload;
using test::sent_of_type;

constexpr NodeId kSource{1};
constexpr GroupId kGroup{3};

SrmConfig member_config(NodeId self) {
    SrmConfig c;
    c.self = self;
    c.group = kGroup;
    c.source = kSource;
    c.rtt_to_source = millis(80);
    return c;
}

Packet data(SeqNum seq) {
    return Packet{Header{kGroup, kSource, kSource}, DataBody{seq, EpochId{0}, payload(8)}};
}

// --- SRM member unit behaviour ------------------------------------------------

TEST(SrmMember, RequestDelayScalesWithRtt) {
    SrmMemberCore m{member_config(NodeId{10}), 42};
    m.start(at(0.0));
    m.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = m.on_packet(at(1.1), data(SeqNum{3}));
    auto timer = find_timer(gap, TimerKind::kNackDelay);
    ASSERT_TRUE(timer.has_value());
    // Uniform in [1, 2] x RTT after detection.
    EXPECT_GE(timer->deadline, at(1.1) + millis(80));
    EXPECT_LE(timer->deadline, at(1.1) + millis(160));
}

TEST(SrmMember, RequestIsMulticastToWholeGroup) {
    SrmMemberCore m{member_config(NodeId{10}), 42};
    m.start(at(0.0));
    m.on_packet(at(1.0), data(SeqNum{1}));
    auto gap = m.on_packet(at(1.1), data(SeqNum{3}));
    auto timer = find_timer(gap, TimerKind::kNackDelay);
    auto fired = m.on_timer(timer->deadline, timer->id);
    const auto nacks = sent_of_type(fired, PacketType::kNack);
    ASSERT_EQ(nacks.size(), 1u);
    EXPECT_EQ(nacks[0].to, kNoNode);  // multicast: the crying-baby mechanism
    EXPECT_EQ(m.requests_sent(), 1u);
}

TEST(SrmMember, HearingAnotherRequestSuppressesOwn) {
    SrmMemberCore m{member_config(NodeId{10}), 42};
    m.start(at(0.0));
    m.on_packet(at(1.0), data(SeqNum{1}));
    m.on_packet(at(1.1), data(SeqNum{3}));
    // Another member's multicast request for the same seq arrives first.
    auto heard = m.on_packet(at(1.12), Packet{Header{kGroup, kSource, NodeId{11}},
                                              NackBody{{SeqNum{2}}}});
    // Our pending request timer was cancelled and rescheduled with backoff.
    EXPECT_TRUE(test::has_cancel(heard, TimerKind::kNackDelay));
    auto backoff = find_timer(heard, TimerKind::kNackDelay);
    ASSERT_TRUE(backoff.has_value());
    EXPECT_GE(backoff->deadline, at(1.12) + millis(160));  // doubled window
}

TEST(SrmMember, HolderRacesToRepair) {
    SrmMemberCore m{member_config(NodeId{10}), 42};
    m.start(at(0.0));
    m.on_packet(at(1.0), data(SeqNum{1}));
    m.on_packet(at(1.1), data(SeqNum{2}));
    // Someone requests seq 2, which we hold.
    auto heard = m.on_packet(at(2.0), Packet{Header{kGroup, kSource, NodeId{11}},
                                             NackBody{{SeqNum{2}}}});
    auto repair_timer = find_timer(heard, TimerKind::kRemcastWindow);
    ASSERT_TRUE(repair_timer.has_value());
    auto fired = m.on_timer(repair_timer->deadline, repair_timer->id);
    const auto repairs = sent_of_type(fired, PacketType::kRetransmission);
    ASSERT_EQ(repairs.size(), 1u);
    EXPECT_EQ(repairs[0].to, kNoNode);  // repairs are multicast too
    EXPECT_EQ(m.repairs_sent(), 1u);
}

TEST(SrmMember, RepairSuppressesOtherRepairers) {
    SrmMemberCore m{member_config(NodeId{10}), 42};
    m.start(at(0.0));
    m.on_packet(at(1.0), data(SeqNum{1}));
    m.on_packet(at(1.1), data(SeqNum{2}));
    m.on_packet(at(2.0), Packet{Header{kGroup, kSource, NodeId{11}},
                                NackBody{{SeqNum{2}}}});
    // Someone else's repair lands before our timer: ours is cancelled.
    auto heard = m.on_packet(
        at(2.01), Packet{Header{kGroup, kSource, NodeId{12}},
                         RetransmissionBody{SeqNum{2}, EpochId{0}, true, payload(8)}});
    EXPECT_TRUE(test::has_cancel(heard, TimerKind::kRemcastWindow));
    // Firing the stale timer later sends nothing.
    auto fired = m.on_timer(at(2.2), {TimerKind::kRemcastWindow, 2});
    EXPECT_EQ(count_sent(fired, PacketType::kRetransmission), 0u);
}

// --- SRM end-to-end on the simulator -------------------------------------------

TEST(SrmIntegration, RecoversLossViaGroupRepair) {
    sim::Simulator simulator;
    sim::Network net{simulator, 7};
    sim::DisTopologySpec spec;
    spec.sites = 3;
    spec.receivers_per_site = 3;
    spec.secondary_logger_per_site = false;  // wb has no loggers
    spec.replicas = 0;
    const sim::DisTopology topo = sim::make_dis_topology(net, spec);
    net.finalize();

    SrmConfig sender_config = member_config(topo.source);
    auto& source_host = net.attach_host(topo.source);
    auto& sender = dynamic_cast<SrmSenderCore&>(source_host.protocol().add_core(
        std::make_unique<SrmSenderCore>(sender_config, 1)));
    net.join(kGroup, topo.source);

    std::map<NodeId, SrmMemberCore*> members;
    std::uint64_t delivered = 0;
    for (NodeId r : topo.all_receivers()) {
        auto& host = net.attach_host(r);
        AppHandlers handlers;
        handlers.on_data = [&delivered](TimePoint, const DeliverData&) { ++delivered; };
        members[r] = dynamic_cast<SrmMemberCore*>(&host.protocol().add_core(
            std::make_unique<SrmMemberCore>(member_config(r), r.value()), handlers));
        net.join(kGroup, r);
    }
    for (auto& [id, rec] : members) (void)id;
    source_host.protocol().start(simulator.now());
    for (NodeId r : topo.all_receivers()) net.host(r)->protocol().start(simulator.now());

    // Lossless packet.
    auto run_actions = [&](Actions a) {
        (void)a;  // executed inside hosts already
    };
    (void)run_actions;
    source_host.protocol().on_timer(simulator.now(), 1, {TimerKind::kHeartbeat, 0});

    // Send via the generic core: execute its actions through the host by
    // calling the core and replaying... simplest: use the core's send() and
    // hand actions to the host's network service by re-dispatching.
    // SrmSenderCore::send returns Actions; feed them through a tiny shim:
    auto send_payload = [&](std::uint8_t salt) {
        Actions actions = sender.send(simulator.now(), payload(32, salt));
        for (auto& action : actions) {
            if (auto* m = std::get_if<SendMulticast>(&action))
                net.multicast(topo.source, m->packet, m->scope);
            if (auto* u = std::get_if<SendUnicast>(&action))
                net.unicast(topo.source, u->to, u->packet);
        }
    };

    send_payload(1);
    simulator.run_for(secs(1.0));
    EXPECT_EQ(delivered, 9u);

    // Drop the next packet at one site's tail: SRM recovery must repair it.
    net.set_loss(topo.backbone, topo.sites[0].router,
                 std::make_unique<sim::BernoulliLoss>(1.0));
    send_payload(2);
    simulator.run_for(millis(50));
    net.set_loss(topo.backbone, topo.sites[0].router,
                 std::make_unique<sim::BernoulliLoss>(0.0));
    simulator.run_for(secs(10.0));
    EXPECT_EQ(delivered, 18u);

    // The defining wb cost: repair requests and repairs were multicast to
    // the whole group, so even site 2's links carried them.
    std::uint64_t foreign_repair_traffic = 0;
    for (NodeId r : topo.sites[2].receivers) {
        const auto& stats = net.link(topo.sites[2].router, r)->stats();
        foreign_repair_traffic +=
            stats.packets_of(PacketType::kNack) +
            stats.packets_of(PacketType::kRetransmission);
    }
    EXPECT_GT(foreign_repair_traffic, 0u);
}

// --- positive-ACK baseline ---------------------------------------------------

TEST(AckProtocol, EveryReceiverAcksEveryPacket) {
    AckProtocolConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.source = kSource;
    config.receivers = {NodeId{10}, NodeId{11}, NodeId{12}};
    AckSenderCore sender{config};

    auto actions = sender.send(at(1.0), payload(16));
    EXPECT_EQ(count_sent(actions, PacketType::kData), 1u);
    EXPECT_EQ(sender.unacked_packets(), 1u);

    for (std::uint32_t node : {10u, 11u, 12u}) {
        Packet ack{Header{kGroup, kSource, NodeId{node}}, AckBody{EpochId{0}, SeqNum{1}}};
        sender.on_packet(at(1.1), ack);
    }
    EXPECT_EQ(sender.acks_received(), 3u);
    EXPECT_EQ(sender.unacked_packets(), 0u);
    EXPECT_EQ(sender.buffered_bytes(), 0u);
}

TEST(AckProtocol, TimeoutRetransmitsUnicastToMissing) {
    AckProtocolConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.source = kSource;
    config.receivers = {NodeId{10}, NodeId{11}, NodeId{12}};
    AckSenderCore sender{config};

    auto actions = sender.send(at(1.0), payload(16));
    auto timer = find_timer(actions, TimerKind::kAckWait);
    ASSERT_TRUE(timer.has_value());

    // Only node 10 acks.
    sender.on_packet(at(1.1), Packet{Header{kGroup, kSource, NodeId{10}},
                                     AckBody{EpochId{0}, SeqNum{1}}});
    auto retry = sender.on_timer(timer->deadline, timer->id);
    const auto rt = sent_of_type(retry, PacketType::kRetransmission);
    ASSERT_EQ(rt.size(), 2u);  // 11 and 12
    EXPECT_EQ(sender.retransmissions(), 2u);
}

TEST(AckProtocol, GivesUpAfterMaxRetries) {
    AckProtocolConfig config;
    config.self = kSource;
    config.group = kGroup;
    config.source = kSource;
    config.receivers = {NodeId{10}};
    config.max_retries = 2;
    AckSenderCore sender{config};
    sender.send(at(1.0), payload(16));
    Actions last;
    for (int i = 0; i < 5; ++i) last = sender.on_timer(at(2.0 + i), {TimerKind::kAckWait, 1});
    EXPECT_EQ(sender.unacked_packets(), 0u);  // abandoned
    EXPECT_EQ(test::notices(last, NoticeKind::kRecoveryFailed).size(), 0u);  // already reported
}

TEST(AckProtocol, ReceiverAcksDuplicates) {
    AckProtocolConfig config;
    config.self = NodeId{10};
    config.group = kGroup;
    config.source = kSource;
    AckReceiverCore receiver{config};
    auto first = receiver.on_packet(at(1.0), data(SeqNum{1}));
    EXPECT_EQ(count_sent(first, PacketType::kAck), 1u);
    EXPECT_EQ(test::deliveries(first).size(), 1u);
    auto dup = receiver.on_packet(at(1.1), data(SeqNum{1}));
    EXPECT_EQ(count_sent(dup, PacketType::kAck), 1u);  // re-acks
    EXPECT_EQ(test::deliveries(dup).size(), 0u);       // no redelivery
}

}  // namespace
}  // namespace lbrm::baseline
