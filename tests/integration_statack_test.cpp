// End-to-end statistical acknowledgement on the simulated topology
// (Section 2.3 / Figure 8): probing, epoch establishment, per-packet ACKs
// from designated ackers, and the multicast-retransmission decision under
// widespread loss.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace lbrm::sim {
namespace {

ScenarioConfig statack_config(std::uint32_t sites) {
    ScenarioConfig config;
    config.topology.sites = sites;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 5;
    config.stat_ack.initial_probe_p = 0.2;
    config.stat_ack.probe_repeats = 2;
    config.stat_ack.probe_target_replies = 3;
    config.stat_ack.epoch_interval = secs(60);
    return config;
}

TEST(IntegrationStatAck, ProbingConvergesToSiteCount) {
    DisScenario scenario(statack_config(20));
    scenario.start();
    scenario.run_for(secs(5.0));

    auto& engine = scenario.sender().stat_ack();
    EXPECT_FALSE(engine.probing());
    // 20 secondary loggers participate; the estimate is statistical.
    EXPECT_NEAR(engine.n_sl(), 20.0, 10.0);
}

TEST(IntegrationStatAck, EpochEstablishesDesignatedAckers) {
    DisScenario scenario(statack_config(20));
    scenario.start();
    scenario.run_for(secs(5.0));

    EXPECT_GE(scenario.notice_count(NoticeKind::kEpochStarted), 1u);
    EXPECT_GE(scenario.notice_count(NoticeKind::kDesignatedAcker), 1u);
    EXPECT_GT(scenario.sender().stat_ack().expected_acks(), 0u);
}

TEST(IntegrationStatAck, CleanDeliveryNeedsNoRemulticast) {
    DisScenario scenario(statack_config(10));
    scenario.start();
    scenario.run_for(secs(5.0));
    for (int i = 0; i < 5; ++i) {
        scenario.send_update(std::size_t{128});
        scenario.run_for(secs(1.0));
    }
    EXPECT_EQ(scenario.sender().stat_ack().remulticast_decisions(), 0u);
}

TEST(IntegrationStatAck, SourceTailLossTriggersImmediateRemulticast) {
    // Loss on the source's outgoing backbone link hits every site: the
    // missing designated-acker ACKs reveal it within ~t_wait and the source
    // re-multicasts (Section 2.3.4's common case).
    DisScenario scenario(statack_config(20));
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(5.0));
    ASSERT_GT(scenario.sender().stat_ack().expected_acks(), 0u);

    // Drop exactly the next multicast on the source's uplink.
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(30));
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(0.0));

    scenario.run_for(secs(3.0));
    const SeqNum seq = scenario.sender().last_seq();
    EXPECT_GE(scenario.sender().stat_ack().remulticast_decisions(), 1u);
    // Every receiver ends up with the packet, via the re-multicast -- well
    // before any heartbeat-driven NACK recovery would have kicked in.
    EXPECT_EQ(scenario.delivery_times(seq).size(), 60u);
}

TEST(IntegrationStatAck, RemulticastBeatsHeartbeatRecovery) {
    // The statistical re-multicast should repair widespread loss within
    // roughly one t_wait + RTT, far faster than h_min + NACK + fetch.
    DisScenario scenario(statack_config(20));
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(5.0));

    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(30));
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(0.0));
    const SeqNum seq = scenario.sender().last_seq();
    const TimePoint sent = *scenario.sent_at(seq);

    scenario.run_for(secs(3.0));
    const auto times = scenario.delivery_times(seq);
    ASSERT_EQ(times.size(), 60u);
    for (const auto& [node, when] : times) {
        EXPECT_LT(when - sent, millis(800)) << "node " << node;
    }
}

TEST(IntegrationStatAck, SingleSiteLossDoesNotRemulticast) {
    // Loss confined to one site's tail circuit: the designated ackers
    // elsewhere all ACK, so the source waits for NACK-driven recovery
    // instead of loading the whole group (Section 2.3.2).
    DisScenario scenario(statack_config(20));
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(5.0));

    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(30));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(5.0));

    // With k=5 ackers over 20 sites the lossy site holds at most one acker;
    // one missing acker represents 20/5 = 4 sites >= threshold 2 -- so a
    // remulticast *can* legitimately happen if an acker sat in site 0.  The
    // robust assertion: every receiver still converges.
    const SeqNum seq = scenario.sender().last_seq();
    EXPECT_EQ(scenario.delivery_times(seq).size(), 60u);
}

TEST(IntegrationStatAck, EpochsRotate) {
    ScenarioConfig config = statack_config(10);
    config.stat_ack.epoch_interval = secs(2.0);
    DisScenario scenario(config);
    scenario.start();
    scenario.run_for(secs(10.0));
    EXPECT_GE(scenario.notice_count(NoticeKind::kEpochStarted), 3u);
}

}  // namespace
}  // namespace lbrm::sim
