// Memory-diet regression suite (DESIGN.md "Memory engineering").
//
// The 10^7-node memory work is only admissible because every byte saved is
// provably invisible to the simulation: these tests pin the equivalences.
//  - BumpArena unit behavior: chunk boundaries, alignment, oversized
//    requests, reuse after reset.
//  - Per-(site,packet) delivery batching and the arena-backed delivery
//    records are each A/B'd against the plain path through a lossy
//    full-protocol run (same deliveries at the same times, same notices,
//    same NACKs).
//  - Dormant receivers: attached as ~48-byte records, woken by their first
//    group packet mid-lossy-run, bit-identical to always-allocated cores --
//    including the idle watchdog firing while still dormant and the NACK
//    recovery behavior after waking.
//  - Shared-cable split: the reverse direction of a one-way loaded cable
//    keeps zero stats without cold state; Cable::respec() loss resets feed
//    the network.respec_loss_resets counter.
//  - SimHost timer packing: oversized timer args survive the fat-closure
//    fallback intact.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "common/arena.hpp"
#include "sim/link.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm::sim {
namespace {

using lbrm::test::at;

// --- BumpArena -----------------------------------------------------------

TEST(BumpArena, BumpsWithinOneChunkAndAligns) {
    BumpArena arena{256};
    void* a = arena.allocate(10, 8);
    void* b = arena.allocate(10, 8);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
    // 10 bytes rounded up to the next 8-aligned offset: b sits 16 past a.
    EXPECT_EQ(static_cast<std::byte*>(b), static_cast<std::byte*>(a) + 16);
    EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(BumpArena, GrowsAcrossChunkBoundary) {
    BumpArena arena{64};
    void* a = arena.allocate(48, 8);
    void* b = arena.allocate(48, 8);  // does not fit in chunk 0's remainder
    EXPECT_EQ(arena.chunk_count(), 2u);
    // Both allocations are fully usable storage.
    std::memset(a, 0xAB, 48);
    std::memset(b, 0xCD, 48);
    EXPECT_EQ(static_cast<std::byte*>(a)[47], std::byte{0xAB});
    EXPECT_EQ(static_cast<std::byte*>(b)[47], std::byte{0xCD});
}

TEST(BumpArena, OversizedRequestGetsExactChunk) {
    BumpArena arena{64};
    void* big = arena.allocate(1000, 8);
    std::memset(big, 0x5A, 1000);
    EXPECT_GE(arena.retained_bytes(), 1000u);
    // A small follow-up allocation still works.
    void* small = arena.allocate(8, 8);
    EXPECT_NE(small, nullptr);
}

TEST(BumpArena, ResetReusesRetainedChunks) {
    BumpArena arena{128};
    void* first = arena.allocate(32, 8);
    arena.allocate(120, 8);  // forces a second chunk
    const std::size_t retained = arena.retained_bytes();
    const std::size_t chunks = arena.chunk_count();
    ASSERT_GE(chunks, 2u);

    arena.reset();
    EXPECT_EQ(arena.retained_bytes(), retained);  // nothing freed
    EXPECT_EQ(arena.chunk_count(), chunks);
    // The bump pointer rewound: the next allocation reuses chunk 0's base.
    EXPECT_EQ(arena.allocate(32, 8), first);
}

// --- lossy full-protocol A/B harness -------------------------------------

struct Trace {
    std::vector<std::tuple<std::uint64_t, std::uint32_t, TimePoint, bool>> deliveries;
    std::vector<std::tuple<std::uint64_t, NoticeKind, TimePoint>> notices;
    std::uint64_t nacks_sent = 0;
    std::uint64_t recovered = 0;
    /// Not part of operator== -- delivery batching deliberately collapses
    /// same-instant fan-out events, so event counts are compared explicitly
    /// where they are expected to be invariant.
    std::uint64_t events_processed = 0;

    friend bool operator==(const Trace& a, const Trace& b) {
        return a.deliveries == b.deliveries && a.notices == b.notices &&
               a.nacks_sent == b.nacks_sent && a.recovered == b.recovered;
    }
};

ScenarioConfig lossy_config() {
    ScenarioConfig config;
    config.topology.sites = 4;
    config.topology.receivers_per_site = 6;
    config.seed = 99;
    return config;
}

/// Run the lossy scenario: an idle second first (idle watchdogs fire before
/// any packet), then bursts through a 25%-loss backbone tail, then drain.
template <typename Tweak>
Trace run_lossy(ScenarioConfig config, Tweak&& tweak) {
    DisScenario scenario{std::move(config)};
    tweak(scenario);
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<BernoulliLoss>(0.25));
    scenario.start();
    scenario.run_for(secs(1.0));  // idle: freshness watchdogs fire
    for (int burst = 0; burst < 3; ++burst) {
        for (int i = 0; i < 8; ++i) scenario.send_update(std::size_t{300});
        scenario.run_for(millis(300));
    }
    scenario.run_for(secs(5.0));

    Trace out;
    for (const auto& d : scenario.deliveries())
        out.deliveries.emplace_back(d.node.value(), d.seq.value(), d.at, d.recovered);
    for (const auto& n : scenario.notices())
        out.notices.emplace_back(n.node.value(), n.kind, n.at);
    out.nacks_sent = scenario.metrics().value("proto.receiver.nacks_sent");
    out.recovered = scenario.metrics().value("proto.receiver.recovered");
    out.events_processed = scenario.simulator().events_processed();
    return out;
}

// --- delivery batching + arena A/B ---------------------------------------

TEST(DeliveryBatching, LossyRunBitIdenticalToUnbatched) {
    const Trace on = run_lossy(lossy_config(), [](DisScenario& s) {
        EXPECT_TRUE(s.network().delivery_batching());
    });
    const Trace off = run_lossy(lossy_config(), [](DisScenario& s) {
        s.network().set_delivery_batching(false);
    });
    EXPECT_EQ(on, off);
    EXPECT_FALSE(on.deliveries.empty());
    EXPECT_GT(on.nacks_sent, 0u);  // the loss model actually bit
    // The win: one event replays a whole same-instant fan-out run.
    EXPECT_LT(on.events_processed, off.events_processed);
}

TEST(DeliveryBatching, BatchedRunsCounterMoves) {
    DisScenario scenario{lossy_config()};
    ASSERT_TRUE(scenario.network().delivery_batching());
    scenario.start();
    scenario.send_update(std::size_t{300});
    scenario.run_for(secs(1.0));
    // A site router fanning one packet to 6 receivers over identical idle
    // links is exactly the batched-run shape.
    EXPECT_GT(scenario.metrics().value("sim.batched_delivery_runs"), 0u);
}

TEST(DeliveryArena, LossyRunBitIdenticalToHeapDeliveries) {
    const Trace arena_on = run_lossy(lossy_config(), [](DisScenario& s) {
        EXPECT_TRUE(s.network().delivery_arena_enabled());
    });
    const Trace arena_off = run_lossy(lossy_config(), [](DisScenario& s) {
        s.network().set_delivery_arena(false);
    });
    EXPECT_EQ(arena_on, arena_off);
    // Where the records live cannot change what events run.
    EXPECT_EQ(arena_on.events_processed, arena_off.events_processed);
}

TEST(DeliveryArena, ArenaIsWarmAfterTrafficAndResetWhenDrained) {
    DisScenario scenario{lossy_config()};
    scenario.start();
    scenario.send_update(std::size_t{300});
    scenario.run_for(secs(2.0));  // burst fully drained
    const BumpArena& arena = scenario.network().delivery_arena();
    EXPECT_GT(arena.chunk_count(), 0u);      // records were arena-backed
    const std::size_t retained = arena.retained_bytes();
    scenario.send_update(std::size_t{300});
    scenario.run_for(secs(2.0));
    // Steady state: the second burst recycled the first burst's chunks.
    EXPECT_EQ(arena.retained_bytes(), retained);
}

// --- dormant receivers ----------------------------------------------------

ScenarioConfig dormant_config(bool dormant) {
    ScenarioConfig config = lossy_config();
    config.dormant_receivers = dormant;
    return config;
}

TEST(DormantReceivers, LossyRunBitIdenticalToEagerCores) {
    const Trace eager = run_lossy(dormant_config(false), [](DisScenario&) {});
    std::size_t dormant_before = 0;
    std::size_t dormant_after = 0;
    const Trace dormant = run_lossy(dormant_config(true), [&](DisScenario& s) {
        dormant_before = s.dormant_receiver_count();
        (void)dormant_after;
    });
    // 4 sites x 6 receivers all start dormant.
    EXPECT_EQ(dormant_before, 24u);
    // Identical deliveries, notices (including FreshnessLost fired while
    // still dormant), NACK counts and event schedule -- except for exactly
    // one event: the deferred-watchdog sweep that replaces the per-record
    // idle timers (DisScenario::start).
    EXPECT_EQ(eager, dormant);
    EXPECT_EQ(eager.events_processed + 1, dormant.events_processed);
    EXPECT_GT(eager.nacks_sent, 0u);  // recovery ran on woken cores
}

TEST(DormantReceivers, WatchdogFiresDormantAndFirstPacketWakes) {
    DisScenario scenario{dormant_config(true)};
    ASSERT_EQ(scenario.dormant_receiver_count(), 24u);
    // Cut site 1 off entirely: its 6 receivers never see a group packet
    // (the sender's pre-data heartbeats wake everyone else).
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<BernoulliLoss>(1.0));
    scenario.start();
    scenario.run_for(secs(1.0));
    // The cut-off six fired their idle watchdogs (max(max_idle, 2 x h_min)
    // = 0.5 s) while still dormant: FreshnessLost without materialising.
    EXPECT_EQ(scenario.dormant_receiver_count(), 6u);
    EXPECT_GE(scenario.notice_count(NoticeKind::kFreshnessLost), 6u);

    // Heal the tail; the next data packet wakes the stragglers with
    // fresh_ = false carried over from the dormant record.
    scenario.network().set_loss(scenario.topology().backbone,
                                scenario.topology().sites[1].router,
                                std::make_unique<NoLoss>());
    scenario.send_update(std::size_t{300});
    scenario.run_for(secs(1.0));
    EXPECT_EQ(scenario.dormant_receiver_count(), 0u);
    EXPECT_EQ(scenario.deliveries().size(), 24u);
    // The straggler regained freshness from the data packet itself.
    EXPECT_TRUE(
        scenario.receiver(scenario.topology().sites[1].receivers.front()).fresh());
}

TEST(DormantReceivers, WakeOnAccessIsPureAndIdempotent) {
    const Trace untouched = run_lossy(dormant_config(true), [](DisScenario&) {});
    const Trace poked = run_lossy(dormant_config(true), [](DisScenario& s) {
        // Forcing a few cores awake through the accessor materialises them
        // early but runs no actions: the simulation must not notice.
        const NodeId node = s.topology().sites[2].receivers.front();
        ReceiverCore& core = s.receiver(node);
        EXPECT_EQ(core.config().self, node);
        EXPECT_TRUE(core.fresh());
        EXPECT_EQ(&core, &s.receiver(node));  // idempotent: same core back
    });
    EXPECT_EQ(untouched, poked);
}

TEST(DormantReceivers, DiscoveryModeFallsBackToEagerWiring) {
    ScenarioConfig config = dormant_config(true);
    config.discover_loggers = true;  // discovery probes need live cores
    DisScenario scenario{config};
    EXPECT_EQ(scenario.dormant_receiver_count(), 0u);
}

// --- shared-cable split ---------------------------------------------------

TEST(CableColdState, ReverseDirectionKeepsZeroStats) {
    Cable cable{NodeId{1}, NodeId{2}, LinkSpec{millis(1), 1e6, Duration::zero()}};
    Rng rng{1};
    ASSERT_TRUE(cable.dir[0].transmit(rng, at(0.0), 500, PacketType::kData));
    EXPECT_EQ(cable.dir[0].stats().packets, 1u);
    // The reverse direction never carried traffic: its stats read as zero
    // through the shared kZeroStats block (no cold state was allocated).
    EXPECT_EQ(cable.dir[1].stats().packets, 0u);
    EXPECT_EQ(cable.dir[1].stats().bytes, 0u);
    EXPECT_FALSE(cable.dir[1].has_loss_model());
    EXPECT_FALSE(cable.dir[1].has_pending());
}

TEST(CableRespec, LossModelResetsFeedTheCounter) {
    Simulator simulator;
    Network net{simulator, 7};
    const NodeId a = net.add_node(SiteId{1}, true);
    const NodeId b = net.add_node(SiteId{1});
    const LinkSpec spec{millis(1), 1e6, Duration::zero()};
    net.add_link(a, b, spec);

    // Respec with no loss models installed: nothing to reset.
    net.add_link(a, b, spec);
    EXPECT_EQ(net.metrics().value("network.respec_loss_resets"), 0u);

    // One direction armed: respec silently drops that model -- the counter
    // is the audit trail (see Cable::respec in sim/link.hpp).
    net.set_loss(a, b, std::make_unique<BernoulliLoss>(0.5));
    net.add_link(a, b, spec);
    EXPECT_EQ(net.metrics().value("network.respec_loss_resets"), 1u);
    EXPECT_FALSE(net.link(a, b)->has_loss_model());

    // Both directions armed: one respec counts two resets.
    net.set_loss(a, b, std::make_unique<BernoulliLoss>(0.5));
    net.set_loss(b, a, std::make_unique<BernoulliLoss>(0.5));
    net.add_link(a, b, spec);
    EXPECT_EQ(net.metrics().value("network.respec_loss_resets"), 3u);
}

// --- SimHost timer-closure packing ----------------------------------------

struct BigArgCore final : CoreBase {
    TimerId fired{};
    int fires = 0;
    Actions start(TimePoint now) override {
        Actions actions;
        // arg does not fit in 32 bits: must take the fat-closure fallback.
        actions.push_back(
            StartTimer{{TimerKind::kIdle, std::uint64_t{1} << 40}, now + millis(10)});
        return actions;
    }
    Actions on_packet(TimePoint, const Packet&) override { return {}; }
    Actions on_timer(TimePoint, TimerId id) override {
        fired = id;
        ++fires;
        return {};
    }
};

TEST(TimerPacking, OversizedArgSurvivesFatPath) {
    Simulator simulator;
    Network net{simulator, 1};
    const NodeId node = net.add_node(SiteId{1});
    SimHost& host = net.attach_host(node);
    auto core = std::make_unique<BigArgCore>();
    BigArgCore* raw = core.get();
    host.protocol().add_core(std::move(core));
    host.protocol().start(simulator.now());
    simulator.run_for(secs(1.0));
    EXPECT_EQ(raw->fires, 1);
    EXPECT_EQ(raw->fired.kind, TimerKind::kIdle);
    EXPECT_EQ(raw->fired.arg, std::uint64_t{1} << 40);
}

}  // namespace
}  // namespace lbrm::sim
