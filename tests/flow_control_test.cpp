// Flow-control tests (Section 5 extension): the AIMD governor unit plus
// end-to-end behaviour driven from statistical-ack outcomes.
#include <gtest/gtest.h>

#include "core/flow_control.hpp"
#include "core/sender.hpp"
#include "sim/scenario.hpp"
#include "tests/test_util.hpp"

namespace lbrm {
namespace {

using test::at;

FlowControlConfig enabled_config() {
    FlowControlConfig c;
    c.enabled = true;
    c.initial_backoff = millis(250);
    c.max_backoff = secs(8.0);
    c.recovery_streak = 3;
    return c;
}

TEST(FlowController, StartsUnconstrained) {
    FlowController flow{enabled_config()};
    EXPECT_EQ(flow.recommended_spacing(), Duration::zero());
    EXPECT_FALSE(flow.congested());
}

TEST(FlowController, LossSignalsBackOffMultiplicatively) {
    FlowController flow{enabled_config()};
    EXPECT_TRUE(flow.on_loss_signal());
    EXPECT_EQ(flow.recommended_spacing(), millis(250));
    EXPECT_TRUE(flow.on_loss_signal());
    EXPECT_EQ(flow.recommended_spacing(), millis(500));
    EXPECT_TRUE(flow.on_loss_signal());
    EXPECT_EQ(flow.recommended_spacing(), millis(1000));
}

TEST(FlowController, BackoffSaturatesAtMax) {
    FlowController flow{enabled_config()};
    for (int i = 0; i < 20; ++i) flow.on_loss_signal();
    EXPECT_EQ(flow.recommended_spacing(), secs(8.0));
    EXPECT_FALSE(flow.on_loss_signal());  // no further increase
}

TEST(FlowController, RecoveryNeedsACleanStreak) {
    FlowController flow{enabled_config()};
    flow.on_loss_signal();
    flow.on_loss_signal();  // 500 ms
    EXPECT_FALSE(flow.on_clean_packet());
    EXPECT_FALSE(flow.on_clean_packet());
    EXPECT_EQ(flow.recommended_spacing(), millis(500));  // streak not complete
    EXPECT_FALSE(flow.on_clean_packet());                // 3rd: halves to 250
    EXPECT_EQ(flow.recommended_spacing(), millis(250));
}

TEST(FlowController, LossResetsTheStreak) {
    FlowController flow{enabled_config()};
    flow.on_loss_signal();
    flow.on_clean_packet();
    flow.on_clean_packet();
    flow.on_loss_signal();  // streak wiped, spacing doubled
    EXPECT_EQ(flow.recommended_spacing(), millis(500));
    flow.on_clean_packet();
    flow.on_clean_packet();
    EXPECT_EQ(flow.recommended_spacing(), millis(500));
}

TEST(FlowController, FullRecoveryClearsAndReports) {
    FlowControlConfig c = enabled_config();
    c.recovery_streak = 1;
    FlowController flow{c};
    flow.on_loss_signal();  // 250 ms
    EXPECT_FALSE(flow.on_clean_packet());  // 125 ms
    EXPECT_FALSE(flow.on_clean_packet());  // 62.5
    bool cleared = false;
    for (int i = 0; i < 12 && !cleared; ++i) cleared = flow.on_clean_packet();
    EXPECT_TRUE(cleared);
    EXPECT_EQ(flow.recommended_spacing(), Duration::zero());
}

// --- end-to-end through the sender ------------------------------------------

TEST(FlowControlIntegration, SustainedLossRaisesSpacingThenHealingClearsIt) {
    // A sender whose designated ackers go silent must raise its recommended
    // spacing; once ACKs return, the spacing clears.
    SenderConfig sender_config;
    sender_config.self = NodeId{1};
    sender_config.group = GroupId{1};
    sender_config.primary_logger = NodeId{2};
    sender_config.stat_ack.enabled = true;
    sender_config.stat_ack.k = 2;
    sender_config.stat_ack.remulticast_site_threshold = 1.0;
    sender_config.stat_ack.max_remulticasts = 1;
    sender_config.flow_control = enabled_config();
    SenderCore sender{sender_config};
    sender.stat_ack().set_group_size(10.0);

    auto start = sender.start(at(0.0));
    // Volunteer two ackers for the epoch.
    const auto sel = test::sent_of_type(start, PacketType::kAckerSelection);
    ASSERT_EQ(sel.size(), 1u);
    const EpochId epoch = std::get<AckerSelectionBody>(sel[0].packet.body).epoch;
    for (std::uint32_t node : {10u, 11u}) {
        Packet volunteer{Header{GroupId{1}, NodeId{1}, NodeId{node}},
                         AckerResponseBody{epoch}};
        sender.on_packet(at(0.01), volunteer);
    }
    auto window = test::find_timer(start, TimerKind::kEpochOpen);
    sender.on_timer(window->deadline, window->id);

    // Send packets whose ACKs never arrive: walk each packet's kAckWait
    // through decision (re-multicast) and finalization (incomplete).
    TimePoint t = at(1.0);
    std::size_t slowdowns = 0;
    for (std::uint32_t s = 1; s <= 3; ++s) {
        auto sent = sender.send(t, test::payload(16));
        for (int phase = 0; phase < 3; ++phase) {
            t = t + sender.stat_ack().t_wait() + millis(1);
            auto fired = sender.on_timer(t, {TimerKind::kAckWait, s});
            slowdowns += test::notices(fired, NoticeKind::kCongestionSlowdown).size();
        }
    }
    EXPECT_GE(slowdowns, 1u);
    EXPECT_GT(sender.recommended_spacing(), Duration::zero());
    const Duration congested_spacing = sender.recommended_spacing();

    // ACKs return: clean packets ease the governor off.
    bool saw_cleared = false;
    for (std::uint32_t s = 4; s < 80 && !saw_cleared; ++s) {
        sender.send(t, test::payload(16));
        for (std::uint32_t node : {10u, 11u}) {
            Packet ack{Header{GroupId{1}, NodeId{1}, NodeId{node}},
                       AckBody{sender.stat_ack().current_epoch(), SeqNum{s}}};
            auto done = sender.on_packet(t + millis(5), ack);
            if (!test::notices(done, NoticeKind::kCongestionCleared).empty())
                saw_cleared = true;
        }
        t = t + millis(50);
    }
    EXPECT_TRUE(saw_cleared);
    EXPECT_EQ(sender.recommended_spacing(), Duration::zero());
    EXPECT_LT(sender.recommended_spacing(), congested_spacing);
}

}  // namespace
}  // namespace lbrm
