# Empty dependencies file for dis_test.
# This may be replaced when dependencies are built.
