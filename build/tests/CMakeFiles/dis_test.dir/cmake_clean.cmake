file(REMOVE_RECURSE
  "CMakeFiles/dis_test.dir/dis_test.cpp.o"
  "CMakeFiles/dis_test.dir/dis_test.cpp.o.d"
  "dis_test"
  "dis_test.pdb"
  "dis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
