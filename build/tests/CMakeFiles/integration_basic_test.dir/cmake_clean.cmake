file(REMOVE_RECURSE
  "CMakeFiles/integration_basic_test.dir/integration_basic_test.cpp.o"
  "CMakeFiles/integration_basic_test.dir/integration_basic_test.cpp.o.d"
  "integration_basic_test"
  "integration_basic_test.pdb"
  "integration_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
