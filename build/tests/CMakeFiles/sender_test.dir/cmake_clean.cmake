file(REMOVE_RECURSE
  "CMakeFiles/sender_test.dir/sender_test.cpp.o"
  "CMakeFiles/sender_test.dir/sender_test.cpp.o.d"
  "sender_test"
  "sender_test.pdb"
  "sender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
