# Empty dependencies file for sender_test.
# This may be replaced when dependencies are built.
