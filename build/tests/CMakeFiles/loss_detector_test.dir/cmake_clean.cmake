file(REMOVE_RECURSE
  "CMakeFiles/loss_detector_test.dir/loss_detector_test.cpp.o"
  "CMakeFiles/loss_detector_test.dir/loss_detector_test.cpp.o.d"
  "loss_detector_test"
  "loss_detector_test.pdb"
  "loss_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
