# Empty compiler generated dependencies file for loss_detector_test.
# This may be replaced when dependencies are built.
