file(REMOVE_RECURSE
  "CMakeFiles/integration_failover_test.dir/integration_failover_test.cpp.o"
  "CMakeFiles/integration_failover_test.dir/integration_failover_test.cpp.o.d"
  "integration_failover_test"
  "integration_failover_test.pdb"
  "integration_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
