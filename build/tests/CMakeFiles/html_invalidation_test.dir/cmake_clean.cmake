file(REMOVE_RECURSE
  "CMakeFiles/html_invalidation_test.dir/html_invalidation_test.cpp.o"
  "CMakeFiles/html_invalidation_test.dir/html_invalidation_test.cpp.o.d"
  "html_invalidation_test"
  "html_invalidation_test.pdb"
  "html_invalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_invalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
