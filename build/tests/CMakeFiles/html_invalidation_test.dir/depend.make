# Empty dependencies file for html_invalidation_test.
# This may be replaced when dependencies are built.
