# Empty dependencies file for property_convergence_test.
# This may be replaced when dependencies are built.
