file(REMOVE_RECURSE
  "CMakeFiles/property_convergence_test.dir/property_convergence_test.cpp.o"
  "CMakeFiles/property_convergence_test.dir/property_convergence_test.cpp.o.d"
  "property_convergence_test"
  "property_convergence_test.pdb"
  "property_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
