file(REMOVE_RECURSE
  "CMakeFiles/integration_hardening_test.dir/integration_hardening_test.cpp.o"
  "CMakeFiles/integration_hardening_test.dir/integration_hardening_test.cpp.o.d"
  "integration_hardening_test"
  "integration_hardening_test.pdb"
  "integration_hardening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
