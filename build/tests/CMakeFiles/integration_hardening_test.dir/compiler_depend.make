# Empty compiler generated dependencies file for integration_hardening_test.
# This may be replaced when dependencies are built.
