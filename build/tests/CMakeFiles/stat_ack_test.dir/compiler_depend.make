# Empty compiler generated dependencies file for stat_ack_test.
# This may be replaced when dependencies are built.
