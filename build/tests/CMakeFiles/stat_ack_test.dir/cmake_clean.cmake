file(REMOVE_RECURSE
  "CMakeFiles/stat_ack_test.dir/stat_ack_test.cpp.o"
  "CMakeFiles/stat_ack_test.dir/stat_ack_test.cpp.o.d"
  "stat_ack_test"
  "stat_ack_test.pdb"
  "stat_ack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_ack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
