# Empty dependencies file for group_estimate_test.
# This may be replaced when dependencies are built.
