file(REMOVE_RECURSE
  "CMakeFiles/group_estimate_test.dir/group_estimate_test.cpp.o"
  "CMakeFiles/group_estimate_test.dir/group_estimate_test.cpp.o.d"
  "group_estimate_test"
  "group_estimate_test.pdb"
  "group_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
