# Empty compiler generated dependencies file for heartbeat_test.
# This may be replaced when dependencies are built.
