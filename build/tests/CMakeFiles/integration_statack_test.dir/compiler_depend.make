# Empty compiler generated dependencies file for integration_statack_test.
# This may be replaced when dependencies are built.
