file(REMOVE_RECURSE
  "CMakeFiles/integration_statack_test.dir/integration_statack_test.cpp.o"
  "CMakeFiles/integration_statack_test.dir/integration_statack_test.cpp.o.d"
  "integration_statack_test"
  "integration_statack_test.pdb"
  "integration_statack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_statack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
