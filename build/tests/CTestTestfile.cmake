# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/heartbeat_test[1]_include.cmake")
include("/root/repo/build/tests/loss_detector_test[1]_include.cmake")
include("/root/repo/build/tests/log_store_test[1]_include.cmake")
include("/root/repo/build/tests/integration_basic_test[1]_include.cmake")
include("/root/repo/build/tests/group_estimate_test[1]_include.cmake")
include("/root/repo/build/tests/stat_ack_test[1]_include.cmake")
include("/root/repo/build/tests/sender_test[1]_include.cmake")
include("/root/repo/build/tests/receiver_test[1]_include.cmake")
include("/root/repo/build/tests/logger_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_statack_test[1]_include.cmake")
include("/root/repo/build/tests/integration_failover_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_convergence_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/flow_control_test[1]_include.cmake")
include("/root/repo/build/tests/multi_group_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/dis_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/html_invalidation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_hardening_test[1]_include.cmake")
