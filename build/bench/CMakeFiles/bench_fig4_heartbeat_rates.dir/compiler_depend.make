# Empty compiler generated dependencies file for bench_fig4_heartbeat_rates.
# This may be replaced when dependencies are built.
