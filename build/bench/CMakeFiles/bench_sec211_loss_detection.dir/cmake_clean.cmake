file(REMOVE_RECURSE
  "CMakeFiles/bench_sec211_loss_detection.dir/bench_sec211_loss_detection.cpp.o"
  "CMakeFiles/bench_sec211_loss_detection.dir/bench_sec211_loss_detection.cpp.o.d"
  "bench_sec211_loss_detection"
  "bench_sec211_loss_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec211_loss_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
