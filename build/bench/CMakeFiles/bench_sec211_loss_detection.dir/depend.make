# Empty dependencies file for bench_sec211_loss_detection.
# This may be replaced when dependencies are built.
