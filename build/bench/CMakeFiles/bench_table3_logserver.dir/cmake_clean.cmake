file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_logserver.dir/bench_table3_logserver.cpp.o"
  "CMakeFiles/bench_table3_logserver.dir/bench_table3_logserver.cpp.o.d"
  "bench_table3_logserver"
  "bench_table3_logserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_logserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
