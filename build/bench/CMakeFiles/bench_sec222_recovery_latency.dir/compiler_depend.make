# Empty compiler generated dependencies file for bench_sec222_recovery_latency.
# This may be replaced when dependencies are built.
