# Empty dependencies file for bench_sec212_battlefield.
# This may be replaced when dependencies are built.
