file(REMOVE_RECURSE
  "CMakeFiles/bench_sec212_battlefield.dir/bench_sec212_battlefield.cpp.o"
  "CMakeFiles/bench_sec212_battlefield.dir/bench_sec212_battlefield.cpp.o.d"
  "bench_sec212_battlefield"
  "bench_sec212_battlefield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec212_battlefield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
