file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_statack.dir/bench_fig8_statack.cpp.o"
  "CMakeFiles/bench_fig8_statack.dir/bench_fig8_statack.cpp.o.d"
  "bench_fig8_statack"
  "bench_fig8_statack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_statack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
