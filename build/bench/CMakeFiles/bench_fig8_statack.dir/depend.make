# Empty dependencies file for bench_fig8_statack.
# This may be replaced when dependencies are built.
