# Empty dependencies file for bench_table1_backoff.
# This may be replaced when dependencies are built.
