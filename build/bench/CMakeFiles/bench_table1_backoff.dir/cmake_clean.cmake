file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_backoff.dir/bench_table1_backoff.cpp.o"
  "CMakeFiles/bench_table1_backoff.dir/bench_table1_backoff.cpp.o.d"
  "bench_table1_backoff"
  "bench_table1_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
