# Empty compiler generated dependencies file for bench_sec221_nack_reduction.
# This may be replaced when dependencies are built.
