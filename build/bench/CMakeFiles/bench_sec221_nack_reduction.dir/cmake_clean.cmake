file(REMOVE_RECURSE
  "CMakeFiles/bench_sec221_nack_reduction.dir/bench_sec221_nack_reduction.cpp.o"
  "CMakeFiles/bench_sec221_nack_reduction.dir/bench_sec221_nack_reduction.cpp.o.d"
  "bench_sec221_nack_reduction"
  "bench_sec221_nack_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec221_nack_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
