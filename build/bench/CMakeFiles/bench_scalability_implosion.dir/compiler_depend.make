# Empty compiler generated dependencies file for bench_scalability_implosion.
# This may be replaced when dependencies are built.
