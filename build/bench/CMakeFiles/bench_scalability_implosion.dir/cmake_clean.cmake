file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_implosion.dir/bench_scalability_implosion.cpp.o"
  "CMakeFiles/bench_scalability_implosion.dir/bench_scalability_implosion.cpp.o.d"
  "bench_scalability_implosion"
  "bench_scalability_implosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_implosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
