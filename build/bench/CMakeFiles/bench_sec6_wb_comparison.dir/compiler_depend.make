# Empty compiler generated dependencies file for bench_sec6_wb_comparison.
# This may be replaced when dependencies are built.
