file(REMOVE_RECURSE
  "liblbrm_transport.a"
)
