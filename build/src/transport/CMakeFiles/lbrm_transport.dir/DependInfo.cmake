
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/reactor.cpp" "src/transport/CMakeFiles/lbrm_transport.dir/reactor.cpp.o" "gcc" "src/transport/CMakeFiles/lbrm_transport.dir/reactor.cpp.o.d"
  "/root/repo/src/transport/udp_endpoint.cpp" "src/transport/CMakeFiles/lbrm_transport.dir/udp_endpoint.cpp.o" "gcc" "src/transport/CMakeFiles/lbrm_transport.dir/udp_endpoint.cpp.o.d"
  "/root/repo/src/transport/udp_socket.cpp" "src/transport/CMakeFiles/lbrm_transport.dir/udp_socket.cpp.o" "gcc" "src/transport/CMakeFiles/lbrm_transport.dir/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/lbrm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lbrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/lbrm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lbrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
