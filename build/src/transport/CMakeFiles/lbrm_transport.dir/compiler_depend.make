# Empty compiler generated dependencies file for lbrm_transport.
# This may be replaced when dependencies are built.
