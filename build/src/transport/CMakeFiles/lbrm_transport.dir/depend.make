# Empty dependencies file for lbrm_transport.
# This may be replaced when dependencies are built.
