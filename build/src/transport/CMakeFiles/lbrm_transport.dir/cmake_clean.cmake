file(REMOVE_RECURSE
  "CMakeFiles/lbrm_transport.dir/reactor.cpp.o"
  "CMakeFiles/lbrm_transport.dir/reactor.cpp.o.d"
  "CMakeFiles/lbrm_transport.dir/udp_endpoint.cpp.o"
  "CMakeFiles/lbrm_transport.dir/udp_endpoint.cpp.o.d"
  "CMakeFiles/lbrm_transport.dir/udp_socket.cpp.o"
  "CMakeFiles/lbrm_transport.dir/udp_socket.cpp.o.d"
  "liblbrm_transport.a"
  "liblbrm_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
