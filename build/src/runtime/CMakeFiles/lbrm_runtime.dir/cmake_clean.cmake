file(REMOVE_RECURSE
  "CMakeFiles/lbrm_runtime.dir/protocol_host.cpp.o"
  "CMakeFiles/lbrm_runtime.dir/protocol_host.cpp.o.d"
  "liblbrm_runtime.a"
  "liblbrm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
