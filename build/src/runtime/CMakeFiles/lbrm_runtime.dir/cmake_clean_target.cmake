file(REMOVE_RECURSE
  "liblbrm_runtime.a"
)
