# Empty dependencies file for lbrm_runtime.
# This may be replaced when dependencies are built.
