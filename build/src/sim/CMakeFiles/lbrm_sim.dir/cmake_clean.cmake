file(REMOVE_RECURSE
  "CMakeFiles/lbrm_sim.dir/network.cpp.o"
  "CMakeFiles/lbrm_sim.dir/network.cpp.o.d"
  "CMakeFiles/lbrm_sim.dir/scenario.cpp.o"
  "CMakeFiles/lbrm_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/lbrm_sim.dir/sim_host.cpp.o"
  "CMakeFiles/lbrm_sim.dir/sim_host.cpp.o.d"
  "CMakeFiles/lbrm_sim.dir/topology.cpp.o"
  "CMakeFiles/lbrm_sim.dir/topology.cpp.o.d"
  "liblbrm_sim.a"
  "liblbrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
