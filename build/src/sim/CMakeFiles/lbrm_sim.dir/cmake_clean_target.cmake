file(REMOVE_RECURSE
  "liblbrm_sim.a"
)
