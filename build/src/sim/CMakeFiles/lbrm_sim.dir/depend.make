# Empty dependencies file for lbrm_sim.
# This may be replaced when dependencies are built.
