
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/lbrm_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/lbrm_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/lbrm_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/lbrm_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/sim_host.cpp" "src/sim/CMakeFiles/lbrm_sim.dir/sim_host.cpp.o" "gcc" "src/sim/CMakeFiles/lbrm_sim.dir/sim_host.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/lbrm_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/lbrm_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/lbrm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lbrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/lbrm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lbrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
