file(REMOVE_RECURSE
  "liblbrm_apps.a"
)
