# Empty compiler generated dependencies file for lbrm_apps.
# This may be replaced when dependencies are built.
