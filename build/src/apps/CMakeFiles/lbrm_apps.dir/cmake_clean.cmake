file(REMOVE_RECURSE
  "CMakeFiles/lbrm_apps.dir/html_invalidation.cpp.o"
  "CMakeFiles/lbrm_apps.dir/html_invalidation.cpp.o.d"
  "liblbrm_apps.a"
  "liblbrm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
