file(REMOVE_RECURSE
  "CMakeFiles/lbrm_core.dir/group_estimate.cpp.o"
  "CMakeFiles/lbrm_core.dir/group_estimate.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/log_store.cpp.o"
  "CMakeFiles/lbrm_core.dir/log_store.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/logger.cpp.o"
  "CMakeFiles/lbrm_core.dir/logger.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/loss_detector.cpp.o"
  "CMakeFiles/lbrm_core.dir/loss_detector.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/receiver.cpp.o"
  "CMakeFiles/lbrm_core.dir/receiver.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/sender.cpp.o"
  "CMakeFiles/lbrm_core.dir/sender.cpp.o.d"
  "CMakeFiles/lbrm_core.dir/stat_ack.cpp.o"
  "CMakeFiles/lbrm_core.dir/stat_ack.cpp.o.d"
  "liblbrm_core.a"
  "liblbrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
