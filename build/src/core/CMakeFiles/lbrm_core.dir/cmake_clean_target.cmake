file(REMOVE_RECURSE
  "liblbrm_core.a"
)
