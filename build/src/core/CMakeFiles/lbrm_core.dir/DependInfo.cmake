
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/group_estimate.cpp" "src/core/CMakeFiles/lbrm_core.dir/group_estimate.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/group_estimate.cpp.o.d"
  "/root/repo/src/core/log_store.cpp" "src/core/CMakeFiles/lbrm_core.dir/log_store.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/log_store.cpp.o.d"
  "/root/repo/src/core/logger.cpp" "src/core/CMakeFiles/lbrm_core.dir/logger.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/logger.cpp.o.d"
  "/root/repo/src/core/loss_detector.cpp" "src/core/CMakeFiles/lbrm_core.dir/loss_detector.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/loss_detector.cpp.o.d"
  "/root/repo/src/core/receiver.cpp" "src/core/CMakeFiles/lbrm_core.dir/receiver.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/receiver.cpp.o.d"
  "/root/repo/src/core/sender.cpp" "src/core/CMakeFiles/lbrm_core.dir/sender.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/sender.cpp.o.d"
  "/root/repo/src/core/stat_ack.cpp" "src/core/CMakeFiles/lbrm_core.dir/stat_ack.cpp.o" "gcc" "src/core/CMakeFiles/lbrm_core.dir/stat_ack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/lbrm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lbrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
