# Empty compiler generated dependencies file for lbrm_core.
# This may be replaced when dependencies are built.
