# Empty compiler generated dependencies file for lbrm_baseline.
# This may be replaced when dependencies are built.
