file(REMOVE_RECURSE
  "CMakeFiles/lbrm_baseline.dir/ack_protocol.cpp.o"
  "CMakeFiles/lbrm_baseline.dir/ack_protocol.cpp.o.d"
  "CMakeFiles/lbrm_baseline.dir/srm.cpp.o"
  "CMakeFiles/lbrm_baseline.dir/srm.cpp.o.d"
  "liblbrm_baseline.a"
  "liblbrm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
