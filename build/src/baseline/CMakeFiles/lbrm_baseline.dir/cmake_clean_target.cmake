file(REMOVE_RECURSE
  "liblbrm_baseline.a"
)
