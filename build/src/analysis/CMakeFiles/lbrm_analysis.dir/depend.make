# Empty dependencies file for lbrm_analysis.
# This may be replaced when dependencies are built.
