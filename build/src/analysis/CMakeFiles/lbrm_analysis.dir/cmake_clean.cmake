file(REMOVE_RECURSE
  "CMakeFiles/lbrm_analysis.dir/estimator_math.cpp.o"
  "CMakeFiles/lbrm_analysis.dir/estimator_math.cpp.o.d"
  "CMakeFiles/lbrm_analysis.dir/heartbeat_math.cpp.o"
  "CMakeFiles/lbrm_analysis.dir/heartbeat_math.cpp.o.d"
  "liblbrm_analysis.a"
  "liblbrm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
