file(REMOVE_RECURSE
  "liblbrm_analysis.a"
)
