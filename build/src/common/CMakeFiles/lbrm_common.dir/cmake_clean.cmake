file(REMOVE_RECURSE
  "CMakeFiles/lbrm_common.dir/bytes.cpp.o"
  "CMakeFiles/lbrm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/lbrm_common.dir/log.cpp.o"
  "CMakeFiles/lbrm_common.dir/log.cpp.o.d"
  "CMakeFiles/lbrm_common.dir/stats.cpp.o"
  "CMakeFiles/lbrm_common.dir/stats.cpp.o.d"
  "liblbrm_common.a"
  "liblbrm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
