file(REMOVE_RECURSE
  "liblbrm_common.a"
)
