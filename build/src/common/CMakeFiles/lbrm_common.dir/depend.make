# Empty dependencies file for lbrm_common.
# This may be replaced when dependencies are built.
