file(REMOVE_RECURSE
  "liblbrm_packet.a"
)
