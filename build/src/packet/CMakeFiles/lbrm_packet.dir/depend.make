# Empty dependencies file for lbrm_packet.
# This may be replaced when dependencies are built.
