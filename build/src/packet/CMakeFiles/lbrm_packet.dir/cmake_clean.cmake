file(REMOVE_RECURSE
  "CMakeFiles/lbrm_packet.dir/packet.cpp.o"
  "CMakeFiles/lbrm_packet.dir/packet.cpp.o.d"
  "liblbrm_packet.a"
  "liblbrm_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
