file(REMOVE_RECURSE
  "CMakeFiles/file_cache.dir/file_cache.cpp.o"
  "CMakeFiles/file_cache.dir/file_cache.cpp.o.d"
  "file_cache"
  "file_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
