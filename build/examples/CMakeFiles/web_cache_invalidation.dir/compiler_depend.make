# Empty compiler generated dependencies file for web_cache_invalidation.
# This may be replaced when dependencies are built.
