file(REMOVE_RECURSE
  "CMakeFiles/web_cache_invalidation.dir/web_cache_invalidation.cpp.o"
  "CMakeFiles/web_cache_invalidation.dir/web_cache_invalidation.cpp.o.d"
  "web_cache_invalidation"
  "web_cache_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cache_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
