# Empty compiler generated dependencies file for dis_terrain.
# This may be replaced when dependencies are built.
