file(REMOVE_RECURSE
  "CMakeFiles/dis_terrain.dir/dis_terrain.cpp.o"
  "CMakeFiles/dis_terrain.dir/dis_terrain.cpp.o.d"
  "dis_terrain"
  "dis_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dis_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
