file(REMOVE_RECURSE
  "CMakeFiles/lbrm_node.dir/lbrm_node.cpp.o"
  "CMakeFiles/lbrm_node.dir/lbrm_node.cpp.o.d"
  "lbrm_node"
  "lbrm_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbrm_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
