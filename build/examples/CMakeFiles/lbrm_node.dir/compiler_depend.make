# Empty compiler generated dependencies file for lbrm_node.
# This may be replaced when dependencies are built.
