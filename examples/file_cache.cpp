// Fault-tolerant distributed file caching -- LBRM as an alternative to
// leases (Section 4.2).
//
// "Rather than having explicit leases on the files in its cache, each
// client subscribes to a LBRM channel from the server on which to
// (reliably) receive invalidation notifications.  If the client detects a
// failure of its connection to the server (by the absence of heartbeats or
// other traffic), it invalidates its cache; this action occurs in time
// comparable to a lease timeout."
//
// This example runs a file server and client caches on the simulator:
//  1. normal invalidation: a write at the server reliably invalidates all
//     cached copies (even through packet loss);
//  2. failure semantics: the server dies; every client notices the missing
//     heartbeats and conservatively invalidates its whole cache -- the
//     lease-expiry equivalent, with no per-file lease bookkeeping.
//
//   $ ./file_cache
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "sim/scenario.hpp"

namespace {

using namespace lbrm;

/// One client's file cache, driven by LBRM notifications.
class CachingClient {
public:
    explicit CachingClient(NodeId id) : id_(id) {}

    void cache_file(const std::string& name) { cached_.insert(name); }

    void on_invalidation(const std::string& name, double now_s) {
        if (cached_.erase(name) > 0)
            std::printf("  t=%6.3f s  client %u: '%s' invalidated, dropped from cache\n",
                        now_s, id_.value(), name.c_str());
    }

    void on_connection_lost(double now_s) {
        if (cached_.empty()) return;
        std::printf("  t=%6.3f s  client %u: server heartbeats gone -> flushing %zu "
                    "cached files (lease-timeout equivalent)\n",
                    now_s, id_.value(), cached_.size());
        cached_.clear();
    }

    [[nodiscard]] std::size_t cached_count() const { return cached_.size(); }

private:
    NodeId id_;
    std::set<std::string> cached_;
};

}  // namespace

int main() {
    using namespace lbrm::sim;

    std::printf("LBRM file caching (Section 4.2): 2 sites x 3 clients\n\n");

    ScenarioConfig config;
    config.topology.sites = 2;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;
    config.max_idle = secs(0.25);
    DisScenario scenario(config);
    const auto& topo = scenario.topology();
    auto& network = scenario.network();

    std::map<NodeId, CachingClient> clients;
    for (NodeId r : topo.all_receivers()) {
        auto [it, inserted] = clients.emplace(r, CachingClient{r});
        it->second.cache_file("/etc/motd");
        it->second.cache_file("/home/shared/plan.txt");
    }

    scenario.start();
    scenario.run_for(millis(200));

    auto invalidate = [&](const std::string& name) {
        std::printf("server: file '%s' written -> invalidation multicast\n", name.c_str());
        scenario.send_update(std::vector<std::uint8_t>(name.begin(), name.end()));
    };

    // The server announces the channel first; clients observe the stream
    // position before they rely on its reliability (a receiver that never
    // saw a stream cannot ask for its history -- receiver-reliable
    // semantics start at first observation).
    invalidate("(channel-announcement)");
    scenario.run_for(secs(1.0));

    // Process scenario records into client caches incrementally.
    std::size_t delivery_cursor = 0, notice_cursor = 0;
    auto pump_records = [&] {
        for (; delivery_cursor < scenario.deliveries().size(); ++delivery_cursor) {
            const auto& d = scenario.deliveries()[delivery_cursor];
            clients.at(d.node).on_invalidation(
                std::string(d.payload.begin(), d.payload.end()), to_seconds(d.at));
        }
        for (; notice_cursor < scenario.notices().size(); ++notice_cursor) {
            const auto& n = scenario.notices()[notice_cursor];
            if (n.kind == NoticeKind::kFreshnessLost && clients.contains(n.node))
                clients.at(n.node).on_connection_lost(to_seconds(n.at));
        }
    };

    // 1. Reliable invalidation, with the packet lost at site 1.
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(1.0));
    invalidate("/home/shared/plan.txt");
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(3.0));
    pump_records();

    std::size_t still_cached = 0;
    for (auto& [id, c] : clients) still_cached += c.cached_count();
    std::printf("after write: %zu file copies still cached (expected 6: only "
                "'/etc/motd' remains everywhere)\n\n",
                still_cached);

    // 2. Server failure: heartbeats stop; caches self-invalidate.
    std::printf("server crashes...\n");
    network.set_node_down(topo.source, true);
    scenario.run_for(secs(5.0));
    pump_records();

    std::size_t after_failure = 0;
    for (auto& [id, c] : clients) after_failure += c.cached_count();
    std::printf("\nafter failure: %zu cached copies remain (expected 0)\n", after_failure);

    const bool ok = still_cached == 6 && after_failure == 0;
    std::printf("%s\n", ok ? "file-cache semantics PASSED"
                           : "file-cache semantics FAILED");
    return ok ? 0 : 1;
}
