// Distributed Interactive Simulation terrain updates -- the paper's
// motivating application (Section 1).
//
// A battlefield holds many static terrain entities (bridges, buildings).
// Each is an LBRM source with a 0.25 s freshness requirement but changes
// rarely.  Tanks at 5 sites subscribe.  During the exercise a bridge is
// destroyed while one site's tail circuit suffers a congestion burst; we
// verify every tank "sees" the destroyed bridge promptly once connectivity
// allows, and that heartbeat overhead stays tiny compared to a fixed-rate
// scheme.
//
//   $ ./dis_terrain
#include <cstdio>
#include <map>
#include <string>

#include "analysis/heartbeat_math.hpp"
#include "dis/bandwidth_model.hpp"
#include "dis/dead_reckoning.hpp"
#include "dis/terrain_db.hpp"
#include "sim/scenario.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::sim;

    std::printf("DIS terrain scenario: 5 sites x 8 tanks, one bridge entity.\n\n");

    ScenarioConfig config;
    config.topology.sites = 5;
    config.topology.receivers_per_site = 8;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 5;
    config.stat_ack.initial_probe_p = 0.4;
    config.stat_ack.probe_target_replies = 3;
    config.max_idle = secs(0.25);  // the paper's terrain freshness bound

    DisScenario scenario(config);
    scenario.start();
    scenario.run_for(secs(3.0));  // group-size probing settles

    // Initial terrain state: the bridge stands.
    dis::TerrainAuthority terrain;
    const dis::EntityId bridge{1};
    scenario.send_update(terrain.set_status(bridge, "bridge:INTACT"));
    scenario.run_for(secs(2.0));
    std::printf("t=%5.2f s  bridge placed; %zu tanks see it intact\n",
                to_seconds(scenario.simulator().now()),
                scenario.delivery_times(SeqNum{1}).size());

    // The exercise runs quietly: the entity stays silent except heartbeats.
    scenario.run_for(secs(60.0));
    const auto heartbeats = scenario.sender().heartbeats_sent();
    std::printf("t=%5.2f s  60 s of quiet: only %llu heartbeats on the wire\n",
                to_seconds(scenario.simulator().now()),
                static_cast<unsigned long long>(heartbeats));

    // Congestion burst begins on site 2's tail circuit, and the bridge is
    // destroyed right in the middle of it.
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    const TimePoint burst_start = scenario.simulator().now();
    network.set_loss(topo.backbone, topo.sites[2].router,
                     std::make_unique<BurstSchedule>(std::vector<BurstSchedule::Window>{
                         {burst_start, burst_start + secs(1.0)}}));

    scenario.send_update(terrain.set_status(bridge, "bridge:DESTROYED"));
    const SeqNum boom = scenario.sender().last_seq();
    const TimePoint boom_at = *scenario.sent_at(boom);
    std::printf("t=%5.2f s  BRIDGE DESTROYED (site 2 is inside a 1 s loss burst)\n",
                to_seconds(boom_at));

    scenario.run_for(secs(10.0));

    // Every tank maintains a terrain replica fed by its LBRM receiver;
    // verify every replica converged to the authority's database.
    std::map<NodeId, dis::TerrainReplica> replicas;
    for (const auto& d : scenario.deliveries()) replicas[d.node].apply(d.payload, d.at);
    std::size_t agreeing = 0;
    for (NodeId tank : topo.all_receivers())
        if (replicas[tank].agrees_with(terrain, bridge)) ++agreeing;
    std::printf("t=%5.2f s  terrain replicas agreeing with authority: %zu/40\n",
                to_seconds(scenario.simulator().now()), agreeing);

    // Who saw the destruction, and when?
    const auto times = scenario.delivery_times(boom);
    double site2_worst = 0, others_worst = 0;
    for (const auto& [node, when] : times) {
        const double latency = to_seconds(when - boom_at);
        const bool site2 = network.site_of(node) == topo.sites[2].id;
        (site2 ? site2_worst : others_worst) =
            std::max(site2 ? site2_worst : others_worst, latency);
    }
    std::printf("t=%5.2f s  all %zu/40 tanks see the destroyed bridge\n",
                to_seconds(scenario.simulator().now()), times.size());
    std::printf("           unaffected sites: worst view skew %.0f ms\n",
                others_worst * 1000.0);
    std::printf("           congested site 2: worst skew %.2f s "
                "(bounded by ~2 x burst length, Section 2.1.1)\n",
                site2_worst);

    // Packet economics for the full 100k+100k battlefield (Section 2.1.2),
    // including the dead-reckoned dynamic entities.
    dis::BattlefieldSpec battlefield;  // paper parameters
    const auto fixed = dis::fixed_heartbeat_budget(battlefield);
    const auto variable = dis::variable_heartbeat_budget(battlefield);
    std::printf("\nscaling to the paper's battlefield (100k dynamic + 100k terrain):\n");
    std::printf("  fixed heartbeats   : %.0f pkt/s total (%.0f%% keep-alive)\n",
                fixed.total(), fixed.heartbeat_fraction() * 100);
    std::printf("  variable heartbeats: %.0f pkt/s total (%.1fx less terrain "
                "keep-alive)\n",
                variable.total(),
                fixed.terrain_heartbeat_pps / variable.terrain_heartbeat_pps);

    const bool ok = times.size() == 40 && others_worst < 0.5 && agreeing == 40;
    std::printf("\n%s\n", ok ? "scenario PASSED" : "scenario FAILED");
    return ok ? 0 : 1;
}
