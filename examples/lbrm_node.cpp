// lbrm_node -- run one LBRM protocol role as a real process over UDP.
//
// Start a logging server, a source and receivers in separate terminals (or
// machines) and watch log-based recovery work over an actual network:
//
//   # logging server (node 2)
//   ./lbrm_node --role logger --id 2 --source 1 --bind 127.0.0.1:7002
//               --peer 1=127.0.0.1:7001 --peer 3=127.0.0.1:7003
//
//   # receiver (node 3)
//   ./lbrm_node --role receiver --id 3 --source 1 --logger 2
//               --bind 127.0.0.1:7003
//               --peer 1=127.0.0.1:7001 --peer 2=127.0.0.1:7002
//
//   # source (node 1): every stdin line becomes one multicast update
//   ./lbrm_node --role sender --id 1 --primary 2 --bind 127.0.0.1:7001
//               --peer 2=127.0.0.1:7002 --peer 3=127.0.0.1:7003
//
// With no --mcast group address the node uses unicast fan-out over the
// peer directory (works everywhere); pass --mcast 239.1.2.3:7100 to use
// real IP multicast.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/log.hpp"
#include "transport/udp_endpoint.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::transport;

struct Options {
    std::string role;
    NodeId id{0};
    GroupId group{1};
    SockAddr bind = SockAddr::loopback(0);
    SockAddr mcast{};
    std::map<NodeId, SockAddr> peers;
    NodeId source{1};
    NodeId primary = kNoNode;
    NodeId logger = kNoNode;
    double h_min = 0.25;
    double h_max = 32.0;
    double duration = 0.0;  // 0 = run until EOF/forever
};

void usage() {
    std::fprintf(stderr,
                 "usage: lbrm_node --role sender|logger|receiver --id N\n"
                 "       [--group G] --bind ip:port [--mcast ip:port]\n"
                 "       [--peer N=ip:port]... [--source N] [--primary N]\n"
                 "       [--logger N] [--hmin secs] [--hmax secs]\n"
                 "       [--duration secs]\n");
}

std::optional<Options> parse(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
            return argv[++i];
        };
        try {
            if (arg == "--role") {
                opts.role = value();
            } else if (arg == "--id") {
                opts.id = NodeId{static_cast<std::uint32_t>(std::stoul(value()))};
            } else if (arg == "--group") {
                opts.group = GroupId{static_cast<std::uint32_t>(std::stoul(value()))};
            } else if (arg == "--bind") {
                opts.bind = SockAddr::parse(value());
            } else if (arg == "--mcast") {
                opts.mcast = SockAddr::parse(value());
            } else if (arg == "--peer") {
                const std::string spec = value();
                const auto eq = spec.find('=');
                if (eq == std::string::npos)
                    throw std::invalid_argument("--peer needs N=ip:port");
                opts.peers[NodeId{static_cast<std::uint32_t>(
                    std::stoul(spec.substr(0, eq)))}] = SockAddr::parse(spec.substr(eq + 1));
            } else if (arg == "--source") {
                opts.source = NodeId{static_cast<std::uint32_t>(std::stoul(value()))};
            } else if (arg == "--primary") {
                opts.primary = NodeId{static_cast<std::uint32_t>(std::stoul(value()))};
            } else if (arg == "--logger") {
                opts.logger = NodeId{static_cast<std::uint32_t>(std::stoul(value()))};
            } else if (arg == "--hmin") {
                opts.h_min = std::stod(value());
            } else if (arg == "--hmax") {
                opts.h_max = std::stod(value());
            } else if (arg == "--duration") {
                opts.duration = std::stod(value());
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return std::nullopt;
            } else {
                throw std::invalid_argument("unknown option " + arg);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "lbrm_node: %s\n", e.what());
            usage();
            return std::nullopt;
        }
    }
    if (opts.role.empty() || opts.id == NodeId{0}) {
        usage();
        return std::nullopt;
    }
    return opts;
}

int run(const Options& opts) {
    Reactor reactor;
    UdpEndpointConfig endpoint_config;
    endpoint_config.self = opts.id;
    endpoint_config.bind_addr = opts.bind;
    endpoint_config.multicast_addr = opts.mcast;
    endpoint_config.peers = opts.peers;
    UdpEndpoint endpoint{reactor, std::move(endpoint_config)};

    HeartbeatConfig heartbeat;
    heartbeat.h_min = secs(opts.h_min);
    heartbeat.h_max = secs(opts.h_max);

    if (opts.role == "sender") {
        SenderConfig config;
        config.self = opts.id;
        config.group = opts.group;
        config.primary_logger = opts.primary;
        config.heartbeat = heartbeat;
        config.stat_ack.enabled = false;  // point-to-point demo scale
        endpoint.protocol().add_sender(config);
    } else if (opts.role == "logger") {
        LoggerConfig config;
        config.self = opts.id;
        config.group = opts.group;
        config.source = opts.source;
        config.role = LoggerRole::kPrimary;
        AppHandlers handlers;
        handlers.on_notice = [](TimePoint, const Notice& n) {
            std::printf("[logger] notice kind=%d arg=%llu\n", static_cast<int>(n.kind),
                        static_cast<unsigned long long>(n.arg));
        };
        endpoint.protocol().add_logger(config, opts.id.value(), handlers);
    } else if (opts.role == "receiver") {
        ReceiverConfig config;
        config.self = opts.id;
        config.group = opts.group;
        config.source = opts.source;
        config.logger = opts.logger;
        config.heartbeat = heartbeat;
        AppHandlers handlers;
        handlers.on_data = [](TimePoint, const DeliverData& d) {
            std::printf("[recv] seq %u%s: %.*s\n", d.seq.value(),
                        d.recovered ? " (recovered)" : "",
                        static_cast<int>(d.payload.size()),
                        reinterpret_cast<const char*>(d.payload.data()));
            std::fflush(stdout);
        };
        handlers.on_notice = [](TimePoint, const Notice& n) {
            if (n.kind == NoticeKind::kFreshnessLost)
                std::printf("[recv] stream STALE (no heartbeats)\n");
            if (n.kind == NoticeKind::kFreshnessRestored)
                std::printf("[recv] stream fresh again\n");
            std::fflush(stdout);
        };
        endpoint.protocol().add_receiver(config, handlers);
    } else {
        std::fprintf(stderr, "lbrm_node: unknown role '%s'\n", opts.role.c_str());
        return 2;
    }

    endpoint.protocol().start(reactor.now());
    std::printf("lbrm_node: %s id=%u bound to %s (%s)\n", opts.role.c_str(),
                opts.id.value(), endpoint.unicast_addr().to_string().c_str(),
                opts.mcast.ip ? "IP multicast" : "unicast fan-out");
    std::fflush(stdout);

    const TimePoint deadline =
        opts.duration > 0 ? reactor.now() + secs(opts.duration) : TimePoint::max();

    if (opts.role == "sender") {
        // stdin lines -> updates; the reactor pumps between reads.
        std::string line;
        while (reactor.now() < deadline) {
            reactor.run_once(millis(50));
            // Non-blocking-ish stdin poll: check if a full line is ready.
            if (std::cin.rdbuf()->in_avail() > 0 || isatty(STDIN_FILENO) == 0) {
                if (!std::getline(std::cin, line)) break;
                if (line.empty()) continue;
                endpoint.protocol().send(
                    reactor.now(), std::vector<std::uint8_t>(line.begin(), line.end()));
                std::printf("[send] %s\n", line.c_str());
                std::fflush(stdout);
            }
        }
        // Give the last LogStore handoff a moment to be acknowledged.
        const TimePoint drain = reactor.now() + millis(300);
        while (reactor.now() < drain) reactor.run_once(millis(20));
    } else {
        while (reactor.now() < deadline) reactor.run_once(millis(100));
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = parse(argc, argv);
    if (!opts) return 1;
    try {
        return run(*opts);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "lbrm_node: fatal: %s\n", e.what());
        return 1;
    }
}
