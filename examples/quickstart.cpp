// Quickstart: the smallest complete LBRM deployment.
//
// One source, a primary logging server, one site with a secondary logger
// and three receivers -- all on the deterministic network simulator.  We
// multicast a few updates, deliberately lose one on the site's tail
// circuit, and watch the protocol detect the gap via the variable heartbeat
// and repair it through the logging hierarchy.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "sim/scenario.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::sim;

    // 1. Describe the deployment: one receiver site, secondary logger on.
    ScenarioConfig config;
    config.topology.sites = 1;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = false;  // keep the first example simple
    config.heartbeat.h_min = secs(0.25);
    config.heartbeat.h_max = secs(32.0);

    DisScenario scenario(config);
    scenario.start();

    std::printf("LBRM quickstart: 1 source, 1 primary logger, 1 site with a\n");
    std::printf("secondary logger and 3 receivers.\n\n");

    // 2. Send an update; everyone receives it live.
    const std::string hello = "terrain update: bridge intact";
    scenario.send_update({hello.begin(), hello.end()});
    scenario.run_for(secs(1.0));
    std::printf("update #1 delivered to %zu receivers (live multicast)\n",
                scenario.delivery_times(SeqNum{1}).size());

    // 3. Lose the next update on the site's tail circuit.
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    const std::string boom = "terrain update: bridge DESTROYED";
    scenario.send_update({boom.begin(), boom.end()});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    std::printf("update #2 multicast... and dropped on the tail circuit\n");

    // 4. The variable heartbeat (first one h_min = 250 ms after the data)
    //    reveals the gap; the secondary logger fetches the packet from the
    //    primary log and repairs the whole site.
    scenario.run_for(secs(3.0));

    const auto times = scenario.delivery_times(SeqNum{2});
    std::printf("update #2 recovered by %zu receivers:\n", times.size());
    for (const auto& [node, when] : times) {
        std::printf("  receiver %u at t=%.3f s (%.0f ms after send)\n", node.value(),
                    to_seconds(when),
                    to_seconds(when - *scenario.sent_at(SeqNum{2})) * 1000.0);
    }

    std::printf("\nprotocol events observed:\n");
    std::printf("  loss detections : %zu\n",
                scenario.notice_count(NoticeKind::kLossDetected));
    std::printf("  NACKs sent      : %llu (one per receiver, all site-local)\n",
                static_cast<unsigned long long>([&] {
                    std::uint64_t total = 0;
                    for (NodeId r : topo.sites[0].receivers)
                        total += scenario.receiver(r).nacks_sent();
                    return total;
                }()));
    std::printf("  secondary logger: %llu served, %llu fetched upstream\n",
                static_cast<unsigned long long>(
                    scenario.secondary_logger(0).nacks_served_unicast() +
                    scenario.secondary_logger(0).nacks_served_multicast()),
                static_cast<unsigned long long>(
                    scenario.secondary_logger(0).upstream_fetches()));
    std::printf("\ndone: receiver-reliable delivery with log-based recovery.\n");
    return 0;
}
