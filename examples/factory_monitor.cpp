// Factory automation with intermittently-connected mobile monitors
// (Section 4.4).
//
// Sensors on the factory floor multicast equipment status over LBRM; the
// logging server doubles as the factory's mandated transaction log.  A
// worker's mobile terminal walks in and out of radio coverage: "when a
// mobile host reconnects, it can recover any lost data from a logging
// server without interfering with the other receivers or affecting the
// on-going data flow from the source."
//
//   $ ./factory_monitor
#include <cstdio>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::sim;

    std::printf("factory monitor: 1 sensor group, 1 site, 3 fixed consoles +\n");
    std::printf("1 mobile terminal with intermittent connectivity\n\n");

    ScenarioConfig config;
    config.topology.sites = 1;
    config.topology.receivers_per_site = 4;  // receiver[3] plays the mobile
    config.stat_ack.enabled = false;
    config.max_idle = secs(0.25);
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    const NodeId mobile = topo.sites[0].receivers[3];

    scenario.start();
    scenario.run_for(millis(100));

    auto report = [&](const std::string& status) {
        std::printf("t=%6.3f s  sensor: %s\n", to_seconds(scenario.simulator().now()),
                    status.c_str());
        scenario.send_update(std::vector<std::uint8_t>(status.begin(), status.end()));
    };

    report("press-01 temperature NOMINAL");
    scenario.run_for(secs(1.0));

    // The worker walks into the warehouse: the mobile link dies.
    std::printf("t=%6.3f s  mobile terminal loses radio coverage\n",
                to_seconds(scenario.simulator().now()));
    network.set_loss(topo.sites[0].router, mobile, std::make_unique<BernoulliLoss>(1.0));

    report("press-01 temperature HIGH");
    scenario.run_for(secs(1.0));
    report("press-01 EMERGENCY STOP");
    scenario.run_for(secs(2.0));

    // While disconnected, the mobile's freshness watchdog fired (its lease
    // on the data expired, Section 4.2's failure-detection semantics).
    std::size_t stale_notices = 0;
    for (const auto& n : scenario.notices())
        if (n.node == mobile && n.kind == NoticeKind::kFreshnessLost) ++stale_notices;
    std::printf("t=%6.3f s  mobile knows it is stale (freshness lost: %zu)\n",
                to_seconds(scenario.simulator().now()), stale_notices);

    // Coverage returns; the next heartbeat resyncs it and the logging
    // server replays everything it missed.
    std::printf("t=%6.3f s  mobile terminal reconnects\n",
                to_seconds(scenario.simulator().now()));
    network.set_loss(topo.sites[0].router, mobile, std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(8.0));

    std::printf("\nmobile terminal's received history:\n");
    std::size_t mobile_live = 0, mobile_recovered = 0;
    for (const auto& d : scenario.deliveries()) {
        if (d.node != mobile) continue;
        std::printf("  seq %u at t=%6.3f s %s\n", d.seq.value(), to_seconds(d.at),
                    d.recovered ? "[recovered from factory log]" : "[live]");
        (d.recovered ? mobile_recovered : mobile_live)++;
    }

    // The factory log retained every transaction (record-keeping duty).
    std::printf("\nfactory transaction log holds %zu records (%zu bytes)\n",
                scenario.primary_logger().store().size(),
                scenario.primary_logger().store().payload_bytes());

    const bool ok = mobile_live + mobile_recovered == 3 && mobile_recovered >= 2 &&
                    stale_notices >= 1;
    std::printf("\n%s\n", ok ? "mobile monitor fully caught up after reconnect"
                             : "mobile monitor missed data (unexpected)");
    return ok ? 0 : 1;
}
