// WWW page-cache invalidation (Section 4.3 + Appendix A).
//
// Every HTML page carries a first-line comment binding it to a multicast
// address:   <!MULTICAST.234.12.29.72.>
// A browser displaying the page subscribes; when the HTTP server detects a
// local document changed it reliably multicasts
//   TRANS:<seq>.0:UPDATE:<url>
// (heartbeats look like  TRANS:<seq>.<k>:HEARTBEAT , retransmissions are
// tagged RETRANS).  A client that receives the invalidation highlights its
// RELOAD button; lost invalidations are recovered from the logging process
// at the server host.
//
// The Appendix-A grammar lives in src/apps/html_invalidation.hpp; this
// example carries it as LBRM payloads over the simulator, with one site
// losing the invalidation and recovering it from the log.
//
//   $ ./web_cache_invalidation
#include <cstdio>
#include <map>
#include <string>

#include "apps/html_invalidation.hpp"
#include "sim/scenario.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::sim;
    namespace apps = lbrm::apps;

    const std::string url = "http://www-DSG.Stanford.EDU/groupMembers.html";
    const std::string first_line = apps::render_page_binding("234.12.29.72");

    std::printf("HTML page invalidation (Appendix A) over LBRM\n");
    std::printf("page: %s\n", url.c_str());
    std::printf("first line: %s  -> multicast %s (group 1 here)\n\n",
                first_line.c_str(), apps::parse_page_binding(first_line)->c_str());

    ScenarioConfig config;
    config.topology.sites = 3;
    config.topology.receivers_per_site = 2;  // six browsers
    config.stat_ack.enabled = false;
    DisScenario scenario(config);

    std::map<NodeId, apps::BrowserCache> browsers;
    for (NodeId b : scenario.topology().all_receivers()) {
        browsers[b].display(url);  // the browser shows the page -> subscribes
    }

    scenario.start();
    scenario.run_for(secs(0.5));

    // The server edits the page -> reliable invalidation multicast carrying
    // the Appendix-A text as the LBRM payload.
    auto publish = [&](SeqNum expected_seq) {
        const std::string message = apps::render_update(expected_seq, url);
        std::printf("server multicasts:  %s\n", message.c_str());
        scenario.send_update(std::vector<std::uint8_t>(message.begin(), message.end()));
    };

    // Drain new deliveries into the browser caches after each run segment.
    // Live copies carry the TRANS text verbatim; recovered copies are
    // re-tagged RETRANS, as Appendix A specifies.
    std::size_t consumed = 0;
    auto render = [&] {
        for (; consumed < scenario.deliveries().size(); ++consumed) {
            const auto& d = scenario.deliveries()[consumed];
            std::string text(d.payload.begin(), d.payload.end());
            if (d.recovered) text = "RE" + text;  // TRANS -> RETRANS
            const auto message = apps::parse_message(text);
            if (!message) continue;
            if (browsers[d.node].apply(*message)) {
                std::printf("  t=%6.3f s  browser %u: RELOAD highlighted for %s%s\n",
                            to_seconds(d.at), d.node.value(), message->url.c_str(),
                            message->retransmission ? "  [recovered from logger]" : "");
            }
        }
    };

    publish(SeqNum{1});
    scenario.run_for(secs(1.0));
    render();

    std::printf("\n(one site's tail circuit drops the next invalidation)\n");
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(1.0));
    publish(SeqNum{2});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.sites[1].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(3.0));
    render();

    std::printf("\nfinal browser state:\n");
    bool all_highlighted = true;
    for (auto& [node, cache] : browsers) {
        const bool hl = cache.reload_highlighted(url);
        std::printf("  browser %u: RELOAD %s\n", node.value(),
                    hl ? "highlighted" : "NOT highlighted");
        all_highlighted = all_highlighted && hl;
    }
    std::printf("\n%s\n", all_highlighted
                              ? "every cached copy was invalidated, including the "
                                "site that lost the packet"
                              : "some browser kept a stale page (unexpected)");
    return all_highlighted ? 0 : 1;
}
