// Stock-quote dissemination over REAL UDP sockets (Section 4.1).
//
// "Reliable multicast is particularly well-suited for applications in which
// clients obtain and cache data from a server ... distributing real-time
// stock quotes to brokers' terminals."
//
// One process hosts a quote server (LBRM source), a logging server and
// three broker terminals, each on its own UDP socket, all driven by one
// epoll reactor on loopback.  We publish quotes, then silently drop one at
// a broker (simulated by briefly unregistering it from the fan-out
// directory) and watch it recover the quote from the logging server --
// packets crossing real sockets the whole time.
//
//   $ ./stock_ticker
#include <cstdio>
#include <map>
#include <string>

#include "transport/udp_endpoint.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::transport;

constexpr NodeId kServer{1};
constexpr NodeId kLogger{2};
constexpr GroupId kTicker{1};

std::string quote_text(const std::vector<std::uint8_t>& payload) {
    return std::string(payload.begin(), payload.end());
}

}  // namespace

int main() {
    Reactor reactor;

    auto make_endpoint = [&](NodeId id) {
        UdpEndpointConfig config;
        config.self = id;
        return std::make_unique<UdpEndpoint>(reactor, std::move(config));
    };

    auto server = make_endpoint(kServer);
    auto logger = make_endpoint(kLogger);
    std::map<NodeId, std::unique_ptr<UdpEndpoint>> brokers;
    for (std::uint32_t i = 3; i <= 5; ++i) brokers[NodeId{i}] = make_endpoint(NodeId{i});

    // Everyone learns everyone's (ephemeral loopback) address.
    auto register_all = [&](UdpEndpoint& endpoint) {
        endpoint.add_peer(kServer, server->unicast_addr());
        endpoint.add_peer(kLogger, logger->unicast_addr());
        for (auto& [id, b] : brokers) endpoint.add_peer(id, b->unicast_addr());
    };
    register_all(*server);
    register_all(*logger);
    for (auto& [id, b] : brokers) register_all(*b);

    // --- protocol wiring ---------------------------------------------------
    SenderConfig sender_config;
    sender_config.self = kServer;
    sender_config.group = kTicker;
    sender_config.primary_logger = kLogger;
    sender_config.stat_ack.enabled = false;
    sender_config.heartbeat.h_min = millis(50);  // snappy for a demo
    sender_config.heartbeat.h_max = secs(2.0);
    server->protocol().add_sender(sender_config);

    LoggerConfig logger_config;
    logger_config.self = kLogger;
    logger_config.group = kTicker;
    logger_config.source = kServer;
    logger_config.role = LoggerRole::kPrimary;
    logger->protocol().add_logger(logger_config, 1);

    std::map<NodeId, std::string> last_quote;
    for (auto& [id, broker] : brokers) {
        ReceiverConfig receiver_config;
        receiver_config.self = id;
        receiver_config.group = kTicker;
        receiver_config.source = kServer;
        receiver_config.logger = kLogger;
        receiver_config.heartbeat = sender_config.heartbeat;
        AppHandlers handlers;
        const NodeId broker_id = id;
        handlers.on_data = [&last_quote, broker_id](TimePoint, const DeliverData& d) {
            last_quote[broker_id] = quote_text(d.payload);
            std::printf("  broker %u: %s%s\n", broker_id.value(),
                        quote_text(d.payload).c_str(),
                        d.recovered ? "   [recovered from log]" : "");
        };
        broker->protocol().add_receiver(receiver_config, handlers);
    }

    const TimePoint start = reactor.now();
    server->protocol().start(start);
    logger->protocol().start(start);
    for (auto& [id, b] : brokers) b->protocol().start(start);

    auto pump = [&](Duration d) {
        const TimePoint deadline = reactor.now() + d;
        while (reactor.now() < deadline) reactor.run_once(millis(5));
    };
    auto publish = [&](const std::string& quote) {
        std::printf("server publishes: %s\n", quote.c_str());
        server->protocol().send(reactor.now(),
                                std::vector<std::uint8_t>(quote.begin(), quote.end()));
    };

    std::printf("stock ticker on real UDP sockets (loopback)\n\n");
    publish("ACME 102.50 +1.2%");
    pump(millis(100));

    // Broker 4 "loses" the next quote: temporarily point its directory
    // entry at a dead port so the server's fan-out misses it.
    const NodeId victim{4};
    const SockAddr real_addr = brokers[victim]->unicast_addr();
    std::printf("\n(broker 4 drops off the multicast for one quote)\n");
    server->add_peer(victim, SockAddr::loopback(9));  // discard port
    publish("ACME  98.10 -4.3%");
    pump(millis(30));
    server->add_peer(victim, real_addr);

    // The next heartbeat reveals the gap; broker 4 NACKs the logger.
    pump(millis(600));

    std::printf("\nfinal broker screens:\n");
    bool consistent = true;
    for (auto& [id, quote] : last_quote) {
        std::printf("  broker %u: %s\n", id.value(), quote.c_str());
        consistent = consistent && quote == last_quote.begin()->second;
    }
    std::printf("\n%s\n", consistent ? "all brokers consistent -- quote recovered "
                                       "through the logging server"
                                     : "brokers diverged (unexpected)");
    return consistent ? 0 : 1;
}
