// A wb/SRM-style reliable-multicast model, built to Section 6's description
// of the protocol LBRM is compared against:
//
//   * "a receiver requests lost packets from everyone in the group, and
//     anyone with the packet may respond" -- repair requests and repairs are
//     both multicast to the whole group;
//   * "a receiver must delay its retransmission request for a time
//     proportional to the RTT delay to the source (in order to avoid
//     duplicate requests)" -- request timer drawn uniformly from
//     [c1, c1+c2] x RTT, suppressed and exponentially backed off when
//     another member's request for the same packet is heard;
//   * responders likewise delay repairs by [d1, d1+d2] x RTT and suppress
//     on hearing another repair;
//   * low-rate groups rely on "periodic multicast session messages at fixed
//     intervals to discover losses" -- the fixed-heartbeat scheme.
//
// The model reproduces wb's recovery-time structure (~3 x RTT for the last
// receiver, Section 6) and its "crying baby" behaviour, which the
// bench_sec6_wb_comparison harness measures against LBRM.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/actions.hpp"
#include "core/log_store.hpp"
#include "core/loss_detector.hpp"
#include "runtime/services.hpp"

namespace lbrm::baseline {

struct SrmConfig {
    NodeId self;
    GroupId group;
    NodeId source;
    /// Estimated RTT to the source (SRM request/repair timers scale by it).
    Duration rtt_to_source = millis(80);
    /// Request timer window [c1, c1+c2] x RTT (SRM's C1/C2, both 1 in wb).
    double c1 = 1.0;
    double c2 = 1.0;
    /// Repair timer window [d1, d1+d2] x RTT.
    double d1 = 1.0;
    double d2 = 1.0;
    /// Session-message (fixed heartbeat) interval for the sender.
    Duration session_interval = secs(0.25);
    /// Give up re-requesting after this many backoff rounds.
    std::uint32_t max_request_rounds = 6;
};

/// The wb data source: multicasts data, answers repair requests like any
/// other member, and emits fixed-interval session messages.
class SrmSenderCore final : public CoreBase {
public:
    SrmSenderCore(SrmConfig config, std::uint64_t seed);

    Actions start(TimePoint now) override;
    Actions on_packet(TimePoint now, const Packet& packet) override;
    Actions on_timer(TimePoint now, TimerId id) override;

    /// Multicast one application payload.
    Actions send(TimePoint now, std::vector<std::uint8_t> payload);

    [[nodiscard]] SeqNum last_seq() const { return next_seq_.prev(); }

private:
    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }
    [[nodiscard]] double jitter();

    SrmConfig config_;
    SeqNum next_seq_{1};
    LogStore log_;
    /// Armed repair timers: like any SRM member, the source delays repairs
    /// by [d1, d1+d2] x RTT and suppresses on hearing someone else's repair.
    std::set<SeqNum, SeqNum::WireOrder> repair_armed_;
    std::uint64_t jitter_state_;
};

/// A wb group member: receives, caches, requests repairs from the group and
/// serves repairs from its cache.
class SrmMemberCore final : public CoreBase {
public:
    SrmMemberCore(SrmConfig config, std::uint64_t seed);

    Actions start(TimePoint now) override;
    Actions on_packet(TimePoint now, const Packet& packet) override;
    Actions on_timer(TimePoint now, TimerId id) override;

    [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }
    [[nodiscard]] std::uint64_t repairs_sent() const { return repairs_sent_; }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] const LossDetector& detector() const { return detector_; }

private:
    struct RequestState {
        std::uint32_t rounds = 0;   ///< backoff exponent
        bool timer_armed = false;
    };

    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }

    [[nodiscard]] double jitter();  // uniform [0,1), deterministic stream
    void schedule_request(TimePoint now, SeqNum seq, bool backoff, Actions& actions);
    Actions accept_data(TimePoint now, SeqNum seq, EpochId epoch,
                        const std::vector<std::uint8_t>& payload, bool is_repair);

    SrmConfig config_;
    LossDetector detector_;
    LogStore cache_;
    std::map<SeqNum, RequestState, SeqNum::WireOrder> requests_;
    /// Repairs we owe the group (armed repair timers), keyed by seq.
    std::set<SeqNum, SeqNum::WireOrder> repair_armed_;

    std::uint64_t jitter_state_;
    std::uint64_t requests_sent_ = 0;
    std::uint64_t repairs_sent_ = 0;
    std::uint64_t delivered_ = 0;
};

}  // namespace lbrm::baseline
