#include "baseline/srm.hpp"

namespace lbrm::baseline {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

SrmSenderCore::SrmSenderCore(SrmConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      jitter_state_(seed ^ (0xA0761D6478BD642Full + config_.self.value())) {}

double SrmSenderCore::jitter() {
    jitter_state_ ^= jitter_state_ >> 12;
    jitter_state_ ^= jitter_state_ << 25;
    jitter_state_ ^= jitter_state_ >> 27;
    return static_cast<double>((jitter_state_ * 0x2545F4914F6CDD1Dull) >> 11) /
           9007199254740992.0;
}

Actions SrmSenderCore::start(TimePoint now) {
    Actions actions;
    actions.push_back(
        StartTimer{{TimerKind::kHeartbeat, 0}, now + config_.session_interval});
    return actions;
}

Actions SrmSenderCore::send(TimePoint now, std::vector<std::uint8_t> payload) {
    Actions actions;
    const SeqNum seq = next_seq_++;
    log_.insert(now, seq, EpochId{0}, payload);
    actions.push_back(
        SendMulticast{make_packet(DataBody{seq, EpochId{0}, std::move(payload)})});
    return actions;
}

Actions SrmSenderCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) return actions;

    if (const auto* nack = std::get_if<NackBody>(&packet.body)) {
        // Like every SRM member, the source delays its repair by a
        // randomized [d1, d1+d2] x RTT window so that a closer holder can
        // win the race, and suppresses if it hears another repair first.
        for (SeqNum seq : nack->missing) {
            if (!log_.contains(seq) || repair_armed_.contains(seq)) continue;
            repair_armed_.insert(seq);
            const double rtt = to_seconds(config_.rtt_to_source);
            const double delay = (config_.d1 + config_.d2 * jitter()) * rtt;
            actions.push_back(StartTimer{{TimerKind::kRemcastWindow, seq.value()},
                                         now + secs(delay)});
        }
        return actions;
    }

    if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body)) {
        // Someone else repaired it: suppress our own repair.
        if (repair_armed_.erase(rt->seq) > 0)
            actions.push_back(CancelTimer{{TimerKind::kRemcastWindow, rt->seq.value()}});
        return actions;
    }

    return actions;
}

Actions SrmSenderCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    if (id.kind == TimerKind::kHeartbeat) {
        actions.push_back(SendMulticast{make_packet(HeartbeatBody{last_seq(), 0})});
        actions.push_back(
            StartTimer{{TimerKind::kHeartbeat, 0}, now + config_.session_interval});
        return actions;
    }
    if (id.kind == TimerKind::kRemcastWindow) {
        const SeqNum seq{static_cast<std::uint32_t>(id.arg)};
        if (repair_armed_.erase(seq) == 0) return actions;
        if (const LogStore::Entry* entry = log_.find(seq)) {
            actions.push_back(SendMulticast{make_packet(RetransmissionBody{
                entry->seq, entry->epoch, true, entry->payload})});
        }
        return actions;
    }
    return actions;
}

// ---------------------------------------------------------------------------
// Member
// ---------------------------------------------------------------------------

SrmMemberCore::SrmMemberCore(SrmConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      jitter_state_(seed ^ (0xD1B54A32D192ED03ull + config_.self.value())) {}

double SrmMemberCore::jitter() {
    jitter_state_ ^= jitter_state_ >> 12;
    jitter_state_ ^= jitter_state_ << 25;
    jitter_state_ ^= jitter_state_ >> 27;
    return static_cast<double>((jitter_state_ * 0x2545F4914F6CDD1Dull) >> 11) /
           9007199254740992.0;
}

Actions SrmMemberCore::start(TimePoint) { return {}; }

void SrmMemberCore::schedule_request(TimePoint now, SeqNum seq, bool backoff,
                                     Actions& actions) {
    RequestState& state = requests_[seq];
    if (backoff) ++state.rounds;
    if (state.rounds >= config_.max_request_rounds) {
        requests_.erase(seq);
        detector_.abandon(seq);
        actions.push_back(Notice{NoticeKind::kRecoveryFailed, seq.value()});
        return;
    }
    // Delay uniform in [c1, c1+c2] x RTT, doubled per backoff round (SRM).
    const double rtt = to_seconds(config_.rtt_to_source);
    const double scale_factor = static_cast<double>(1u << state.rounds);
    const double delay = (config_.c1 + config_.c2 * jitter()) * rtt * scale_factor;
    state.timer_armed = true;
    actions.push_back(
        StartTimer{{TimerKind::kNackDelay, seq.value()}, now + secs(delay)});
}

Actions SrmMemberCore::accept_data(TimePoint now, SeqNum seq, EpochId epoch,
                                   const std::vector<std::uint8_t>& payload,
                                   bool is_repair) {
    Actions actions;
    auto obs = detector_.observe(now, seq);
    // Cache everything: any member can serve any repair.
    cache_.insert(now, seq, epoch, payload);

    // A repair (or late arrival) settles our own request and repair timers.
    if (auto it = requests_.find(seq); it != requests_.end()) {
        if (it->second.timer_armed)
            actions.push_back(CancelTimer{{TimerKind::kNackDelay, seq.value()}});
        requests_.erase(it);
    }
    if (repair_armed_.erase(seq) > 0)
        actions.push_back(CancelTimer{{TimerKind::kRemcastWindow, seq.value()}});

    for (SeqNum missing : obs.newly_missing) {
        actions.push_back(Notice{NoticeKind::kLossDetected, missing.value()});
        schedule_request(now, missing, /*backoff=*/false, actions);
    }

    if (!obs.duplicate) {
        ++delivered_;
        actions.push_back(DeliverData{seq, payload, is_repair || obs.fills_gap});
    }
    return actions;
}

Actions SrmMemberCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) return actions;

    if (const auto* data = std::get_if<DataBody>(&packet.body))
        return accept_data(now, data->seq, data->epoch, data->payload, false);

    if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body))
        return accept_data(now, rt->seq, rt->epoch, rt->payload, true);

    if (const auto* hb = std::get_if<HeartbeatBody>(&packet.body)) {
        auto obs = detector_.observe(now, hb->last_seq, /*is_heartbeat=*/true);
        for (SeqNum missing : obs.newly_missing) {
            actions.push_back(Notice{NoticeKind::kLossDetected, missing.value()});
            schedule_request(now, missing, false, actions);
        }
        return actions;
    }

    if (const auto* nack = std::get_if<NackBody>(&packet.body)) {
        // Someone else is asking.  For packets we also miss: suppress our own
        // request and back off.  For packets we hold: race to repair.
        for (SeqNum seq : nack->missing) {
            if (auto it = requests_.find(seq); it != requests_.end()) {
                if (it->second.timer_armed) {
                    it->second.timer_armed = false;
                    actions.push_back(CancelTimer{{TimerKind::kNackDelay, seq.value()}});
                }
                schedule_request(now, seq, /*backoff=*/true, actions);
            } else if (cache_.contains(seq) && !repair_armed_.contains(seq)) {
                repair_armed_.insert(seq);
                const double rtt = to_seconds(config_.rtt_to_source);
                const double delay = (config_.d1 + config_.d2 * jitter()) * rtt;
                actions.push_back(StartTimer{{TimerKind::kRemcastWindow, seq.value()},
                                             now + secs(delay)});
            }
        }
        return actions;
    }

    return actions;
}

Actions SrmMemberCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    const SeqNum seq{static_cast<std::uint32_t>(id.arg)};

    if (id.kind == TimerKind::kNackDelay) {
        // Our request timer fired: multicast the repair request to everyone.
        auto it = requests_.find(seq);
        if (it == requests_.end() || !detector_.is_missing(seq)) return actions;
        it->second.timer_armed = false;
        ++requests_sent_;
        actions.push_back(SendMulticast{make_packet(NackBody{{seq}})});
        // Await a repair; if none comes, the next sighting of our own or
        // anyone's request backs off.  Re-arm with backoff.
        schedule_request(now, seq, /*backoff=*/true, actions);
        return actions;
    }

    if (id.kind == TimerKind::kRemcastWindow) {
        // Our repair timer fired first: multicast the repair.
        if (repair_armed_.erase(seq) == 0) return actions;
        if (const LogStore::Entry* entry = cache_.find(seq)) {
            ++repairs_sent_;
            actions.push_back(SendMulticast{make_packet(RetransmissionBody{
                entry->seq, entry->epoch, true, entry->payload})});
        }
        return actions;
    }

    return actions;
}

}  // namespace lbrm::baseline
