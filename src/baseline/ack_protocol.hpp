// A conventional positive-acknowledgement (sender-reliable) multicast
// baseline, as criticized in Section 1:
//
//   * the source must know every receiver ("positive acknowledgement
//     requires that the source know the identity of the receivers");
//   * every receiver ACKs every packet ("can lead to an acknowledgement
//     implosion at the source");
//   * the source retransmits point-to-point to non-ackers after a timeout.
//
// The bench harnesses measure its ACK implosion (packets arriving at the
// source per data packet) and its source buffering against LBRM.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/actions.hpp"
#include "core/log_store.hpp"
#include "core/loss_detector.hpp"
#include "runtime/services.hpp"

namespace lbrm::baseline {

struct AckProtocolConfig {
    NodeId self;
    GroupId group;
    NodeId source;
    /// Sender only: the full receiver list (sender-reliable requirement).
    std::vector<NodeId> receivers;
    Duration retransmit_timeout = millis(200);
    std::uint32_t max_retries = 10;
};

class AckSenderCore final : public CoreBase {
public:
    explicit AckSenderCore(AckProtocolConfig config);

    Actions start(TimePoint now) override;
    Actions on_packet(TimePoint now, const Packet& packet) override;
    Actions on_timer(TimePoint now, TimerId id) override;

    /// Multicast one payload; the packet is retained until every receiver
    /// has acknowledged it (or retries are exhausted).
    Actions send(TimePoint now, std::vector<std::uint8_t> payload);

    [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
    [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
    [[nodiscard]] std::size_t unacked_packets() const { return pending_.size(); }
    [[nodiscard]] std::size_t buffered_bytes() const { return log_.payload_bytes(); }

private:
    struct Pending {
        std::set<NodeId> missing;  ///< receivers that have not acked
        std::uint32_t retries = 0;
    };

    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }

    AckProtocolConfig config_;
    SeqNum next_seq_{1};
    LogStore log_;
    std::map<SeqNum, Pending, SeqNum::WireOrder> pending_;
    std::uint64_t acks_received_ = 0;
    std::uint64_t retransmissions_ = 0;
};

class AckReceiverCore final : public CoreBase {
public:
    explicit AckReceiverCore(AckProtocolConfig config);

    Actions start(TimePoint now) override;
    Actions on_packet(TimePoint now, const Packet& packet) override;
    Actions on_timer(TimePoint now, TimerId id) override;

    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

private:
    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }

    AckProtocolConfig config_;
    LossDetector detector_;
    std::uint64_t delivered_ = 0;
    std::uint64_t acks_sent_ = 0;
};

}  // namespace lbrm::baseline
