#include "baseline/ack_protocol.hpp"

namespace lbrm::baseline {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

AckSenderCore::AckSenderCore(AckProtocolConfig config) : config_(std::move(config)) {}

Actions AckSenderCore::start(TimePoint) { return {}; }

Actions AckSenderCore::send(TimePoint now, std::vector<std::uint8_t> payload) {
    Actions actions;
    const SeqNum seq = next_seq_++;
    log_.insert(now, seq, EpochId{0}, payload);

    Pending pending;
    for (NodeId r : config_.receivers) pending.missing.insert(r);
    pending_.emplace(seq, std::move(pending));

    actions.push_back(
        SendMulticast{make_packet(DataBody{seq, EpochId{0}, std::move(payload)})});
    actions.push_back(StartTimer{{TimerKind::kAckWait, seq.value()},
                                 now + config_.retransmit_timeout});
    return actions;
}

Actions AckSenderCore::on_packet(TimePoint now, const Packet& packet) {
    (void)now;
    Actions actions;
    if (packet.header.group != config_.group) return actions;
    const auto* ack = std::get_if<AckBody>(&packet.body);
    if (ack == nullptr) return actions;
    ++acks_received_;

    auto it = pending_.find(ack->seq);
    if (it == pending_.end()) return actions;
    it->second.missing.erase(packet.header.sender);
    if (it->second.missing.empty()) {
        // Fully acknowledged: release the buffer (TCP-style flush).
        pending_.erase(it);
        log_.remove(ack->seq);
        actions.push_back(CancelTimer{{TimerKind::kAckWait, ack->seq.value()}});
    }
    return actions;
}

Actions AckSenderCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    if (id.kind != TimerKind::kAckWait) return actions;
    const SeqNum seq{static_cast<std::uint32_t>(id.arg)};
    auto it = pending_.find(seq);
    if (it == pending_.end()) return actions;

    if (++it->second.retries > config_.max_retries) {
        pending_.erase(it);
        actions.push_back(Notice{NoticeKind::kRecoveryFailed, seq.value()});
        return actions;
    }

    // Point-to-point retransmission to every receiver still missing.
    const LogStore::Entry* entry = log_.find(seq);
    if (entry != nullptr) {
        for (NodeId r : it->second.missing) {
            ++retransmissions_;
            actions.push_back(SendUnicast{
                r, make_packet(RetransmissionBody{entry->seq, entry->epoch, false,
                                                  entry->payload})});
        }
    }
    actions.push_back(StartTimer{{TimerKind::kAckWait, seq.value()},
                                 now + config_.retransmit_timeout});
    return actions;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

AckReceiverCore::AckReceiverCore(AckProtocolConfig config) : config_(std::move(config)) {}

Actions AckReceiverCore::start(TimePoint) { return {}; }

Actions AckReceiverCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) return actions;

    SeqNum seq;
    const std::vector<std::uint8_t>* payload = nullptr;
    bool repair = false;
    if (const auto* data = std::get_if<DataBody>(&packet.body)) {
        seq = data->seq;
        payload = &data->payload;
    } else if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body)) {
        seq = rt->seq;
        payload = &rt->payload;
        repair = true;
    } else {
        return actions;
    }

    auto obs = detector_.observe(now, seq);
    // Always (re-)ACK, even duplicates: the sender may have lost our ACK.
    ++acks_sent_;
    actions.push_back(
        SendUnicast{config_.source, make_packet(AckBody{EpochId{0}, seq})});

    if (!obs.duplicate) {
        ++delivered_;
        actions.push_back(DeliverData{seq, *payload, repair || obs.fills_gap});
    }
    return actions;
}

Actions AckReceiverCore::on_timer(TimePoint, TimerId) { return {}; }

}  // namespace lbrm::baseline
