// Minimal leveled logger.
//
// The protocol cores never log directly (they are pure state machines);
// logging happens in the drivers, examples and benches.  A process-wide
// level gate keeps hot paths cheap: below-threshold messages never format.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace lbrm::logging {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are discarded unformatted.
void set_level(Level level);
Level level();

/// Replace the sink (default writes "LEVEL component: message" to stderr).
/// Passing nullptr restores the default sink.
using Sink = std::function<void(Level, std::string_view component, std::string_view message)>;
void set_sink(Sink sink);

void emit(Level level, std::string_view component, std::string_view message);

[[nodiscard]] std::string_view level_name(Level level);

namespace detail {

/// RAII message builder: streams into a buffer, emits on destruction.
class LineBuilder {
public:
    LineBuilder(Level level, std::string_view component)
        : level_(level), component_(component) {}
    LineBuilder(const LineBuilder&) = delete;
    LineBuilder& operator=(const LineBuilder&) = delete;
    ~LineBuilder() { emit(level_, component_, stream_.str()); }

    template <typename T>
    LineBuilder& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    Level level_;
    std::string_view component_;
    std::ostringstream stream_;
};

}  // namespace detail
}  // namespace lbrm::logging

/// Usage: LBRM_LOG(Info, "sender") << "epoch " << epoch << " started";
#define LBRM_LOG(severity, component)                                             \
    if (::lbrm::logging::Level::k##severity < ::lbrm::logging::level()) {         \
    } else                                                                        \
        ::lbrm::logging::detail::LineBuilder(::lbrm::logging::Level::k##severity, \
                                             (component))
