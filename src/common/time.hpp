// Time types shared by the protocol cores, the discrete-event simulator and
// the real-socket runtime.
//
// Protocol cores are clock-agnostic: they only ever receive a `TimePoint`
// from whoever drives them (simulator virtual time or the epoll reactor's
// monotonic clock) and hand back absolute deadlines.  Using one strong
// time_point type everywhere keeps simulated and real executions of the same
// core byte-for-byte identical.
#pragma once

#include <chrono>
#include <cstdint>

namespace lbrm {

/// Nanosecond-resolution duration used throughout the library.
using Duration = std::chrono::nanoseconds;

/// Tag clock for protocol time.  Never queried directly; it exists so that
/// `TimePoint` is a distinct strong type rather than a bare integer.
struct ProtocolClock {
    using rep = std::int64_t;
    using period = std::nano;
    using duration = Duration;
    using time_point = std::chrono::time_point<ProtocolClock>;
    static constexpr bool is_steady = true;
};

/// Absolute instant on the driving clock (virtual or monotonic).
using TimePoint = ProtocolClock::time_point;

/// Convert a floating-point number of seconds to a Duration.
/// Convenient for paper parameters expressed in seconds (h_min = 0.25 s).
constexpr Duration secs(double s) {
    return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

/// Convert an integer number of milliseconds to a Duration.
constexpr Duration millis(std::int64_t ms) { return std::chrono::milliseconds(ms); }

/// Convert an integer number of microseconds to a Duration.
constexpr Duration micros(std::int64_t us) { return std::chrono::microseconds(us); }

/// Duration -> floating-point seconds (for reporting and analytic formulas).
constexpr double to_seconds(Duration d) {
    return std::chrono::duration<double>(d).count();
}

/// TimePoint -> floating-point seconds since the clock epoch.
constexpr double to_seconds(TimePoint t) { return to_seconds(t.time_since_epoch()); }

/// The epoch of the driving clock; simulations start here.
constexpr TimePoint time_zero() { return TimePoint{Duration{0}}; }

/// Scale a duration by a floating-point factor (e.g. heartbeat backoff).
constexpr Duration scale(Duration d, double factor) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::nano>(static_cast<double>(d.count()) * factor));
}

}  // namespace lbrm
