// Serial-number arithmetic for 32-bit packet sequence numbers.
//
// LBRM streams are long-lived (a terrain entity may exist for the whole
// exercise), so sequence numbers must survive wraparound.  We use RFC 1982
// style serial arithmetic: `a < b` iff the signed distance from a to b is
// positive.  Distances of exactly half the space are ill-defined in RFC 1982;
// we resolve them deterministically (half-space counts as "greater") which
// is safe because LBRM windows are tiny compared to 2^31.
//
// IMPORTANT: serial comparison is only valid *pairwise*, between sequence
// numbers known to lie within half the space of each other.  It is NOT a
// strict weak ordering over the whole domain (a < b < c < a is reachable
// around the wrap point), so it must never be used as an ordered-container
// comparator -- that is undefined behavior in std::map/std::set.  Containers
// key on SeqNum::WireOrder (raw uint32_t order, a total order) and recover
// serial semantics with the wrap-aware serial_begin()/serial_last() helpers
// below, which are valid whenever the keys span less than half the space --
// the invariant every LBRM window already maintains.
#pragma once

#include <compare>
#include <cstdint>
#include <iterator>
#include <utility>

namespace lbrm {

/// A 32-bit sequence number with wraparound-aware ordering.
class SeqNum {
public:
    constexpr SeqNum() = default;
    constexpr explicit SeqNum(std::uint32_t v) : value_(v) {}

    /// Raw wire value.
    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

    /// Signed distance from `this` to `other` (positive when other is ahead).
    [[nodiscard]] constexpr std::int32_t distance_to(SeqNum other) const {
        return static_cast<std::int32_t>(other.value_ - value_);
    }

    constexpr SeqNum& operator++() {
        ++value_;
        return *this;
    }
    constexpr SeqNum operator++(int) {
        SeqNum old = *this;
        ++value_;
        return old;
    }

    [[nodiscard]] constexpr SeqNum next() const { return SeqNum{value_ + 1}; }
    [[nodiscard]] constexpr SeqNum prev() const { return SeqNum{value_ - 1}; }

    /// Advance by n (n may be negative).
    [[nodiscard]] constexpr SeqNum plus(std::int32_t n) const {
        return SeqNum{value_ + static_cast<std::uint32_t>(n)};
    }

    friend constexpr bool operator==(SeqNum a, SeqNum b) { return a.value_ == b.value_; }

    /// Pairwise serial comparison (see file comment).  Only meaningful when
    /// `a` and `b` are within half the space of each other; never use as an
    /// ordered-container comparator -- use WireOrder for that.
    friend constexpr std::strong_ordering operator<=>(SeqNum a, SeqNum b) {
        if (a.value_ == b.value_) return std::strong_ordering::equal;
        return a.distance_to(b) > 0 ? std::strong_ordering::less
                                    : std::strong_ordering::greater;
    }

    /// Total order on the raw wire value: a valid strict weak ordering for
    /// std::map/std::set keys.  Iteration order is numeric, NOT serial --
    /// use serial_begin()/serial_last() to find the serially oldest/newest
    /// element of a wire-ordered container.
    struct WireOrder {
        [[nodiscard]] constexpr bool operator()(SeqNum a, SeqNum b) const {
            return a.value_ < b.value_;
        }
    };

private:
    std::uint32_t value_ = 0;
};

namespace detail {
/// Key extraction for wire-ordered sets (element is the key) and maps
/// (element is a pair whose first is the key).
constexpr SeqNum seq_key(SeqNum s) { return s; }
template <typename V>
constexpr SeqNum seq_key(const std::pair<const SeqNum, V>& p) {
    return p.first;
}
}  // namespace detail

/// Iterator to the *serially oldest* key of a WireOrder-ed map/set whose
/// keys all lie within half the sequence space (every LBRM window does).
/// Returns end() when empty.  Wrap-aware: when the window straddles 2^32 the
/// oldest keys are the numerically largest ones.
template <typename Container>
[[nodiscard]] auto serial_begin(Container& c) {
    auto first = c.begin();
    if (first == c.end()) return first;
    const SeqNum lo = detail::seq_key(*first);
    const SeqNum hi = detail::seq_key(*std::prev(c.end()));
    if (lo.distance_to(hi) >= 0) return first;  // window does not wrap
    // Wrapped: the old half sits at the top of the numeric range.  Any
    // threshold inside the empty middle region works; lo + 2^31 is always
    // inside it when the window spans < 2^31.
    return c.lower_bound(SeqNum{lo.value() + 0x80000000u});
}

/// Iterator to the *serially newest* key (the counterpart of serial_begin).
/// Returns end() when empty.
template <typename Container>
[[nodiscard]] auto serial_last(Container& c) {
    auto first = c.begin();
    if (first == c.end()) return first;
    const SeqNum lo = detail::seq_key(*first);
    const SeqNum hi = detail::seq_key(*std::prev(c.end()));
    if (lo.distance_to(hi) >= 0) return std::prev(c.end());
    return std::prev(c.lower_bound(SeqNum{lo.value() + 0x80000000u}));
}

}  // namespace lbrm
