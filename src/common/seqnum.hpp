// Serial-number arithmetic for 32-bit packet sequence numbers.
//
// LBRM streams are long-lived (a terrain entity may exist for the whole
// exercise), so sequence numbers must survive wraparound.  We use RFC 1982
// style serial arithmetic: `a < b` iff the signed distance from a to b is
// positive.  Distances of exactly half the space are ill-defined in RFC 1982;
// we resolve them deterministically (half-space counts as "greater") which
// is safe because LBRM windows are tiny compared to 2^31.
#pragma once

#include <compare>
#include <cstdint>

namespace lbrm {

/// A 32-bit sequence number with wraparound-aware ordering.
class SeqNum {
public:
    constexpr SeqNum() = default;
    constexpr explicit SeqNum(std::uint32_t v) : value_(v) {}

    /// Raw wire value.
    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

    /// Signed distance from `this` to `other` (positive when other is ahead).
    [[nodiscard]] constexpr std::int32_t distance_to(SeqNum other) const {
        return static_cast<std::int32_t>(other.value_ - value_);
    }

    constexpr SeqNum& operator++() {
        ++value_;
        return *this;
    }
    constexpr SeqNum operator++(int) {
        SeqNum old = *this;
        ++value_;
        return old;
    }

    [[nodiscard]] constexpr SeqNum next() const { return SeqNum{value_ + 1}; }
    [[nodiscard]] constexpr SeqNum prev() const { return SeqNum{value_ - 1}; }

    /// Advance by n (n may be negative).
    [[nodiscard]] constexpr SeqNum plus(std::int32_t n) const {
        return SeqNum{value_ + static_cast<std::uint32_t>(n)};
    }

    friend constexpr bool operator==(SeqNum a, SeqNum b) { return a.value_ == b.value_; }

    friend constexpr std::strong_ordering operator<=>(SeqNum a, SeqNum b) {
        if (a.value_ == b.value_) return std::strong_ordering::equal;
        return a.distance_to(b) > 0 ? std::strong_ordering::less
                                    : std::strong_ordering::greater;
    }

private:
    std::uint32_t value_ = 0;
};

}  // namespace lbrm
