// StableVector: a chunked, append-only sequence with stable element
// addresses -- push never moves existing elements, so references handed out
// by emplace_back remain valid for the container's lifetime (the guarantee
// ProtocolHost documents for its core slots, and Network for its hosts).
//
// Chunks double in size (1, 2, 4, 8, ...), so a container holding a single
// element costs one exact-size allocation -- unlike std::deque, whose empty
// footprint is a block map plus a full fixed-size block -- while a million
// elements cost only ~20 allocations.  Elements need not be movable or
// copyable.  Index math: chunk c covers indices [2^c - 1, 2^(c+1) - 1).
#pragma once

#include <bit>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace lbrm {

template <typename T>
class StableVector {
public:
    StableVector() = default;
    StableVector(const StableVector&) = delete;
    StableVector& operator=(const StableVector&) = delete;
    ~StableVector() { clear(); }

    template <typename... Args>
    T& emplace_back(Args&&... args) {
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "chunk storage is max_align_t-aligned");
        const std::size_t chunk = chunk_of(size_);
        if (chunk == chunks_.size())
            chunks_.push_back(std::make_unique<std::byte[]>(
                sizeof(T) * (std::size_t{1} << chunk)));
        T* obj = new (slot(size_)) T(std::forward<Args>(args)...);
        ++size_;
        return *obj;
    }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    [[nodiscard]] T& operator[](std::size_t i) {
        return *std::launder(reinterpret_cast<T*>(slot(i)));
    }
    [[nodiscard]] const T& operator[](std::size_t i) const {
        return *std::launder(reinterpret_cast<const T*>(
            const_cast<StableVector*>(this)->slot(i)));
    }

    [[nodiscard]] T& back() { return (*this)[size_ - 1]; }

    /// Destroy every element and release all chunks.
    void clear() {
        for (std::size_t i = size_; i > 0; --i) (*this)[i - 1].~T();
        size_ = 0;
        chunks_.clear();
    }

    // Minimal forward iteration (enough for range-for).
    template <bool Const>
    class Iter {
    public:
        using Parent = std::conditional_t<Const, const StableVector, StableVector>;
        Iter(Parent* p, std::size_t i) : parent_(p), index_(i) {}
        auto& operator*() const { return (*parent_)[index_]; }
        auto* operator->() const { return &(*parent_)[index_]; }
        Iter& operator++() {
            ++index_;
            return *this;
        }
        friend bool operator==(const Iter& a, const Iter& b) {
            return a.index_ == b.index_;
        }

    private:
        Parent* parent_;
        std::size_t index_;
    };
    [[nodiscard]] auto begin() { return Iter<false>{this, 0}; }
    [[nodiscard]] auto end() { return Iter<false>{this, size_}; }
    [[nodiscard]] auto begin() const { return Iter<true>{this, 0}; }
    [[nodiscard]] auto end() const { return Iter<true>{this, size_}; }

private:
    [[nodiscard]] static std::size_t chunk_of(std::size_t i) {
        return static_cast<std::size_t>(std::bit_width(i + 1)) - 1;
    }

    [[nodiscard]] std::byte* slot(std::size_t i) {
        const std::size_t chunk = chunk_of(i);
        const std::size_t offset = i + 1 - (std::size_t{1} << chunk);
        return chunks_[chunk].get() + offset * sizeof(T);
    }

    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::size_t size_ = 0;
};

}  // namespace lbrm
