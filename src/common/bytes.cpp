#include "common/bytes.hpp"

#include <limits>
#include <stdexcept>

namespace lbrm {

void ByteWriter::blob16(std::span<const std::uint8_t> data) {
    if (data.size() > std::numeric_limits<std::uint16_t>::max())
        throw std::length_error("ByteWriter::blob16: payload exceeds 65535 bytes");
    u16(static_cast<std::uint16_t>(data.size()));
    bytes(data);
}

std::optional<std::vector<std::uint8_t>> ByteReader::blob16() {
    auto len = u16();
    if (!len) return std::nullopt;
    auto body = bytes(*len);
    if (!body) return std::nullopt;
    return std::vector<std::uint8_t>(body->begin(), body->end());
}

std::optional<std::string> ByteReader::str16() {
    auto len = u16();
    if (!len) return std::nullopt;
    auto body = bytes(*len);
    if (!body) return std::nullopt;
    return std::string(reinterpret_cast<const char*>(body->data()), body->size());
}

}  // namespace lbrm
