// Exponentially-weighted moving average estimators.
//
// The paper uses the Jacobson-style update twice:
//   t'_wait = alpha * rtt_new + (1 - alpha) * t_wait          (Section 2.3.2)
//   N'_sl   = (1 - alpha) * N_sl + alpha * k' / p_ack         (Section 2.3.3)
// Both are instances of this estimator.
#pragma once

#include <stdexcept>

namespace lbrm {

/// Scalar EWMA:  v' = alpha * sample + (1 - alpha) * v.
///
/// Until the first sample arrives the estimator reports its seed value (or
/// adopts the first sample outright when constructed without a seed).
class Ewma {
public:
    /// `alpha` is the weight of each new sample, in (0, 1].
    explicit Ewma(double alpha) : Ewma(alpha, 0.0) { seeded_ = false; }

    Ewma(double alpha, double seed) : alpha_(alpha), value_(seed), seeded_(true) {
        if (alpha <= 0.0 || alpha > 1.0)
            throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
    }

    /// Fold one observation into the average and return the new estimate.
    double update(double sample) {
        if (!seeded_) {
            value_ = sample;
            seeded_ = true;
        } else {
            value_ = alpha_ * sample + (1.0 - alpha_) * value_;
        }
        ++samples_;
        return value_;
    }

    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] double alpha() const { return alpha_; }
    [[nodiscard]] long samples() const { return samples_; }
    [[nodiscard]] bool seeded() const { return seeded_; }

    /// Replace the current estimate (e.g. carry t_wait across epochs).
    void reset(double value) {
        value_ = value;
        seeded_ = true;
        samples_ = 0;
    }

private:
    double alpha_;
    double value_;
    bool seeded_;
    long samples_ = 0;
};

}  // namespace lbrm
