// Big-endian (network byte order) serialization primitives.
//
// All LBRM wire structures are encoded through ByteWriter/ByteReader so the
// on-the-wire format is identical regardless of host endianness, and so
// decode failures (truncation, garbage) surface as recoverable errors rather
// than undefined behaviour.  ByteReader never throws on malformed input: it
// returns std::nullopt and latches a failure flag, which lets packet decoding
// be driven by untrusted network data.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lbrm {

/// Appends integers/strings/blobs in network byte order to a growable buffer.
class ByteWriter {
public:
    ByteWriter() = default;
    explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v) {
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    void u32(std::uint32_t v) {
        for (int shift = 24; shift >= 0; shift -= 8)
            buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void u64(std::uint64_t v) {
        for (int shift = 56; shift >= 0; shift -= 8)
            buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /// IEEE-754 double, transported as its bit pattern.
    void f64(double v) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /// Raw bytes, no length prefix.
    void bytes(std::span<const std::uint8_t> data) {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }

    /// Length-prefixed (u16) byte string; `data.size()` must fit in 16 bits.
    void blob16(std::span<const std::uint8_t> data);

    /// Length-prefixed (u16) UTF-8 string.
    void str16(std::string_view s) {
        blob16({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    }

    [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Consumes network-byte-order fields from a fixed buffer.
///
/// Every accessor returns std::nullopt once the buffer is exhausted or a
/// prior read failed; `ok()` reports whether the whole parse succeeded.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::optional<std::uint8_t> u8() {
        if (!ensure(1)) return std::nullopt;
        return data_[pos_++];
    }

    std::optional<std::uint16_t> u16() {
        if (!ensure(2)) return std::nullopt;
        std::uint16_t v = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
        pos_ += 2;
        return v;
    }

    std::optional<std::uint32_t> u32() {
        if (!ensure(4)) return std::nullopt;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 4;
        return v;
    }

    std::optional<std::uint64_t> u64() {
        if (!ensure(8)) return std::nullopt;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 8;
        return v;
    }

    std::optional<std::int64_t> i64() {
        auto v = u64();
        if (!v) return std::nullopt;
        return static_cast<std::int64_t>(*v);
    }

    std::optional<double> f64() {
        auto bits = u64();
        if (!bits) return std::nullopt;
        double v = 0;
        std::memcpy(&v, &*bits, sizeof(v));
        return v;
    }

    /// Exactly n raw bytes.
    std::optional<std::span<const std::uint8_t>> bytes(std::size_t n) {
        if (!ensure(n)) return std::nullopt;
        auto out = data_.subspan(pos_, n);
        pos_ += n;
        return out;
    }

    /// u16-length-prefixed byte string (see ByteWriter::blob16).
    std::optional<std::vector<std::uint8_t>> blob16();

    /// u16-length-prefixed UTF-8 string.
    std::optional<std::string> str16();

    /// All bytes not yet consumed.
    [[nodiscard]] std::span<const std::uint8_t> remaining() const {
        return data_.subspan(pos_);
    }

    [[nodiscard]] std::size_t consumed() const { return pos_; }
    [[nodiscard]] bool ok() const { return !failed_; }
    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

private:
    bool ensure(std::size_t n) {
        if (failed_ || data_.size() - pos_ < n) {
            failed_ = true;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

}  // namespace lbrm
