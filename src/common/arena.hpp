// BumpArena: a chunked, burst-scoped bump allocator.
//
// allocate() hands out raw storage by bumping an offset through a list of
// fixed-size chunks; reset() rewinds to the first chunk without releasing
// any memory.  The intended pattern (Network's in-flight delivery records)
// is burst-scoped: records are bump-allocated while a traffic burst is in
// flight, individually destroyed (destructor only, no free), and the whole
// arena is reset once the burst drains.  After the first burst the
// allocator is cold on the hot path -- steady-state traffic recycles the
// same chunks with zero malloc/free churn -- and memory high-water is the
// largest number of *concurrent* records, not the total ever allocated.
//
// Not thread-safe; alignment is capped at alignof(std::max_align_t) (chunk
// storage comes from operator new[]).  Oversized requests get a dedicated
// chunk of exactly the requested size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace lbrm {

class BumpArena {
public:
    explicit BumpArena(std::size_t chunk_bytes = 64 * 1024)
        : chunk_bytes_(chunk_bytes) {}

    BumpArena(const BumpArena&) = delete;
    BumpArena& operator=(const BumpArena&) = delete;

    /// Raw storage for `size` bytes at `align` (<= max_align_t).  The
    /// storage stays valid until reset() or destruction; there is no
    /// per-allocation free -- run the object's destructor and let reset()
    /// reclaim the bytes.
    void* allocate(std::size_t size, std::size_t align) {
        for (;;) {
            if (chunk_ < chunks_.size()) {
                const Chunk& c = chunks_[chunk_];
                const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
                const std::uintptr_t aligned =
                    (base + offset_ + (align - 1)) &
                    ~static_cast<std::uintptr_t>(align - 1);
                if (aligned + size <= base + c.size) {
                    offset_ = (aligned - base) + size;
                    return reinterpret_cast<void*>(aligned);
                }
                ++chunk_;  // this chunk is full (or too small): move on
                offset_ = 0;
                continue;
            }
            // Out of retained chunks: grow.  Oversized requests get their
            // own exact-size chunk (plus alignment slack) so a single big
            // record never forces the default chunk size up.
            const std::size_t want =
                size + align > chunk_bytes_ ? size + align : chunk_bytes_;
            chunks_.push_back(
                Chunk{std::unique_ptr<std::byte[]>(new std::byte[want]), want});
            offset_ = 0;
        }
    }

    /// Rewind to empty, retaining every chunk for reuse.  Only call when no
    /// live object still points into the arena (the burst has drained).
    void reset() {
        chunk_ = 0;
        offset_ = 0;
    }

    // --- introspection (tests, memory accounting) -----------------------
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
    [[nodiscard]] std::size_t retained_bytes() const {
        std::size_t total = 0;
        for (const Chunk& c : chunks_) total += c.size;
        return total;
    }
    [[nodiscard]] std::size_t default_chunk_bytes() const { return chunk_bytes_; }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size;
    };
    std::vector<Chunk> chunks_;
    std::size_t chunk_ = 0;   ///< index of the chunk currently bumped
    std::size_t offset_ = 0;  ///< bump offset within that chunk
    std::size_t chunk_bytes_;
};

}  // namespace lbrm
