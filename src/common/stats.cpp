#include "common/stats.hpp"

#include <stdexcept>

namespace lbrm {

void SampleSet::sort_if_needed() {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double SampleSet::quantile(double q) {
    if (samples_.empty()) return 0.0;
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("SampleSet::quantile: q outside [0,1]");
    sort_if_needed();
    double idx = q * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
    if (buckets == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: need hi > lo and at least one bucket");
}

void Histogram::add(double x) {
    double rel = (x - lo_) / width_;
    std::size_t i = 0;
    if (rel > 0) {
        i = static_cast<std::size_t>(rel);
        if (i >= counts_.size()) i = counts_.size() - 1;
    }
    ++counts_[i];
    ++total_;
}

}  // namespace lbrm
