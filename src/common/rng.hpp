// Deterministic random-number source.
//
// Everything random in the library (loss models, acker selection, probe
// responses, randomized NACK delays) draws from an explicitly seeded Rng so
// simulations and tests are reproducible.  There is deliberately no
// global/default-seeded instance.
#pragma once

#include <cstdint>
#include <random>

#include "common/time.hpp"

namespace lbrm {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [0, 1).
    double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
    }

    /// True with probability p.
    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform() < p;
    }

    /// Exponentially distributed duration with the given mean.
    Duration exponential(Duration mean) {
        double lambda = 1.0 / to_seconds(mean);
        double x = std::exponential_distribution<double>(lambda)(engine_);
        return secs(x);
    }

    /// Uniform duration in [lo, hi).
    Duration uniform_duration(Duration lo, Duration hi) {
        return secs(uniform(to_seconds(lo), to_seconds(hi)));
    }

    /// Derive an independent child stream (for per-node randomness).
    Rng fork() { return Rng{engine_()}; }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace lbrm
