#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace lbrm::logging {

namespace {

std::atomic<Level> g_level{Level::kInfo};

std::mutex g_sink_mutex;
Sink g_sink;  // guarded by g_sink_mutex; empty means "default stderr sink"

void default_sink(Level level, std::string_view component, std::string_view message) {
    std::cerr << level_name(level) << ' ' << component << ": " << message << '\n';
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
    std::lock_guard lock(g_sink_mutex);
    g_sink = std::move(sink);
}

void emit(Level lvl, std::string_view component, std::string_view message) {
    if (lvl < level()) return;
    std::lock_guard lock(g_sink_mutex);
    if (g_sink)
        g_sink(lvl, component, message);
    else
        default_sink(lvl, component, message);
}

std::string_view level_name(Level lvl) {
    switch (lvl) {
        case Level::kTrace: return "TRACE";
        case Level::kDebug: return "DEBUG";
        case Level::kInfo: return "INFO";
        case Level::kWarn: return "WARN";
        case Level::kError: return "ERROR";
        case Level::kOff: return "OFF";
    }
    return "?";
}

}  // namespace lbrm::logging
