// Small statistics toolkit used by benches, the simulator's trace module
// and the group-size-estimation experiments (Table 2 reproduces a standard
// deviation, so we need numerically stable moments).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace lbrm {

/// Streaming mean/variance via Welford's algorithm plus min/max.
class RunningStats {
public:
    void add(double x) {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = n_ == 1 ? x : std::min(min_, x);
        max_ = n_ == 1 ? x : std::max(max_, x);
    }

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return mean_; }
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

    /// Population variance (divide by n).
    [[nodiscard]] double variance() const {
        return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /// Sample variance (divide by n-1).
    [[nodiscard]] double sample_variance() const {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
    [[nodiscard]] double sample_stddev() const { return std::sqrt(sample_variance()); }

    void clear() { *this = RunningStats{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Stores samples for exact quantiles; suited to bench-sized data sets.
class SampleSet {
public:
    void add(double x) {
        samples_.push_back(x);
        sorted_ = false;
    }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }

    [[nodiscard]] double mean() const {
        if (samples_.empty()) return 0.0;
        double sum = 0.0;
        for (double s : samples_) sum += s;
        return sum / static_cast<double>(samples_.size());
    }

    /// Linear-interpolated quantile, q in [0, 1].
    [[nodiscard]] double quantile(double q);

    [[nodiscard]] double median() { return quantile(0.5); }
    [[nodiscard]] double p99() { return quantile(0.99); }
    [[nodiscard]] double min() { return quantile(0.0); }
    [[nodiscard]] double max() { return quantile(1.0); }

    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
    void clear() { samples_.clear(); sorted_ = false; }

private:
    void sort_if_needed();

    std::vector<double> samples_;
    bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.  Used for recovery-latency distributions in the benches.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
    [[nodiscard]] std::size_t count_at(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] double bucket_low(std::size_t i) const {
        return lo_ + width_ * static_cast<double>(i);
    }
    [[nodiscard]] std::size_t total() const { return total_; }

private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

}  // namespace lbrm
