// Strong identifier types shared by the wire format, the protocol cores and
// the simulator.  Plain integers invite swapped-argument bugs (node vs group
// vs site); these wrappers make such mistakes type errors.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace lbrm {

namespace detail {

/// CRTP-free strong integer: Tag distinguishes unrelated id spaces.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
public:
    using rep = Rep;

    constexpr StrongId() = default;
    constexpr explicit StrongId(Rep v) : value_(v) {}

    [[nodiscard]] constexpr Rep value() const { return value_; }

    friend constexpr bool operator==(StrongId, StrongId) = default;
    friend constexpr auto operator<=>(StrongId, StrongId) = default;

    friend std::ostream& operator<<(std::ostream& os, StrongId id) {
        return os << id.value_;
    }

private:
    Rep value_ = 0;
};

}  // namespace detail

/// A protocol participant: a source, receiver or logging server.  In the
/// simulator this doubles as the node address; in the UDP runtime it is a
/// stable application-level identity carried in every header.
using NodeId = detail::StrongId<struct NodeIdTag>;

/// A multicast group (one per source in the paper's fine-grained model).
using GroupId = detail::StrongId<struct GroupIdTag>;

/// A topologically localized site (LAN / tail-circuit cluster), Section 2.2.
using SiteId = detail::StrongId<struct SiteIdTag>;

/// Statistical-acknowledgement epoch number (Section 2.3.1).
using EpochId = detail::StrongId<struct EpochIdTag>;

/// Sentinel for "no node" (e.g. logger address not yet discovered).
inline constexpr NodeId kNoNode{0xFFFFFFFFu};

/// Sentinel for "no group" (e.g. retransmission channel disabled).
inline constexpr GroupId kNoGroup{0xFFFFFFFFu};

}  // namespace lbrm

namespace std {

template <typename Tag, typename Rep>
struct hash<lbrm::detail::StrongId<Tag, Rep>> {
    size_t operator()(lbrm::detail::StrongId<Tag, Rep> id) const noexcept {
        return std::hash<Rep>{}(id.value());
    }
};

}  // namespace std
