// The Appendix-A HTML document-invalidation protocol, as a reusable layer
// over LBRM payloads.
//
// Wire grammar (verbatim from the paper):
//
//   page binding   first line of the HTML file:
//                    <!MULTICAST.234.12.29.72.>
//   invalidation   TRANS:<seq>.0:UPDATE:<url>
//   heartbeat      TRANS:<seq>.<k>:HEARTBEAT
//   retransmission RETRANS:<seq>.0:UPDATE:<url>
//
// The LBRM packet layer already carries sequence numbers and heartbeat
// indices; this module renders/parses the Appendix-A text so an HTTP server
// and browser cache can interoperate at the documented format, and models
// the client cache (RELOAD-button highlighting) described in Section 4.3.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/seqnum.hpp"

namespace lbrm::apps {

/// One parsed Appendix-A message.
struct InvalidationMessage {
    enum class Kind : std::uint8_t { kUpdate, kHeartbeat };

    Kind kind = Kind::kUpdate;
    bool retransmission = false;  ///< RETRANS instead of TRANS
    SeqNum seq;
    std::uint32_t heartbeat_index = 0;  ///< the ".k" field
    std::string url;                    ///< empty for heartbeats
};

/// Render messages in the exact published format.
[[nodiscard]] std::string render_update(SeqNum seq, std::string_view url,
                                        bool retransmission = false);
[[nodiscard]] std::string render_heartbeat(SeqNum seq, std::uint32_t index);

/// Parse any Appendix-A line; std::nullopt on malformed input.
[[nodiscard]] std::optional<InvalidationMessage> parse_message(std::string_view text);

/// Extract the multicast address from an HTML document's first-line
/// binding comment "<!MULTICAST.a.b.c.d.>"; std::nullopt when absent.
/// Returns the dotted-quad address text ("234.12.29.72").
[[nodiscard]] std::optional<std::string> parse_page_binding(std::string_view html_first_line);

/// Render the binding comment for a server-side page.
[[nodiscard]] std::string render_page_binding(std::string_view mcast_address);

/// The Mosaic-style client cache of Section 4.3: displayed pages subscribe;
/// an invalidation sets the page's RELOAD flag until the page is reloaded.
class BrowserCache {
public:
    /// The browser displays `url`: cached and subscribed.
    void display(const std::string& url) { pages_.emplace(url, false); }

    /// The user hit RELOAD: fresh copy fetched, flag cleared.
    void reload(const std::string& url) {
        auto it = pages_.find(url);
        if (it != pages_.end()) it->second = false;
    }

    /// The page left the cache (eviction): subscription ends with it.
    void evict(const std::string& url) { pages_.erase(url); }

    /// Apply a parsed message; returns true when a RELOAD flag was newly
    /// raised (heartbeats and unknown pages change nothing).
    bool apply(const InvalidationMessage& message) {
        if (message.kind != InvalidationMessage::Kind::kUpdate) return false;
        auto it = pages_.find(message.url);
        if (it == pages_.end() || it->second) return false;
        it->second = true;
        return true;
    }

    [[nodiscard]] bool is_cached(const std::string& url) const {
        return pages_.contains(url);
    }
    [[nodiscard]] bool reload_highlighted(const std::string& url) const {
        auto it = pages_.find(url);
        return it != pages_.end() && it->second;
    }
    [[nodiscard]] std::size_t size() const { return pages_.size(); }

private:
    std::map<std::string, bool> pages_;  // url -> RELOAD highlighted
};

}  // namespace lbrm::apps
