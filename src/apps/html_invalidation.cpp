#include "apps/html_invalidation.hpp"

#include <charconv>

namespace lbrm::apps {

namespace {

/// Parse a decimal u32 from [begin, end); false on any non-digit/overflow.
bool parse_u32(std::string_view text, std::uint32_t& out) {
    if (text.empty()) return false;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::string render_update(SeqNum seq, std::string_view url, bool retransmission) {
    std::string out = retransmission ? "RETRANS:" : "TRANS:";
    out += std::to_string(seq.value());
    out += ".0:UPDATE:";
    out += url;
    return out;
}

std::string render_heartbeat(SeqNum seq, std::uint32_t index) {
    std::string out = "TRANS:";
    out += std::to_string(seq.value());
    out += '.';
    out += std::to_string(index);
    out += ":HEARTBEAT";
    return out;
}

std::optional<InvalidationMessage> parse_message(std::string_view text) {
    InvalidationMessage message;

    if (text.starts_with("TRANS:")) {
        text.remove_prefix(6);
    } else if (text.starts_with("RETRANS:")) {
        message.retransmission = true;
        text.remove_prefix(8);
    } else {
        return std::nullopt;
    }

    // <seq>.<k>:
    const auto dot = text.find('.');
    if (dot == std::string_view::npos) return std::nullopt;
    std::uint32_t seq = 0;
    if (!parse_u32(text.substr(0, dot), seq)) return std::nullopt;
    message.seq = SeqNum{seq};
    text.remove_prefix(dot + 1);

    const auto colon = text.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    if (!parse_u32(text.substr(0, colon), message.heartbeat_index)) return std::nullopt;
    text.remove_prefix(colon + 1);

    if (text == "HEARTBEAT") {
        message.kind = InvalidationMessage::Kind::kHeartbeat;
        return message;
    }
    if (text.starts_with("UPDATE:")) {
        message.kind = InvalidationMessage::Kind::kUpdate;
        message.url = std::string(text.substr(7));
        if (message.url.empty()) return std::nullopt;
        return message;
    }
    return std::nullopt;
}

std::optional<std::string> parse_page_binding(std::string_view html_first_line) {
    constexpr std::string_view kPrefix = "<!MULTICAST.";
    const auto start = html_first_line.find(kPrefix);
    if (start == std::string_view::npos) return std::nullopt;
    std::string_view rest = html_first_line.substr(start + kPrefix.size());
    const auto end = rest.find(".>");
    if (end == std::string_view::npos || end == 0) return std::nullopt;
    const std::string_view address = rest.substr(0, end);
    // Validate dotted-quad shape: four dot-separated u32 components.
    std::uint32_t component = 0;
    int components = 0;
    std::string_view remaining = address;
    while (true) {
        const auto dot = remaining.find('.');
        const std::string_view part =
            dot == std::string_view::npos ? remaining : remaining.substr(0, dot);
        if (!parse_u32(part, component) || component > 255) return std::nullopt;
        ++components;
        if (dot == std::string_view::npos) break;
        remaining.remove_prefix(dot + 1);
    }
    if (components != 4) return std::nullopt;
    return std::string(address);
}

std::string render_page_binding(std::string_view mcast_address) {
    std::string out = "<!MULTICAST.";
    out += mcast_address;
    out += ".>";
    return out;
}

}  // namespace lbrm::apps
