#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace lbrm::obs {

namespace {

std::atomic<TraceRecorder*> g_current{nullptr};
std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() { uninstall(); }

void TraceRecorder::install() {
    // Warm the installing thread's ring now: the lazy first-record path
    // allocates the whole ring (mutex + a multi-MB vector), and that cost
    // would otherwise land *between* the first span's close and the second
    // span's open -- a phantom gap in the exported timeline.  Worker threads
    // still pay it lazily, but inside their own first span.
    (void)ring_for_this_thread();
    g_current.store(this, std::memory_order_release);
}

void TraceRecorder::uninstall() {
    TraceRecorder* expected = this;
    g_current.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

TraceRecorder* TraceRecorder::current() {
    return g_current.load(std::memory_order_acquire);
}

TraceRecorder::Ring& TraceRecorder::ring_for_this_thread() {
    // Per-thread cache keyed by the recorder's process-unique id, so a
    // recorder reallocated at a previous recorder's address never aliases a
    // stale ring pointer.
    thread_local std::uint64_t cached_id = 0;
    thread_local Ring* cached_ring = nullptr;
    if (cached_id != id_) {
        std::lock_guard<std::mutex> lock(mu_);
        rings_.push_back(std::make_unique<Ring>(capacity_));
        cached_ring = rings_.back().get();
        cached_id = id_;
    }
    return *cached_ring;
}

void TraceRecorder::record(const char* name, std::chrono::steady_clock::time_point t0,
                           std::chrono::steady_clock::time_point t1) {
    Ring& ring = ring_for_this_thread();
    Span& slot = ring.buf[ring.count % ring.buf.size()];
    slot.name = name;
    slot.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - epoch_).count());
    slot.dur_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    ++ring.count;
}

std::vector<TraceRecorder::Span> TraceRecorder::spans() const {
    std::vector<Span> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
        const Ring& ring = *rings_[tid];
        const std::uint64_t kept =
            std::min<std::uint64_t>(ring.count, ring.buf.size());
        const std::uint64_t begin = ring.count - kept;
        for (std::uint64_t i = begin; i < ring.count; ++i) {
            Span s = ring.buf[i % ring.buf.size()];
            s.tid = static_cast<std::uint32_t>(tid);
            out.push_back(s);
        }
    }
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
        return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                        : a.dur_ns > b.dur_ns;
    });
    return out;
}

std::uint64_t TraceRecorder::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& ring : rings_)
        if (ring->count > ring->buf.size()) total += ring->count - ring->buf.size();
    return total;
}

std::string TraceRecorder::to_chrome_json() const {
    std::string json = "{\"traceEvents\":[";
    char buf[128];
    bool first = true;
    for (const Span& s : spans()) {
        if (!first) json += ",";
        first = false;
        json += "{\"name\":\"";
        json += s.name;
        std::snprintf(buf, sizeof buf,
                      "\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f}",
                      s.tid, static_cast<double>(s.start_ns) / 1000.0,
                      static_cast<double>(s.dur_ns) / 1000.0);
        json += buf;
    }
    json += "],\"displayTimeUnit\":\"ms\"}";
    return json;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << to_chrome_json() << "\n";
    return bool(out);
}

}  // namespace lbrm::obs
