// Telemetry metrics registry (see DESIGN.md "Observability").
//
// Instruments are designed around one invariant: the hot path pays a plain
// `uint64_t` increment on a pre-resolved handle, nothing more.  Name lookup
// happens once, at bind time; after that a core holds raw `Counter*` /
// `Histogram*` pointers.  Unbound instruments point at shared static sink
// objects, so increment sites never branch on "is telemetry attached".
//
// Telemetry never feeds back into behaviour: counters are written by the
// deterministic simulation but only ever *read* by exporters, so two
// identical runs produce identical snapshots and a telemetry-compiled-out
// build (-DLBRM_NO_TELEMETRY) produces bit-identical packet traces.  Under
// LBRM_NO_TELEMETRY every mutator compiles to nothing and registry reads
// report zero; the build exists for the overhead A/B in CI, not for running
// the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lbrm::obs {

#if defined(LBRM_NO_TELEMETRY)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// Monotonic event count.  Single-writer (the sim thread); not atomic on
/// purpose -- parallel-finalize workers must not share Counter handles
/// (they do not: the only parallel-region statistic, rows_built_, stays an
/// atomic member surfaced through a pull gauge).
class Counter {
public:
    void inc(std::uint64_t n = 1) {
#if !defined(LBRM_NO_TELEMETRY)
        value_ += n;
#else
        (void)n;
#endif
    }
    [[nodiscard]] std::uint64_t value() const { return value_; }

    /// Shared sink for unbound handles: increments land here, nobody reads.
    [[nodiscard]] static Counter& sink();

private:
    std::uint64_t value_ = 0;
};

/// Last-write-wins level (queue depths, cache occupancy).  Most levels in
/// this codebase are cheaper as pull gauges (Metrics::gauge_fn); a push
/// Gauge exists for values whose source is gone by snapshot time.
class Gauge {
public:
    void set(std::uint64_t v) {
#if !defined(LBRM_NO_TELEMETRY)
        value_ = v;
#else
        (void)v;
#endif
    }
    [[nodiscard]] std::uint64_t value() const { return value_; }

    [[nodiscard]] static Gauge& sink();

private:
    std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram: upper bounds are set at registration and never
/// change, so observe() is a linear scan over a handful of doubles plus one
/// increment (recovery latencies land in the first few buckets).
class Histogram {
public:
    Histogram() = default;
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v) {
#if !defined(LBRM_NO_TELEMETRY)
        std::size_t i = 0;
        while (i < bounds_.size() && v > bounds_[i]) ++i;
        ++counts_[i];
        sum_ += v;
        ++count_;
#else
        (void)v;
#endif
    }

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }

    [[nodiscard]] static Histogram& sink();

private:
    std::vector<double> bounds_;          ///< ascending upper bounds
    std::vector<std::uint64_t> counts_;   ///< bounds_.size() + 1 slots
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

struct ProtocolMetrics;

/// Named-instrument registry.  Registration (cold) hands out handles whose
/// addresses are stable for the registry's lifetime; iteration order is the
/// name order, so snapshots of identical runs are byte-identical.
class Metrics {
public:
    Metrics() = default;
    Metrics(const Metrics&) = delete;
    Metrics& operator=(const Metrics&) = delete;
    ~Metrics();

    /// Find-or-create by name.  Re-registering returns the same handle.
    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);
    /// Bounds apply only on first registration of `name`.
    [[nodiscard]] Histogram& histogram(std::string_view name,
                                       std::vector<double> upper_bounds);

    /// Pull gauge: `fn` is evaluated at snapshot/value() time, never on the
    /// hot path.  The caller must remove_gauge_fn() before anything the
    /// closure captures dies (sim::Network does this in its destructor).
    void gauge_fn(std::string_view name, std::function<std::uint64_t()> fn);
    void remove_gauge_fn(std::string_view name);

    /// Current value of a counter, gauge or pull gauge; 0 when unknown.
    [[nodiscard]] std::uint64_t value(std::string_view name) const;
    [[nodiscard]] bool has(std::string_view name) const;

    /// Flattened view, sorted by name.  Histograms expand into
    /// `name.le_<bound>` / `name.le_inf` / `name.count` / `name.sum` rows.
    struct Sample {
        std::string name;
        double value;
    };
    [[nodiscard]] std::vector<Sample> snapshot() const;

    /// One JSON object, keys sorted: {"name": value, ...}.  Deterministic:
    /// identical runs serialize to identical bytes.
    [[nodiscard]] std::string to_json() const;
    bool write_json(const std::string& path) const;

    /// The shared protocol-core handle block (resolved once, then cached).
    [[nodiscard]] const ProtocolMetrics& protocol();

private:
    // std::map keeps handle addresses stable and iteration deterministic;
    // all of this is bind/export-time machinery, never hot.
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::map<std::string, std::function<std::uint64_t()>, std::less<>> pull_gauges_;
    std::unique_ptr<ProtocolMetrics> protocol_;
};

// ---------------------------------------------------------------------------
// Pre-resolved handle blocks for the protocol cores.  One block per family
// (not per core instance): a million receivers share one ReceiverMetrics,
// so binding costs one pointer per core and the registry stays small.
// Cores keep their per-instance counters for per-node assertions; the
// registry rows are the fleet-wide aggregate.
// ---------------------------------------------------------------------------

struct SenderMetrics {
    Counter* data_sent;
    Counter* heartbeats_sent;
    Counter* remulticasts;
    Counter* log_store_retries;
    Counter* failovers;
    Counter* failover_exhausted;  ///< promotion rounds that ran out of replicas
    [[nodiscard]] static const SenderMetrics& disabled();
};

struct ReceiverMetrics {
    Counter* delivered;
    Counter* recovered;
    Counter* nacks_sent;
    Counter* duplicates;
    Counter* recovery_failures;
    Histogram* recovery_latency;  ///< seconds, gap detected -> gap filled
    [[nodiscard]] static const ReceiverMetrics& disabled();
};

struct LoggerMetrics {
    Counter* nacks_received;
    Counter* served_unicast;
    Counter* served_multicast;
    Counter* upstream_fetches;
    Counter* acks_sent;
    [[nodiscard]] static const LoggerMetrics& disabled();
};

struct StatAckMetrics {
    Counter* epochs_opened;
    Counter* remulticast_decisions;
    Counter* empty_epoch_resolicits;  ///< zero-volunteer windows re-solicited
    Counter* packets_completed;       ///< every designated ACK arrived
    Counter* packets_incomplete;      ///< window closed with ACKs missing
    [[nodiscard]] static const StatAckMetrics& disabled();
};

struct LossDetectorMetrics {
    Counter* gaps_opened;     ///< sequence numbers that became missing
    Counter* gap_overflows;   ///< observations truncated by max_gap
    [[nodiscard]] static const LossDetectorMetrics& disabled();
};

/// Driver-level (ProtocolHost) handles: outbound packets by wire type plus
/// timer/notice churn.  Lives in the cached ProtocolMetrics block so a
/// million host bindings cost one pointer copy each, not 20 name lookups.
struct HostMetrics {
    /// "host.send.<TYPE>"; index = the PacketType numeric value
    /// (packet/packet.hpp, 1..19).  Slot 0 is unused (points at the sink).
    std::array<Counter*, 20> send_by_type;
    Counter* timers_armed;
    Counter* timers_cancelled;
    Counter* notices;
    [[nodiscard]] static const HostMetrics& disabled();
};

/// The full protocol handle block.  `Metrics::protocol()` resolves it once
/// under the canonical "proto.*" / "host.*" names and caches it in the
/// registry.
struct ProtocolMetrics {
    SenderMetrics sender;
    ReceiverMetrics receiver;
    LoggerMetrics logger;
    StatAckMetrics stat_ack;
    LossDetectorMetrics loss;
    HostMetrics host;
    [[nodiscard]] static const ProtocolMetrics& disabled();
};

}  // namespace lbrm::obs
