// Sim-time metrics sampler (see DESIGN.md "Observability").
//
// Snapshots selected registry metrics at a fixed simulated-time cadence,
// turning lifetime counters into per-interval curves: heartbeat bandwidth,
// NACK rate, delivered packets per second -- the protocol-health
// counterpart to the paper's Figures 4/5/8.  The sampler only *reads*
// counters (and evaluates pull gauges), so attaching one never perturbs
// protocol traffic; the tick events do consume event-queue tiebreak
// numbers, which cannot reorder protocol events relative to each other
// (tiebreaks are allocated monotonically) -- the telemetry determinism A/B
// test asserts the resulting packet trace is bit-identical.
//
// The sampler is scheduling-agnostic: the owner calls tick() on its own
// cadence (DisScenario::start_sampling arms a recurring simulator event).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace lbrm::obs {

class Metrics;

class Sampler {
public:
    explicit Sampler(Metrics& metrics) : metrics_(metrics) {}

    /// Track a counter as a per-interval delta series ("rate").
    void add_rate(std::string name);
    /// Track a gauge (push or pull) as a sampled-level series.
    void add_level(std::string name);

    /// Record one row at simulated time `now` (monotonically increasing).
    void tick(TimePoint now);

    /// The cadence tick() is driven at; stored for export only.
    void set_interval(Duration interval) { interval_ = interval; }
    [[nodiscard]] Duration interval() const { return interval_; }

    [[nodiscard]] std::size_t rows() const { return times_.size(); }
    [[nodiscard]] const std::vector<double>& times() const { return times_; }
    /// Per-interval values of one tracked series; empty when unknown.
    [[nodiscard]] const std::vector<std::uint64_t>* series(
        const std::string& name) const;

    /// {"interval_s":..,"t":[..],"series":{"name":{"kind":"rate","values":[..]}}}
    [[nodiscard]] std::string to_json() const;
    bool write_json(const std::string& path) const;

private:
    struct Series {
        std::string name;
        bool rate;                          ///< delta vs sampled level
        std::uint64_t last = 0;             ///< previous cumulative (rate only)
        std::vector<std::uint64_t> values;
    };

    Metrics& metrics_;
    Duration interval_ = Duration::zero();
    std::vector<double> times_;  ///< seconds of sim time per row
    std::vector<Series> series_;
};

}  // namespace lbrm::obs
