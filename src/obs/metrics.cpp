#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <type_traits>
#include <utility>

namespace lbrm::obs {

Counter& Counter::sink() {
    static Counter sink;
    return sink;
}

Gauge& Gauge::sink() {
    static Gauge sink;
    return sink;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

Histogram& Histogram::sink() {
    static Histogram sink{std::vector<double>{}};
    return sink;
}

Metrics::~Metrics() = default;

Counter& Metrics::counter(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string{name}, Counter{}).first;
    return it->second;
}

Gauge& Metrics::gauge(std::string_view name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) it = gauges_.emplace(std::string{name}, Gauge{}).first;
    return it->second;
}

Histogram& Metrics::histogram(std::string_view name, std::vector<double> upper_bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string{name}, Histogram{std::move(upper_bounds)})
                 .first;
    return it->second;
}

void Metrics::gauge_fn(std::string_view name, std::function<std::uint64_t()> fn) {
    pull_gauges_.insert_or_assign(std::string{name}, std::move(fn));
}

void Metrics::remove_gauge_fn(std::string_view name) {
    auto it = pull_gauges_.find(name);
    if (it != pull_gauges_.end()) pull_gauges_.erase(it);
}

std::uint64_t Metrics::value(std::string_view name) const {
    if (auto it = counters_.find(name); it != counters_.end()) return it->second.value();
    if (auto it = gauges_.find(name); it != gauges_.end()) return it->second.value();
    if (auto it = pull_gauges_.find(name); it != pull_gauges_.end())
        return it->second ? it->second() : 0;
    return 0;
}

bool Metrics::has(std::string_view name) const {
    return counters_.contains(name) || gauges_.contains(name) ||
           pull_gauges_.contains(name) || histograms_.contains(name);
}

namespace {

/// Bucket label: trailing zeros trimmed so "0.005" stays readable.
std::string bound_label(double b) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", b);
    return buf;
}

}  // namespace

std::vector<Metrics::Sample> Metrics::snapshot() const {
    std::vector<Sample> out;
    out.reserve(counters_.size() + gauges_.size() + pull_gauges_.size() +
                histograms_.size() * 4);
    for (const auto& [name, c] : counters_)
        out.push_back({name, static_cast<double>(c.value())});
    for (const auto& [name, g] : gauges_)
        out.push_back({name, static_cast<double>(g.value())});
    for (const auto& [name, fn] : pull_gauges_)
        out.push_back({name, fn ? static_cast<double>(fn()) : 0.0});
    for (const auto& [name, h] : histograms_) {
        const auto& bounds = h.bounds();
        const auto& counts = h.counts();
        for (std::size_t i = 0; i < bounds.size(); ++i)
            out.push_back({name + ".le_" + bound_label(bounds[i]),
                           static_cast<double>(counts[i])});
        out.push_back({name + ".le_inf", static_cast<double>(counts.back())});
        out.push_back({name + ".count", static_cast<double>(h.count())});
        out.push_back({name + ".sum", h.sum()});
    }
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
}

std::string Metrics::to_json() const {
    std::string json = "{";
    bool first = true;
    char buf[64];
    for (const Sample& s : snapshot()) {
        if (!first) json += ",";
        first = false;
        json += "\"" + s.name + "\":";
        if (s.value == static_cast<double>(static_cast<std::int64_t>(s.value)))
            std::snprintf(buf, sizeof buf, "%lld",
                          static_cast<long long>(s.value));
        else
            std::snprintf(buf, sizeof buf, "%.9g", s.value);
        json += buf;
    }
    json += "}";
    return json;
}

bool Metrics::write_json(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << to_json() << "\n";
    return bool(out);
}

// ---------------------------------------------------------------------------
// Protocol handle blocks
// ---------------------------------------------------------------------------

namespace {

/// Recovery-latency buckets in seconds: NACK-path repairs land around the
/// nack_delay + RTT scale (milliseconds); the tail covers retry escalation.
std::vector<double> recovery_latency_bounds() {
    return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
}

/// Wire-type names for the "host.send.<TYPE>" rows, indexed by the
/// PacketType numeric value.  Must match packet/packet.cpp to_string()
/// (telemetry_test cross-checks the two).
constexpr std::array<const char*, 20> kWireTypeNames = {
    nullptr,          "DATA",           "HEARTBEAT",       "NACK",
    "RETRANS",        "LOG_STORE",      "LOG_ACK",         "REPLICA_UPDATE",
    "REPLICA_ACK",    "ACKER_SELECTION", "ACKER_RESPONSE", "ACK",
    "PROBE_REQUEST",  "PROBE_REPLY",    "DISCOVERY_QUERY", "DISCOVERY_REPLY",
    "PRIMARY_QUERY",  "PRIMARY_REPLY",  "PROMOTE_REQUEST", "PROMOTE_REPLY"};

template <typename Block>
const Block& disabled_block() {
    static const Block block = [] {
        Block b;
        auto* c = &Counter::sink();
        // Every Counter* member points at the sink; Histogram* likewise.
        if constexpr (std::is_same_v<Block, SenderMetrics>)
            b = {c, c, c, c, c, c};
        else if constexpr (std::is_same_v<Block, ReceiverMetrics>)
            b = {c, c, c, c, c, &Histogram::sink()};
        else if constexpr (std::is_same_v<Block, LoggerMetrics>)
            b = {c, c, c, c, c};
        else if constexpr (std::is_same_v<Block, StatAckMetrics>)
            b = {c, c, c, c, c};
        else if constexpr (std::is_same_v<Block, HostMetrics>) {
            b.send_by_type.fill(c);
            b.timers_armed = b.timers_cancelled = b.notices = c;
        } else
            b = {c, c};
        return b;
    }();
    return block;
}

}  // namespace

const SenderMetrics& SenderMetrics::disabled() {
    return disabled_block<SenderMetrics>();
}
const ReceiverMetrics& ReceiverMetrics::disabled() {
    return disabled_block<ReceiverMetrics>();
}
const LoggerMetrics& LoggerMetrics::disabled() {
    return disabled_block<LoggerMetrics>();
}
const StatAckMetrics& StatAckMetrics::disabled() {
    return disabled_block<StatAckMetrics>();
}
const LossDetectorMetrics& LossDetectorMetrics::disabled() {
    return disabled_block<LossDetectorMetrics>();
}
const HostMetrics& HostMetrics::disabled() { return disabled_block<HostMetrics>(); }

const ProtocolMetrics& ProtocolMetrics::disabled() {
    static const ProtocolMetrics block{
        SenderMetrics::disabled(),   ReceiverMetrics::disabled(),
        LoggerMetrics::disabled(),   StatAckMetrics::disabled(),
        LossDetectorMetrics::disabled(), HostMetrics::disabled()};
    return block;
}

const ProtocolMetrics& Metrics::protocol() {
    if (!protocol_) {
        auto pm = std::make_unique<ProtocolMetrics>();
        pm->sender = {&counter("proto.sender.data_sent"),
                      &counter("proto.sender.heartbeats_sent"),
                      &counter("proto.sender.remulticasts"),
                      &counter("proto.sender.log_store_retries"),
                      &counter("proto.sender.failovers"),
                      &counter("proto.sender.failover_exhausted")};
        pm->receiver = {&counter("proto.receiver.delivered"),
                        &counter("proto.receiver.recovered"),
                        &counter("proto.receiver.nacks_sent"),
                        &counter("proto.receiver.duplicates"),
                        &counter("proto.receiver.recovery_failures"),
                        &histogram("proto.receiver.recovery_latency_s",
                                   recovery_latency_bounds())};
        pm->logger = {&counter("proto.logger.nacks_received"),
                      &counter("proto.logger.served_unicast"),
                      &counter("proto.logger.served_multicast"),
                      &counter("proto.logger.upstream_fetches"),
                      &counter("proto.logger.acks_sent")};
        pm->stat_ack = {&counter("proto.stat_ack.epochs_opened"),
                        &counter("proto.stat_ack.remulticast_decisions"),
                        &counter("proto.stat_ack.empty_epoch_resolicits"),
                        &counter("proto.stat_ack.packets_completed"),
                        &counter("proto.stat_ack.packets_incomplete")};
        pm->loss = {&counter("proto.loss.gaps_opened"),
                    &counter("proto.loss.gap_overflows")};
        pm->host.send_by_type[0] = &Counter::sink();
        for (std::size_t t = 1; t < kWireTypeNames.size(); ++t)
            pm->host.send_by_type[t] =
                &counter(std::string("host.send.") + kWireTypeNames[t]);
        pm->host.timers_armed = &counter("host.timers_armed");
        pm->host.timers_cancelled = &counter("host.timers_cancelled");
        pm->host.notices = &counter("host.notices");
        protocol_ = std::move(pm);
    }
    return *protocol_;
}

}  // namespace lbrm::obs
