#include "obs/sampler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"

namespace lbrm::obs {

void Sampler::add_rate(std::string name) {
    series_.push_back(Series{std::move(name), /*rate=*/true, 0, {}});
}

void Sampler::add_level(std::string name) {
    series_.push_back(Series{std::move(name), /*rate=*/false, 0, {}});
}

void Sampler::tick(TimePoint now) {
    times_.push_back(to_seconds(now));
    for (Series& s : series_) {
        const std::uint64_t v = metrics_.value(s.name);
        if (s.rate) {
            // Counters are monotonic; guard anyway so a reset source can
            // never underflow the delta.
            s.values.push_back(v >= s.last ? v - s.last : 0);
            s.last = v;
        } else {
            s.values.push_back(v);
        }
    }
}

const std::vector<std::uint64_t>* Sampler::series(const std::string& name) const {
    const auto it = std::find_if(series_.begin(), series_.end(),
                                 [&](const Series& s) { return s.name == name; });
    return it != series_.end() ? &it->values : nullptr;
}

std::string Sampler::to_json() const {
    char buf[64];
    std::string json = "{\"interval_s\":";
    std::snprintf(buf, sizeof buf, "%.9g", to_seconds(interval_));
    json += buf;
    json += ",\"t\":[";
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (i != 0) json += ",";
        std::snprintf(buf, sizeof buf, "%.9g", times_[i]);
        json += buf;
    }
    json += "],\"series\":{";
    bool first = true;
    for (const Series& s : series_) {
        if (!first) json += ",";
        first = false;
        json += "\"" + s.name + "\":{\"kind\":\"";
        json += s.rate ? "rate" : "level";
        json += "\",\"values\":[";
        for (std::size_t i = 0; i < s.values.size(); ++i) {
            if (i != 0) json += ",";
            std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(s.values[i]));
            json += buf;
        }
        json += "]}";
    }
    json += "}}";
    return json;
}

bool Sampler::write_json(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << to_json() << "\n";
    return bool(out);
}

}  // namespace lbrm::obs
