// Scoped-span trace recorder (see DESIGN.md "Observability").
//
// Spans measure *wall* time of simulator machinery -- finalize site builds,
// tree builds, event-loop drains, log-store recoveries -- so a million-node
// finalize can be opened in chrome://tracing or Perfetto (the export is
// Chrome `trace_event` JSON).  Each thread writes into its own bounded ring
// buffer: recording is two steady_clock reads plus one ring store, with no
// locking after the thread's first span.  When the ring wraps the oldest
// spans are overwritten and the loss is counted, never silently.
//
// Recording is opt-in per process: a TraceRecorder must be install()ed as
// the current recorder.  With none installed, LBRM_TRACE_SPAN costs one
// relaxed atomic load and a branch; under LBRM_NO_TELEMETRY it compiles
// away entirely.  Span names must be string literals (the ring stores the
// pointer).  The recorder must outlive every span and every thread that
// recorded into it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbrm::obs {

class TraceRecorder {
public:
    struct Span {
        const char* name;
        std::uint32_t tid;       ///< ring index (0 = first thread seen)
        std::uint64_t start_ns;  ///< relative to the recorder's epoch
        std::uint64_t dur_ns;
    };

    /// `capacity_per_thread` bounds each thread's ring (spans kept; older
    /// ones are overwritten once the ring wraps).
    explicit TraceRecorder(std::size_t capacity_per_thread = 1 << 16);
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;
    ~TraceRecorder();

    /// Make this the process-wide recorder new spans report to.
    void install();
    /// Detach (only if this recorder is the current one).
    void uninstall();
    [[nodiscard]] static TraceRecorder* current();

    /// Record one closed span (called by ScopedSpan's destructor).
    void record(const char* name, std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1);

    /// All retained spans, merged across threads, sorted by start time.
    [[nodiscard]] std::vector<Span> spans() const;
    /// Spans lost to ring wraparound, across all threads.
    [[nodiscard]] std::uint64_t dropped() const;

    /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}]}.  Open in
    /// chrome://tracing or https://ui.perfetto.dev.
    [[nodiscard]] std::string to_chrome_json() const;
    bool write_chrome_json(const std::string& path) const;

private:
    struct Ring {
        explicit Ring(std::size_t cap) : buf(cap) {}
        std::vector<Span> buf;
        std::uint64_t count = 0;  ///< spans ever recorded; index = count % size
    };

    [[nodiscard]] Ring& ring_for_this_thread();

    const std::size_t capacity_;
    const std::uint64_t id_;  ///< process-unique, keyed by thread-local caches
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;   ///< guards rings_ growth (first span per thread)
    std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: records [construction, destruction) into the installed
/// recorder.  `name` must be a string literal.
class ScopedSpan {
public:
#if !defined(LBRM_NO_TELEMETRY)
    explicit ScopedSpan(const char* name)
        : name_(name), rec_(TraceRecorder::current()) {
        if (rec_ != nullptr) t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedSpan() {
        if (rec_ != nullptr) rec_->record(name_, t0_, std::chrono::steady_clock::now());
    }
#else
    explicit ScopedSpan(const char*) {}
#endif
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
#if !defined(LBRM_NO_TELEMETRY)
    const char* name_;
    TraceRecorder* rec_;
    std::chrono::steady_clock::time_point t0_{};
#endif
};

#define LBRM_TRACE_CONCAT2(a, b) a##b
#define LBRM_TRACE_CONCAT(a, b) LBRM_TRACE_CONCAT2(a, b)
/// Span covering the rest of the enclosing scope.
#define LBRM_TRACE_SPAN(name) \
    ::lbrm::obs::ScopedSpan LBRM_TRACE_CONCAT(lbrm_span_, __LINE__)(name)

}  // namespace lbrm::obs
