// Closed-form heartbeat-overhead model (Section 2.1.2, Figures 4 and 5,
// Table 1).
//
// Given a data-packet interval dt, the variable-heartbeat sender emits
// heartbeats at cumulative offsets h_min, h_min(1+b), h_min(1+b+b^2), ...
// (intervals multiplying by the backoff b, saturating at h_max), and every
// heartbeat scheduled at or after the next data packet is preempted.  The
// fixed baseline emits one heartbeat every h_min.
//
// These functions are validated against step-by-step simulation of the
// actual HeartbeatScheduler in tests/analysis_test.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"

namespace lbrm::analysis {

/// Offsets (seconds after the data packet) of every heartbeat transmitted
/// before the next data packet arrives `dt` seconds later.
[[nodiscard]] std::vector<double> variable_heartbeat_offsets(const HeartbeatConfig& config,
                                                             double dt);

/// Number of variable-scheme heartbeats in a data interval of dt seconds.
[[nodiscard]] std::size_t variable_heartbeat_count(const HeartbeatConfig& config, double dt);

/// Number of fixed-scheme heartbeats (one every `h` seconds) in dt seconds;
/// a heartbeat coinciding with the next data packet is preempted.
[[nodiscard]] std::size_t fixed_heartbeat_count(double h, double dt);

/// Steady-state heartbeat packets per second when data arrives every dt
/// seconds (count / dt).
[[nodiscard]] double variable_heartbeat_rate(const HeartbeatConfig& config, double dt);
[[nodiscard]] double fixed_heartbeat_rate(double h, double dt);

/// Overhead(fixed) / Overhead(variable) -- the Figure 5 / Table 1 ratio,
/// computed from exact discrete heartbeat counts (implementation-faithful:
/// the backoff saturates at h_max, so ratios plateau for large backoffs).
/// Returns +inf when the variable scheme sends zero heartbeats but the
/// fixed scheme sends some, and 1.0 when both send none.
[[nodiscard]] double overhead_ratio(const HeartbeatConfig& config, double dt);

/// The continuous-growth approximation the paper's Table 1 follows: the
/// number of heartbeats in dt is modeled as n = log_b(1 + dt (b-1) / h_min)
/// (geometric growth, no h_max cap), giving ratio (dt/h_min) / n.  This
/// matches the published column within a few percent; see EXPERIMENTS.md
/// for the comparison against the exact discrete model.
[[nodiscard]] double overhead_ratio_continuous(const HeartbeatConfig& config, double dt);

/// Aggregate heartbeat packet rate for the Section 2.1.2 DIS scenario:
/// `entities` terrain entities each updating every `dt` seconds.
[[nodiscard]] double scenario_heartbeat_rate(const HeartbeatConfig& config, double dt,
                                             std::size_t entities);

}  // namespace lbrm::analysis
