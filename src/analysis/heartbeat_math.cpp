#include "analysis/heartbeat_math.hpp"

#include <cmath>
#include <limits>

#include "common/time.hpp"

namespace lbrm::analysis {

std::vector<double> variable_heartbeat_offsets(const HeartbeatConfig& config, double dt) {
    std::vector<double> offsets;
    const double h_min = to_seconds(config.h_min);
    const double h_max = to_seconds(config.h_max);
    const double backoff = config.fixed ? 1.0 : config.backoff;

    double interval = h_min;
    double at = 0.0;
    while (true) {
        at += interval;
        if (at >= dt) break;  // preempted by the next data packet
        offsets.push_back(at);
        interval = std::min(interval * backoff, h_max);
        if (offsets.size() > 1'000'000) break;  // guard absurd parameters
    }
    return offsets;
}

std::size_t variable_heartbeat_count(const HeartbeatConfig& config, double dt) {
    return variable_heartbeat_offsets(config, dt).size();
}

std::size_t fixed_heartbeat_count(double h, double dt) {
    if (h <= 0.0 || dt <= h) return 0;
    // Largest k with k*h strictly before dt; nudge for exact multiples.
    const double k = std::ceil(dt / h - 1e-9) - 1.0;
    return k < 0.0 ? 0u : static_cast<std::size_t>(k);
}

double variable_heartbeat_rate(const HeartbeatConfig& config, double dt) {
    return static_cast<double>(variable_heartbeat_count(config, dt)) / dt;
}

double fixed_heartbeat_rate(double h, double dt) {
    return static_cast<double>(fixed_heartbeat_count(h, dt)) / dt;
}

double overhead_ratio(const HeartbeatConfig& config, double dt) {
    const auto variable = variable_heartbeat_count(config, dt);
    const auto fixed = fixed_heartbeat_count(to_seconds(config.h_min), dt);
    if (variable == 0)
        return fixed == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    return static_cast<double>(fixed) / static_cast<double>(variable);
}

double overhead_ratio_continuous(const HeartbeatConfig& config, double dt) {
    const double h_min = to_seconds(config.h_min);
    const double b = config.fixed ? 1.0 : config.backoff;
    if (dt <= h_min) return 1.0;
    const double fixed = dt / h_min;
    if (b <= 1.0) return 1.0;
    const double variable = std::log(1.0 + dt * (b - 1.0) / h_min) / std::log(b);
    return fixed / variable;
}

double scenario_heartbeat_rate(const HeartbeatConfig& config, double dt,
                               std::size_t entities) {
    return variable_heartbeat_rate(config, dt) * static_cast<double>(entities);
}

}  // namespace lbrm::analysis
