#include "analysis/estimator_math.hpp"

#include <cmath>
#include <stdexcept>

namespace lbrm::analysis {

double single_probe_stddev(double n, double p_ack) {
    if (n < 0.0 || p_ack <= 0.0 || p_ack > 1.0)
        throw std::invalid_argument("single_probe_stddev: need n >= 0, p in (0, 1]");
    return std::sqrt(n * (1.0 - p_ack) / p_ack);
}

double repeated_probe_stddev(double n, double p_ack, std::size_t probes) {
    if (probes == 0) throw std::invalid_argument("repeated_probe_stddev: probes >= 1");
    return single_probe_stddev(n, p_ack) / std::sqrt(static_cast<double>(probes));
}

double stddev_reduction_factor(std::size_t probes) {
    if (probes == 0) throw std::invalid_argument("stddev_reduction_factor: probes >= 1");
    return 1.0 / std::sqrt(static_cast<double>(probes));
}

}  // namespace lbrm::analysis
