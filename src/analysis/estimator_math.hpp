// Closed-form accuracy of the group-size estimator (Section 2.3.3, Table 2).
//
// One probe at acknowledgement probability p of N loggers yields k ~
// Binomial(N, p) replies and the estimate k/p, whose standard deviation is
//     sigma_1 = sqrt(N (1 - p) / p).
// Averaging n independent probes divides sigma by sqrt(n) -- the Table 2
// column.  Monte-Carlo validation lives in tests/analysis_test.cpp and the
// Table 2 bench.
#pragma once

#include <cstddef>

namespace lbrm::analysis {

/// Standard deviation of a single-probe estimate of N loggers at
/// acknowledgement probability p (Table 2 row 1).
[[nodiscard]] double single_probe_stddev(double n, double p_ack);

/// Standard deviation after averaging `probes` repeated probes.
[[nodiscard]] double repeated_probe_stddev(double n, double p_ack, std::size_t probes);

/// Table 2's normalized column: sigma_n / sigma_1 = 1/sqrt(n).
[[nodiscard]] double stddev_reduction_factor(std::size_t probes);

}  // namespace lbrm::analysis
