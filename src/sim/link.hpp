// A unidirectional network link with propagation delay, finite bandwidth
// (serialization delay + FIFO queueing via a busy-until horizon), a
// drop-tail queue bound, and a pluggable loss model.
//
// Per-link, per-packet-type statistics feed the paper's bandwidth
// arguments: the Section 2.2.2 experiments count exactly how many NACKs and
// repairs cross each tail circuit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "packet/packet.hpp"
#include "sim/loss_model.hpp"

namespace lbrm::sim {

struct LinkSpec {
    Duration propagation = millis(1);
    /// Bits per second; 0 means infinite (no serialization/queueing delay).
    double bandwidth_bps = 0.0;
    /// Maximum tolerated queueing delay before drop-tail; zero = unlimited.
    Duration max_queue_delay = Duration::zero();
};

struct LinkStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops_loss = 0;
    std::uint64_t drops_queue = 0;
    /// Packets per PacketType (index = numeric type value).
    std::array<std::uint64_t, 32> by_type{};

    [[nodiscard]] std::uint64_t packets_of(PacketType t) const {
        return by_type[static_cast<std::size_t>(t)];
    }
};

class Link {
public:
    Link(NodeId from, NodeId to, LinkSpec spec)
        : from_(from), to_(to), spec_(spec), loss_(std::make_unique<NoLoss>()) {}

    void set_loss_model(std::unique_ptr<LossModel> model) {
        loss_ = model ? std::move(model) : std::make_unique<NoLoss>();
    }

    /// Account and time one packet handed to this link at `now`.
    /// Returns the arrival time at the far end, or std::nullopt if the
    /// packet was dropped (loss model or queue overflow).
    std::optional<TimePoint> transmit(Rng& rng, TimePoint now, std::size_t bytes,
                                      PacketType type) {
        if (loss_->drop(rng, now)) {
            ++stats_.drops_loss;
            return std::nullopt;
        }

        Duration serialization = Duration::zero();
        TimePoint depart = now;
        if (spec_.bandwidth_bps > 0.0) {
            serialization = secs(static_cast<double>(bytes) * 8.0 / spec_.bandwidth_bps);
            const TimePoint start = busy_until_ > now ? busy_until_ : now;
            if (spec_.max_queue_delay != Duration::zero() &&
                start - now > spec_.max_queue_delay) {
                ++stats_.drops_queue;
                return std::nullopt;
            }
            depart = start + serialization;
            busy_until_ = depart;
        }

        ++stats_.packets;
        stats_.bytes += bytes;
        ++stats_.by_type[static_cast<std::size_t>(type)];
        return depart + spec_.propagation;
    }

    [[nodiscard]] NodeId from() const { return from_; }
    [[nodiscard]] NodeId to() const { return to_; }
    [[nodiscard]] const LinkSpec& spec() const { return spec_; }
    [[nodiscard]] const LinkStats& stats() const { return stats_; }
    void reset_stats() { stats_ = LinkStats{}; }

private:
    NodeId from_;
    NodeId to_;
    LinkSpec spec_;
    std::unique_ptr<LossModel> loss_;
    TimePoint busy_until_ = time_zero();
    LinkStats stats_;
};

}  // namespace lbrm::sim
