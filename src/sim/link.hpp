// A unidirectional network link with propagation delay, finite bandwidth
// (serialization delay + FIFO queueing via a busy-until horizon), a
// drop-tail queue bound, and a pluggable loss model.
//
// Per-link, per-packet-type statistics feed the paper's bandwidth
// arguments: the Section 2.2.2 experiments count exactly how many NACKs and
// repairs cross each tail circuit.
//
// Drop accounting:
//   * drops_queue -- the packet found the queue-delay bound exceeded and
//     never entered the wire: no bandwidth consumed, no loss roll.
//   * drops_loss  -- the packet was serialized onto the wire (it occupies
//     its slot of the busy horizon, congesting later packets) and was then
//     lost in flight.  Loss is rolled *after* bandwidth accounting so lossy
//     tail circuits show their true congestion.
//
// Burst batching (see DESIGN.md "Link burst batching"): when a burst hits a
// link whose busy horizon is already in the future, the network layer parks
// the per-packet arrivals in this link's pending FIFO instead of scheduling
// one event-queue entry each; a single recurring drain event per link walks
// the FIFO.  The FIFO stores (arrival time, reserved tiebreak, arrival
// descriptor) so the drain resumes each delivery at exactly the (time,
// order) position the unbatched path would have used.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "packet/packet.hpp"
#include "sim/loss_model.hpp"

namespace lbrm::sim {

struct LinkSpec {
    Duration propagation = millis(1);
    /// Bits per second; 0 means infinite (no serialization/queueing delay).
    double bandwidth_bps = 0.0;
    /// Maximum tolerated queueing delay before drop-tail; zero = unlimited.
    Duration max_queue_delay = Duration::zero();
};

struct LinkStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops_loss = 0;
    std::uint64_t drops_queue = 0;

    /// Per-type tallies.  A link sees a handful of distinct packet types
    /// (data + heartbeats down the tree; NACK/ACK traffic up), so the
    /// common case lives in four inline (tag, count) slots -- a full
    /// per-type array costs ~256 MB across two million directed links.  A
    /// link that sees a fifth distinct type, or overflows a 32-bit slot,
    /// spills every tally to one heap array and counts there from then on.
    static constexpr std::size_t kInlineTypes = 4;
    std::array<std::uint8_t, kInlineTypes> type_tags{};  ///< 0 = empty slot
    std::array<std::uint32_t, kInlineTypes> type_counts{};
    std::unique_ptr<std::array<std::uint64_t, 32>> type_spill;

    void count(PacketType type) {
        const auto tag = static_cast<std::uint8_t>(type);
        if (type_spill) {
            ++(*type_spill)[tag];
            return;
        }
        for (std::size_t i = 0; i < kInlineTypes; ++i) {
            if (type_tags[i] == tag) {
                if (++type_counts[i] == 0) {  // u32 wrapped: move to u64 spill
                    spill();
                    (*type_spill)[tag] += std::uint64_t{1} << 32;
                }
                return;
            }
            if (type_tags[i] == 0) {
                type_tags[i] = tag;
                type_counts[i] = 1;
                return;
            }
        }
        spill();
        ++(*type_spill)[tag];
    }

    [[nodiscard]] std::uint64_t packets_of(PacketType t) const {
        const auto tag = static_cast<std::uint8_t>(t);
        if (type_spill) return (*type_spill)[tag];
        for (std::size_t i = 0; i < kInlineTypes; ++i)
            if (type_tags[i] == tag) return type_counts[i];
        return 0;
    }

private:
    void spill() {
        type_spill = std::make_unique<std::array<std::uint64_t, 32>>();
        for (std::size_t i = 0; i < kInlineTypes; ++i)
            if (type_tags[i] != 0) (*type_spill)[type_tags[i]] = type_counts[i];
    }
};

class Link {
public:
    Link(NodeId from, NodeId to, LinkSpec spec) : from_(from), to_(to), spec_(spec) {}

    /// Null means lossless -- the default costs no allocation per link, and
    /// transmit() skips the virtual call entirely (NoLoss draws no RNG, so
    /// the skip is bit-identical).
    void set_loss_model(std::unique_ptr<LossModel> model) { loss_ = std::move(model); }

    /// Re-spec this cable direction in place (Network::add_link over an
    /// existing pair).  Live traffic state survives -- the busy horizon,
    /// parked pending arrivals and the recurring-drain bookkeeping all
    /// belong to packets already handed to the wire, which must complete
    /// exactly as scheduled -- and accumulated stats are kept (it is the
    /// same cable, re-provisioned).  The loss model resets to NoLoss, as
    /// for a newly added link.
    void respec(const LinkSpec& spec) {
        spec_ = spec;
        loss_.reset();
    }

    /// Account and time one packet handed to this link at `now`.
    /// Returns the arrival time at the far end, or std::nullopt if the
    /// packet was dropped (queue overflow or loss model; see file comment
    /// for the ordering and its accounting consequences).
    std::optional<TimePoint> transmit(Rng& rng, TimePoint now, std::size_t bytes,
                                      PacketType type) {
        Duration serialization = Duration::zero();
        TimePoint depart = now;
        if (spec_.bandwidth_bps > 0.0) {
            serialization = secs(static_cast<double>(bytes) * 8.0 / spec_.bandwidth_bps);
            const TimePoint start = busy_until_ > now ? busy_until_ : now;
            if (spec_.max_queue_delay != Duration::zero() &&
                start - now > spec_.max_queue_delay) {
                ++stats_.drops_queue;
                return std::nullopt;  // never entered the wire: no loss roll
            }
            depart = start + serialization;
            busy_until_ = depart;  // lost packets still burn wire time
        }

        if (loss_ && loss_->drop(rng, now)) {
            ++stats_.drops_loss;
            return std::nullopt;
        }

        ++stats_.packets;
        stats_.bytes += bytes;
        stats_.count(type);
        return depart + spec_.propagation;
    }

    /// True when a packet handed over at `now` would queue behind earlier
    /// traffic -- the condition under which the network batches its arrival
    /// into the pending FIFO instead of scheduling an event.
    [[nodiscard]] bool busy(TimePoint now) const { return busy_until_ > now; }

    // --- pending-arrival FIFO (drained by Network::drain_link) ----------
    // Entries are PODs -- (delivery record, hop, kind) rather than a
    // std::function -- so a parked burst costs 32 bytes per packet and zero
    // allocation/indirection churn; Network::dispatch_arrival resumes them.
    struct PendingArrival {
        TimePoint at;            ///< arrival time at the far end
        std::uint64_t tiebreak;  ///< reserved event-queue tiebreak
        void* delivery;          ///< Network delivery record (opaque here)
        std::uint32_t hop;       ///< arriving node index
        std::uint8_t kind;       ///< Network::ArrivalKind
    };

    void push_pending(TimePoint at, std::uint64_t tiebreak, void* delivery,
                      std::uint32_t hop, std::uint8_t kind) {
        pending_.push_back(PendingArrival{at, tiebreak, delivery, hop, kind});
    }

    [[nodiscard]] bool has_pending() const { return head_ < pending_.size(); }

    [[nodiscard]] const PendingArrival& front_pending() const {
        return pending_[head_];
    }

    PendingArrival pop_pending() {
        PendingArrival out = pending_[head_++];
        if (head_ == pending_.size()) {  // drained: reuse the buffer
            pending_.clear();
            head_ = 0;
        }
        return out;
    }

    /// Recurring drain-event slot handle (0 = not created yet) and whether
    /// the drain is currently armed.  Owned by the Network layer.
    [[nodiscard]] std::uint32_t drain_slot() const { return drain_slot_; }
    void set_drain_slot(std::uint32_t slot) { drain_slot_ = slot; }
    [[nodiscard]] bool drain_armed() const { return drain_armed_; }
    void set_drain_armed(bool armed) { drain_armed_ = armed; }

    [[nodiscard]] NodeId from() const { return from_; }
    [[nodiscard]] NodeId to() const { return to_; }
    [[nodiscard]] const LinkSpec& spec() const { return spec_; }
    [[nodiscard]] const LinkStats& stats() const { return stats_; }
    void reset_stats() { stats_ = LinkStats{}; }

private:
    NodeId from_;
    NodeId to_;
    LinkSpec spec_;
    std::unique_ptr<LossModel> loss_;
    TimePoint busy_until_ = time_zero();
    LinkStats stats_;

    /// Pending arrivals in FIFO order (arrival times are strictly
    /// non-decreasing: the busy horizon only moves forward).  Flat ring:
    /// head index + tail pushes, buffer reused once drained.
    std::vector<PendingArrival> pending_;
    std::size_t head_ = 0;
    std::uint32_t drain_slot_ = 0;
    bool drain_armed_ = false;
};

}  // namespace lbrm::sim
