// A bidirectional cable holding two unidirectional links, each with
// propagation delay, finite bandwidth (serialization delay + FIFO queueing
// via a busy-until horizon), a drop-tail queue bound, and a pluggable loss
// model.
//
// Memory layout (see DESIGN.md "Memory engineering"): a Cable owns the two
// directed Link objects in place plus their *shared* spec, so the per-cable
// footprint is one record instead of two ~250-byte directed links.  Each
// Link keeps only the hot transmit state inline -- the busy horizon and two
// pointers -- and lazily allocates a LinkCold block (stats, loss model,
// pending-arrival FIFO, drain bookkeeping) on first use.  A 10M-node
// topology has ~10M cables but only the few hundred thousand directions on
// active paths ever pay for cold state.  Link addresses stay stable for the
// network's lifetime (Cables live in a StableVector and never move), so
// routing tables and cached trees keep raw Link* as before.
//
// Per-link, per-packet-type statistics feed the paper's bandwidth
// arguments: the Section 2.2.2 experiments count exactly how many NACKs and
// repairs cross each tail circuit.
//
// Drop accounting:
//   * drops_queue -- the packet found the queue-delay bound exceeded and
//     never entered the wire: no bandwidth consumed, no loss roll.
//   * drops_loss  -- the packet was serialized onto the wire (it occupies
//     its slot of the busy horizon, congesting later packets) and was then
//     lost in flight.  Loss is rolled *after* bandwidth accounting so lossy
//     tail circuits show their true congestion.
//
// Burst batching (see DESIGN.md "Link burst batching"): when a burst hits a
// link whose busy horizon is already in the future, the network layer parks
// the per-packet arrivals in this link's pending FIFO instead of scheduling
// one event-queue entry each; a single recurring drain event per link walks
// the FIFO.  The FIFO stores (arrival time, reserved tiebreak, arrival
// descriptor) so the drain resumes each delivery at exactly the (time,
// order) position the unbatched path would have used.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "packet/packet.hpp"
#include "sim/loss_model.hpp"

namespace lbrm::sim {

struct LinkSpec {
    Duration propagation = millis(1);
    /// Bits per second; 0 means infinite (no serialization/queueing delay).
    double bandwidth_bps = 0.0;
    /// Maximum tolerated queueing delay before drop-tail; zero = unlimited.
    Duration max_queue_delay = Duration::zero();
};

struct LinkStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops_loss = 0;
    std::uint64_t drops_queue = 0;

    /// Per-type tallies.  A link sees a handful of distinct packet types
    /// (data + heartbeats down the tree; NACK/ACK traffic up), so the
    /// common case lives in four inline (tag, count) slots -- a full
    /// per-type array costs ~256 MB across two million directed links.  A
    /// link that sees a fifth distinct type, or overflows a 32-bit slot,
    /// spills every tally to one heap array and counts there from then on.
    static constexpr std::size_t kInlineTypes = 4;
    std::array<std::uint8_t, kInlineTypes> type_tags{};  ///< 0 = empty slot
    std::array<std::uint32_t, kInlineTypes> type_counts{};
    std::unique_ptr<std::array<std::uint64_t, 32>> type_spill;

    void count(PacketType type) {
        const auto tag = static_cast<std::uint8_t>(type);
        if (type_spill) {
            ++(*type_spill)[tag];
            return;
        }
        for (std::size_t i = 0; i < kInlineTypes; ++i) {
            if (type_tags[i] == tag) {
                if (++type_counts[i] == 0) {  // u32 wrapped: move to u64 spill
                    spill();
                    (*type_spill)[tag] += std::uint64_t{1} << 32;
                }
                return;
            }
            if (type_tags[i] == 0) {
                type_tags[i] = tag;
                type_counts[i] = 1;
                return;
            }
        }
        spill();
        ++(*type_spill)[tag];
    }

    [[nodiscard]] std::uint64_t packets_of(PacketType t) const {
        const auto tag = static_cast<std::uint8_t>(t);
        if (type_spill) return (*type_spill)[tag];
        for (std::size_t i = 0; i < kInlineTypes; ++i)
            if (type_tags[i] == tag) return type_counts[i];
        return 0;
    }

private:
    void spill() {
        type_spill = std::make_unique<std::array<std::uint64_t, 32>>();
        for (std::size_t i = 0; i < kInlineTypes; ++i)
            if (type_tags[i] != 0) (*type_spill)[type_tags[i]] = type_counts[i];
    }
};

/// One parked arrival in a link's pending FIFO (drained by
/// Network::drain_link).  Entries are PODs -- (delivery record, hop, kind)
/// rather than a std::function -- so a parked burst costs 32 bytes per
/// packet and zero allocation/indirection churn; Network::dispatch_arrival
/// resumes them.
struct PendingArrival {
    TimePoint at;            ///< arrival time at the far end
    std::uint64_t tiebreak;  ///< reserved event-queue tiebreak
    void* delivery;          ///< Network delivery record (opaque here)
    std::uint32_t hop;       ///< arriving node index
    std::uint8_t kind;       ///< Network::ArrivalKind
};

/// Cold per-direction state: everything a directed link only needs once it
/// has actually carried (or dropped, or parked) traffic.  Idle directions
/// -- the overwhelming majority at 10M nodes -- never allocate this.
struct LinkCold {
    std::unique_ptr<LossModel> loss;
    LinkStats stats;
    /// Pending arrivals in FIFO order (arrival times are strictly
    /// non-decreasing: the busy horizon only moves forward).  Flat ring:
    /// head index + tail pushes, buffer reused once drained.
    std::vector<PendingArrival> pending;
    std::size_t head = 0;
    std::uint32_t drain_slot = 0;
    bool drain_armed = false;
};

struct Cable;

class Link {
public:
    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;

    using PendingArrival = sim::PendingArrival;

    /// Null means lossless -- the default costs no allocation per link, and
    /// transmit() skips the virtual call entirely (NoLoss draws no RNG, so
    /// the skip is bit-identical).
    void set_loss_model(std::unique_ptr<LossModel> model) {
        cold().loss = std::move(model);
    }
    [[nodiscard]] bool has_loss_model() const { return cold_ && cold_->loss; }

    /// Account and time one packet handed to this link at `now`.
    /// Returns the arrival time at the far end, or std::nullopt if the
    /// packet was dropped (queue overflow or loss model; see file comment
    /// for the ordering and its accounting consequences).
    std::optional<TimePoint> transmit(Rng& rng, TimePoint now, std::size_t bytes,
                                      PacketType type);

    /// True when a packet handed over at `now` would queue behind earlier
    /// traffic -- the condition under which the network batches its arrival
    /// into the pending FIFO instead of scheduling an event.
    [[nodiscard]] bool busy(TimePoint now) const { return busy_until_ > now; }

    // --- pending-arrival FIFO (drained by Network::drain_link) ----------
    void push_pending(TimePoint at, std::uint64_t tiebreak, void* delivery,
                      std::uint32_t hop, std::uint8_t kind) {
        cold().pending.push_back(PendingArrival{at, tiebreak, delivery, hop, kind});
    }

    [[nodiscard]] bool has_pending() const {
        return cold_ && cold_->head < cold_->pending.size();
    }

    [[nodiscard]] const PendingArrival& front_pending() const {
        return cold_->pending[cold_->head];
    }

    PendingArrival pop_pending() {
        LinkCold& c = *cold_;
        PendingArrival out = c.pending[c.head++];
        if (c.head == c.pending.size()) {  // drained: reuse the buffer
            c.pending.clear();
            c.head = 0;
        }
        return out;
    }

    /// Recurring drain-event slot handle (0 = not created yet) and whether
    /// the drain is currently armed.  Owned by the Network layer.
    [[nodiscard]] std::uint32_t drain_slot() const {
        return cold_ ? cold_->drain_slot : 0;
    }
    void set_drain_slot(std::uint32_t slot) { cold().drain_slot = slot; }
    [[nodiscard]] bool drain_armed() const { return cold_ && cold_->drain_armed; }
    void set_drain_armed(bool armed) { cold().drain_armed = armed; }

    [[nodiscard]] NodeId from() const;
    [[nodiscard]] NodeId to() const;
    [[nodiscard]] const LinkSpec& spec() const;
    [[nodiscard]] Cable& cable() { return *cable_; }
    [[nodiscard]] const Cable& cable() const { return *cable_; }

    /// Stats read through the cold block; an idle direction reads a shared
    /// all-zero instance without allocating.
    [[nodiscard]] const LinkStats& stats() const {
        return cold_ ? cold_->stats : kZeroStats;
    }
    void reset_stats() {
        if (cold_) cold_->stats = LinkStats{};
    }

private:
    friend struct Cable;
    Link() = default;

    [[nodiscard]] LinkCold& cold() {
        if (!cold_) cold_ = std::make_unique<LinkCold>();
        return *cold_;
    }

    inline static const LinkStats kZeroStats{};

    Cable* cable_ = nullptr;  ///< set once by Cable's constructor
    TimePoint busy_until_ = time_zero();
    std::unique_ptr<LinkCold> cold_;
};

/// One bidirectional cable: endpoints, the shared spec, and the two
/// directed links in place.  Network::add_link always installs both
/// directions with one spec and respec() re-provisions both, so sharing
/// the spec is exact.  Non-movable: the directed links point back at their
/// cable (they live in a StableVector, which never moves elements).
struct Cable {
    Cable(NodeId a_, NodeId b_, const LinkSpec& spec_) : a(a_), b(b_), spec(spec_) {
        dir[0].cable_ = this;  // a -> b
        dir[1].cable_ = this;  // b -> a
    }
    Cable(const Cable&) = delete;
    Cable& operator=(const Cable&) = delete;

    /// Re-spec this cable in place (Network::add_link over an existing
    /// pair).  Live traffic state survives -- the busy horizons, parked
    /// pending arrivals and the recurring-drain bookkeeping all belong to
    /// packets already handed to the wire, which must complete exactly as
    /// scheduled -- and accumulated stats are kept (it is the same cable,
    /// re-provisioned).  CAUTION: any installed loss model resets to
    /// NoLoss, as for a newly added link; lossy-rewire scenarios must call
    /// Network::set_loss again afterwards.  Returns how many directions had
    /// a loss model discarded (0..2) -- Network feeds the count into the
    /// `network.respec_loss_resets` counter so such scenarios can detect
    /// the silent reset.
    unsigned respec(const LinkSpec& new_spec) {
        spec = new_spec;
        unsigned resets = 0;
        for (Link& l : dir) {
            if (l.has_loss_model()) {
                l.cold_->loss.reset();
                ++resets;
            }
        }
        return resets;
    }

    NodeId a;
    NodeId b;
    LinkSpec spec;
    Link dir[2];  ///< dir[0] = a -> b, dir[1] = b -> a
};

inline NodeId Link::from() const { return this == &cable_->dir[0] ? cable_->a : cable_->b; }
inline NodeId Link::to() const { return this == &cable_->dir[0] ? cable_->b : cable_->a; }
inline const LinkSpec& Link::spec() const { return cable_->spec; }

inline std::optional<TimePoint> Link::transmit(Rng& rng, TimePoint now,
                                               std::size_t bytes, PacketType type) {
    LinkCold& c = cold();  // transmit always accounts: materialise cold state
    const LinkSpec& s = cable_->spec;
    Duration serialization = Duration::zero();
    TimePoint depart = now;
    if (s.bandwidth_bps > 0.0) {
        serialization = secs(static_cast<double>(bytes) * 8.0 / s.bandwidth_bps);
        const TimePoint start = busy_until_ > now ? busy_until_ : now;
        if (s.max_queue_delay != Duration::zero() && start - now > s.max_queue_delay) {
            ++c.stats.drops_queue;
            return std::nullopt;  // never entered the wire: no loss roll
        }
        depart = start + serialization;
        busy_until_ = depart;  // lost packets still burn wire time
    }

    if (c.loss && c.loss->drop(rng, now)) {
        ++c.stats.drops_loss;
        return std::nullopt;
    }

    ++c.stats.packets;
    c.stats.bytes += bytes;
    c.stats.count(type);
    return depart + s.propagation;
}

}  // namespace lbrm::sim
