// The simulation executive: a virtual clock over an EventQueue.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/time.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"

namespace lbrm::sim {

class Simulator {
public:
    [[nodiscard]] TimePoint now() const { return now_; }

    std::uint64_t schedule_at(TimePoint at, EventQueue::Callback fn) {
        if (at < now_) at = now_;  // clamp: never schedule into the past
        return queue_.schedule(at, std::move(fn));
    }

    std::uint64_t schedule_in(Duration delay, EventQueue::Callback fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    void cancel(std::uint64_t id) { queue_.cancel(id); }

    // --- recurring events (link burst batching, see event_queue.hpp) -----
    /// Reserve the tiebreak an immediate schedule_at() would have used.
    [[nodiscard]] std::uint64_t reserve_tiebreak() { return queue_.reserve_tiebreak(); }
    /// Create a persistent self-rescheduling event; starts disarmed.
    std::uint32_t create_recurring(EventQueue::Callback fn) {
        return queue_.create_recurring(std::move(fn));
    }
    /// Arm a recurring event at (at, tiebreak).  Pre: at >= now() and the
    /// slot is not currently armed.
    void arm_recurring(std::uint32_t slot, TimePoint at, std::uint64_t tiebreak) {
        queue_.arm_recurring(slot, at, tiebreak);
    }

    /// Run one event; returns false when the queue is empty.
    bool step() {
        if (queue_.empty()) return false;
        auto [at, fn] = queue_.pop();
        now_ = at;
        ++events_;
        fn();
        return true;
    }

    /// Run every event with timestamp <= deadline; the clock ends at
    /// `deadline` even if the queue drains early.
    void run_until(TimePoint deadline) {
        if (!queue_.empty() && queue_.next_time() <= deadline) {
            LBRM_TRACE_SPAN("event_drain");
            while (!queue_.empty() && queue_.next_time() <= deadline) step();
        }
        if (now_ < deadline) now_ = deadline;
    }

    void run_for(Duration d) { run_until(now_ + d); }

    /// Drain the queue completely (tests with naturally finite event sets).
    void run_to_completion(std::uint64_t max_events = 50'000'000) {
        while (step()) {
            if (events_ > max_events)
                throw std::runtime_error("Simulator: event budget exhausted (livelock?)");
        }
    }

    [[nodiscard]] std::uint64_t events_processed() const { return events_; }
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }
    /// One-shot events ever scheduled (the batching bench's numerator).
    [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
    [[nodiscard]] std::uint64_t recurring_arms() const { return queue_.recurring_arms(); }
    /// Peak-pending proxy: heap capacity never shrinks (bench observability).
    [[nodiscard]] std::size_t slab_slots() const { return queue_.slab_slots(); }

private:
    EventQueue queue_;
    TimePoint now_ = time_zero();
    std::uint64_t events_ = 0;
};

}  // namespace lbrm::sim
