// SimHost: one protocol endpoint living inside the simulated network.
//
// Implements the driver services (NetworkService via Network transport,
// TimerService via the Simulator's event queue) and owns the ProtocolHost
// carrying the actual cores -- by value: a host is one arena slot, not a
// chain of heap nodes (DESIGN.md "Scale engineering").  Armed timers live
// in a small flat table instead of a std::map: a host arms a handful of
// timers (heartbeat, ack, retransmit...), so linear scans beat tree nodes
// on both memory and locality at million-host scale.
#pragma once

#include <vector>

#include "runtime/protocol_host.hpp"
#include "runtime/services.hpp"
#include "sim/simulator.hpp"

namespace lbrm::sim {

class Network;

class SimHost final : public NetworkService, public TimerService {
public:
    SimHost(Network& network, Simulator& simulator, NodeId self);

    SimHost(const SimHost&) = delete;
    SimHost& operator=(const SimHost&) = delete;

    [[nodiscard]] NodeId id() const { return self_; }
    [[nodiscard]] ProtocolHost& protocol() { return protocol_; }
    [[nodiscard]] const ProtocolHost& protocol() const { return protocol_; }

    /// Network -> host delivery (called by Network at arrival time).
    void deliver(TimePoint now, const Packet& packet);

    // NetworkService
    void send_unicast(NodeId to, const Packet& packet) override;
    void send_multicast(const Packet& packet, McastScope scope) override;
    void join_group(GroupId group) override;
    void leave_group(GroupId group) override;

    // TimerService
    void arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) override;
    void cancel(std::uint32_t core_tag, TimerId id) override;

private:
    /// One armed timer: (core tag, timer id) -> event-queue id.
    struct TimerEnt {
        std::uint32_t tag;
        TimerId id;
        std::uint64_t event;
    };
    [[nodiscard]] std::size_t find_timer(std::uint32_t tag, TimerId id) const;
    void erase_timer(std::uint32_t tag, TimerId id);

    Network& network_;
    Simulator& simulator_;
    NodeId self_;
    ProtocolHost protocol_;
    /// Armed timers, unordered; erased by swap-with-back.
    std::vector<TimerEnt> timers_;
};

}  // namespace lbrm::sim
