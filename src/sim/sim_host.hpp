// SimHost: one protocol endpoint living inside the simulated network.
//
// Implements the driver services (NetworkService via Network transport,
// TimerService via the Simulator's event queue with generation-counted
// re-arm/cancel) and owns the ProtocolHost carrying the actual cores.
#pragma once

#include <map>
#include <memory>

#include "runtime/protocol_host.hpp"
#include "runtime/services.hpp"
#include "sim/simulator.hpp"

namespace lbrm::sim {

class Network;

class SimHost final : public NetworkService, public TimerService {
public:
    SimHost(Network& network, Simulator& simulator, NodeId self);

    SimHost(const SimHost&) = delete;
    SimHost& operator=(const SimHost&) = delete;

    [[nodiscard]] NodeId id() const { return self_; }
    [[nodiscard]] ProtocolHost& protocol() { return *protocol_; }

    /// Network -> host delivery (called by Network at arrival time).
    void deliver(TimePoint now, const Packet& packet);

    // NetworkService
    void send_unicast(NodeId to, const Packet& packet) override;
    void send_multicast(const Packet& packet, McastScope scope) override;
    void join_group(GroupId group) override;
    void leave_group(GroupId group) override;

    // TimerService
    void arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) override;
    void cancel(std::uint32_t core_tag, TimerId id) override;

private:
    struct TimerKey {
        std::uint32_t tag;
        TimerId id;
        friend bool operator<(const TimerKey& a, const TimerKey& b) {
            if (a.tag != b.tag) return a.tag < b.tag;
            return a.id < b.id;
        }
    };

    Network& network_;
    Simulator& simulator_;
    NodeId self_;
    std::unique_ptr<ProtocolHost> protocol_;
    /// Armed timers -> event-queue id (for cancellation/re-arm).
    std::map<TimerKey, std::uint64_t> timers_;
};

}  // namespace lbrm::sim
