// A fully wired LBRM deployment on the Figure-1 DIS topology.
//
// DisScenario builds the network, attaches a SenderCore at the source, a
// primary LoggerCore (plus replicas), one secondary LoggerCore per site and
// a ReceiverCore per receiver host, joins the right nodes to the right
// multicast groups, and reports every delivery, notice and send to a
// pluggable ScenarioObserver (see observer.hpp).  The default observer
// records full per-event vectors -- what the integration tests and benches
// introspect -- while scale runs plug in CountingObserver to keep
// observation at O(1) memory per node.  Integration tests, benches and
// examples all run on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "obs/sampler.hpp"
#include "sim/network.hpp"
#include "sim/observer.hpp"
#include "sim/sim_host.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace lbrm::sim {

struct ScenarioConfig {
    DisTopologySpec topology;
    GroupId group{1};
    std::uint64_t seed = 42;

    /// Simulator-substrate knobs (routing scheme, cache bounds).  Purely a
    /// memory/speed trade-off: results are identical for every setting.
    SimConfig sim;

    /// Where scenario events go.  Null = a private RecordingObserver (the
    /// full-record default every existing test and bench relies on).  Scale
    /// runs install a CountingObserver; the record accessors below then
    /// throw, since nothing stores per-event records.
    std::shared_ptr<ScenarioObserver> observer;

    HeartbeatConfig heartbeat;
    StatAckConfig stat_ack;
    Duration max_idle = secs(0.25);

    /// First sequence number of the stream (propagated to the sender and to
    /// every logger's contiguity anchor).  Tests set this near 2^32 to
    /// exercise wraparound end to end.
    SeqNum initial_seq{1};

    /// Point receivers at their site's secondary logger (distributed
    /// logging, Section 2.2).  When false every receiver NACKs the primary
    /// directly (the centralized baseline of Figure 7a).
    bool use_secondary_loggers = true;

    /// Let receivers discover their logger via expanding-ring multicast
    /// instead of static configuration (Section 2.2.1).
    bool discover_loggers = false;

    /// Secondary re-multicast threshold (LoggerConfig default otherwise).
    std::uint32_t remulticast_request_threshold = 3;

    /// Section 7 extension: heartbeats repeat the last (small) data packet.
    bool heartbeat_carries_small_data = false;

    /// Section 7 extension: recover via a dedicated retransmission channel
    /// (group id `group.value() + 1`) instead of NACKs.
    bool use_retrans_channel = false;
    std::uint32_t retrans_channel_copies = 3;
    Duration retrans_channel_first_delay = millis(40);

    /// Section 2.2.1 alternative: instead of one dedicated secondary per
    /// site, every receiver host doubles as a secondary logger and receivers
    /// rotate their NACK target among them each `rotation_slot`.
    bool rotate_site_loggers = false;
    Duration rotation_slot = secs(2.0);

    /// Section 7 extension: when the topology has a regional tier
    /// (topology.sites_per_region > 0), run a logging server per region:
    /// site secondaries fetch from their regional logger, which fetches
    /// from the primary -- a three-level hierarchy.
    bool use_regional_loggers = false;

    /// Memory diet (DESIGN.md "Memory engineering"): attach receivers as
    /// dormant ~48-byte records that materialise into full ReceiverCores on
    /// their first group packet.  Bit-identical to eager cores (the wake
    /// rules live in ProtocolHost::add_dormant_receiver; memory_diet_test
    /// A/Bs the two modes) but requires statically configured loggers, so
    /// the flag is ignored when discover_loggers or rotate_site_loggers is
    /// set.
    bool dormant_receivers = false;

    /// 0 = every receiver joins the multicast group (the default).  N > 0 =
    /// only the first N receivers of each site join; the rest are wired and
    /// reachable but never see group traffic (interest management: a
    /// 10M-entity battlefield has few *subscribed* entities per site).
    /// CHANGES TRAFFIC -- scale benches only, never A/B comparisons.
    std::uint32_t active_receivers_per_site = 0;

    ReceiverConfig receiver_defaults;  ///< timing knobs (nack delays etc.)
    LoggerConfig logger_defaults;      ///< retention, fetch timing
};

class DisScenario {
public:
    explicit DisScenario(ScenarioConfig config);

    DisScenario(const DisScenario&) = delete;
    DisScenario& operator=(const DisScenario&) = delete;

    /// Start every endpoint at the current simulation time.
    void start();

    /// Multicast one application payload from the source.
    void send_update(std::vector<std::uint8_t> payload);
    /// Convenience: send a `size`-byte patterned payload.
    void send_update(std::size_t size);

    void run_for(Duration d) { simulator_.run_for(d); }
    void run_until(TimePoint t) { simulator_.run_until(t); }

    [[nodiscard]] Simulator& simulator() { return simulator_; }
    [[nodiscard]] Network& network() { return network_; }
    [[nodiscard]] const DisTopology& topology() const { return topology_; }
    [[nodiscard]] const ScenarioConfig& config() const { return config_; }

    // --- telemetry -------------------------------------------------------
    /// The network's metrics registry ("sim.*", "proto.*", "host.*" rows).
    [[nodiscard]] obs::Metrics& metrics() { return network_.metrics(); }
    /// The time-series sampler driven by start_sampling(); empty until then.
    [[nodiscard]] obs::Sampler& sampler() { return sampler_; }

    /// Sample the default protocol-health series (delivered / heartbeats /
    /// NACKs / retransmits / drops...) every `interval` of sim time via a
    /// self-rescheduling simulator event.  The sampler only *reads*
    /// counters, and its tick events interleave with protocol events
    /// without reordering them, so sampling never changes simulation
    /// results (telemetry_test asserts this).  Idempotent restart: calling
    /// again just changes the interval.
    void start_sampling(Duration interval);
    void stop_sampling();

    [[nodiscard]] SenderCore& sender();
    [[nodiscard]] LoggerCore& primary_logger() { return *primary_core_; }
    [[nodiscard]] LoggerCore& secondary_logger(std::size_t site);
    [[nodiscard]] LoggerCore& regional_logger(std::size_t region);
    /// The receiver core on `node`.  Under dormant_receivers this wakes the
    /// core if it is still dormant (a pure materialisation -- no actions
    /// run, the simulation is unaffected).
    [[nodiscard]] ReceiverCore& receiver(NodeId node);
    /// Receivers attached dormant and not yet woken (0 in eager mode).
    [[nodiscard]] std::size_t dormant_receiver_count() const;
    /// The retransmission-channel group id (valid when enabled).
    [[nodiscard]] GroupId retrans_group() const {
        return GroupId{config_.group.value() + 1};
    }

    // --- chaos hooks -----------------------------------------------------
    // Fault-injection taps (sim/chaos.hpp).  Invoked *after* the observer
    // for every receiver delivery / every source send, so installing one
    // never reorders observation; a null hook costs one branch.  Hooks only
    // observe -- any faults they apply (node down, loss, re-finalize) are
    // ordinary simulator state changes, applied at the current event.
    using DeliveryHook = std::function<void(TimePoint, NodeId, const DeliverData&)>;
    using SendHook = std::function<void(TimePoint, SeqNum)>;
    void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }
    void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

    // --- recorded observations -------------------------------------------
    // Record types live in observer.hpp; the aliases keep existing
    // `DisScenario::DeliveryRecord` spellings working.
    using DeliveryRecord = sim::DeliveryRecord;
    using NoticeRecord = sim::NoticeRecord;
    using SendRecord = sim::SendRecord;

    /// The observer events are reported to (default or user-installed).
    [[nodiscard]] ScenarioObserver& observer() { return *observer_; }

    // Record accessors: require the default RecordingObserver (they throw
    // std::logic_error under a custom observer -- the records don't exist).
    [[nodiscard]] const std::vector<DeliveryRecord>& deliveries() const;
    [[nodiscard]] const std::vector<NoticeRecord>& notices() const;
    [[nodiscard]] const std::vector<SendRecord>& sends() const;

    /// Deliveries of `seq`, keyed by receiver node.
    [[nodiscard]] std::map<NodeId, TimePoint> delivery_times(SeqNum seq) const;
    /// When `seq` was multicast by the source.
    [[nodiscard]] std::optional<TimePoint> sent_at(SeqNum seq) const;
    [[nodiscard]] std::size_t notice_count(NoticeKind kind) const;

    void clear_records();

private:
    void wire_source();
    void wire_site(const DisTopology::Site& site, std::size_t site_index);
    void wire_region(const DisTopology::Region& region, std::size_t region_index);
    [[nodiscard]] const RecordingObserver& recorder() const;

    ScenarioConfig config_;
    Simulator simulator_;
    Network network_;
    std::shared_ptr<ScenarioObserver> observer_;
    RecordingObserver* recorder_;  ///< observer_ when it records; else null
    DisTopology topology_;

    SenderCore* sender_core_ = nullptr;
    LoggerCore* primary_core_ = nullptr;
    std::vector<LoggerCore*> secondary_cores_;
    std::vector<LoggerCore*> regional_cores_;
    /// Sorted by node id (wiring order is ascending; sorted once after
    /// wiring), looked up by binary search.
    std::vector<std::pair<NodeId, ReceiverCore*>> receiver_cores_;
    std::vector<SimHost*> hosts_;
    /// Shared blueprint for every dormant receiver (null in eager mode).
    std::shared_ptr<const ProtocolHost::DormantReceiverTemplate> dormant_template_;

    DeliveryHook delivery_hook_;  ///< null unless a chaos engine is attached
    SendHook send_hook_;

    void schedule_sample_tick();
    obs::Sampler sampler_;           ///< initialised over network_.metrics()
    Duration sample_interval_{};     ///< zero = sampling off
    std::uint64_t sample_epoch_ = 0; ///< invalidates in-flight tick events
    bool sample_series_added_ = false;
};

}  // namespace lbrm::sim
