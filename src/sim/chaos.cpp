#include "sim/chaos.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace lbrm::sim {

ChaosSchedule ChaosSchedule::correlated_blackouts(Rng& rng, std::size_t sites,
                                                  std::size_t count, Duration window,
                                                  Duration min_outage,
                                                  Duration max_outage) {
    if (sites == 0) throw std::invalid_argument("correlated_blackouts: no sites");
    ChaosSchedule schedule;
    schedule.events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        SiteBlackout b;
        b.site = static_cast<std::size_t>(rng.uniform_int(0, sites - 1));
        b.at = rng.uniform_duration(Duration::zero(), window);
        b.duration = rng.uniform_duration(min_outage, max_outage);
        schedule.events.push_back(b);
    }
    return schedule;
}

ChaosEngine::ChaosEngine(DisScenario& scenario, ChaosSchedule schedule)
    : scenario_(scenario), schedule_(std::move(schedule)) {
    obs::Metrics& m = scenario_.metrics();
    c_blackouts_ = &m.counter("chaos.site_blackouts");
    c_partitions_ = &m.counter("chaos.partitions");
    c_primary_crashes_ = &m.counter("chaos.primary_crashes");
    c_replica_crashes_ = &m.counter("chaos.replica_crashes");
    c_crash_on_receive_ = &m.counter("chaos.crash_on_receive");
    c_send_and_crash_ = &m.counter("chaos.send_and_crash");
    c_revivals_ = &m.counter("chaos.revivals");
    c_refinalizes_ = &m.counter("chaos.refinalizes");
}

ChaosEngine::~ChaosEngine() {
    // Release the scenario hooks so a scenario outliving the engine never
    // calls into freed state.
    if (hooked_delivery_) scenario_.set_delivery_hook(nullptr);
    if (hooked_send_) scenario_.set_send_hook(nullptr);
}

void ChaosEngine::arm() {
    if (armed_) throw std::logic_error("ChaosEngine: arm() called twice");
    armed_ = true;
    if (schedule_.empty()) return;  // idle engine: leave the scenario untouched

    Simulator& sim = scenario_.simulator();
    t0_ = sim.now();

    for (const FaultEvent& event : schedule_.events) {
        std::visit(
            [&](const auto& f) {
                using F = std::decay_t<decltype(f)>;
                if constexpr (std::is_same_v<F, SiteBlackout>) {
                    sim.schedule_at(t0_ + f.at,
                                    [this, f] { apply_site(f.site, true, true); });
                    if (f.duration > Duration::zero()) {
                        sim.schedule_at(t0_ + f.at + f.duration,
                                        [this, f] { apply_site(f.site, false, true); });
                        windows_.push_back({t0_ + f.at, t0_ + f.at + f.duration});
                    }
                } else if constexpr (std::is_same_v<F, SitePartition>) {
                    sim.schedule_at(t0_ + f.at,
                                    [this, f] { apply_site(f.site, true, false); });
                    if (f.duration > Duration::zero()) {
                        sim.schedule_at(t0_ + f.at + f.duration,
                                        [this, f] { apply_site(f.site, false, false); });
                        windows_.push_back({t0_ + f.at, t0_ + f.at + f.duration});
                    }
                } else if constexpr (std::is_same_v<F, PrimaryCrash>) {
                    sim.schedule_at(t0_ + f.at, [this, f] {
                        c_primary_crashes_->inc();
                        crash_node(scenario_.topology().primary, f.revive_after,
                                   "primary-crash");
                    });
                } else if constexpr (std::is_same_v<F, ReplicaCrash>) {
                    const NodeId node = scenario_.topology().replicas.at(f.replica);
                    sim.schedule_at(t0_ + f.at, [this, f, node] {
                        c_replica_crashes_->inc();
                        crash_node(node, f.revive_after, "replica-crash");
                    });
                } else if constexpr (std::is_same_v<F, CrashOnReceive>) {
                    receive_triggers_.push_back(f);
                } else if constexpr (std::is_same_v<F, SendAndCrash>) {
                    send_triggers_.push_back(f);
                }
            },
            event);
    }

    if (!receive_triggers_.empty()) {
        hooked_delivery_ = true;
        scenario_.set_delivery_hook(
            [this](TimePoint at, NodeId node, const DeliverData& d) {
                on_delivery(at, node, d.seq);
            });
    }
    if (!send_triggers_.empty()) {
        hooked_send_ = true;
        scenario_.set_send_hook(
            [this](TimePoint at, SeqNum seq) { on_send(at, seq); });
    }
}

void ChaosEngine::apply_site(std::size_t site_index, bool down, bool blackout) {
    const DisTopology::Site& site = scenario_.topology().sites.at(site_index);
    Network& net = scenario_.network();
    net.set_node_down(site.router, down);
    if (blackout) {
        if (site.secondary != kNoNode) net.set_node_down(site.secondary, down);
        for (NodeId r : site.receivers) net.set_node_down(r, down);
    }
    // The router's liveness changed: re-finalize so routing (relaying,
    // border liveness) reflects it -- routes are a pure function of the
    // last finalize() (see network.hpp).
    net.finalize();
    c_refinalizes_->inc();

    const TimePoint now = scenario_.simulator().now();
    if (down) {
        ++faults_applied_;
        (blackout ? c_blackouts_ : c_partitions_)->inc();
        record(now, std::string(blackout ? "blackout site=" : "partition site=") +
                        std::to_string(site_index));
    } else {
        ++revivals_;
        c_revivals_->inc();
        record(now, std::string(blackout ? "heal site=" : "rejoin site=") +
                        std::to_string(site_index));
    }
}

void ChaosEngine::crash_node(NodeId node, Duration revive_after, const char* what) {
    Simulator& sim = scenario_.simulator();
    const TimePoint now = sim.now();
    set_node(node, true, /*refinalize=*/false);  // leaf hosts never relay
    ++faults_applied_;
    record(now, std::string(what) + " node=" + std::to_string(node.value()));
    if (revive_after > Duration::zero()) {
        windows_.push_back({now, now + revive_after});
        sim.schedule_at(now + revive_after, [this, node, what] {
            set_node(node, false, false);
            ++revivals_;
            c_revivals_->inc();
            record(scenario_.simulator().now(),
                   std::string("revive after ") + what + " node=" +
                       std::to_string(node.value()));
        });
    }
}

void ChaosEngine::set_node(NodeId node, bool down, bool refinalize) {
    scenario_.network().set_node_down(node, down);
    if (refinalize) {
        scenario_.network().finalize();
        c_refinalizes_->inc();
    }
}

void ChaosEngine::record(TimePoint at, std::string what) {
    log_.push_back({at, std::move(what)});
}

void ChaosEngine::on_delivery(TimePoint at, NodeId node, SeqNum seq) {
    for (std::size_t i = 0; i < receive_triggers_.size(); ++i) {
        if (receive_triggers_[i].node != node || receive_triggers_[i].seq != seq)
            continue;
        const CrashOnReceive trig = receive_triggers_[i];
        receive_triggers_.erase(receive_triggers_.begin() +
                                static_cast<std::ptrdiff_t>(i));
        c_crash_on_receive_->inc();
        (void)at;
        crash_node(node, trig.revive_after, "crash-on-receive");
        return;
    }
}

void ChaosEngine::on_send(TimePoint at, SeqNum seq) {
    for (std::size_t i = 0; i < send_triggers_.size(); ++i) {
        if (send_triggers_[i].seq != seq) continue;
        const SendAndCrash trig = send_triggers_[i];
        send_triggers_.erase(send_triggers_.begin() + static_cast<std::ptrdiff_t>(i));
        c_send_and_crash_->inc();
        (void)at;
        crash_node(scenario_.topology().source, trig.revive_after, "send-and-crash");
        return;
    }
}

// --- receiver-reliability accounting ---------------------------------------

namespace {

/// Pack a (node, seq) pair for set membership.
std::uint64_t pair_key(NodeId node, SeqNum seq) {
    return (static_cast<std::uint64_t>(node.value()) << 32) | seq.value();
}

}  // namespace

ReliabilityAudit audit_reliability(const DisScenario& scenario) {
    ReliabilityAudit audit;
    const std::vector<NodeId> receivers = scenario.topology().all_receivers();

    std::unordered_set<std::uint32_t> sent;
    sent.reserve(scenario.sends().size());
    for (const SendRecord& s : scenario.sends()) sent.insert(s.seq.value());

    std::unordered_set<std::uint64_t> delivered;
    delivered.reserve(scenario.deliveries().size());
    for (const DeliveryRecord& d : scenario.deliveries())
        if (sent.contains(d.seq.value())) delivered.insert(pair_key(d.node, d.seq));

    audit.expected =
        static_cast<std::uint64_t>(receivers.size()) * sent.size();
    for (NodeId node : receivers)
        for (std::uint32_t seq : sent)
            if (delivered.contains(pair_key(node, SeqNum{seq}))) ++audit.delivered;
    audit.lost_forever = audit.expected - audit.delivered;
    return audit;
}

RecoveryStats settle_latency(const DisScenario& scenario, TimePoint win_start,
                             TimePoint win_end) {
    const std::size_t n_receivers = scenario.topology().all_receivers().size();

    // Send times for sequences inside the window.
    std::unordered_map<std::uint32_t, TimePoint> sent_at;
    for (const SendRecord& s : scenario.sends())
        if (s.at >= win_start && s.at <= win_end) sent_at.emplace(s.seq.value(), s.at);

    // First delivery per (receiver, seq); settle = the latest of them.
    std::unordered_map<std::uint32_t, TimePoint> latest_first;
    std::unordered_map<std::uint32_t, std::size_t> coverage;
    std::unordered_set<std::uint64_t> seen;
    for (const DeliveryRecord& d : scenario.deliveries()) {
        const auto it = sent_at.find(d.seq.value());
        if (it == sent_at.end()) continue;
        if (!seen.insert(pair_key(d.node, d.seq)).second) continue;  // not first
        ++coverage[d.seq.value()];
        auto [lt, inserted] = latest_first.emplace(d.seq.value(), d.at);
        if (!inserted && d.at > lt->second) lt->second = d.at;
    }

    std::vector<double> settle;
    settle.reserve(sent_at.size());
    for (const auto& [seq, at] : sent_at) {
        const auto cov = coverage.find(seq);
        if (cov == coverage.end() || cov->second < n_receivers) continue;  // lost
        settle.push_back(to_seconds(latest_first.at(seq) - at));
    }
    std::sort(settle.begin(), settle.end());

    RecoveryStats stats;
    stats.samples = settle.size();
    if (settle.empty()) return stats;
    const auto rank = [&](double q) {
        const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(
                                                               settle.size() - 1));
        return settle[i];
    };
    stats.p50_s = rank(0.50);
    stats.p99_s = rank(0.99);
    stats.max_s = settle.back();
    return stats;
}

}  // namespace lbrm::sim
