#include "sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace lbrm::sim {

DisScenario::DisScenario(ScenarioConfig config)
    : config_(std::move(config)), simulator_(),
      network_(simulator_, config_.seed, config_.sim),
      observer_(config_.observer ? config_.observer
                                 : std::make_shared<RecordingObserver>()),
      recorder_(dynamic_cast<RecordingObserver*>(observer_.get())),
      topology_(make_dis_topology(network_, config_.topology)),
      sampler_(network_.metrics()) {
    network_.finalize();
    // Every logger copy made below inherits the stream's sequence anchor.
    config_.logger_defaults.initial_seq = config_.initial_seq;

    const DisTopologySize size = dis_topology_size(config_.topology);
    hosts_.reserve(size.hosts);
    // Dormant mode keeps receiver_cores_ empty (receiver() wakes on demand
    // through ProtocolHost): at 10M nodes the eager index alone would be
    // 160 MB.
    if (!config_.dormant_receivers)
        receiver_cores_.reserve(static_cast<std::size_t>(config_.topology.sites) *
                                config_.topology.receivers_per_site);
    secondary_cores_.reserve(config_.topology.sites);

    wire_source();
    if (config_.use_regional_loggers)
        for (std::size_t r = 0; r < topology_.regions.size(); ++r)
            wire_region(topology_.regions[r], r);
    for (std::size_t s = 0; s < topology_.sites.size(); ++s)
        wire_site(topology_.sites[s], s);
    // Wiring pushes receivers in ascending node order already; sort anyway
    // so receiver() can binary-search unconditionally.
    std::sort(receiver_cores_.begin(), receiver_cores_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
}

void DisScenario::wire_region(const DisTopology::Region& region, std::size_t region_index) {
    SimHost& host = network_.attach_host(region.logger);
    hosts_.push_back(&host);

    LoggerConfig logger_config = config_.logger_defaults;
    logger_config.self = region.logger;
    logger_config.group = config_.group;
    logger_config.source = topology_.source;
    logger_config.role = LoggerRole::kSecondary;  // the recursion: same role, higher tier
    logger_config.upstream = topology_.primary;
    logger_config.participate_in_acking = false;  // site secondaries handle acking
    // Its clients are site secondaries at other sites: repairs must unicast.
    logger_config.site_multicast_repairs = false;

    AppHandlers handlers;
    const NodeId id = region.logger;
    handlers.on_notice = [obs = observer_.get(), id](TimePoint at, const Notice& n) {
        obs->on_notice(at, id, n);
    };
    regional_cores_.push_back(&host.protocol().add_logger(
        std::move(logger_config), config_.seed * 433 + region_index, handlers));
    network_.join(config_.group, region.logger);
}

void DisScenario::wire_source() {
    const GroupId group = config_.group;

    // --- sender -----------------------------------------------------------
    SimHost& source_host = network_.attach_host(topology_.source);
    hosts_.push_back(&source_host);

    SenderConfig sender_config;
    sender_config.self = topology_.source;
    sender_config.group = group;
    sender_config.primary_logger = topology_.primary;
    sender_config.replicas = topology_.replicas;
    sender_config.heartbeat = config_.heartbeat;
    sender_config.stat_ack = config_.stat_ack;
    sender_config.initial_seq = config_.initial_seq;
    sender_config.heartbeat_carries_small_data = config_.heartbeat_carries_small_data;
    if (config_.use_retrans_channel) {
        sender_config.retrans_channel = retrans_group();
        sender_config.retrans_channel_copies = config_.retrans_channel_copies;
        sender_config.retrans_channel_first_delay = config_.retrans_channel_first_delay;
    }

    AppHandlers sender_handlers;
    sender_handlers.on_notice = [obs = observer_.get(),
                                 id = topology_.source](TimePoint at, const Notice& n) {
        obs->on_notice(at, id, n);
    };
    sender_core_ =
        &source_host.protocol().add_sender(std::move(sender_config), sender_handlers);

    // --- primary logger -----------------------------------------------------
    SimHost& primary_host = network_.attach_host(topology_.primary);
    hosts_.push_back(&primary_host);

    LoggerConfig primary_config = config_.logger_defaults;
    primary_config.self = topology_.primary;
    primary_config.group = group;
    primary_config.source = topology_.source;
    primary_config.role = LoggerRole::kPrimary;
    primary_config.upstream = kNoNode;
    primary_config.replicas = topology_.replicas;
    primary_config.remulticast_request_threshold = config_.remulticast_request_threshold;

    AppHandlers primary_handlers;
    primary_handlers.on_notice = [obs = observer_.get(),
                                  id = topology_.primary](TimePoint at, const Notice& n) {
        obs->on_notice(at, id, n);
    };
    primary_core_ = &primary_host.protocol().add_logger(std::move(primary_config),
                                                        config_.seed * 7919 + 1,
                                                        primary_handlers);
    // The primary listens to the group stream too (it is reachable by
    // multicast), but its log authority comes from LogStore handoff.
    network_.join(group, topology_.primary);

    // --- replicas -------------------------------------------------------------
    std::uint64_t salt = 101;
    for (NodeId replica : topology_.replicas) {
        SimHost& host = network_.attach_host(replica);
        hosts_.push_back(&host);

        LoggerConfig replica_config = config_.logger_defaults;
        replica_config.self = replica;
        replica_config.group = group;
        replica_config.source = topology_.source;
        replica_config.role = LoggerRole::kReplica;
        replica_config.upstream = topology_.primary;

        AppHandlers handlers;
        handlers.on_notice = [obs = observer_.get(), replica](TimePoint at,
                                                              const Notice& n) {
            obs->on_notice(at, replica, n);
        };
        host.protocol().add_logger(std::move(replica_config), config_.seed * 104729 + salt++,
                                   handlers);
    }
}

void DisScenario::wire_site(const DisTopology::Site& site, std::size_t site_index) {
    const GroupId group = config_.group;

    NodeId local_logger = kNoNode;
    if (config_.use_secondary_loggers && site.secondary != kNoNode) {
        SimHost& host = network_.attach_host(site.secondary);
        hosts_.push_back(&host);

        LoggerConfig logger_config = config_.logger_defaults;
        logger_config.self = site.secondary;
        logger_config.group = group;
        logger_config.source = topology_.source;
        logger_config.role = LoggerRole::kSecondary;
        logger_config.upstream = topology_.primary;
        if (config_.use_regional_loggers) {
            // Three-level hierarchy: the site fetches from its region.
            if (const auto* region = topology_.region_of_site(site_index))
                logger_config.upstream = region->logger;
        }
        logger_config.remulticast_request_threshold = config_.remulticast_request_threshold;

        AppHandlers handlers;
        const NodeId id = site.secondary;
        handlers.on_notice = [obs = observer_.get(), id](TimePoint at, const Notice& n) {
            obs->on_notice(at, id, n);
        };
        secondary_cores_.push_back(&host.protocol().add_logger(
            std::move(logger_config), config_.seed * 31 + site_index, handlers));
        network_.join(group, site.secondary);
        local_logger = site.secondary;
    } else {
        secondary_cores_.push_back(nullptr);
    }

    // Dormancy needs a statically known logger at attach time: discovery
    // would multicast probes at start() and rotation runs a co-located
    // logger core, so both fall back to eager wiring.
    const bool dormant_mode = config_.dormant_receivers &&
                              !config_.discover_loggers &&
                              !config_.rotate_site_loggers;
    std::uint32_t receiver_index = 0;
    for (NodeId node : site.receivers) {
        SimHost& host = network_.attach_host(node);
        hosts_.push_back(&host);

        const bool joins_group =
            config_.active_receivers_per_site == 0 ||
            receiver_index < config_.active_receivers_per_site;
        ++receiver_index;

        if (dormant_mode) {
            if (!dormant_template_) {
                auto tmpl = std::make_shared<ProtocolHost::DormantReceiverTemplate>();
                ReceiverConfig cfg = config_.receiver_defaults;
                cfg.group = group;
                cfg.source = topology_.source;
                cfg.max_idle = config_.max_idle;
                cfg.heartbeat = config_.heartbeat;
                if (config_.use_retrans_channel)
                    cfg.retrans_channel = retrans_group();
                tmpl->config = std::move(cfg);
                tmpl->make_handlers = [this](NodeId self) {
                    AppHandlers h;
                    h.on_data = [this, self](TimePoint at, const DeliverData& d) {
                        observer_->on_delivery(at, self, d);
                        if (delivery_hook_) delivery_hook_(at, self, d);
                    };
                    h.on_notice = [this, self](TimePoint at, const Notice& n) {
                        observer_->on_notice(at, self, n);
                    };
                    return h;
                };
                dormant_template_ = std::move(tmpl);
            }
            // One shared watchdog deadline for every dormant receiver in
            // the scenario, so start() schedules a single sweep event in
            // place of one armed timer per record (~100 B each at 10^7).
            host.protocol().defer_dormant_watchdogs();
            host.protocol().add_dormant_receiver(
                dormant_template_, node,
                local_logger != kNoNode ? local_logger : topology_.primary,
                topology_.primary);
            if (joins_group) network_.join(group, node);
            continue;
        }

        if (config_.rotate_site_loggers) {
            // Rotating-logger mode (Section 2.2.1 alternative): this host
            // also runs a secondary logger that passively logs the stream
            // and serves NACKs whenever the rotation points here.
            LoggerConfig rotating = config_.logger_defaults;
            rotating.self = node;
            rotating.group = group;
            rotating.source = topology_.source;
            rotating.role = LoggerRole::kSecondary;
            rotating.upstream = topology_.primary;
            rotating.participate_in_acking = false;  // dedicated loggers ack
            rotating.answer_discovery = false;
            host.protocol().add_logger(std::move(rotating),
                                       config_.seed * 57 + node.value());
        }

        ReceiverConfig receiver_config = config_.receiver_defaults;
        receiver_config.self = node;
        receiver_config.group = group;
        receiver_config.source = topology_.source;
        receiver_config.max_idle = config_.max_idle;
        receiver_config.heartbeat = config_.heartbeat;
        if (config_.discover_loggers) {
            receiver_config.logger = kNoNode;
        } else {
            receiver_config.logger =
                local_logger != kNoNode ? local_logger : topology_.primary;
        }
        receiver_config.fallback_logger = topology_.primary;
        if (config_.rotate_site_loggers) {
            receiver_config.rotating_loggers = site.receivers;
            receiver_config.rotation_slot = config_.rotation_slot;
        }
        if (config_.use_retrans_channel) receiver_config.retrans_channel = retrans_group();

        AppHandlers handlers;
        handlers.on_data = [this, node](TimePoint at, const DeliverData& d) {
            observer_->on_delivery(at, node, d);
            if (delivery_hook_) delivery_hook_(at, node, d);
        };
        handlers.on_notice = [this, node](TimePoint at, const Notice& n) {
            observer_->on_notice(at, node, n);
        };
        receiver_cores_.emplace_back(
            node, &host.protocol().add_receiver(std::move(receiver_config), handlers));
        if (joins_group) network_.join(group, node);
    }
}

void DisScenario::start() {
    const TimePoint now = simulator_.now();
    for (SimHost* host : hosts_) host->protocol().start(now);
    if (dormant_template_) {
        // Deferred idle watchdogs (see defer_dormant_watchdogs): every
        // dormant receiver shares one template, hence one deadline.  One
        // sweep event walks the hosts in start() order, which is exactly
        // the order the per-record timers would have fired in.
        const TimePoint deadline =
            now + ReceiverCore::initial_idle_threshold(dormant_template_->config);
        simulator_.schedule_at(deadline, [this] {
            const TimePoint at = simulator_.now();
            for (SimHost* host : hosts_) host->protocol().fire_dormant_watchdogs(at);
        });
    }
}

void DisScenario::send_update(std::vector<std::uint8_t> payload) {
    SimHost* host = network_.host(topology_.source);
    host->protocol().send(simulator_.now(), payload);
    observer_->on_send(simulator_.now(), sender().last_seq());
    if (send_hook_) send_hook_(simulator_.now(), sender().last_seq());
}

void DisScenario::send_update(std::size_t size) {
    std::vector<std::uint8_t> payload(size);
    const std::size_t salt = recorder_ != nullptr ? recorder_->sends().size() : 0;
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31 + salt);
    send_update(std::move(payload));
}

SenderCore& DisScenario::sender() {
    if (sender_core_ == nullptr) throw std::logic_error("scenario: no sender");
    return *sender_core_;
}

LoggerCore& DisScenario::secondary_logger(std::size_t site) {
    LoggerCore* core = secondary_cores_.at(site);
    if (core == nullptr) throw std::logic_error("scenario: site has no secondary logger");
    return *core;
}

LoggerCore& DisScenario::regional_logger(std::size_t region) {
    return *regional_cores_.at(region);
}

ReceiverCore& DisScenario::receiver(NodeId node) {
    const auto it = std::lower_bound(
        receiver_cores_.begin(), receiver_cores_.end(), node,
        [](const auto& entry, NodeId id) { return entry.first < id; });
    if (it != receiver_cores_.end() && it->first == node) return *it->second;
    // Dormant mode keeps no eager index: ask the host, waking the core if
    // it has not materialised yet.
    if (SimHost* host = network_.host(node))
        if (ReceiverCore* core = host->protocol().receiver_for(node)) return *core;
    throw std::logic_error("scenario: unknown receiver");
}

std::size_t DisScenario::dormant_receiver_count() const {
    std::size_t n = 0;
    for (const SimHost* host : hosts_) n += host->protocol().dormant_count();
    return n;
}

const RecordingObserver& DisScenario::recorder() const {
    if (recorder_ == nullptr)
        throw std::logic_error(
            "scenario: record accessors need the default RecordingObserver");
    return *recorder_;
}

const std::vector<DeliveryRecord>& DisScenario::deliveries() const {
    return recorder().deliveries();
}

const std::vector<NoticeRecord>& DisScenario::notices() const {
    return recorder().notices();
}

const std::vector<SendRecord>& DisScenario::sends() const { return recorder().sends(); }

std::map<NodeId, TimePoint> DisScenario::delivery_times(SeqNum seq) const {
    std::map<NodeId, TimePoint> out;
    for (const DeliveryRecord& d : recorder().deliveries())
        if (d.seq == seq && !out.contains(d.node)) out.emplace(d.node, d.at);
    return out;
}

std::optional<TimePoint> DisScenario::sent_at(SeqNum seq) const {
    for (const SendRecord& s : recorder().sends())
        if (s.seq == seq) return s.at;
    return std::nullopt;
}

std::size_t DisScenario::notice_count(NoticeKind kind) const {
    std::size_t n = 0;
    for (const NoticeRecord& r : recorder().notices())
        if (r.kind == kind) ++n;
    return n;
}

void DisScenario::start_sampling(Duration interval) {
    if (interval <= Duration::zero())
        throw std::invalid_argument("scenario: sampling interval must be positive");
    if (!sample_series_added_) {
        sample_series_added_ = true;
        // The paper's health curves: delivered pps (Figure 8), heartbeat
        // bandwidth (Figure 4), NACK/repair rate (Figure 5)...
        sampler_.add_rate("proto.receiver.delivered");
        sampler_.add_rate("proto.receiver.recovered");
        sampler_.add_rate("proto.receiver.nacks_sent");
        sampler_.add_rate("proto.sender.data_sent");
        sampler_.add_rate("proto.sender.heartbeats_sent");
        sampler_.add_rate("proto.logger.served_unicast");
        sampler_.add_rate("proto.logger.served_multicast");
        sampler_.add_rate("host.send.HEARTBEAT");
        sampler_.add_rate("host.send.NACK");
        sampler_.add_rate("sim.deliveries");
        sampler_.add_rate("sim.drops_loss");
        sampler_.add_rate("sim.drops_queue");
        sampler_.add_level("sim.queue_pending");
    }
    // Bump the epoch so a tick already in the queue becomes a no-op instead
    // of a second competing rescheduling chain.
    ++sample_epoch_;
    sample_interval_ = interval;
    sampler_.set_interval(interval);
    schedule_sample_tick();
}

void DisScenario::stop_sampling() {
    ++sample_epoch_;  // orphan the in-flight tick event
    sample_interval_ = Duration::zero();
}

void DisScenario::schedule_sample_tick() {
    simulator_.schedule_in(
        sample_interval_, [this, epoch = sample_epoch_] {
            if (epoch != sample_epoch_) return;  // stopped or restarted
            sampler_.tick(simulator_.now());
            schedule_sample_tick();
        });
}

void DisScenario::clear_records() { observer_->clear(); }

}  // namespace lbrm::sim
