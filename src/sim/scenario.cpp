#include "sim/scenario.hpp"

#include <stdexcept>

namespace lbrm::sim {

DisScenario::DisScenario(ScenarioConfig config)
    : config_(std::move(config)), simulator_(),
      network_(simulator_, config_.seed, config_.sim),
      topology_(make_dis_topology(network_, config_.topology)) {
    network_.finalize();
    // Every logger copy made below inherits the stream's sequence anchor.
    config_.logger_defaults.initial_seq = config_.initial_seq;

    wire_source();
    if (config_.use_regional_loggers)
        for (std::size_t r = 0; r < topology_.regions.size(); ++r)
            wire_region(topology_.regions[r], r);
    for (std::size_t s = 0; s < topology_.sites.size(); ++s)
        wire_site(topology_.sites[s], s);
}

void DisScenario::wire_region(const DisTopology::Region& region, std::size_t region_index) {
    SimHost& host = network_.attach_host(region.logger);
    hosts_.push_back(&host);

    LoggerConfig logger_config = config_.logger_defaults;
    logger_config.self = region.logger;
    logger_config.group = config_.group;
    logger_config.source = topology_.source;
    logger_config.role = LoggerRole::kSecondary;  // the recursion: same role, higher tier
    logger_config.upstream = topology_.primary;
    logger_config.participate_in_acking = false;  // site secondaries handle acking
    // Its clients are site secondaries at other sites: repairs must unicast.
    logger_config.site_multicast_repairs = false;

    AppHandlers handlers;
    const NodeId id = region.logger;
    handlers.on_notice = [this, id](TimePoint at, const Notice& n) {
        notices_.push_back({id, n.kind, n.arg, at});
    };
    regional_cores_.push_back(&host.protocol().add_logger(
        std::move(logger_config), config_.seed * 433 + region_index, handlers));
    network_.join(config_.group, region.logger);
}

void DisScenario::wire_source() {
    const GroupId group = config_.group;

    // --- sender -----------------------------------------------------------
    SimHost& source_host = network_.attach_host(topology_.source);
    hosts_.push_back(&source_host);

    SenderConfig sender_config;
    sender_config.self = topology_.source;
    sender_config.group = group;
    sender_config.primary_logger = topology_.primary;
    sender_config.replicas = topology_.replicas;
    sender_config.heartbeat = config_.heartbeat;
    sender_config.stat_ack = config_.stat_ack;
    sender_config.initial_seq = config_.initial_seq;
    sender_config.heartbeat_carries_small_data = config_.heartbeat_carries_small_data;
    if (config_.use_retrans_channel) {
        sender_config.retrans_channel = retrans_group();
        sender_config.retrans_channel_copies = config_.retrans_channel_copies;
        sender_config.retrans_channel_first_delay = config_.retrans_channel_first_delay;
    }

    AppHandlers sender_handlers;
    sender_handlers.on_notice = [this](TimePoint at, const Notice& n) {
        notices_.push_back({topology_.source, n.kind, n.arg, at});
    };
    sender_core_ =
        &source_host.protocol().add_sender(std::move(sender_config), sender_handlers);

    // --- primary logger -----------------------------------------------------
    SimHost& primary_host = network_.attach_host(topology_.primary);
    hosts_.push_back(&primary_host);

    LoggerConfig primary_config = config_.logger_defaults;
    primary_config.self = topology_.primary;
    primary_config.group = group;
    primary_config.source = topology_.source;
    primary_config.role = LoggerRole::kPrimary;
    primary_config.upstream = kNoNode;
    primary_config.replicas = topology_.replicas;
    primary_config.remulticast_request_threshold = config_.remulticast_request_threshold;

    AppHandlers primary_handlers;
    primary_handlers.on_notice = [this](TimePoint at, const Notice& n) {
        notices_.push_back({topology_.primary, n.kind, n.arg, at});
    };
    primary_core_ = &primary_host.protocol().add_logger(std::move(primary_config),
                                                        config_.seed * 7919 + 1,
                                                        primary_handlers);
    // The primary listens to the group stream too (it is reachable by
    // multicast), but its log authority comes from LogStore handoff.
    network_.join(group, topology_.primary);

    // --- replicas -------------------------------------------------------------
    std::uint64_t salt = 101;
    for (NodeId replica : topology_.replicas) {
        SimHost& host = network_.attach_host(replica);
        hosts_.push_back(&host);

        LoggerConfig replica_config = config_.logger_defaults;
        replica_config.self = replica;
        replica_config.group = group;
        replica_config.source = topology_.source;
        replica_config.role = LoggerRole::kReplica;
        replica_config.upstream = topology_.primary;

        AppHandlers handlers;
        handlers.on_notice = [this, replica](TimePoint at, const Notice& n) {
            notices_.push_back({replica, n.kind, n.arg, at});
        };
        host.protocol().add_logger(std::move(replica_config), config_.seed * 104729 + salt++,
                                   handlers);
    }
}

void DisScenario::wire_site(const DisTopology::Site& site, std::size_t site_index) {
    const GroupId group = config_.group;

    NodeId local_logger = kNoNode;
    if (config_.use_secondary_loggers && site.secondary != kNoNode) {
        SimHost& host = network_.attach_host(site.secondary);
        hosts_.push_back(&host);

        LoggerConfig logger_config = config_.logger_defaults;
        logger_config.self = site.secondary;
        logger_config.group = group;
        logger_config.source = topology_.source;
        logger_config.role = LoggerRole::kSecondary;
        logger_config.upstream = topology_.primary;
        if (config_.use_regional_loggers) {
            // Three-level hierarchy: the site fetches from its region.
            if (const auto* region = topology_.region_of_site(site_index))
                logger_config.upstream = region->logger;
        }
        logger_config.remulticast_request_threshold = config_.remulticast_request_threshold;

        AppHandlers handlers;
        const NodeId id = site.secondary;
        handlers.on_notice = [this, id](TimePoint at, const Notice& n) {
            notices_.push_back({id, n.kind, n.arg, at});
        };
        secondary_cores_.push_back(&host.protocol().add_logger(
            std::move(logger_config), config_.seed * 31 + site_index, handlers));
        network_.join(group, site.secondary);
        local_logger = site.secondary;
    } else {
        secondary_cores_.push_back(nullptr);
    }

    for (NodeId node : site.receivers) {
        SimHost& host = network_.attach_host(node);
        hosts_.push_back(&host);

        if (config_.rotate_site_loggers) {
            // Rotating-logger mode (Section 2.2.1 alternative): this host
            // also runs a secondary logger that passively logs the stream
            // and serves NACKs whenever the rotation points here.
            LoggerConfig rotating = config_.logger_defaults;
            rotating.self = node;
            rotating.group = group;
            rotating.source = topology_.source;
            rotating.role = LoggerRole::kSecondary;
            rotating.upstream = topology_.primary;
            rotating.participate_in_acking = false;  // dedicated loggers ack
            rotating.answer_discovery = false;
            host.protocol().add_logger(std::move(rotating),
                                       config_.seed * 57 + node.value());
        }

        ReceiverConfig receiver_config = config_.receiver_defaults;
        receiver_config.self = node;
        receiver_config.group = group;
        receiver_config.source = topology_.source;
        receiver_config.max_idle = config_.max_idle;
        receiver_config.heartbeat = config_.heartbeat;
        if (config_.discover_loggers) {
            receiver_config.logger = kNoNode;
        } else {
            receiver_config.logger =
                local_logger != kNoNode ? local_logger : topology_.primary;
        }
        receiver_config.fallback_logger = topology_.primary;
        if (config_.rotate_site_loggers) {
            receiver_config.rotating_loggers = site.receivers;
            receiver_config.rotation_slot = config_.rotation_slot;
        }
        if (config_.use_retrans_channel) receiver_config.retrans_channel = retrans_group();

        AppHandlers handlers;
        handlers.on_data = [this, node](TimePoint at, const DeliverData& d) {
            deliveries_.push_back({node, d.seq, at, d.recovered, d.payload});
        };
        handlers.on_notice = [this, node](TimePoint at, const Notice& n) {
            notices_.push_back({node, n.kind, n.arg, at});
        };
        receiver_cores_[node] =
            &host.protocol().add_receiver(std::move(receiver_config), handlers);
        network_.join(group, node);
    }
}

void DisScenario::start() {
    const TimePoint now = simulator_.now();
    for (SimHost* host : hosts_) host->protocol().start(now);
}

void DisScenario::send_update(std::vector<std::uint8_t> payload) {
    SimHost* host = network_.host(topology_.source);
    host->protocol().send(simulator_.now(), payload);
    sends_.push_back({sender().last_seq(), simulator_.now()});
}

void DisScenario::send_update(std::size_t size) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31 + sends_.size());
    send_update(std::move(payload));
}

SenderCore& DisScenario::sender() {
    if (sender_core_ == nullptr) throw std::logic_error("scenario: no sender");
    return *sender_core_;
}

LoggerCore& DisScenario::secondary_logger(std::size_t site) {
    LoggerCore* core = secondary_cores_.at(site);
    if (core == nullptr) throw std::logic_error("scenario: site has no secondary logger");
    return *core;
}

LoggerCore& DisScenario::regional_logger(std::size_t region) {
    return *regional_cores_.at(region);
}

ReceiverCore& DisScenario::receiver(NodeId node) {
    auto it = receiver_cores_.find(node);
    if (it == receiver_cores_.end()) throw std::logic_error("scenario: unknown receiver");
    return *it->second;
}

std::map<NodeId, TimePoint> DisScenario::delivery_times(SeqNum seq) const {
    std::map<NodeId, TimePoint> out;
    for (const DeliveryRecord& d : deliveries_)
        if (d.seq == seq && !out.contains(d.node)) out.emplace(d.node, d.at);
    return out;
}

std::optional<TimePoint> DisScenario::sent_at(SeqNum seq) const {
    for (const SendRecord& s : sends_)
        if (s.seq == seq) return s.at;
    return std::nullopt;
}

std::size_t DisScenario::notice_count(NoticeKind kind) const {
    std::size_t n = 0;
    for (const NoticeRecord& r : notices_)
        if (r.kind == kind) ++n;
    return n;
}

void DisScenario::clear_records() {
    deliveries_.clear();
    notices_.clear();
    sends_.clear();
}

}  // namespace lbrm::sim
