#include "sim/topology.hpp"

namespace lbrm::sim {

std::vector<NodeId> DisTopology::all_receivers() const {
    std::vector<NodeId> out;
    for (const Site& site : sites)
        out.insert(out.end(), site.receivers.begin(), site.receivers.end());
    return out;
}

const DisTopology::Region* DisTopology::region_of_site(std::size_t site_index) const {
    for (const Region& region : regions)
        for (std::size_t s : region.site_indices)
            if (s == site_index) return &region;
    return nullptr;
}

DisTopologySize dis_topology_size(const DisTopologySpec& spec) {
    const std::size_t region_count =
        spec.sites_per_region > 0
            ? (spec.sites + spec.sites_per_region - 1) / spec.sites_per_region
            : 0;
    const std::size_t secondaries = spec.secondary_logger_per_site ? 1 : 0;
    DisTopologySize size;
    // backbone + source router + source + primary, replicas, region
    // router + logger pairs, then per site: router + secondary? + receivers.
    size.nodes = 3 + spec.replicas + 2 * region_count +
                 static_cast<std::size_t>(spec.sites) *
                     (1 + secondaries + spec.receivers_per_site);
    // Every node except the backbone hub adds exactly one cable.
    size.directed_links = 2 * (size.nodes - 1);
    // Endpoints the scenario may attach: source + primary, replicas,
    // regional loggers, site secondaries and receivers (routers and the
    // hub carry no protocol host).
    size.hosts = 2 + spec.replicas + region_count +
                 static_cast<std::size_t>(spec.sites) *
                     (secondaries + spec.receivers_per_site);
    return size;
}

DisTopology make_dis_topology(Network& network, const DisTopologySpec& spec) {
    DisTopology topo;

    // Pre-size node and link storage so 100k-node benches do not pay
    // vector regrowth during construction.
    const DisTopologySize size = dis_topology_size(spec);
    network.reserve(size.nodes, size.directed_links);

    const LinkSpec lan{spec.lan_delay, spec.lan_bandwidth_bps, Duration::zero()};
    const LinkSpec tail{spec.tail_delay, spec.tail_bandwidth_bps, spec.tail_queue_limit};
    const LinkSpec backbone_link{spec.backbone_delay, spec.backbone_bandwidth_bps,
                                 Duration::zero()};

    // Site id 0 is the source site; receiver sites are 1..N.
    const SiteId source_site{0};
    topo.backbone = network.add_node(SiteId{0xFFFF}, /*is_router=*/true);

    topo.source_router = network.add_node(source_site, /*is_router=*/true);
    network.add_link(topo.source_router, topo.backbone, backbone_link);

    topo.source = network.add_node(source_site);
    network.add_link(topo.source, topo.source_router, lan);

    topo.primary = network.add_node(source_site);
    network.add_link(topo.primary, topo.source_router, lan);

    for (std::uint32_t r = 0; r < spec.replicas; ++r) {
        const NodeId replica = network.add_node(source_site);
        network.add_link(replica, topo.source_router, lan);
        topo.replicas.push_back(replica);
    }

    // Optional regional tier (Section 7 multi-level logging hierarchy):
    // region routers sit between the sites' tail circuits and the backbone,
    // each with a regional logging server attached.
    const LinkSpec region_link{spec.region_delay, spec.region_bandwidth_bps,
                               Duration::zero()};
    if (spec.sites_per_region > 0) {
        const std::uint32_t region_count =
            (spec.sites + spec.sites_per_region - 1) / spec.sites_per_region;
        for (std::uint32_t r = 0; r < region_count; ++r) {
            DisTopology::Region region;
            const SiteId region_site{0x8000u + r};
            region.router = network.add_node(region_site, /*is_router=*/true);
            network.add_link(region.router, topo.backbone, backbone_link);
            region.logger = network.add_node(region_site);
            network.add_link(region.logger, region.router, region_link);
            topo.regions.push_back(std::move(region));
        }
    }

    for (std::uint32_t s = 0; s < spec.sites; ++s) {
        DisTopology::Site site;
        site.id = SiteId{s + 1};
        site.router = network.add_node(site.id, /*is_router=*/true);
        // The tail circuit is the bottleneck between the site and the WAN
        // (or its region's router when the regional tier exists).
        if (spec.sites_per_region > 0) {
            const std::size_t region_index = s / spec.sites_per_region;
            network.add_link(site.router, topo.regions[region_index].router, tail);
            topo.regions[region_index].site_indices.push_back(s);
        } else {
            network.add_link(site.router, topo.backbone, tail);
        }

        site.secondary = kNoNode;
        if (spec.secondary_logger_per_site) {
            site.secondary = network.add_node(site.id);
            network.add_link(site.secondary, site.router, lan);
        }

        site.receivers.reserve(spec.receivers_per_site);
        for (std::uint32_t h = 0; h < spec.receivers_per_site; ++h) {
            const NodeId receiver = network.add_node(site.id);
            network.add_link(receiver, site.router, lan);
            site.receivers.push_back(receiver);
        }
        topo.sites.push_back(std::move(site));
    }

    return topo;
}

}  // namespace lbrm::sim
