// Pluggable scenario observation (DESIGN.md "Scale engineering").
//
// DisScenario reports every application-visible event -- data deliveries,
// protocol notices, source sends -- to one ScenarioObserver.  The default
// RecordingObserver keeps the full per-event record vectors the integration
// tests and benches introspect (payloads included), which is O(events *
// payload) memory: exactly right at test scale and fatal at a million
// receivers.  CountingObserver is the scale-mode alternative: O(1) memory
// per node (a per-node delivery counter plus global tallies), so a
// million-node scenario can run real protocol traffic without the
// observation dwarfing the simulation itself.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/actions.hpp"

namespace lbrm::sim {

struct DeliveryRecord {
    NodeId node;
    SeqNum seq;
    TimePoint at{};
    bool recovered = false;
    std::vector<std::uint8_t> payload;
};
struct NoticeRecord {
    NodeId node;
    NoticeKind kind{};
    std::uint64_t arg = 0;
    TimePoint at{};
};
struct SendRecord {
    SeqNum seq;
    TimePoint at{};
};

/// Receives every application-visible scenario event.  Implementations
/// must not re-enter the scenario (they run inside core action execution).
class ScenarioObserver {
public:
    virtual ~ScenarioObserver() = default;
    virtual void on_delivery(TimePoint at, NodeId node, const DeliverData& data) = 0;
    virtual void on_notice(TimePoint at, NodeId node, const Notice& notice) = 0;
    virtual void on_send(TimePoint at, SeqNum seq) = 0;
    /// Forget everything observed so far (DisScenario::clear_records).
    virtual void clear() = 0;
};

/// The default observer: full per-event records, payloads included.
class RecordingObserver final : public ScenarioObserver {
public:
    void on_delivery(TimePoint at, NodeId node, const DeliverData& data) override {
        deliveries_.push_back({node, data.seq, at, data.recovered, data.payload});
    }
    void on_notice(TimePoint at, NodeId node, const Notice& notice) override {
        notices_.push_back({node, notice.kind, notice.arg, at});
    }
    void on_send(TimePoint at, SeqNum seq) override { sends_.push_back({seq, at}); }
    void clear() override {
        deliveries_.clear();
        notices_.clear();
        sends_.clear();
    }

    [[nodiscard]] const std::vector<DeliveryRecord>& deliveries() const {
        return deliveries_;
    }
    [[nodiscard]] const std::vector<NoticeRecord>& notices() const { return notices_; }
    [[nodiscard]] const std::vector<SendRecord>& sends() const { return sends_; }

private:
    std::vector<DeliveryRecord> deliveries_;
    std::vector<NoticeRecord> notices_;
    std::vector<SendRecord> sends_;
};

/// Constant-memory observer for scale runs: per-node delivery counters and
/// global tallies only; payload bytes are counted, never stored.
class CountingObserver final : public ScenarioObserver {
public:
    void on_delivery(TimePoint at, NodeId node, const DeliverData& data) override {
        const std::size_t i = node.value() - 1;
        if (per_node_deliveries_.size() <= i) per_node_deliveries_.resize(i + 1, 0);
        ++per_node_deliveries_[i];
        ++deliveries_;
        if (data.recovered) ++recovered_;
        payload_bytes_ += data.payload.size();
        last_delivery_at_ = at;
    }
    void on_notice(TimePoint, NodeId, const Notice& notice) override {
        const auto k = static_cast<std::size_t>(notice.kind);
        if (k < notice_counts_.size()) ++notice_counts_[k];
        ++notices_;
    }
    void on_send(TimePoint, SeqNum) override { ++sends_; }
    void clear() override {
        std::fill(per_node_deliveries_.begin(), per_node_deliveries_.end(), 0u);
        notice_counts_.fill(0);
        deliveries_ = recovered_ = notices_ = sends_ = payload_bytes_ = 0;
        last_delivery_at_ = TimePoint{};
    }

    [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
    [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
    [[nodiscard]] std::uint64_t notices() const { return notices_; }
    [[nodiscard]] std::uint64_t sends() const { return sends_; }
    [[nodiscard]] std::uint64_t payload_bytes() const { return payload_bytes_; }
    [[nodiscard]] TimePoint last_delivery_at() const { return last_delivery_at_; }
    [[nodiscard]] std::uint64_t notice_count(NoticeKind kind) const {
        const auto k = static_cast<std::size_t>(kind);
        return k < notice_counts_.size() ? notice_counts_[k] : 0;
    }
    /// Deliveries seen by `node` (0 for nodes never delivered to).
    [[nodiscard]] std::uint32_t deliveries_at(NodeId node) const {
        const std::size_t i = node.value() - 1;
        return i < per_node_deliveries_.size() ? per_node_deliveries_[i] : 0;
    }
    /// Nodes with at least `min` deliveries (scale-run coverage checks).
    [[nodiscard]] std::size_t nodes_with_at_least(std::uint32_t min) const {
        std::size_t n = 0;
        for (const std::uint32_t c : per_node_deliveries_)
            if (c >= min) ++n;
        return n;
    }

private:
    std::vector<std::uint32_t> per_node_deliveries_;
    std::array<std::uint64_t, 32> notice_counts_{};
    std::uint64_t deliveries_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t notices_ = 0;
    std::uint64_t sends_ = 0;
    std::uint64_t payload_bytes_ = 0;
    TimePoint last_delivery_at_{};
};

}  // namespace lbrm::sim
