// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (a monotonic tiebreak
// sequence number), which makes whole-network simulations bit-reproducible
// for a given seed -- essential for regression tests that assert exact
// packet counts.
//
// Layout is allocation-light: the heap itself is a flat binary heap of
// small POD entries (timestamp, tiebreak, slot), while the callbacks live
// in a slab recycled through a free list, so steady-state scheduling does
// no per-event container allocation (std::function may still heap-allocate
// large captures; hot-path callers keep captures within the small-buffer
// size).
//
// Cancellation is O(1) and bounded: an event id encodes its slab slot plus
// a per-slot generation counter.  Cancelling marks the slot; an id whose
// generation no longer matches (the event already fired, or the slot was
// recycled) is a no-op, so there is no ever-growing cancelled-id set.
//
// Recurring events (create_recurring / arm_recurring) keep their slot and
// callback across firings, so a self-rescheduling consumer -- the per-link
// burst drain, see link.hpp -- pays one heap push per firing and nothing
// else.  Combined with reserve_tiebreak() they can reproduce the exact
// (timestamp, tiebreak) position an ordinary schedule() would have used,
// which is what keeps batched and unbatched runs bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"

namespace lbrm::sim {

class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Enqueue `fn` to run at absolute time `at`; returns a cancellable id.
    /// Ids are never zero, so 0 can serve as callers' "no event" sentinel.
    std::uint64_t schedule(TimePoint at, Callback fn) {
        const std::uint32_t slot = acquire_slot();
        Slot& s = slots_[slot];
        s.fn = std::move(fn);
        s.cancelled = false;
        ++scheduled_;
        heap_.push_back(Entry{at, next_seq_++, slot});
        sift_up(heap_.size() - 1);
        return make_id(s.generation, slot);
    }

    /// Reserve the tiebreak sequence the next schedule() call would have
    /// used, without scheduling anything.  A recurring event armed later
    /// with this value fires in exactly the position an ordinary schedule()
    /// at the reservation point would have -- the mechanism that lets link
    /// burst batching keep pop order bit-identical to the unbatched path.
    [[nodiscard]] std::uint64_t reserve_tiebreak() { return next_seq_++; }

    /// Create a recurring (self-rescheduling) event: one slot and one
    /// callback, allocated once, fired every time the slot is armed.  The
    /// slot is never recycled and the callback is invoked by copy, so
    /// re-arming does no slab or std::function churn (callers keep captures
    /// within the small-buffer size).  Returns a slot handle for
    /// arm_recurring(); the event starts disarmed.
    std::uint32_t create_recurring(Callback fn) {
        const std::uint32_t slot = acquire_slot();
        Slot& s = slots_[slot];
        s.fn = std::move(fn);
        s.cancelled = false;
        s.recurring = true;
        return slot;
    }

    /// Arm a recurring slot to fire at `at` with an explicit tiebreak from
    /// reserve_tiebreak().  Pre: the slot is not currently armed (at most
    /// one heap entry per recurring slot); the callback re-arms on fire.
    void arm_recurring(std::uint32_t slot, TimePoint at, std::uint64_t tiebreak) {
        ++recurring_arms_;
        heap_.push_back(Entry{at, tiebreak, slot});
        sift_up(heap_.size() - 1);
    }

    /// Cancel a scheduled event.  Ids of events that already fired (or were
    /// already cancelled) are ignored; repeated cancels are harmless.
    void cancel(std::uint64_t id) {
        const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
        const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
        if (slot < slots_.size() && slots_[slot].generation == generation)
            slots_[slot].cancelled = true;
    }

    [[nodiscard]] bool empty() {
        purge();
        return heap_.empty();
    }

    /// Time of the next runnable event.  Pre: !empty().
    [[nodiscard]] TimePoint next_time() {
        purge();
        return heap_.front().at;
    }

    struct Popped {
        TimePoint at;
        Callback fn;
    };

    /// Pop the next runnable event.  Pre: !empty().
    Popped pop() {
        purge();
        const Entry top = heap_.front();
        Slot& s = slots_[top.slot];
        if (s.recurring) {
            // The slot stays live (and keeps its callback) for re-arming.
            pop_heap();
            return Popped{top.at, s.fn};
        }
        Popped out{top.at, std::move(s.fn)};
        release_slot(top.slot);
        pop_heap();
        return out;
    }

    /// Scheduled (possibly cancelled) entries still in the heap.
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    /// One-shot events ever scheduled (slab allocations; recurring arms are
    /// counted separately).  The batching bench reports this per delivered
    /// packet.
    [[nodiscard]] std::uint64_t scheduled_total() const { return scheduled_; }
    [[nodiscard]] std::uint64_t recurring_arms() const { return recurring_arms_; }

    /// Callback slots ever allocated (bounded by the peak number of
    /// simultaneously pending events, NOT by the total scheduled or
    /// cancelled over the queue's lifetime).  Exposed for tests.
    [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }

private:
    struct Entry {
        TimePoint at;
        std::uint64_t seq;   ///< insertion-order tiebreak for equal timestamps
        std::uint32_t slot;  ///< index into slots_
    };

    struct Slot {
        Callback fn;
        std::uint32_t generation = 0;  ///< bumped on release; 0 is never live
        bool cancelled = false;
        bool recurring = false;  ///< slot persists across pops (never recycled)
    };

    [[nodiscard]] static std::uint64_t make_id(std::uint32_t generation, std::uint32_t slot) {
        return (static_cast<std::uint64_t>(generation) << 32) | slot;
    }

    [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.seq < b.seq;
    }

    std::uint32_t acquire_slot() {
        if (!free_.empty()) {
            const std::uint32_t slot = free_.back();
            free_.pop_back();
            return slot;
        }
        slots_.emplace_back();
        slots_.back().generation = 1;
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    void release_slot(std::uint32_t slot) {
        Slot& s = slots_[slot];
        s.fn = nullptr;
        s.cancelled = false;
        s.recurring = false;
        ++s.generation;  // invalidates any outstanding id for this slot
        free_.push_back(slot);
    }

    /// Drop cancelled events from the top so empty()/next_time()/pop() only
    /// ever see runnable work.
    void purge() {
        while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
            release_slot(heap_.front().slot);
            pop_heap();
        }
    }

    void pop_heap() {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
    }

    void sift_up(std::size_t i) {
        const Entry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!earlier(e, heap_[parent])) break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void sift_down(std::size_t i) {
        const Entry e = heap_[i];
        const std::size_t n = heap_.size();
        while (true) {
            std::size_t child = 2 * i + 1;
            if (child >= n) break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
            if (!earlier(heap_[child], e)) break;
            heap_[i] = heap_[child];
            i = child;
        }
        heap_[i] = e;
    }

    std::vector<Entry> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t scheduled_ = 0;
    std::uint64_t recurring_arms_ = 0;
};

}  // namespace lbrm::sim
