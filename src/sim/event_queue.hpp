// Deterministic discrete-event queue.
//
// Events at equal timestamps fire in insertion order (a monotonic tiebreak
// id), which makes whole-network simulations bit-reproducible for a given
// seed -- essential for regression tests that assert exact packet counts.
// Cancellation is lazy: cancelled ids are skipped when they surface.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace lbrm::sim {

class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Enqueue `fn` to run at absolute time `at`; returns a cancellable id.
    std::uint64_t schedule(TimePoint at, Callback fn) {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{at, id, std::move(fn)});
        return id;
    }

    void cancel(std::uint64_t id) {
        if (id != 0 && id < next_id_) cancelled_.insert(id);
    }

    [[nodiscard]] bool empty() {
        purge();
        return heap_.empty();
    }

    /// Time of the next runnable event.  Pre: !empty().
    [[nodiscard]] TimePoint next_time() {
        purge();
        return heap_.top().at;
    }

    struct Popped {
        TimePoint at;
        Callback fn;
    };

    /// Pop the next runnable event.  Pre: !empty().
    Popped pop() {
        purge();
        Popped out{heap_.top().at, std::move(heap_.top().fn)};
        heap_.pop();
        return out;
    }

    /// Scheduled (possibly cancelled) entries still in the heap.
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

private:
    struct Entry {
        TimePoint at;
        std::uint64_t id;
        mutable Callback fn;  // moved out on pop; never run twice
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.id > b.id;
        }
    };

    void purge() {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end()) break;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::uint64_t next_id_ = 1;
};

}  // namespace lbrm::sim
