#include "sim/sim_host.hpp"

#include "sim/network.hpp"

namespace lbrm::sim {

SimHost::SimHost(Network& network, Simulator& simulator, NodeId self)
    : network_(network), simulator_(simulator), self_(self), protocol_(*this, *this) {
    protocol_.bind_metrics(network.metrics());
}

void SimHost::deliver(TimePoint now, const Packet& packet) {
    protocol_.on_packet(now, packet);
}

void SimHost::send_unicast(NodeId to, const Packet& packet) {
    network_.unicast(self_, to, packet);
}

void SimHost::send_multicast(const Packet& packet, McastScope scope) {
    network_.multicast(self_, packet, scope);
}

void SimHost::join_group(GroupId group) { network_.join(group, self_); }

void SimHost::leave_group(GroupId group) { network_.leave(group, self_); }

std::size_t SimHost::find_timer(std::uint32_t tag, TimerId id) const {
    for (std::size_t i = 0; i < timers_.size(); ++i)
        if (timers_[i].tag == tag && timers_[i].id == id) return i;
    return timers_.size();
}

void SimHost::erase_timer(std::uint32_t tag, TimerId id) {
    const std::size_t i = find_timer(tag, id);
    if (i == timers_.size()) return;
    timers_[i] = timers_.back();
    timers_.pop_back();
}

void SimHost::arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) {
    // Re-arm in place: cancel the old event first, then schedule -- the
    // same Simulator call order the previous map-based table used, so event
    // ids (and hence tiebreak order) are unchanged.
    const std::size_t i = find_timer(core_tag, id);
    if (i != timers_.size()) {
        simulator_.cancel(timers_[i].event);
        timers_[i] = timers_.back();
        timers_.pop_back();
    }
    // Pack the closure into std::function's 16-byte small buffer when the
    // timer fits: [this (8) | arg32 (4) | tag24|kind8 (4)].  The naive
    // [this, core_tag, id] capture is 28 bytes and heap-allocates -- at
    // 10M armed idle watchdogs that is one malloc per host.  Every shipped
    // timer has arg < 2^32 (sequence numbers) and tag < 2^24, but the fat
    // fallback keeps exotic values correct.  The closure's shape cannot
    // affect simulation order: same schedule call, same deadline.
    std::uint64_t event;
    if (id.arg <= 0xFFFFFFFFull && core_tag < (1u << 24)) {
        const auto arg32 = static_cast<std::uint32_t>(id.arg);
        const std::uint32_t tk =
            (core_tag << 8) | static_cast<std::uint32_t>(id.kind);
        event = simulator_.schedule_at(deadline, [this, arg32, tk] {
            const std::uint32_t tag = tk >> 8;
            const TimerId tid{static_cast<TimerKind>(tk & 0xFFu), arg32};
            erase_timer(tag, tid);
            protocol_.on_timer(simulator_.now(), tag, tid);
        });
    } else {
        event = simulator_.schedule_at(deadline, [this, core_tag, id] {
            erase_timer(core_tag, id);
            protocol_.on_timer(simulator_.now(), core_tag, id);
        });
    }
    timers_.push_back(TimerEnt{core_tag, id, event});
}

void SimHost::cancel(std::uint32_t core_tag, TimerId id) {
    const std::size_t i = find_timer(core_tag, id);
    if (i == timers_.size()) return;
    simulator_.cancel(timers_[i].event);
    timers_[i] = timers_.back();
    timers_.pop_back();
}

}  // namespace lbrm::sim
