#include "sim/sim_host.hpp"

#include "sim/network.hpp"

namespace lbrm::sim {

SimHost::SimHost(Network& network, Simulator& simulator, NodeId self)
    : network_(network), simulator_(simulator), self_(self),
      protocol_(std::make_unique<ProtocolHost>(*this, *this)) {}

void SimHost::deliver(TimePoint now, const Packet& packet) {
    protocol_->on_packet(now, packet);
}

void SimHost::send_unicast(NodeId to, const Packet& packet) {
    network_.unicast(self_, to, packet);
}

void SimHost::send_multicast(const Packet& packet, McastScope scope) {
    network_.multicast(self_, packet, scope);
}

void SimHost::join_group(GroupId group) { network_.join(group, self_); }

void SimHost::leave_group(GroupId group) { network_.leave(group, self_); }

void SimHost::arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) {
    const TimerKey key{core_tag, id};
    if (auto it = timers_.find(key); it != timers_.end()) {
        simulator_.cancel(it->second);
        timers_.erase(it);
    }
    const std::uint64_t event = simulator_.schedule_at(deadline, [this, key] {
        timers_.erase(key);
        protocol_->on_timer(simulator_.now(), key.tag, key.id);
    });
    timers_.emplace(key, event);
}

void SimHost::cancel(std::uint32_t core_tag, TimerId id) {
    const TimerKey key{core_tag, id};
    if (auto it = timers_.find(key); it != timers_.end()) {
        simulator_.cancel(it->second);
        timers_.erase(it);
    }
}

}  // namespace lbrm::sim
