// Per-link packet-loss models.
//
// The paper analyses two regimes: isolated single-packet loss and "burst"
// congestion periods during which a host receives nothing (Section 2.1.1).
// BurstSchedule reproduces that model exactly (deterministic loss windows);
// Bernoulli and Gilbert-Elliott cover random and bursty stochastic loss for
// the wider experiments.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace lbrm::sim {

class LossModel {
public:
    virtual ~LossModel() = default;
    /// True if the packet crossing the link at `now` should be dropped.
    virtual bool drop(Rng& rng, TimePoint now) = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
public:
    bool drop(Rng&, TimePoint) override { return false; }
};

/// Independent loss with fixed probability.
class BernoulliLoss final : public LossModel {
public:
    explicit BernoulliLoss(double p) : p_(p) {}
    bool drop(Rng& rng, TimePoint) override { return rng.bernoulli(p_); }

private:
    double p_;
};

/// Two-state Markov (Gilbert-Elliott) loss: a "good" state with low loss and
/// a "bad" state with high loss; state transitions are evaluated per packet.
class GilbertElliottLoss final : public LossModel {
public:
    GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good,
                       double loss_bad)
        : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good),
          loss_bad_(loss_bad) {}

    bool drop(Rng& rng, TimePoint) override {
        if (bad_) {
            if (rng.bernoulli(p_bg_)) bad_ = false;
        } else {
            if (rng.bernoulli(p_gb_)) bad_ = true;
        }
        return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
    }

    [[nodiscard]] bool in_bad_state() const { return bad_; }

private:
    double p_gb_, p_bg_, loss_good_, loss_bad_;
    bool bad_ = false;
};

/// Deterministic burst windows: every packet inside [start, end) is lost.
/// This is the Section 2.1.1 "burst model of congestion, parameterized in
/// terms of its duration".
class BurstSchedule final : public LossModel {
public:
    struct Window {
        TimePoint start;
        TimePoint end;
    };

    explicit BurstSchedule(std::vector<Window> windows) : windows_(std::move(windows)) {}

    bool drop(Rng&, TimePoint now) override {
        for (const Window& w : windows_)
            if (now >= w.start && now < w.end) return true;
        return false;
    }

private:
    std::vector<Window> windows_;
};

}  // namespace lbrm::sim
