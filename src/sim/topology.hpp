// Builders for the paper's network topologies.
//
// Figure 1 of the paper: site LANs joined to a wide-area backbone by
// bottleneck "tail circuits" (T1).  The defaults reproduce the paper's
// Section 2.2.2 latency figures -- a secondary logger "a few miles away" at
// 3-4 ms RTT and a primary logger "1,500 miles away" at ~80 ms RTT -- and
// its canonical DIS scenario: 1,000 receivers as 50 sites x 20 receivers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "sim/network.hpp"

namespace lbrm::sim {

struct DisTopologySpec {
    std::uint32_t sites = 50;            ///< receiver sites (Section 2.2.2)
    std::uint32_t receivers_per_site = 20;
    bool secondary_logger_per_site = true;
    std::uint32_t replicas = 1;          ///< primary-log replicas (Section 2.2.3)

    // Latency budget (one way): LAN hop 0.5 ms, tail 1 ms, backbone 38 ms
    // => intra-site RTT ~3-4 ms, cross-WAN RTT ~80 ms, as measured by the
    // authors with ping.
    Duration lan_delay = micros(500);
    Duration tail_delay = millis(1);
    Duration backbone_delay = millis(38);

    double lan_bandwidth_bps = 10e6;      ///< 10 Mb/s Ethernet (Section 3)
    double tail_bandwidth_bps = 1.544e6;  ///< T1 tail circuit (Figure 1)
    double backbone_bandwidth_bps = 45e6; ///< T3 backbone

    /// Drop-tail bound on queueing delay at the tail circuits.
    Duration tail_queue_limit = millis(200);

    /// Section 7 extension ("a multi-level hierarchy of logging servers"):
    /// when nonzero, sites are grouped into regions of this many sites;
    /// each region gets a router between its sites' tail circuits and the
    /// backbone, plus a regional logging server.  0 = flat topology.
    std::uint32_t sites_per_region = 0;
    /// Metro-distance link: region router <-> backbone and regional logger.
    Duration region_delay = millis(5);
    double region_bandwidth_bps = 10e6;
};

/// The constructed topology, with every interesting node named.
struct DisTopology {
    NodeId backbone;       ///< WAN hub
    NodeId source;         ///< data source host (site 0)
    NodeId source_router;  ///< site-0 router
    NodeId primary;        ///< primary logging server host (site 0)
    std::vector<NodeId> replicas;  ///< replica logger hosts (site 0)

    struct Site {
        SiteId id;
        NodeId router;
        NodeId secondary;  ///< kNoNode when the spec disables secondaries
        std::vector<NodeId> receivers;
    };
    std::vector<Site> sites;

    /// Regional tier (empty in the flat topology).
    struct Region {
        NodeId router;
        NodeId logger;
        std::vector<std::size_t> site_indices;  ///< indices into `sites`
    };
    std::vector<Region> regions;

    /// Region containing site `site_index`; nullptr in the flat topology.
    [[nodiscard]] const Region* region_of_site(std::size_t site_index) const;

    /// All receiver node ids across all sites.
    [[nodiscard]] std::vector<NodeId> all_receivers() const;
};

/// Exact sizes of the topology a spec will build, computed without building
/// it -- Network::reserve and DisScenario pre-size their storage from this,
/// so million-node construction never pays vector regrowth.
struct DisTopologySize {
    std::size_t nodes = 0;
    std::size_t directed_links = 0;  ///< two per cable
    std::size_t hosts = 0;  ///< protocol endpoints DisScenario may attach
};
[[nodiscard]] DisTopologySize dis_topology_size(const DisTopologySpec& spec);

/// Build the Figure-1 topology into `network`.  Call network.finalize()
/// afterwards (the builder leaves that to the caller so extra links can be
/// added first).
DisTopology make_dis_topology(Network& network, const DisTopologySpec& spec);

}  // namespace lbrm::sim
