// The simulated internetwork.
//
// Owns nodes, directed links, shortest-path routing, multicast group
// membership and the per-hop packet transport.  Multicast follows a
// source-rooted shortest-path tree with one copy per tree edge -- so the
// per-link statistics reflect true multicast economics (one packet on the
// shared tail circuit, not twenty).  Scoped multicast (Section 2.2.1's
// TTL-limited repairs and discovery rings) prunes the tree: site scope never
// leaves the sender's site; region scope is hop-limited.
//
// Protocol endpoints attach as SimHost objects (see sim_host.hpp); the
// network delivers decoded packets to them and provides their timers via
// the shared Simulator.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "core/actions.hpp"
#include "packet/packet.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace lbrm {
class ProtocolHost;
}

namespace lbrm::sim {

class SimHost;

class Network {
public:
    Network(Simulator& simulator, std::uint64_t seed);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;
    ~Network();

    // --- construction ----------------------------------------------------
    /// Add a node; returns its id (ids are assigned 1, 2, 3, ...).
    NodeId add_node(SiteId site, bool is_router = false);

    /// Add a bidirectional cable: two directed links with the same spec.
    void add_link(NodeId a, NodeId b, const LinkSpec& spec);

    /// Replace the loss model of the directed link a -> b.
    void set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model);

    /// Mark a node dead/alive (a dead node neither sends nor receives --
    /// models logger crashes for the Section 2.2.3 failover experiments).
    void set_node_down(NodeId node, bool down);

    /// Compute routing tables.  Must be called after the last add_link and
    /// before any traffic; adding links later requires calling it again.
    void finalize();

    // --- membership -------------------------------------------------------
    void join(GroupId group, NodeId node);
    void leave(GroupId group, NodeId node);

    // --- host attachment ---------------------------------------------------
    /// Create (once) and return the protocol host bound to `node`.
    SimHost& attach_host(NodeId node);
    [[nodiscard]] SimHost* host(NodeId node);

    // --- traffic ------------------------------------------------------------
    void unicast(NodeId from, NodeId to, const Packet& packet);
    void multicast(NodeId from, const Packet& packet, McastScope scope);

    // --- introspection -------------------------------------------------------
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;
    [[nodiscard]] SiteId site_of(NodeId node) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] Simulator& simulator() { return simulator_; }

    /// Observation tap invoked for every packet put on any link (after the
    /// loss/queue decision, with `delivered` telling the outcome).
    using Tap = std::function<void(TimePoint, const Link&, const Packet&, bool delivered)>;
    void set_tap(Tap tap) { tap_ = std::move(tap); }

    /// Sum of a statistic across all links, filtered by a predicate.
    [[nodiscard]] std::uint64_t count_packets(
        PacketType type, const std::function<bool(const Link&)>& pred) const;

    void reset_link_stats();

private:
    struct NodeRec {
        SiteId site;
        bool is_router = false;
        bool down = false;
        std::unique_ptr<SimHost> host;
        std::vector<NodeId> neighbors;
    };

    struct TreeDelivery;  // per-multicast shared state

    [[nodiscard]] std::size_t index(NodeId id) const { return id.value() - 1; }
    [[nodiscard]] NodeRec& rec(NodeId id) { return nodes_[index(id)]; }
    [[nodiscard]] const NodeRec& rec(NodeId id) const { return nodes_[index(id)]; }

    /// Next hop from `from` toward `to`; kNoNode when unreachable.
    [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

    void forward_unicast(NodeId at, NodeId to,
                         std::shared_ptr<const Packet> packet, std::size_t bytes);
    void deliver_local(NodeId node, std::shared_ptr<const Packet> packet);
    void multicast_step(const std::shared_ptr<TreeDelivery>& tree, NodeId at);

    Simulator& simulator_;
    Rng rng_;
    std::vector<NodeRec> nodes_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    std::map<GroupId, std::set<NodeId>> groups_;
    /// routes_[src_index * n + dst_index] = next hop id value (0 = none).
    std::vector<std::uint32_t> routes_;
    bool finalized_ = false;
    Tap tap_;
};

}  // namespace lbrm::sim
