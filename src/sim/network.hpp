// The simulated internetwork.
//
// Owns nodes, directed links, shortest-path routing, multicast group
// membership and the per-hop packet transport.  Multicast follows a
// source-rooted shortest-path tree with one copy per tree edge -- so the
// per-link statistics reflect true multicast economics (one packet on the
// shared tail circuit, not twenty).  Scoped multicast (Section 2.2.1's
// TTL-limited repairs and discovery rings) prunes the tree: site scope never
// leaves the sender's site; region scope is hop-limited.
//
// Node storage is struct-of-arrays (see DESIGN.md "Scale engineering"): the
// hot routing fields (site, router flag, liveness) live in dense per-node
// vectors, adjacency is a linked edge arena flattened into a CSR snapshot
// at finalize(), and the cold protocol endpoints (SimHost) live by value in
// a chunked arena behind a sparse node -> host pointer table.  Group
// membership is sorted flat vectors (ascending node id -- the same
// iteration order std::set gave).
//
// Routing is hierarchical by default (see DESIGN.md "Hierarchical
// routing"), mirroring the paper's two-level site/backbone topology:
// per-site intra-site shortest-path tables compose with an inter-site
// backbone table over the border nodes, for O(sites^2 + sum site_size^2)
// memory instead of the flat O(n^2) matrices.  Cross-site next hops are
// resolved on demand through an LRU-bounded path cache.  The flat matrices
// remain available behind SimConfig::flat_routes / LBRM_SIM_FLAT_ROUTES and
// produce identical paths, delivery times and RNG draw order on any
// topology whose shortest paths are unique under the hop-penalised metric
// (true of every shipped scenario; with equal-cost multipaths the two
// schemes may tie-break differently -- see DESIGN.md "Hierarchical
// routing", tie-breaking).
//
// The per-site tables build serially, in parallel (sites are independent;
// a worker pool fills pre-sized disjoint row slots) or lazily on first
// touch, selected by SimConfig::finalize_mode / LBRM_SIM_FINALIZE.  All
// three modes are bit-identical: every row is a pure function of the
// adjacency CSR and liveness snapshot taken at finalize(), so neither build
// order nor build *time* can change a route (a lazily built row never sees
// a post-finalize set_node_down or add_link).
//
// Delivery trees are cached per (group, sender, scope) behind an optional
// LRU bound (SimConfig::tree_cache_capacity) and invalidated on membership
// or topology change; per-send state is a single record -- bump-allocated
// from a burst-scoped arena by default (DESIGN.md "Memory engineering") --
// whose event closures fit std::function's small-buffer size.  Same-time
// multicast fan-out to idle links is additionally batched: one event per
// contiguous run of tree children, not one per child.
//
// Protocol endpoints attach as SimHost objects (see sim_host.hpp); the
// network delivers decoded packets to them and provides their timers via
// the shared Simulator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stable_vector.hpp"
#include "core/actions.hpp"
#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "packet/packet.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace lbrm {
class ProtocolHost;
}

namespace lbrm::sim {

class SimHost;

class Network {
public:
    Network(Simulator& simulator, std::uint64_t seed, SimConfig config = {});

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;
    ~Network();

    // --- construction ----------------------------------------------------
    /// Pre-size internal storage for a known topology (large benches).
    void reserve(std::size_t nodes, std::size_t directed_links);

    /// Add a node; returns its id (ids are assigned 1, 2, 3, ...).
    NodeId add_node(SiteId site, bool is_router = false);

    /// Add a bidirectional cable: two directed links with the same spec.
    /// Re-adding an existing pair re-specs the cable in place (live traffic
    /// state survives, installed loss models reset -- see Cable::respec;
    /// the resets feed the `network.respec_loss_resets` counter) and, like a new
    /// link, drops every cached tree and cached path -- a changed edge may
    /// invalidate any of them -- and requires finalize() before new
    /// traffic.
    void add_link(NodeId a, NodeId b, const LinkSpec& spec);

    /// Replace the loss model of the directed link a -> b.
    void set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model);

    /// Mark a node dead/alive.  A dead node neither sends nor receives --
    /// models logger crashes for the Section 2.2.3 failover experiments --
    /// and, from the next finalize() on, no longer relays transit traffic
    /// (so re-finalizing after downing a router routes around it).  Until
    /// then routes keep forwarding into it and packets die there, exactly
    /// as a real network blackholes until the routing protocol reconverges:
    /// both schemes route purely from finalize-time state (the flat
    /// matrices and every site-table row -- even a lazily built one --
    /// read the route_down_ snapshot; compose_hop reads border_down_), so a
    /// down transition never changes routing until the next finalize().
    void set_node_down(NodeId node, bool down);

    /// Compute routing tables.  Must be called after the last add_link and
    /// before any traffic; adding links later requires calling it again.
    void finalize();

    // --- membership -------------------------------------------------------
    void join(GroupId group, NodeId node);
    void leave(GroupId group, NodeId node);

    // --- host attachment ---------------------------------------------------
    /// Create (once) and return the protocol host bound to `node`.
    /// The reference stays valid for the network's lifetime.
    SimHost& attach_host(NodeId node);
    [[nodiscard]] SimHost* host(NodeId node);

    // --- traffic ------------------------------------------------------------
    void unicast(NodeId from, NodeId to, const Packet& packet);
    void multicast(NodeId from, const Packet& packet, McastScope scope);

    // --- introspection -------------------------------------------------------
    /// The directed link a -> b, or nullptr when absent (including self
    /// pairs and out-of-range ids).  O(1) via the endpoint-pair index.
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;
    [[nodiscard]] SiteId site_of(NodeId node) const {
        return node_site_id_[index(node)];
    }
    [[nodiscard]] bool is_router(NodeId node) const {
        return node_is_router_[index(node)] != 0;
    }
    [[nodiscard]] std::size_t node_count() const { return node_site_id_.size(); }
    [[nodiscard]] std::size_t link_count() const { return cables_.size() * 2; }
    [[nodiscard]] Simulator& simulator() { return simulator_; }

    /// The telemetry registry (created by the network unless SimConfig
    /// supplied one).  All "sim.*" rows live here; protocol hosts bind their
    /// "proto.*" / "host.*" rows to it at attach.
    [[nodiscard]] obs::Metrics& metrics() { return *metrics_; }
    /// Shared ownership, for exporters that outlive the network.
    [[nodiscard]] std::shared_ptr<obs::Metrics> metrics_ptr() const { return metrics_; }

    /// Cached multicast delivery trees currently held (tests use this to
    /// observe cache hits, LRU eviction and invalidation).
    [[nodiscard]] std::size_t cached_tree_count() const { return cached_trees_; }
    /// Approximate heap bytes held by the cached trees (cache-bound sizing).
    [[nodiscard]] std::size_t tree_cache_bytes() const;
    /// Lifetime count of delivery-tree constructions (a view over the
    /// registry's sim.tree_builds counter) and the wall time they took (a
    /// plain member: wall time is nondeterministic, so it must never enter
    /// the registry -- snapshots of identical runs are byte-identical).
    /// Both read zero under LBRM_NO_TELEMETRY.
    [[nodiscard]] std::uint64_t tree_builds() const { return tree_builds_->value(); }
    [[nodiscard]] double tree_build_seconds() const {
        return static_cast<double>(tree_build_ns_) * 1e-9;
    }
    /// Re-bound the tree cache at runtime (evicts LRU down to the new cap).
    void set_tree_cache_capacity(std::size_t capacity);

    /// Bytes held by the routing tables of the active scheme (flat matrices
    /// or hierarchical site/backbone tables + path cache).  Under lazy
    /// finalize only materialised rows count.
    [[nodiscard]] std::size_t routing_table_bytes() const;
    /// Entries currently held by the cross-site path cache (0 in flat mode).
    [[nodiscard]] std::size_t path_cache_entries() const { return path_cache_.size(); }
    /// Whether finalize() built the flat matrices (escape hatch active).
    [[nodiscard]] bool flat_routes() const { return built_flat_; }
    /// The resolved site-table build strategy (config or LBRM_SIM_FINALIZE).
    [[nodiscard]] SimFinalizeMode finalize_mode() const { return finalize_mode_; }
    /// Site-table rows currently materialised (== every row after a serial
    /// or parallel finalize; grows on demand under lazy).
    [[nodiscard]] std::size_t site_rows_built() const {
        return rows_built_.load(std::memory_order_relaxed);
    }

    /// FNV-1a digest of the active routing tables: every site row (dist,
    /// next hop, link endpoints), border set and backbone entry -- or the
    /// flat matrices.  Forces lazy rows to materialise first, so equal
    /// hashes mean bit-identical tables across build modes (the
    /// serial/parallel/lazy A/B in tests/scale_engine_test.cpp).
    [[nodiscard]] std::uint64_t routing_table_hash();

    /// Observation tap invoked for every packet put on any link (after the
    /// loss/queue decision, with `delivered` telling the outcome).
    using Tap = std::function<void(TimePoint, const Link&, const Packet&, bool delivered)>;
    void set_tap(Tap tap) { tap_ = std::move(tap); }

    /// Sum of a statistic across all links, filtered by a predicate.
    [[nodiscard]] std::uint64_t count_packets(
        PacketType type, const std::function<bool(const Link&)>& pred) const;

    /// Network-wide drop totals split by cause: queue overflow (kQueue) vs
    /// the link loss model (kLoss).  Summed over every link's LinkStats.
    struct DropBreakdown {
        std::uint64_t queue = 0;
        std::uint64_t loss = 0;
        [[nodiscard]] std::uint64_t total() const { return queue + loss; }
    };
    [[nodiscard]] DropBreakdown drop_breakdown() const;

    void reset_link_stats();

    /// Link burst batching (see DESIGN.md): on by default, disabled by the
    /// LBRM_SIM_NO_BATCH environment variable at construction or by this
    /// setter (the bench A/Bs both paths in-process).  Both paths produce
    /// bit-identical delivery times, drop decisions and RNG draw order.
    void set_batching(bool enabled) { batching_enabled_ = enabled; }
    [[nodiscard]] bool batching_enabled() const { return batching_enabled_; }

    /// Per-(site, packet) delivery batching (see DESIGN.md "Memory
    /// engineering"): on by default, disabled by LBRM_SIM_NO_DELIVERY_BATCH
    /// at construction or by this setter.  Bit-identical either way
    /// (memory_diet_test A/Bs the trace hash).
    void set_delivery_batching(bool enabled) { delivery_batching_ = enabled; }
    [[nodiscard]] bool delivery_batching() const { return delivery_batching_; }

    /// Burst-scoped bump arena for delivery records: on by default,
    /// disabled by LBRM_SIM_NO_DELIVERY_ARENA at construction or by this
    /// setter (records allocated before a toggle keep their original
    /// backing).  Bit-identical either way.
    void set_delivery_arena(bool enabled) { arena_enabled_ = enabled; }
    [[nodiscard]] bool delivery_arena_enabled() const { return arena_enabled_; }
    /// The arena itself, for introspection (tests, memory accounting).
    [[nodiscard]] const BumpArena& delivery_arena() const { return delivery_arena_; }

private:
    /// "No node index" sentinel for the routing tables and edge arena.
    static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

    /// A resolved forwarding step: the next node index on the shortest path
    /// and the link that reaches it.  {kNoIndex, nullptr} = unreachable.
    struct Hop {
        std::uint32_t next = kNoIndex;
        Link* link = nullptr;
    };

    /// One cell of a per-site routing row: distance, first hop (global node
    /// index, so descent never translates) and the link reaching it.
    struct RowCell {
        std::int64_t dist;
        std::uint32_t next;
        Link* link;
    };

    /// Per-site routing table (hierarchical scheme): all-pairs shortest
    /// paths over the site's own subgraph, plus the site's border nodes
    /// (nodes with at least one inter-site link).  Rows are one slab each,
    /// so lazy finalize materialises only the rows traffic touches and a
    /// parallel build writes disjoint pre-sized slots.
    struct SiteTable {
        std::vector<std::uint32_t> nodes;    ///< global node indices, in site order
        std::vector<std::uint32_t> borders;  ///< global node indices, ascending
        std::vector<std::unique_ptr<RowCell[]>> rows;  ///< size() slots; null = unbuilt
        [[nodiscard]] std::size_t size() const { return nodes.size(); }
    };

    /// A multicast shortest-path tree rooted at one sender, pruned to one
    /// scope.  Stored in CSR form over *tree* entries (not all n nodes), so
    /// a 10-member site-scope tree costs tens of entries, not O(n) vectors.
    /// Immutable once built; shared by all in-flight deliveries that were
    /// started while it was current.  Arrival events carry the entry index.
    struct CachedTree {
        struct Node {
            std::uint32_t node;         ///< global node index
            std::uint8_t member;        ///< 1 = deliver locally here
            std::uint32_t child_begin;  ///< [begin, end) into `children`
            std::uint32_t child_end;
        };
        struct Child {
            std::uint32_t entry;  ///< child's index into `nodes`
            Link* link;
        };
        std::vector<Node> nodes;  ///< entry 0 = the sender (root)
        std::vector<Child> children;
        bool any_members = false;

        [[nodiscard]] std::size_t bytes() const {
            return sizeof(CachedTree) + nodes.capacity() * sizeof(Node) +
                   children.capacity() * sizeof(Child);
        }
    };

    /// Base for in-flight per-send delivery state.  Deliveries are owned by
    /// the network through an intrusive list so ~Network reclaims whatever
    /// the event queue never ran; event closures hold only a raw pointer
    /// (+ a hop index), keeping them inside std::function's small buffer.
    struct DeliveryBase {
        explicit DeliveryBase(Network& n) : net(n) {}
        Network& net;
        DeliveryBase* prev = nullptr;
        DeliveryBase* next = nullptr;
        /// True when the record lives in delivery_arena_: destroy() runs the
        /// destructor only, and resets the arena once the in-flight list
        /// empties (the burst has drained).
        bool arena_backed = false;
        virtual ~DeliveryBase() = default;
    };
    struct UnicastDelivery;
    struct TreeDelivery;

    /// Allocate a delivery record: from the burst arena when enabled, the
    /// heap otherwise.  Defined in network.cpp (needs the complete types).
    template <typename T, typename... Args>
    T* make_delivery(Args&&... args);

    /// What an in-flight arrival is: enough to resume the delivery without
    /// a per-arrival std::function.  A (delivery, hop, kind) triple is what
    /// both the one-shot event closure and the link FIFO store.  For
    /// unicast `hop` is the arriving node index; for multicast it is the
    /// arriving CachedTree entry index.
    enum class ArrivalKind : std::uint8_t { kUnicast = 0, kMulticast = 1 };
    static void dispatch_arrival(DeliveryBase* d, std::uint32_t hop, ArrivalKind kind);

    [[nodiscard]] std::size_t index(NodeId id) const { return id.value() - 1; }

    /// Dijkstra scratch shared across row builds (each worker thread and
    /// the lazy path carry their own instance).
    struct DijkstraScratch {
        std::vector<std::int64_t> dist;
        std::vector<std::uint32_t> first_hop;
        std::vector<Link*> first_link;
        std::priority_queue<std::pair<std::int64_t, std::uint32_t>,
                            std::vector<std::pair<std::int64_t, std::uint32_t>>,
                            std::greater<>>
            pq;
    };

    // --- routing ---------------------------------------------------------
    /// Flatten the edge arena into the CSR adjacency snapshot.  Routing
    /// reads only the snapshot, so rows built lazily after a post-finalize
    /// add_link still see the finalize-time adjacency (stale-table
    /// semantics, identical to the eagerly built matrices).
    void build_adjacency();
    /// Make the construction-time edge lists live again: size head/tail to
    /// the current node count and, when build_adjacency() freed the cells,
    /// rebuild them from the CSR snapshot (identical per-source order).
    void ensure_edge_lists();
    [[nodiscard]] Link* find_link(std::uint64_t key) const;
    void build_flat_routes();
    void build_hierarchical_routes();
    void build_site_rows();
    /// Build one site-table row (all shortest paths out of local index
    /// `src_local` within site `site`).  Pure function of the CSR snapshot
    /// and route_down_; writes only rows[src_local].
    void build_site_row(std::uint32_t site, std::uint32_t src_local,
                        DijkstraScratch& scratch);
    void ensure_row(std::uint32_t site, std::uint32_t local) {
        if (!site_tables_[site].rows[local]) build_site_row(site, local, scratch_);
    }
    void build_backbone();

    /// Next forwarding step from node index `from` toward `to`; consults
    /// the flat matrices or the hierarchical tables + path cache.
    [[nodiscard]] Hop hop_toward(std::uint32_t from, std::uint32_t to);
    /// Uncached hierarchical composition: intra-site candidate vs the best
    /// (exit border, entry border) pair through the backbone.
    [[nodiscard]] Hop compose_hop(std::uint32_t from, std::uint32_t to);
    void clear_path_cache();

    void track(DeliveryBase* d);
    void destroy(DeliveryBase* d);

    void deliver_local(NodeId node, const Packet& packet);

    /// Schedule the arrival of `d` at hop `hop` for time `arrival`.  When
    /// the packet queued behind earlier traffic on `l` (was_busy) and
    /// batching is on, the arrival is parked in the link's pending FIFO
    /// under a reserved tiebreak and a single recurring drain event walks
    /// the FIFO; otherwise it is an ordinary one-shot event.
    void schedule_arrival(Link* l, bool was_busy, TimePoint arrival, DeliveryBase* d,
                          std::uint32_t hop, ArrivalKind kind);
    void drain_link(Link* l);

    void forward_unicast(UnicastDelivery* d, std::uint32_t at);
    void unicast_arrive(UnicastDelivery* d, std::uint32_t at);

    [[nodiscard]] std::shared_ptr<const CachedTree> build_tree(
        NodeId from, const std::vector<NodeId>& members, McastScope scope);
    void invalidate_trees_for(GroupId group);
    void invalidate_all_trees();
    void enforce_tree_cache_bound();
    void multicast_step(TreeDelivery* d, std::uint32_t at);
    void multicast_arrive(TreeDelivery* d, std::uint32_t at);
    /// Resume a batched run: the `count` consecutive tree children starting
    /// at `child_begin` all arrive now; process them in child order, exactly
    /// as the per-child events would have popped back to back.
    void multicast_arrive_run(TreeDelivery* d, std::uint32_t child_begin,
                              std::uint32_t count);
    void unref(TreeDelivery* d);

    Simulator& simulator_;
    Rng rng_;

    // --- nodes (struct-of-arrays; hot fields only) ------------------------
    std::vector<SiteId> node_site_id_;
    std::vector<std::uint8_t> node_is_router_;
    /// Live liveness, consulted at delivery time.  Routing reads the
    /// route_down_ snapshot instead (see set_node_down).
    std::vector<std::uint8_t> node_down_;

    // --- adjacency --------------------------------------------------------
    /// Directed edges as per-node linked lists through one arena, appended
    /// in add_link order (head/tail per node).  finalize() flattens them
    /// into the CSR snapshot below; insertion order is preserved because
    /// Dijkstra's tie-breaking depends on edge relaxation order.  The
    /// arena is construction-time-only: build_adjacency() frees it after
    /// snapshotting (~40 B/node) and ensure_edge_lists() rehydrates it
    /// from the CSR -- whose row order equals the per-source insertion
    /// order -- if a link is added post-finalize.
    struct EdgeCell {
        std::uint32_t to;    ///< target node index
        std::uint32_t next;  ///< next cell of the same source; kNoIndex = end
        Link* link;
    };
    std::vector<EdgeCell> edge_cells_;
    std::vector<std::uint32_t> edge_head_;
    std::vector<std::uint32_t> edge_tail_;
    /// CSR snapshot: out-edges of node i are [csr_offset_[i], csr_offset_[i+1]).
    std::vector<std::uint32_t> csr_offset_;
    std::vector<std::uint32_t> csr_to_;
    std::vector<Link*> csr_link_;

    StableVector<Cable> cables_;  ///< creation order; adjacency points into dir[]
    /// link(a, b) lookup, keyed (from index << 32 | to index).  During
    /// construction every entry lives in the hash map; finalize() drains it
    /// into the sorted flat array -- two million directed links cost 32 MB
    /// there versus ~110 MB as hash nodes -- and links added afterwards
    /// collect in the (then near-empty) map until the next finalize().
    std::vector<std::pair<std::uint64_t, Link*>> link_flat_;
    std::unordered_map<std::uint64_t, Link*> link_index_;

    // --- hosts (cold; sparse side table over a by-value arena) ------------
    StableVector<SimHost> host_arena_;
    std::vector<SimHost*> node_host_;

    // --- membership -------------------------------------------------------
    /// Sorted by group id; members sorted ascending (== the iteration order
    /// the former std::set gave, so delivery trees are unchanged).
    struct GroupRec {
        GroupId id;
        std::vector<NodeId> members;
    };
    std::vector<GroupRec> groups_;
    [[nodiscard]] GroupRec* find_group(GroupId group);

    // --- flat routing (escape hatch) -------------------------------------
    /// routes_[src_index * n + dst_index] = next hop id value (0 = none);
    /// route_links_ holds the link toward that hop.  Only populated when
    /// finalize() built the flat scheme.
    std::vector<std::uint32_t> routes_;
    std::vector<Link*> route_links_;

    // --- hierarchical routing --------------------------------------------
    std::vector<SiteTable> site_tables_;
    std::vector<std::uint32_t> node_site_;   ///< dense site index per node
    std::vector<std::uint32_t> node_local_;  ///< index within the site
    std::vector<std::uint32_t> border_nodes_;  ///< global node index per border
    std::vector<std::uint32_t> node_border_;   ///< border index; kNoIndex = interior
    /// Liveness snapshot taken at finalize().  Every row build -- eager or
    /// lazy -- consults this, never the live node_down_ flags, so routes
    /// stay a pure function of the last finalize() no matter when a row
    /// materialises.  Live liveness is applied at delivery time instead.
    std::vector<std::uint8_t> route_down_;
    /// Border projection of route_down_ (compose_hop's inner loop).
    std::vector<std::uint8_t> border_down_;
    /// Backbone all-pairs tables over the border nodes (B x B): distance,
    /// plus the first *physical* hop (node + link) toward each border --
    /// virtual intra-site backbone edges are pre-descended at build time.
    std::vector<std::int64_t> bb_dist_;
    std::vector<std::uint32_t> bb_next_node_;
    std::vector<Link*> bb_next_link_;

    SimFinalizeMode finalize_mode_;
    unsigned finalize_threads_;
    /// Materialised-row count (atomic: parallel workers all increment it).
    std::atomic<std::size_t> rows_built_{0};
    DijkstraScratch scratch_;  ///< serial + lazy row builds

    /// Cross-site next-hop cache: key (from << 32 | to) -> resolved hop,
    /// LRU-bounded by SimConfig::path_cache_capacity (0 = unbounded).
    struct PathEntry {
        Hop hop;
        std::list<std::uint64_t>::iterator lru;
    };
    std::unordered_map<std::uint64_t, PathEntry> path_cache_;
    std::list<std::uint64_t> path_lru_;  ///< most-recent first; values = keys
    std::size_t path_cache_capacity_;

    // --- multicast tree cache --------------------------------------------
    /// Key packs (group << 32 | sender id); the array is indexed by
    /// McastScope.  Invalidated on join/leave (that group), set_node_down,
    /// add_link and finalize (all groups); LRU-evicted past
    /// tree_cache_capacity_ (0 = unbounded).
    struct TreeRef {
        std::uint64_t key;
        std::uint8_t scope;
    };
    struct TreeSlot {
        std::shared_ptr<const CachedTree> tree;
        std::list<TreeRef>::iterator lru;  ///< valid only while `tree` is set
    };
    std::unordered_map<std::uint64_t, std::array<TreeSlot, 4>> mcast_cache_;
    std::list<TreeRef> tree_lru_;  ///< most-recently-used first
    std::size_t tree_cache_capacity_;
    std::size_t cached_trees_ = 0;

    /// build_tree scratch: node -> tree entry slot, generation-marked so a
    /// build never pays an O(n) clear.
    std::vector<std::uint32_t> tree_mark_;
    std::vector<std::uint32_t> tree_slot_;
    std::uint32_t tree_epoch_ = 0;

    // --- telemetry (observation-only; never read by simulation logic) -----
    /// Resolve every counter handle and register the "sim.*" pull gauges;
    /// called once from the constructor.  ~Network removes the gauges (the
    /// registry may outlive this network through metrics_ptr()).
    void register_metrics();
    std::shared_ptr<obs::Metrics> metrics_;
    obs::Counter* unicast_sends_;      ///< sim.unicast_sends
    obs::Counter* multicast_sends_;    ///< sim.multicast_sends
    obs::Counter* deliveries_made_;    ///< sim.deliveries (deliver_local hits)
    obs::Counter* tree_cache_hits_;    ///< sim.tree_cache_hits
    obs::Counter* tree_builds_;            ///< sim.tree_builds
    std::uint64_t tree_build_ns_ = 0;      ///< wall time; kept out of the registry
    obs::Counter* path_cache_hits_;    ///< sim.path_cache_hits
    obs::Counter* path_cache_misses_;  ///< sim.path_cache_misses
    obs::Counter* batched_arrivals_;   ///< sim.batched_arrivals (FIFO-parked)
    obs::Counter* batch_drains_;       ///< sim.batch_drains (drain firings)
    obs::Counter* batched_runs_;       ///< sim.batched_delivery_runs (>=2 children)
    obs::Counter* respec_loss_resets_; ///< network.respec_loss_resets

    DeliveryBase* deliveries_ = nullptr;  ///< intrusive list of in-flight sends
    /// Burst-scoped storage for delivery records (DESIGN.md "Memory
    /// engineering"): reset whenever the in-flight list drains, so
    /// steady-state traffic recycles the same chunks malloc-free.
    BumpArena delivery_arena_;
    bool finalized_ = false;
    bool flat_routes_requested_;
    bool built_flat_ = false;
    bool batching_enabled_ = true;
    bool delivery_batching_ = true;
    bool arena_enabled_ = true;
    Tap tap_;
};

}  // namespace lbrm::sim
