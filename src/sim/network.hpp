// The simulated internetwork.
//
// Owns nodes, directed links, shortest-path routing, multicast group
// membership and the per-hop packet transport.  Multicast follows a
// source-rooted shortest-path tree with one copy per tree edge -- so the
// per-link statistics reflect true multicast economics (one packet on the
// shared tail circuit, not twenty).  Scoped multicast (Section 2.2.1's
// TTL-limited repairs and discovery rings) prunes the tree: site scope never
// leaves the sender's site; region scope is hop-limited.
//
// Fast-path layout (see DESIGN.md "Simulator performance"): delivery trees
// are cached per (group, sender, scope) and invalidated on membership or
// topology change; routing is a flat next-hop matrix with a parallel
// next-link matrix so the per-hop forwarding step does no associative
// lookups; per-send state is a single heap allocation whose event closures
// fit std::function's small-buffer size.
//
// Protocol endpoints attach as SimHost objects (see sim_host.hpp); the
// network delivers decoded packets to them and provides their timers via
// the shared Simulator.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "core/actions.hpp"
#include "packet/packet.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace lbrm {
class ProtocolHost;
}

namespace lbrm::sim {

class SimHost;

class Network {
public:
    Network(Simulator& simulator, std::uint64_t seed);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;
    ~Network();

    // --- construction ----------------------------------------------------
    /// Add a node; returns its id (ids are assigned 1, 2, 3, ...).
    NodeId add_node(SiteId site, bool is_router = false);

    /// Add a bidirectional cable: two directed links with the same spec.
    /// Re-adding an existing pair replaces both directed links.
    void add_link(NodeId a, NodeId b, const LinkSpec& spec);

    /// Replace the loss model of the directed link a -> b.
    void set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model);

    /// Mark a node dead/alive (a dead node neither sends nor receives --
    /// models logger crashes for the Section 2.2.3 failover experiments).
    void set_node_down(NodeId node, bool down);

    /// Compute routing tables.  Must be called after the last add_link and
    /// before any traffic; adding links later requires calling it again.
    void finalize();

    // --- membership -------------------------------------------------------
    void join(GroupId group, NodeId node);
    void leave(GroupId group, NodeId node);

    // --- host attachment ---------------------------------------------------
    /// Create (once) and return the protocol host bound to `node`.
    SimHost& attach_host(NodeId node);
    [[nodiscard]] SimHost* host(NodeId node);

    // --- traffic ------------------------------------------------------------
    void unicast(NodeId from, NodeId to, const Packet& packet);
    void multicast(NodeId from, const Packet& packet, McastScope scope);

    // --- introspection -------------------------------------------------------
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;
    [[nodiscard]] SiteId site_of(NodeId node) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] Simulator& simulator() { return simulator_; }

    /// Cached multicast delivery trees currently held (tests use this to
    /// observe cache hits and invalidation).
    [[nodiscard]] std::size_t cached_tree_count() const;

    /// Observation tap invoked for every packet put on any link (after the
    /// loss/queue decision, with `delivered` telling the outcome).
    using Tap = std::function<void(TimePoint, const Link&, const Packet&, bool delivered)>;
    void set_tap(Tap tap) { tap_ = std::move(tap); }

    /// Sum of a statistic across all links, filtered by a predicate.
    [[nodiscard]] std::uint64_t count_packets(
        PacketType type, const std::function<bool(const Link&)>& pred) const;

    void reset_link_stats();

    /// Link burst batching (see DESIGN.md): on by default, disabled by the
    /// LBRM_SIM_NO_BATCH environment variable at construction or by this
    /// setter (the bench A/Bs both paths in-process).  Both paths produce
    /// bit-identical delivery times, drop decisions and RNG draw order.
    void set_batching(bool enabled) { batching_enabled_ = enabled; }
    [[nodiscard]] bool batching_enabled() const { return batching_enabled_; }

private:
    /// One directed adjacency edge: target node index and the link there.
    struct OutEdge {
        std::uint32_t to;  ///< node index
        Link* link;
    };

    struct NodeRec {
        SiteId site;
        bool is_router = false;
        bool down = false;
        std::unique_ptr<SimHost> host;
        std::vector<OutEdge> out_links;
    };

    /// A multicast shortest-path tree rooted at one sender, pruned to one
    /// scope, with links pre-resolved.  Immutable once built; shared by all
    /// in-flight deliveries that were started while it was current.
    struct CachedTree {
        std::vector<std::vector<OutEdge>> edges;  ///< tree children by node index
        std::vector<std::uint8_t> member;         ///< 1 = deliver locally here
        bool any_members = false;
    };

    /// Base for in-flight per-send delivery state.  Deliveries are owned by
    /// the network through an intrusive list so ~Network reclaims whatever
    /// the event queue never ran; event closures hold only a raw pointer
    /// (+ a node index), keeping them inside std::function's small buffer.
    struct DeliveryBase {
        explicit DeliveryBase(Network& n) : net(n) {}
        Network& net;
        DeliveryBase* prev = nullptr;
        DeliveryBase* next = nullptr;
        virtual ~DeliveryBase() = default;
    };
    struct UnicastDelivery;
    struct TreeDelivery;

    /// What an in-flight arrival is: enough to resume the delivery without
    /// a per-arrival std::function.  A (delivery, hop, kind) triple is what
    /// both the one-shot event closure and the link FIFO store.
    enum class ArrivalKind : std::uint8_t { kUnicast = 0, kMulticast = 1 };
    static void dispatch_arrival(DeliveryBase* d, std::uint32_t hop, ArrivalKind kind);

    [[nodiscard]] std::size_t index(NodeId id) const { return id.value() - 1; }
    [[nodiscard]] NodeRec& rec(NodeId id) { return nodes_[index(id)]; }
    [[nodiscard]] const NodeRec& rec(NodeId id) const { return nodes_[index(id)]; }

    /// Next hop from `from` toward `to`; kNoNode when unreachable.
    [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

    void track(DeliveryBase* d);
    void destroy(DeliveryBase* d);

    void deliver_local(NodeId node, const Packet& packet);

    /// Schedule the arrival of `d` at hop `hop` for time `arrival`.  When
    /// the packet queued behind earlier traffic on `l` (was_busy) and
    /// batching is on, the arrival is parked in the link's pending FIFO
    /// under a reserved tiebreak and a single recurring drain event walks
    /// the FIFO; otherwise it is an ordinary one-shot event.
    void schedule_arrival(Link* l, bool was_busy, TimePoint arrival, DeliveryBase* d,
                          std::uint32_t hop, ArrivalKind kind);
    void drain_link(Link* l);

    void forward_unicast(UnicastDelivery* d, std::uint32_t at);
    void unicast_arrive(UnicastDelivery* d, std::uint32_t at);

    [[nodiscard]] std::shared_ptr<const CachedTree> build_tree(
        NodeId from, const std::set<NodeId>& members, McastScope scope) const;
    void invalidate_trees_for(GroupId group);
    void multicast_step(TreeDelivery* d, std::uint32_t at);
    void multicast_arrive(TreeDelivery* d, std::uint32_t at);
    void unref(TreeDelivery* d);

    Simulator& simulator_;
    Rng rng_;
    std::vector<NodeRec> nodes_;
    std::vector<std::unique_ptr<Link>> links_;  ///< creation order; adjacency points here
    std::map<GroupId, std::set<NodeId>> groups_;
    /// routes_[src_index * n + dst_index] = next hop id value (0 = none).
    std::vector<std::uint32_t> routes_;
    /// route_links_[src_index * n + dst_index] = link toward that next hop
    /// (nullptr = unreachable).  Built by finalize(); O(1) per-hop lookup.
    std::vector<Link*> route_links_;
    /// Delivery-tree cache: key packs (group << 32 | sender id); the array
    /// is indexed by McastScope.  Invalidated on join/leave (that group),
    /// set_node_down and finalize (all groups).
    std::unordered_map<std::uint64_t,
                       std::array<std::shared_ptr<const CachedTree>, 4>> mcast_cache_;
    DeliveryBase* deliveries_ = nullptr;  ///< intrusive list of in-flight sends
    bool finalized_ = false;
    bool batching_enabled_ = true;
    Tap tap_;
};

}  // namespace lbrm::sim
