// Scripted fault injection over DisScenario (see DESIGN.md "Chaos suite").
//
// The protocol's claims are about *recovery* (Section 2.2): the log
// hierarchy must survive primary crashes, logger rotation and site outages
// without any receiver permanently losing a packet.  ChaosEngine stresses
// exactly that: a declarative ChaosSchedule names faults and when they
// strike; arm() turns each into ordinary simulator events (node down/up,
// re-finalize) plus packet-triggered crashes driven by the scenario's
// delivery/send hooks.
//
// Determinism rules:
//   * Injection draws no randomness.  Applying a fault is set_node_down()
//     plus (for routers) finalize() -- neither touches the network RNG, so
//     the same schedule on the same seed replays bit-identically.
//   * Randomized *schedules* (correlated_blackouts) consume only the Rng
//     the caller passes in -- never the scenario's stream -- so generating
//     a schedule cannot perturb non-fault packet outcomes.
//   * An idle engine (empty schedule) installs no hooks and schedules no
//     events: fault-free runs are bit-identical with the chaos layer
//     compiled in (chaos_test pins this with a packet-trace hash).
//
// Crash semantics: a "crashed" node is network-silent -- it neither sends
// nor receives -- but keeps its core state and timers, modelling a
// fail-recover process whose log survives (the paper's loggers persist
// their logs; MPI message-logging makes the same assumption).  Receiver
// reliability must close every gap the silence opened once the node heals.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "sim/scenario.hpp"

namespace lbrm::sim {

// --- fault classes ---------------------------------------------------------
// Times are offsets from the arm() instant.  A zero duration / revive_after
// means the fault is permanent (no heal is scheduled).

/// Correlated site blackout: the site's router, secondary logger and every
/// receiver go down together, and relaying through the site stops from the
/// accompanying re-finalize.
struct SiteBlackout {
    std::size_t site = 0;
    Duration at{};
    Duration duration{};
};

/// Primary-logger crash (Section 2.2.3): the sender's LogStore handoff
/// starts timing out, eventually promoting a replica.  Stack several of
/// these plus ReplicaCrash entries to script a failover storm.
struct PrimaryCrash {
    Duration at{};
    Duration revive_after{};
};

/// Crash of replica `replica` (index into the topology's replica list).
struct ReplicaCrash {
    std::size_t replica = 0;
    Duration at{};
    Duration revive_after{};
};

/// Partition-and-rejoin: the site's *router* goes down (plus re-finalize),
/// isolating the site while its hosts stay alive -- they keep detecting
/// loss, retrying NACKs and losing freshness, and must reconverge (group
/// re-estimation included) after the rejoin re-finalize.
struct SitePartition {
    std::size_t site = 0;
    Duration at{};
    Duration duration{};
};

/// Crash-on-receive (the classic reliable-broadcast harness fault): `node`
/// crashes at the instant it delivers sequence `seq` -- after the delivery
/// reaches the application, before it can process anything further.
struct CrashOnReceive {
    NodeId node;
    SeqNum seq;
    Duration revive_after{};
};

/// Send-and-crash: the source crashes immediately after multicasting `seq`.
/// Packets already on the wire still arrive; heartbeats, LogStore retries
/// and ACK machinery go dark until the revival.
struct SendAndCrash {
    SeqNum seq;
    Duration revive_after{};
};

using FaultEvent = std::variant<SiteBlackout, PrimaryCrash, ReplicaCrash,
                                SitePartition, CrashOnReceive, SendAndCrash>;

struct ChaosSchedule {
    std::vector<FaultEvent> events;

    [[nodiscard]] bool empty() const { return events.empty(); }

    /// Randomized correlated blackouts: `count` outages over sites drawn
    /// from [0, sites), starting uniformly within [0, window) and lasting
    /// uniformly [min_outage, max_outage).  Consumes only `rng` -- pass a
    /// dedicated stream (e.g. Rng{seed}.fork()) so schedule generation
    /// never perturbs the scenario's packet outcomes.
    static ChaosSchedule correlated_blackouts(Rng& rng, std::size_t sites,
                                              std::size_t count, Duration window,
                                              Duration min_outage,
                                              Duration max_outage);
};

/// Applies a ChaosSchedule to a running DisScenario.  Construct after the
/// scenario, arm() after scenario.start() (or at any later sim time); keep
/// the engine alive for the run -- it owns the scheduled closures' state
/// and the scenario hooks.
class ChaosEngine {
public:
    ChaosEngine(DisScenario& scenario, ChaosSchedule schedule);
    ~ChaosEngine();

    ChaosEngine(const ChaosEngine&) = delete;
    ChaosEngine& operator=(const ChaosEngine&) = delete;

    /// Anchor the schedule at the current simulation time and queue every
    /// fault.  Packet-triggered faults install the scenario hooks.  May be
    /// called once; an empty schedule arms nothing at all.
    void arm();

    // --- applied-fault log (the evidence trail) -------------------------
    struct Applied {
        TimePoint at{};
        std::string what;
    };
    [[nodiscard]] const std::vector<Applied>& log() const { return log_; }
    [[nodiscard]] std::uint64_t faults_applied() const { return faults_applied_; }
    [[nodiscard]] std::uint64_t revivals() const { return revivals_; }

    /// Fault-active windows [start, heal] for every fault whose heal is
    /// known (scheduled faults at arm time; triggered faults when they
    /// fire).  Benches window their recovery-latency percentiles on these.
    struct Window {
        TimePoint start{};
        TimePoint heal{};
    };
    [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

private:
    void apply_site(std::size_t site, bool down, bool blackout);
    void set_node(NodeId node, bool down, bool refinalize);
    void record(TimePoint at, std::string what);
    void crash_node(NodeId node, Duration revive_after, const char* what);
    void on_delivery(TimePoint at, NodeId node, SeqNum seq);
    void on_send(TimePoint at, SeqNum seq);

    DisScenario& scenario_;
    ChaosSchedule schedule_;
    bool armed_ = false;
    TimePoint t0_{};

    /// Pending packet triggers; consumed (erased) when they fire.
    std::vector<CrashOnReceive> receive_triggers_;
    std::vector<SendAndCrash> send_triggers_;
    bool hooked_delivery_ = false;
    bool hooked_send_ = false;

    std::vector<Applied> log_;
    std::vector<Window> windows_;
    std::uint64_t faults_applied_ = 0;
    std::uint64_t revivals_ = 0;

    // Per-fault-class health counters ("chaos.*", resolved at construction
    // from the scenario registry).  Observation only -- counters never feed
    // back into behaviour.
    obs::Counter* c_blackouts_;
    obs::Counter* c_partitions_;
    obs::Counter* c_primary_crashes_;
    obs::Counter* c_replica_crashes_;
    obs::Counter* c_crash_on_receive_;
    obs::Counter* c_send_and_crash_;
    obs::Counter* c_revivals_;
    obs::Counter* c_refinalizes_;
};

// --- receiver-reliability accounting (tests + bench_chaos) -----------------

/// Receiver-reliability audit over the scenario's recorded observations:
/// every receiver in the topology is expected to deliver every sequence the
/// source sent.  Requires the default RecordingObserver and all receivers
/// subscribed (active_receivers_per_site == 0).
struct ReliabilityAudit {
    std::uint64_t expected = 0;   ///< receivers x sequences sent
    std::uint64_t delivered = 0;  ///< distinct (receiver, seq) pairs seen
    std::uint64_t lost_forever = 0;  ///< expected - delivered
};
[[nodiscard]] ReliabilityAudit audit_reliability(const DisScenario& scenario);

/// Per-sequence settle latency -- max over receivers of (first delivery -
/// send time) -- for sequences sent inside [win_start, win_end].  Sequences
/// not yet delivered everywhere are excluded (audit_reliability catches
/// them).  Percentiles use nearest-rank on the sorted sample.
struct RecoveryStats {
    std::size_t samples = 0;
    double p50_s = 0.0;
    double p99_s = 0.0;
    double max_s = 0.0;
};
[[nodiscard]] RecoveryStats settle_latency(const DisScenario& scenario,
                                           TimePoint win_start, TimePoint win_end);

}  // namespace lbrm::sim
