#include "sim/network.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>

#include "sim/sim_host.hpp"

namespace lbrm::sim {

namespace {

/// Multicast-tree cache key: (group id, sender id) packed into 64 bits.
[[nodiscard]] std::uint64_t tree_key(GroupId group, NodeId sender) {
    return (static_cast<std::uint64_t>(group.value()) << 32) | sender.value();
}

}  // namespace

Network::Network(Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator), rng_(seed),
      batching_enabled_(std::getenv("LBRM_SIM_NO_BATCH") == nullptr) {}

Network::~Network() {
    while (deliveries_ != nullptr) destroy(deliveries_);
}

void Network::track(DeliveryBase* d) {
    d->next = deliveries_;
    if (deliveries_ != nullptr) deliveries_->prev = d;
    deliveries_ = d;
}

void Network::destroy(DeliveryBase* d) {
    if (d->prev != nullptr) d->prev->next = d->next;
    if (d->next != nullptr) d->next->prev = d->prev;
    if (deliveries_ == d) deliveries_ = d->next;
    delete d;
}

NodeId Network::add_node(SiteId site, bool is_router) {
    NodeRec record;
    record.site = site;
    record.is_router = is_router;
    nodes_.push_back(std::move(record));
    finalized_ = false;
    return NodeId{static_cast<std::uint32_t>(nodes_.size())};
}

void Network::add_link(NodeId a, NodeId b, const LinkSpec& spec) {
    if (index(a) >= nodes_.size() || index(b) >= nodes_.size() || a == b)
        throw std::invalid_argument("Network::add_link: bad endpoints");
    auto install = [this, &spec](NodeId from, NodeId to) {
        if (Link* existing = link(from, to)) {
            *existing = Link{from, to, spec};
            return;
        }
        links_.push_back(std::make_unique<Link>(from, to, spec));
        rec(from).out_links.push_back(
            OutEdge{static_cast<std::uint32_t>(index(to)), links_.back().get()});
    };
    install(a, b);
    install(b, a);
    finalized_ = false;
}

void Network::set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model) {
    Link* l = link(a, b);
    if (l == nullptr) throw std::invalid_argument("Network::set_loss: no such link");
    l->set_loss_model(std::move(model));
}

void Network::set_node_down(NodeId node, bool down) {
    if (rec(node).down != down) mcast_cache_.clear();
    rec(node).down = down;
}

Link* Network::link(NodeId a, NodeId b) {
    const std::uint32_t want = static_cast<std::uint32_t>(index(b));
    for (const OutEdge& e : rec(a).out_links)
        if (e.to == want) return e.link;
    return nullptr;
}

const Link* Network::link(NodeId a, NodeId b) const {
    const std::uint32_t want = static_cast<std::uint32_t>(index(b));
    for (const OutEdge& e : rec(a).out_links)
        if (e.to == want) return e.link;
    return nullptr;
}

SiteId Network::site_of(NodeId node) const { return rec(node).site; }

void Network::finalize() {
    const std::size_t n = nodes_.size();
    routes_.assign(n * n, 0);
    route_links_.assign(n * n, nullptr);
    mcast_cache_.clear();

    // Dijkstra from every node; weight = propagation + 1 microsecond hop
    // penalty (prefers fewer hops between equal-latency paths, keeping
    // routes deterministic).
    using Dist = std::int64_t;
    constexpr Dist kInf = std::numeric_limits<Dist>::max();
    std::vector<Dist> dist(n);
    std::vector<std::uint32_t> first_hop(n);
    std::vector<Link*> first_link(n);

    for (std::size_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(first_hop.begin(), first_hop.end(), 0u);
        std::fill(first_link.begin(), first_link.end(), nullptr);
        dist[src] = 0;

        using QE = std::pair<Dist, std::uint32_t>;  // (distance, node index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));

        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != dist[u]) continue;
            for (const OutEdge& e : nodes_[u].out_links) {
                const std::size_t v = e.to;
                const Dist w = e.link->spec().propagation.count() + 1000;  // +1us per hop
                if (d + w < dist[v]) {
                    dist[v] = d + w;
                    first_hop[v] = (u == src) ? static_cast<std::uint32_t>(v + 1)
                                              : first_hop[u];
                    first_link[v] = (u == src) ? e.link : first_link[u];
                    pq.emplace(dist[v], static_cast<std::uint32_t>(v));
                }
            }
        }
        for (std::size_t dst = 0; dst < n; ++dst) {
            routes_[src * n + dst] = first_hop[dst];
            route_links_[src * n + dst] = first_link[dst];
        }
    }
    finalized_ = true;
}

NodeId Network::next_hop(NodeId from, NodeId to) const {
    if (!finalized_) throw std::logic_error("Network: finalize() before sending traffic");
    const std::uint32_t hop = routes_[index(from) * nodes_.size() + index(to)];
    return hop == 0 ? kNoNode : NodeId{hop};
}

void Network::join(GroupId group, NodeId node) {
    groups_[group].insert(node);
    invalidate_trees_for(group);
}

void Network::leave(GroupId group, NodeId node) {
    auto it = groups_.find(group);
    if (it != groups_.end()) it->second.erase(node);
    invalidate_trees_for(group);
}

void Network::invalidate_trees_for(GroupId group) {
    for (auto it = mcast_cache_.begin(); it != mcast_cache_.end();) {
        if ((it->first >> 32) == group.value())
            it = mcast_cache_.erase(it);
        else
            ++it;
    }
}

std::size_t Network::cached_tree_count() const {
    std::size_t total = 0;
    for (const auto& [key, by_scope] : mcast_cache_)
        for (const auto& tree : by_scope)
            if (tree) ++total;
    return total;
}

SimHost& Network::attach_host(NodeId node) {
    NodeRec& record = rec(node);
    if (!record.host) record.host = std::make_unique<SimHost>(*this, simulator_, node);
    return *record.host;
}

SimHost* Network::host(NodeId node) { return rec(node).host.get(); }

void Network::deliver_local(NodeId node, const Packet& packet) {
    NodeRec& record = rec(node);
    if (record.down || !record.host) return;
    record.host->deliver(simulator_.now(), packet);
}

// ---------------------------------------------------------------------------
// Link burst batching (DESIGN.md "Link burst batching")
// ---------------------------------------------------------------------------

void Network::schedule_arrival(Link* l, bool was_busy, TimePoint arrival,
                               DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (!was_busy) {
        simulator_.schedule_at(arrival,
                               [d, hop, kind] { dispatch_arrival(d, hop, kind); });
        return;
    }
    // The packet queued behind earlier traffic: park the arrival in the
    // link's FIFO under the tiebreak an immediate schedule would have used,
    // so the drain event fires it at the exact (time, order) position of
    // the unbatched path.
    const std::uint64_t tiebreak = simulator_.reserve_tiebreak();
    if (l->drain_slot() == 0)
        l->set_drain_slot(simulator_.create_recurring([this, l] { drain_link(l); }));
    l->push_pending(arrival, tiebreak, d, hop, static_cast<std::uint8_t>(kind));
    if (!l->drain_armed()) {
        l->set_drain_armed(true);
        simulator_.arm_recurring(l->drain_slot(), arrival, tiebreak);
    }
}

void Network::drain_link(Link* l) {
    // A replaced link (add_link over an existing pair) may leave a stale
    // armed firing behind; the reset armed flag identifies it.
    if (!l->drain_armed() || !l->has_pending()) return;
    const Link::PendingArrival entry = l->pop_pending();
    // Re-arm for the next pending arrival *before* resuming the delivery:
    // it may transmit on this same link, and any arrival it parks is later
    // than everything already in the FIFO (the busy horizon only moves
    // forward), so the FIFO stays sorted and the armed entry is always the
    // head.
    if (l->has_pending()) {
        const Link::PendingArrival& next = l->front_pending();
        simulator_.arm_recurring(l->drain_slot(), next.at, next.tiebreak);
    } else {
        l->set_drain_armed(false);
    }
    dispatch_arrival(static_cast<DeliveryBase*>(entry.delivery), entry.hop,
                     static_cast<ArrivalKind>(entry.kind));
}

// ---------------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------------

struct Network::UnicastDelivery final : DeliveryBase {
    UnicastDelivery(Network& n, const Packet& p, std::uint32_t to_index)
        : DeliveryBase(n), packet(p), bytes(encoded_size(p)), type(p.type()),
          to(to_index) {}

    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t to;  ///< destination node index
};

void Network::unicast(NodeId from, NodeId to, const Packet& packet) {
    if (rec(from).down) return;
    if (from != to && !finalized_)
        throw std::logic_error("Network: finalize() before sending traffic");
    auto* d = new UnicastDelivery(*this, packet, static_cast<std::uint32_t>(index(to)));
    track(d);
    if (from == to) {  // local delivery without touching the network
        simulator_.schedule_in(Duration::zero(),
                               [d, at = d->to] { d->net.unicast_arrive(d, at); });
        return;
    }
    forward_unicast(d, static_cast<std::uint32_t>(index(from)));
}

void Network::forward_unicast(UnicastDelivery* d, std::uint32_t at) {
    Link* l = route_links_[at * nodes_.size() + d->to];
    if (l == nullptr) {  // unreachable
        destroy(d);
        return;
    }
    const bool was_busy = batching_enabled_ && l->busy(simulator_.now());
    auto arrival = l->transmit(rng_, simulator_.now(), d->bytes, d->type);
    if (tap_) tap_(simulator_.now(), *l, d->packet, arrival.has_value());
    if (!arrival) {
        destroy(d);
        return;
    }
    const std::uint32_t hop = l->to().value() - 1;
    schedule_arrival(l, was_busy, *arrival, d, hop, ArrivalKind::kUnicast);
}

void Network::unicast_arrive(UnicastDelivery* d, std::uint32_t at) {
    if (nodes_[at].down) {
        destroy(d);
        return;
    }
    if (at == d->to) {
        deliver_local(NodeId{at + 1}, d->packet);
        destroy(d);
        return;
    }
    forward_unicast(d, at);
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

struct Network::TreeDelivery final : DeliveryBase {
    TreeDelivery(Network& n, std::shared_ptr<const CachedTree> t, const Packet& p)
        : DeliveryBase(n), tree(std::move(t)), packet(p), bytes(encoded_size(p)),
          type(p.type()) {}

    std::shared_ptr<const CachedTree> tree;  ///< pins the tree across invalidation
    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t pending = 1;  ///< outstanding events + the sending frame
};

std::shared_ptr<const Network::CachedTree> Network::build_tree(
    NodeId from, const std::set<NodeId>& members, McastScope scope) const {
    const std::size_t n = nodes_.size();
    auto tree = std::make_shared<CachedTree>();
    tree->edges.resize(n);
    tree->member.assign(n, 0);

    // Hop budget per scope: site scope is bounded by the site-containment
    // check below (a site never spans more hops than its own LAN); region
    // scope reaches adjacent sites through the backbone, up to 4 hops;
    // global scope is unbounded.
    const SiteId sender_site = site_of(from);
    const std::size_t hop_limit = scope == McastScope::kRegion
                                      ? 4u
                                      : std::numeric_limits<std::size_t>::max();

    const std::uint32_t from_index = static_cast<std::uint32_t>(index(from));
    std::vector<std::uint32_t> path;
    for (NodeId member : members) {
        if (member == from || rec(member).down) continue;
        if (scope == McastScope::kSite && site_of(member) != sender_site) continue;

        // Walk the unicast route; collect the node-index chain.
        const std::size_t member_index = index(member);
        path.assign(1, from_index);
        std::uint32_t at = from_index;
        bool reachable = true;
        while (at != member_index) {
            const std::uint32_t hop = routes_[at * n + member_index];
            if (hop == 0) {
                reachable = false;
                break;
            }
            path.push_back(hop - 1);
            at = hop - 1;
            if (path.size() > n) {
                reachable = false;  // routing loop guard
                break;
            }
        }
        if (!reachable || path.size() - 1 > hop_limit) continue;
        if (scope == McastScope::kSite) {
            bool stays = true;
            for (std::uint32_t node : path)
                if (nodes_[node].site != sender_site) stays = false;
            if (!stays) continue;
        }

        tree->member[member_index] = 1;
        tree->any_members = true;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            auto& kids = tree->edges[path[i]];
            const std::uint32_t child = path[i + 1];
            if (std::find_if(kids.begin(), kids.end(), [child](const OutEdge& e) {
                    return e.to == child;
                }) == kids.end())
                kids.push_back(OutEdge{child, route_links_[path[i] * n + member_index]});
        }
    }
    return tree;
}

void Network::multicast(NodeId from, const Packet& packet, McastScope scope) {
    if (!finalized_) throw std::logic_error("Network: finalize() before sending traffic");
    if (rec(from).down) return;
    auto git = groups_.find(packet.header.group);
    if (git == groups_.end()) return;

    auto& by_scope = mcast_cache_[tree_key(packet.header.group, from)];
    auto& slot = by_scope[static_cast<std::size_t>(scope)];
    if (!slot) slot = build_tree(from, git->second, scope);
    if (!slot->any_members) return;

    auto* d = new TreeDelivery(*this, slot, packet);
    track(d);
    multicast_step(d, static_cast<std::uint32_t>(index(from)));
    unref(d);  // drop the sending frame's reference
}

void Network::multicast_step(TreeDelivery* d, std::uint32_t at) {
    for (const OutEdge& e : d->tree->edges[at]) {
        const bool was_busy = batching_enabled_ && e.link->busy(simulator_.now());
        auto arrival = e.link->transmit(rng_, simulator_.now(), d->bytes, d->type);
        if (tap_) tap_(simulator_.now(), *e.link, d->packet, arrival.has_value());
        if (!arrival) continue;
        ++d->pending;
        schedule_arrival(e.link, was_busy, *arrival, d, e.to, ArrivalKind::kMulticast);
    }
}

void Network::multicast_arrive(TreeDelivery* d, std::uint32_t at) {
    if (!nodes_[at].down) {
        if (d->tree->member[at]) deliver_local(NodeId{at + 1}, d->packet);
        multicast_step(d, at);
    }
    unref(d);
}

void Network::unref(TreeDelivery* d) {
    if (--d->pending == 0) destroy(d);
}

// Defined here, after both delivery types are complete.
void Network::dispatch_arrival(DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (kind == ArrivalKind::kMulticast)
        d->net.multicast_arrive(static_cast<TreeDelivery*>(d), hop);
    else
        d->net.unicast_arrive(static_cast<UnicastDelivery*>(d), hop);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::uint64_t Network::count_packets(PacketType type,
                                     const std::function<bool(const Link&)>& pred) const {
    std::uint64_t total = 0;
    for (const auto& l : links_)
        if (!pred || pred(*l)) total += l->stats().packets_of(type);
    return total;
}

void Network::reset_link_stats() {
    for (auto& l : links_) l->reset_stats();
}

}  // namespace lbrm::sim
