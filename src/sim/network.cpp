#include "sim/network.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "obs/trace.hpp"
#include "sim/sim_host.hpp"

namespace lbrm::sim {

namespace {

constexpr std::int64_t kInfDist = std::numeric_limits<std::int64_t>::max();

/// Edge weight: propagation + 1 microsecond hop penalty (prefers fewer
/// hops between equal-latency paths, keeping routes deterministic).  The
/// flat and hierarchical schemes share this metric exactly, which makes
/// their paths identical whenever shortest paths are unique under it;
/// equal-cost multipaths may tie-break differently between the schemes
/// (DESIGN.md "Hierarchical routing", tie-breaking).
[[nodiscard]] std::int64_t edge_weight(const Link* l) {
    return l->spec().propagation.count() + 1000;
}

/// Multicast-tree cache key: (group id, sender id) packed into 64 bits.
[[nodiscard]] std::uint64_t tree_key(GroupId group, NodeId sender) {
    return (static_cast<std::uint64_t>(group.value()) << 32) | sender.value();
}

/// Path-cache key: (from node index, to node index) packed into 64 bits.
[[nodiscard]] std::uint64_t path_key(std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// Link-index key: (from node index, to node index) packed into 64 bits.
[[nodiscard]] std::uint64_t pair_key(std::size_t from, std::size_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
}

[[nodiscard]] SimFinalizeMode resolve_finalize_mode(SimFinalizeMode configured) {
    const char* env = std::getenv("LBRM_SIM_FINALIZE");
    if (env == nullptr) return configured;
    const std::string_view v{env};
    if (v == "serial") return SimFinalizeMode::kSerial;
    if (v == "parallel") return SimFinalizeMode::kParallel;
    if (v == "lazy") return SimFinalizeMode::kLazy;
    return configured;
}

}  // namespace

namespace {
/// "sim.*" pull-gauge names registered by register_metrics(); ~Network
/// removes exactly this list (the registry can outlive the network).
constexpr const char* kSimGaugeNames[] = {
    "sim.cached_trees",     "sim.tree_cache_bytes",   "sim.site_rows_built",
    "sim.routing_table_bytes", "sim.path_cache_entries", "sim.drops_queue",
    "sim.drops_loss",       "sim.link_packets",       "sim.link_bytes",
    "sim.queue_pending",    "sim.events_processed",   "sim.events_scheduled",
};
}  // namespace

Network::Network(Simulator& simulator, std::uint64_t seed, SimConfig config)
    : simulator_(simulator), rng_(seed),
      finalize_mode_(resolve_finalize_mode(config.finalize_mode)),
      finalize_threads_(config.finalize_threads),
      path_cache_capacity_(config.path_cache_capacity),
      tree_cache_capacity_(config.tree_cache_capacity),
      metrics_(config.metrics ? config.metrics : std::make_shared<obs::Metrics>()),
      flat_routes_requested_(config.flat_routes ||
                             std::getenv("LBRM_SIM_FLAT_ROUTES") != nullptr),
      batching_enabled_(std::getenv("LBRM_SIM_NO_BATCH") == nullptr),
      delivery_batching_(config.delivery_batching &&
                         std::getenv("LBRM_SIM_NO_DELIVERY_BATCH") == nullptr),
      arena_enabled_(config.delivery_arena &&
                     std::getenv("LBRM_SIM_NO_DELIVERY_ARENA") == nullptr) {
    register_metrics();
}

Network::~Network() {
    while (deliveries_ != nullptr) destroy(deliveries_);
    for (const char* name : kSimGaugeNames) metrics_->remove_gauge_fn(name);
}

void Network::register_metrics() {
    obs::Metrics& m = *metrics_;
    unicast_sends_ = &m.counter("sim.unicast_sends");
    multicast_sends_ = &m.counter("sim.multicast_sends");
    deliveries_made_ = &m.counter("sim.deliveries");
    tree_cache_hits_ = &m.counter("sim.tree_cache_hits");
    tree_builds_ = &m.counter("sim.tree_builds");
    path_cache_hits_ = &m.counter("sim.path_cache_hits");
    path_cache_misses_ = &m.counter("sim.path_cache_misses");
    batched_arrivals_ = &m.counter("sim.batched_arrivals");
    batch_drains_ = &m.counter("sim.batch_drains");
    batched_runs_ = &m.counter("sim.batched_delivery_runs");
    respec_loss_resets_ = &m.counter("network.respec_loss_resets");

    // Pull gauges: evaluated at snapshot time only, so none of these touch
    // the hot path.  When several networks share one registry the most
    // recently constructed network's gauges win (find-or-create semantics).
    m.gauge_fn("sim.cached_trees",
               [this] { return static_cast<std::uint64_t>(cached_trees_); });
    m.gauge_fn("sim.tree_cache_bytes",
               [this] { return static_cast<std::uint64_t>(tree_cache_bytes()); });
    m.gauge_fn("sim.site_rows_built",
               [this] { return static_cast<std::uint64_t>(site_rows_built()); });
    m.gauge_fn("sim.routing_table_bytes",
               [this] { return static_cast<std::uint64_t>(routing_table_bytes()); });
    m.gauge_fn("sim.path_cache_entries",
               [this] { return static_cast<std::uint64_t>(path_cache_.size()); });
    m.gauge_fn("sim.drops_queue", [this] { return drop_breakdown().queue; });
    m.gauge_fn("sim.drops_loss", [this] { return drop_breakdown().loss; });
    m.gauge_fn("sim.link_packets", [this] {
        std::uint64_t total = 0;
        for (const Cable& c : cables_)
            for (const Link& l : c.dir) total += l.stats().packets;
        return total;
    });
    m.gauge_fn("sim.link_bytes", [this] {
        std::uint64_t total = 0;
        for (const Cable& c : cables_)
            for (const Link& l : c.dir) total += l.stats().bytes;
        return total;
    });
    m.gauge_fn("sim.queue_pending",
               [this] { return static_cast<std::uint64_t>(simulator_.pending()); });
    m.gauge_fn("sim.events_processed",
               [this] { return simulator_.events_processed(); });
    m.gauge_fn("sim.events_scheduled",
               [this] { return simulator_.events_scheduled(); });
}

Network::DropBreakdown Network::drop_breakdown() const {
    DropBreakdown out;
    for (const Cable& c : cables_) {
        for (const Link& l : c.dir) {
            out.queue += l.stats().drops_queue;
            out.loss += l.stats().drops_loss;
        }
    }
    return out;
}

void Network::track(DeliveryBase* d) {
    d->next = deliveries_;
    if (deliveries_ != nullptr) deliveries_->prev = d;
    deliveries_ = d;
}

void Network::destroy(DeliveryBase* d) {
    if (d->prev != nullptr) d->prev->next = d->next;
    if (d->next != nullptr) d->next->prev = d->prev;
    if (deliveries_ == d) deliveries_ = d->next;
    if (d->arena_backed) {
        d->~DeliveryBase();
        // Burst drained: no in-flight record points into the arena any
        // more, so rewind it (chunks are retained for the next burst).
        if (deliveries_ == nullptr) delivery_arena_.reset();
    } else {
        delete d;
    }
}

void Network::reserve(std::size_t nodes, std::size_t directed_links) {
    node_site_id_.reserve(nodes);
    node_is_router_.reserve(nodes);
    node_down_.reserve(nodes);
    edge_head_.reserve(nodes);
    edge_tail_.reserve(nodes);
    node_host_.reserve(nodes);
    edge_cells_.reserve(directed_links);
    link_index_.reserve(directed_links);
}

NodeId Network::add_node(SiteId site, bool is_router) {
    node_site_id_.push_back(site);
    node_is_router_.push_back(is_router ? 1 : 0);
    node_down_.push_back(0);
    // Edge lists are grown on demand by ensure_edge_lists(): finalize()
    // frees the construction arena once the CSR snapshot exists, so a
    // node addition must not assume the lists are live.
    finalized_ = false;
    return NodeId{static_cast<std::uint32_t>(node_site_id_.size())};
}

void Network::ensure_edge_lists() {
    const std::size_t n = node_count();
    if (edge_head_.size() == n && (!edge_cells_.empty() || csr_to_.empty()))
        return;
    edge_head_.resize(n, kNoIndex);
    edge_tail_.resize(n, kNoIndex);
    // Rehydrate the per-node linked lists from the CSR snapshot after
    // finalize() freed them.  CSR row order *is* the original per-source
    // insertion order, and build_adjacency() only ever walks the lists
    // per source, so the next snapshot comes out identical.
    if (edge_cells_.empty() && !csr_to_.empty()) {
        const std::size_t csr_nodes = csr_offset_.size() - 1;
        edge_cells_.reserve(csr_to_.size());
        for (std::size_t i = 0; i < csr_nodes; ++i) {
            for (std::uint32_t e = csr_offset_[i]; e < csr_offset_[i + 1]; ++e) {
                const std::uint32_t cell = static_cast<std::uint32_t>(edge_cells_.size());
                edge_cells_.push_back(EdgeCell{csr_to_[e], kNoIndex, csr_link_[e]});
                if (edge_head_[i] == kNoIndex)
                    edge_head_[i] = cell;
                else
                    edge_cells_[edge_tail_[i]].next = cell;
                edge_tail_[i] = cell;
            }
        }
    }
}

void Network::add_link(NodeId a, NodeId b, const LinkSpec& spec) {
    if (index(a) >= node_count() || index(b) >= node_count() || a == b)
        throw std::invalid_argument("Network::add_link: bad endpoints");
    if (Link* existing = link(a, b)) {
        // Cables are always installed in pairs, so a->b existing means the
        // whole cable exists: re-spec it in place.  Any installed loss
        // model silently resets to NoLoss (Cable::respec documents this);
        // surface the resets through network.respec_loss_resets so
        // lossy-rewire scenarios can detect them.
        const unsigned resets = existing->cable().respec(spec);
        if (resets != 0) respec_loss_resets_->inc(resets);
    } else {
        ensure_edge_lists();
        Cable& c = cables_.emplace_back(a, b, spec);
        auto wire = [this](Link& l, NodeId from, NodeId to) {
            const std::size_t fi = index(from);
            const std::size_t ti = index(to);
            const std::uint32_t cell = static_cast<std::uint32_t>(edge_cells_.size());
            edge_cells_.push_back(
                EdgeCell{static_cast<std::uint32_t>(ti), kNoIndex, &l});
            if (edge_head_[fi] == kNoIndex)
                edge_head_[fi] = cell;
            else
                edge_cells_[edge_tail_[fi]].next = cell;
            edge_tail_[fi] = cell;
            link_index_.emplace(pair_key(fi, ti), &l);
        };
        wire(c.dir[0], a, b);
        wire(c.dir[1], b, a);
    }
    // A changed edge can invalidate any cached tree or cached path, so both
    // caches drop immediately -- not just at the next finalize().  In-flight
    // deliveries keep their pinned trees and complete on the pre-change
    // routes, as before.  The CSR snapshot is *not* rebuilt here: routing
    // (including lazily built rows) keeps reading the finalize-time
    // adjacency until the required finalize(), exactly as the eagerly
    // built tables kept serving stale routes.
    invalidate_all_trees();
    clear_path_cache();
    finalized_ = false;
}

void Network::set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model) {
    Link* l = link(a, b);
    if (l == nullptr) throw std::invalid_argument("Network::set_loss: no such link");
    l->set_loss_model(std::move(model));
}

void Network::set_node_down(NodeId node, bool down) {
    const std::size_t i = index(node);
    if ((node_down_[i] != 0) != down) invalidate_all_trees();
    node_down_[i] = down ? 1 : 0;
    // The path cache is untouched: routes are a pure function of the
    // tables built at the last finalize() -- the flat matrices bake
    // liveness into the Dijkstra runs, and every site-table row (built
    // eagerly or lazily) plus compose_hop consult the route_down_ /
    // border_down_ snapshots, never the live flags -- so a downed relay
    // blackholes until re-finalize, like an unconverged routing protocol,
    // and cache occupancy can never change outcomes.  Trees must drop
    // because membership pruning *does* consult liveness at build time.
}

Link* Network::find_link(std::uint64_t key) const {
    const auto it = std::lower_bound(
        link_flat_.begin(), link_flat_.end(), key,
        [](const std::pair<std::uint64_t, Link*>& e, std::uint64_t k) {
            return e.first < k;
        });
    if (it != link_flat_.end() && it->first == key) return it->second;
    const auto mit = link_index_.find(key);
    return mit != link_index_.end() ? mit->second : nullptr;
}

Link* Network::link(NodeId a, NodeId b) {
    if (index(a) >= node_count() || index(b) >= node_count()) return nullptr;
    return find_link(pair_key(index(a), index(b)));
}

const Link* Network::link(NodeId a, NodeId b) const {
    if (index(a) >= node_count() || index(b) >= node_count()) return nullptr;
    return find_link(pair_key(index(a), index(b)));
}

// ---------------------------------------------------------------------------
// Routing: finalize() builds either the flat matrices or the hierarchical
// site/backbone tables (DESIGN.md "Hierarchical routing", "Scale
// engineering").
// ---------------------------------------------------------------------------

void Network::build_adjacency() {
    const std::size_t n = node_count();
    ensure_edge_lists();  // rehydrates from the old CSR if finalize() freed them
    csr_offset_.assign(n + 1, 0);
    csr_to_.clear();
    csr_link_.clear();
    csr_to_.reserve(edge_cells_.size());
    csr_link_.reserve(edge_cells_.size());
    for (std::size_t i = 0; i < n; ++i) {
        csr_offset_[i] = static_cast<std::uint32_t>(csr_to_.size());
        for (std::uint32_t c = edge_head_[i]; c != kNoIndex; c = edge_cells_[c].next) {
            csr_to_.push_back(edge_cells_[c].to);
            csr_link_.push_back(edge_cells_[c].link);
        }
    }
    csr_offset_[n] = static_cast<std::uint32_t>(csr_to_.size());
    // The CSR snapshot now carries everything routing needs, and it can
    // regenerate the lists if a link is ever added afterwards
    // (ensure_edge_lists above) -- so drop the construction arena: at 10^7
    // nodes the cells plus head/tail pointers are ~400 MB of dead weight.
    std::vector<EdgeCell>().swap(edge_cells_);
    std::vector<std::uint32_t>().swap(edge_head_);
    std::vector<std::uint32_t>().swap(edge_tail_);

    // Drain the construction-time hash map into the sorted flat index and
    // free its buckets (see the member comment for the memory math).
    if (!link_index_.empty()) {
        link_flat_.reserve(link_flat_.size() + link_index_.size());
        for (const auto& [key, l] : link_index_) link_flat_.emplace_back(key, l);
        std::sort(link_flat_.begin(), link_flat_.end());
        std::unordered_map<std::uint64_t, Link*>{}.swap(link_index_);
    }
}

void Network::finalize() {
    LBRM_TRACE_SPAN("finalize");
    {
        LBRM_TRACE_SPAN("finalize.prep");
        invalidate_all_trees();
        clear_path_cache();
        // Snapshot adjacency and liveness: every table row -- including rows
        // a lazy finalize materialises mid-run -- is a pure function of
        // these, so build order/time cannot change a route.
        build_adjacency();
        route_down_.assign(node_down_.begin(), node_down_.end());
    }
    built_flat_ = flat_routes_requested_;
    rows_built_.store(0, std::memory_order_relaxed);
    {
        LBRM_TRACE_SPAN("finalize.routes");
        if (built_flat_) {
            // Release the hierarchical tables (mode may have flipped).
            std::vector<SiteTable>().swap(site_tables_);
            std::vector<std::uint32_t>().swap(node_site_);
            std::vector<std::uint32_t>().swap(node_local_);
            std::vector<std::uint32_t>().swap(border_nodes_);
            std::vector<std::uint32_t>().swap(node_border_);
            std::vector<std::uint8_t>().swap(border_down_);
            std::vector<std::int64_t>().swap(bb_dist_);
            std::vector<std::uint32_t>().swap(bb_next_node_);
            std::vector<Link*>().swap(bb_next_link_);
            build_flat_routes();
        } else {
            std::vector<std::uint32_t>().swap(routes_);
            std::vector<Link*>().swap(route_links_);
            build_hierarchical_routes();
        }
    }
    finalized_ = true;
}

void Network::build_flat_routes() {
    LBRM_TRACE_SPAN("finalize.flat_routes");
    const std::size_t n = node_count();
    routes_.assign(n * n, 0);
    route_links_.assign(n * n, nullptr);

    // Dijkstra from every node.  A down node may still be an endpoint but
    // never relays: its edges are not expanded unless it is the source.
    std::vector<std::int64_t> dist(n);
    std::vector<std::uint32_t> first_hop(n);
    std::vector<Link*> first_link(n);

    for (std::size_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInfDist);
        std::fill(first_hop.begin(), first_hop.end(), 0u);
        std::fill(first_link.begin(), first_link.end(), nullptr);
        dist[src] = 0;

        using QE = std::pair<std::int64_t, std::uint32_t>;  // (distance, node index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));

        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != dist[u]) continue;
            if (u != src && route_down_[u]) continue;  // no transit via dead nodes
            for (std::uint32_t k = csr_offset_[u]; k != csr_offset_[u + 1]; ++k) {
                const std::size_t v = csr_to_[k];
                const std::int64_t w = edge_weight(csr_link_[k]);
                if (d + w < dist[v]) {
                    dist[v] = d + w;
                    first_hop[v] = (u == src) ? static_cast<std::uint32_t>(v + 1)
                                              : first_hop[u];
                    first_link[v] = (u == src) ? csr_link_[k] : first_link[u];
                    pq.emplace(dist[v], static_cast<std::uint32_t>(v));
                }
            }
        }
        for (std::size_t dst = 0; dst < n; ++dst) {
            routes_[src * n + dst] = first_hop[dst];
            route_links_[src * n + dst] = first_link[dst];
        }
    }
}

void Network::build_hierarchical_routes() {
    const std::size_t n = node_count();

    {
        LBRM_TRACE_SPAN("finalize.site_index");
        // 1. Group nodes into dense site indices (first-appearance order).
        site_tables_.clear();
        node_site_.assign(n, 0);
        node_local_.assign(n, 0);
        std::unordered_map<std::uint32_t, std::uint32_t> site_index;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t key = node_site_id_[i].value();
            auto [it, inserted] = site_index.emplace(
                key, static_cast<std::uint32_t>(site_tables_.size()));
            if (inserted) site_tables_.emplace_back();
            SiteTable& table = site_tables_[it->second];
            node_site_[i] = it->second;
            node_local_[i] = static_cast<std::uint32_t>(table.nodes.size());
            table.nodes.push_back(static_cast<std::uint32_t>(i));
        }
        // Pre-size every row slot now: the parallel workers below then write
        // disjoint slots with no shared mutable state, and lazy builds later
        // fill whichever slot traffic first touches.
        for (SiteTable& table : site_tables_) {
            table.rows.clear();
            table.rows.resize(table.nodes.size());
            table.borders.clear();
        }

        // 2. Border nodes: any node with an inter-site link (ascending index).
        border_nodes_.clear();
        node_border_.assign(n, kNoIndex);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::uint32_t k = csr_offset_[i]; k != csr_offset_[i + 1]; ++k) {
                if (node_site_[csr_to_[k]] != node_site_[i]) {
                    node_border_[i] = static_cast<std::uint32_t>(border_nodes_.size());
                    border_nodes_.push_back(static_cast<std::uint32_t>(i));
                    site_tables_[node_site_[i]].borders.push_back(
                        static_cast<std::uint32_t>(i));
                    break;
                }
            }
        }
        // Border projection of the liveness snapshot: compose_hop must see the
        // state the tables were built under, not later set_node_down
        // transitions (which only take routing effect at the next finalize, in
        // both schemes).
        border_down_.assign(border_nodes_.size(), 0);
        for (std::size_t b = 0; b < border_nodes_.size(); ++b)
            border_down_[b] = route_down_[border_nodes_[b]];
    }

    // 3. Per-site all-pairs rows (serial, parallel or lazy -- identical
    //    bytes either way; see build_site_row).
    build_site_rows();

    // 4. Backbone all-pairs over the border nodes (needs the border rows,
    //    which every mode has built by now).
    build_backbone();
}

void Network::build_site_rows() {
    LBRM_TRACE_SPAN("finalize.site_rows");
    const std::size_t sites = site_tables_.size();
    switch (finalize_mode_) {
        case SimFinalizeMode::kLazy:
            // Only the rows the backbone build needs: one per border node.
            // Everything else materialises on first touch (ensure_row).
            for (std::size_t s = 0; s < sites; ++s)
                for (const std::uint32_t gb : site_tables_[s].borders)
                    build_site_row(static_cast<std::uint32_t>(s), node_local_[gb],
                                   scratch_);
            return;
        case SimFinalizeMode::kParallel: {
            unsigned workers = finalize_threads_ != 0
                                   ? finalize_threads_
                                   : std::thread::hardware_concurrency();
            if (workers == 0) workers = 1;
            workers = static_cast<unsigned>(
                std::min<std::size_t>(workers, std::max<std::size_t>(sites, 1)));
            if (workers > 1) {
                // Sites are independent: each worker claims sites off a
                // shared counter and fills that site's pre-sized row slots.
                // No two threads ever touch the same row, and all shared
                // inputs (CSR, route_down_, site indexing) are read-only.
                std::atomic<std::size_t> next_site{0};
                auto work = [this, &next_site, sites] {
                    LBRM_TRACE_SPAN("finalize.site_rows.worker");
                    DijkstraScratch scratch;
                    for (;;) {
                        const std::size_t s =
                            next_site.fetch_add(1, std::memory_order_relaxed);
                        if (s >= sites) break;
                        const std::size_t m = site_tables_[s].size();
                        for (std::size_t src = 0; src < m; ++src)
                            build_site_row(static_cast<std::uint32_t>(s),
                                           static_cast<std::uint32_t>(src), scratch);
                    }
                };
                std::vector<std::thread> pool;
                pool.reserve(workers - 1);
                for (unsigned t = 1; t < workers; ++t) pool.emplace_back(work);
                work();
                for (std::thread& t : pool) t.join();
                return;
            }
            [[fallthrough]];
        }
        case SimFinalizeMode::kSerial:
            for (std::size_t s = 0; s < sites; ++s) {
                const std::size_t m = site_tables_[s].size();
                for (std::size_t src = 0; src < m; ++src)
                    build_site_row(static_cast<std::uint32_t>(s),
                                   static_cast<std::uint32_t>(src), scratch_);
            }
            return;
    }
}

void Network::build_site_row(std::uint32_t site, std::uint32_t src_local,
                             DijkstraScratch& s) {
    SiteTable& table = site_tables_[site];
    const std::size_t m = table.size();
    s.dist.assign(m, kInfDist);
    s.first_hop.assign(m, kNoIndex);
    s.first_link.assign(m, nullptr);
    s.dist[src_local] = 0;
    s.pq.emplace(0, src_local);

    // Dijkstra over the site's own subgraph (same dead-relay rule as the
    // flat scheme), against the finalize-time adjacency + liveness
    // snapshots -- never live state, so a lazily built row is bit-identical
    // to the same row built eagerly.
    while (!s.pq.empty()) {
        auto [d, u] = s.pq.top();
        s.pq.pop();
        if (d != s.dist[u]) continue;
        const std::uint32_t gu = table.nodes[u];
        if (u != src_local && route_down_[gu]) continue;
        for (std::uint32_t k = csr_offset_[gu]; k != csr_offset_[gu + 1]; ++k) {
            const std::uint32_t gv = csr_to_[k];
            if (node_site_[gv] != site) continue;  // intra only
            const std::uint32_t v = node_local_[gv];
            const std::int64_t w = edge_weight(csr_link_[k]);
            if (d + w < s.dist[v]) {
                s.dist[v] = d + w;
                s.first_hop[v] = (u == src_local) ? gv : s.first_hop[u];
                s.first_link[v] = (u == src_local) ? csr_link_[k] : s.first_link[u];
                s.pq.emplace(s.dist[v], v);
            }
        }
    }

    auto row = std::make_unique<RowCell[]>(m);
    for (std::size_t i = 0; i < m; ++i)
        row[i] = RowCell{s.dist[i], s.first_hop[i], s.first_link[i]};
    table.rows[src_local] = std::move(row);
    rows_built_.fetch_add(1, std::memory_order_relaxed);
}

void Network::build_backbone() {
    LBRM_TRACE_SPAN("finalize.backbone");
    // Backbone all-pairs over the border nodes.  Edges: real inter-site
    // links, plus one virtual edge per same-site border pair weighted by
    // the intra-site distance -- so inter-border travel *through* a site's
    // interior is represented and the composed metric is exact.  The first
    // physical hop of each virtual edge is resolved through the intra-site
    // rows at build time, making descent O(1).
    const std::size_t nb = border_nodes_.size();
    bb_dist_.assign(nb * nb, kInfDist);
    bb_next_node_.assign(nb * nb, kNoIndex);
    bb_next_link_.assign(nb * nb, nullptr);

    std::vector<std::int64_t> bdist(nb);
    std::vector<std::uint32_t> bfirst_node(nb);
    std::vector<Link*> bfirst_link(nb);
    for (std::size_t src = 0; src < nb; ++src) {
        std::fill(bdist.begin(), bdist.end(), kInfDist);
        std::fill(bfirst_node.begin(), bfirst_node.end(), kNoIndex);
        std::fill(bfirst_link.begin(), bfirst_link.end(), nullptr);
        bdist[src] = 0;

        using QE = std::pair<std::int64_t, std::uint32_t>;  // (distance, border index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));
        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != bdist[u]) continue;
            const std::uint32_t gu = border_nodes_[u];
            if (u != src && route_down_[gu]) continue;

            // Real inter-site links (adjacency order, as in the flat scheme).
            for (std::uint32_t k = csr_offset_[gu]; k != csr_offset_[gu + 1]; ++k) {
                const std::uint32_t gv = csr_to_[k];
                if (node_site_[gv] == node_site_[gu]) continue;
                const std::uint32_t v = node_border_[gv];  // inter-site => border
                const std::int64_t w = edge_weight(csr_link_[k]);
                if (d + w < bdist[v]) {
                    bdist[v] = d + w;
                    bfirst_node[v] = (u == src) ? gv : bfirst_node[u];
                    bfirst_link[v] = (u == src) ? csr_link_[k] : bfirst_link[u];
                    pq.emplace(bdist[v], v);
                }
            }
            // Virtual intra-site edges to the site's other borders.
            const SiteTable& table = site_tables_[node_site_[gu]];
            const RowCell* row = table.rows[node_local_[gu]].get();
            for (const std::uint32_t gv : table.borders) {
                if (gv == gu) continue;
                const RowCell& cell = row[node_local_[gv]];
                if (cell.dist == kInfDist) continue;
                const std::uint32_t v = node_border_[gv];
                if (d + cell.dist < bdist[v]) {
                    bdist[v] = d + cell.dist;
                    bfirst_node[v] = (u == src) ? cell.next : bfirst_node[u];
                    bfirst_link[v] = (u == src) ? cell.link : bfirst_link[u];
                    pq.emplace(bdist[v], v);
                }
            }
        }
        for (std::size_t dst = 0; dst < nb; ++dst) {
            bb_dist_[src * nb + dst] = bdist[dst];
            bb_next_node_[src * nb + dst] = bfirst_node[dst];
            bb_next_link_[src * nb + dst] = bfirst_link[dst];
        }
    }
}

Network::Hop Network::compose_hop(std::uint32_t from, std::uint32_t to) {
    const std::uint32_t su = node_site_[from];
    const std::uint32_t sv = node_site_[to];
    SiteTable& stu = site_tables_[su];
    SiteTable& stv = site_tables_[sv];
    const std::size_t lu = node_local_[from];
    const std::size_t lv = node_local_[to];
    const std::size_t nb = border_nodes_.size();

    ensure_row(su, static_cast<std::uint32_t>(lu));
    const RowCell* ru = stu.rows[lu].get();

    std::int64_t best = kInfDist;
    Hop choice;

    // Candidate 1: stay inside the shared site.
    if (su == sv) {
        const RowCell& c = ru[lv];
        if (c.dist < kInfDist) {
            best = c.dist;
            choice = Hop{c.next, c.link};
        }
    }

    // Candidate 2: exit via border b1, cross the backbone, enter via b2.
    // (For same-site pairs this also covers leave-and-return paths.)
    // Borders down *at the last finalize* never relay, but may still be
    // the endpoint itself; liveness comes from the border_down_ snapshot,
    // never the live flags, so a mid-run set_node_down leaves routing
    // untouched until re-finalize (matching the flat matrices).  Every row
    // consulted here is either `from`'s own (ensured above) or a border
    // row, which every finalize mode builds eagerly.
    for (const std::uint32_t b1 : stu.borders) {
        if (border_down_[node_border_[b1]] && b1 != from) continue;
        const std::int64_t du = (b1 == from) ? 0 : ru[node_local_[b1]].dist;
        if (du == kInfDist || du >= best) continue;
        const std::size_t row = static_cast<std::size_t>(node_border_[b1]) * nb;
        for (const std::uint32_t b2 : stv.borders) {
            if (border_down_[node_border_[b2]] && b2 != to) continue;
            const std::int64_t bb = bb_dist_[row + node_border_[b2]];
            if (bb == kInfDist) continue;
            const std::int64_t dv =
                (b2 == to) ? 0 : stv.rows[node_local_[b2]][lv].dist;
            if (dv == kInfDist) continue;
            const std::int64_t total = du + bb + dv;
            if (total >= best) continue;
            best = total;
            if (from != b1) {
                const RowCell& c = ru[node_local_[b1]];
                choice = Hop{c.next, c.link};
            } else if (b1 != b2) {
                const std::size_t idx = row + node_border_[b2];
                choice = Hop{bb_next_node_[idx], bb_next_link_[idx]};
            } else {  // from is both exit and entry border: pure intra tail
                const RowCell& c = stv.rows[node_local_[b2]][lv];
                choice = Hop{c.next, c.link};
            }
        }
    }
    return choice;
}

Network::Hop Network::hop_toward(std::uint32_t from, std::uint32_t to) {
    // No finalized_ check here: the traffic entry points enforce it, and
    // in-flight deliveries must keep forwarding on the (stale) tables after
    // a mid-run add_link, exactly as the flat matrices kept serving.
    if (from == to) return Hop{};
    if (built_flat_) {
        const std::size_t n = node_count();
        const std::uint32_t hop = routes_[from * n + to];
        if (hop == 0) return Hop{};
        return Hop{hop - 1, route_links_[from * n + to]};
    }
    // Same-site next hops come straight from the intra-site rows; only
    // cross-site compositions go through the LRU path cache.
    if (node_site_[from] == node_site_[to]) return compose_hop(from, to);

    const std::uint64_t key = path_key(from, to);
    auto it = path_cache_.find(key);
    if (it != path_cache_.end()) {
        path_cache_hits_->inc();
        path_lru_.splice(path_lru_.begin(), path_lru_, it->second.lru);
        return it->second.hop;
    }
    path_cache_misses_->inc();
    const Hop hop = compose_hop(from, to);
    path_lru_.push_front(key);
    path_cache_.emplace(key, PathEntry{hop, path_lru_.begin()});
    if (path_cache_capacity_ != 0 && path_cache_.size() > path_cache_capacity_) {
        path_cache_.erase(path_lru_.back());
        path_lru_.pop_back();
    }
    return hop;
}

void Network::clear_path_cache() {
    path_cache_.clear();
    path_lru_.clear();
}

std::uint64_t Network::routing_table_hash() {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64 offset basis
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFFu;
            h *= 1099511628211ULL;
        }
    };
    auto mix_link = [&mix](const Link* l) {
        mix(l != nullptr ? (static_cast<std::uint64_t>(l->from().value()) << 32) |
                               l->to().value()
                         : 0);
    };
    if (built_flat_) {
        mix(routes_.size());
        for (const std::uint32_t v : routes_) mix(v);
        for (const Link* l : route_links_) mix_link(l);
        return h;
    }
    for (std::size_t s = 0; s < site_tables_.size(); ++s) {
        SiteTable& t = site_tables_[s];
        const std::size_t m = t.size();
        mix(m);
        for (const std::uint32_t v : t.nodes) mix(v);
        for (const std::uint32_t v : t.borders) mix(v);
        for (std::size_t l = 0; l < m; ++l) {
            ensure_row(static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(l));
            const RowCell* row = t.rows[l].get();
            for (std::size_t j = 0; j < m; ++j) {
                mix(static_cast<std::uint64_t>(row[j].dist));
                mix(row[j].next);
                mix_link(row[j].link);
            }
        }
    }
    for (const std::uint32_t v : border_nodes_) mix(v);
    for (const std::uint8_t v : border_down_) mix(v);
    for (const std::int64_t v : bb_dist_) mix(static_cast<std::uint64_t>(v));
    for (const std::uint32_t v : bb_next_node_) mix(v);
    for (const Link* l : bb_next_link_) mix_link(l);
    return h;
}

// ---------------------------------------------------------------------------
// Membership & tree-cache bookkeeping
// ---------------------------------------------------------------------------

Network::GroupRec* Network::find_group(GroupId group) {
    auto it = std::lower_bound(
        groups_.begin(), groups_.end(), group,
        [](const GroupRec& g, GroupId id) { return g.id.value() < id.value(); });
    return (it != groups_.end() && it->id == group) ? &*it : nullptr;
}

void Network::join(GroupId group, NodeId node) {
    auto it = std::lower_bound(
        groups_.begin(), groups_.end(), group,
        [](const GroupRec& g, GroupId id) { return g.id.value() < id.value(); });
    if (it == groups_.end() || it->id != group)
        it = groups_.insert(it, GroupRec{group, {}});
    std::vector<NodeId>& members = it->members;
    // Members stay sorted ascending (the former std::set iteration order).
    // Scenario wiring joins in ascending node order, so the common case is
    // an O(1) append.
    if (members.empty() || members.back() < node) {
        members.push_back(node);
    } else {
        auto mit = std::lower_bound(members.begin(), members.end(), node);
        if (mit == members.end() || *mit != node) members.insert(mit, node);
    }
    invalidate_trees_for(group);
}

void Network::leave(GroupId group, NodeId node) {
    if (GroupRec* g = find_group(group)) {
        auto mit = std::lower_bound(g->members.begin(), g->members.end(), node);
        if (mit != g->members.end() && *mit == node) g->members.erase(mit);
    }
    invalidate_trees_for(group);
}

void Network::invalidate_trees_for(GroupId group) {
    for (auto it = mcast_cache_.begin(); it != mcast_cache_.end();) {
        if ((it->first >> 32) == group.value()) {
            for (TreeSlot& slot : it->second) {
                if (slot.tree) {
                    tree_lru_.erase(slot.lru);
                    slot.tree.reset();
                    --cached_trees_;
                }
            }
            it = mcast_cache_.erase(it);
        } else {
            ++it;
        }
    }
}

void Network::invalidate_all_trees() {
    mcast_cache_.clear();
    tree_lru_.clear();
    cached_trees_ = 0;
}

void Network::enforce_tree_cache_bound() {
    if (tree_cache_capacity_ == 0) return;
    while (cached_trees_ > tree_cache_capacity_) {
        const TreeRef victim = tree_lru_.back();
        tree_lru_.pop_back();
        auto it = mcast_cache_.find(victim.key);
        auto& by_scope = it->second;
        by_scope[victim.scope].tree.reset();
        --cached_trees_;
        const bool empty = std::none_of(by_scope.begin(), by_scope.end(),
                                        [](const TreeSlot& s) { return bool(s.tree); });
        if (empty) mcast_cache_.erase(it);
    }
}

void Network::set_tree_cache_capacity(std::size_t capacity) {
    tree_cache_capacity_ = capacity;
    enforce_tree_cache_bound();
}

std::size_t Network::tree_cache_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, by_scope] : mcast_cache_) {
        total += sizeof(key) + sizeof(by_scope) + 16;  // node + bucket overhead
        for (const TreeSlot& slot : by_scope)
            if (slot.tree) total += slot.tree->bytes() + sizeof(TreeRef) + 16;
    }
    return total;
}

SimHost& Network::attach_host(NodeId node) {
    const std::size_t i = index(node);
    if (node_host_.size() < node_count()) node_host_.resize(node_count(), nullptr);
    if (node_host_[i] == nullptr)
        node_host_[i] = &host_arena_.emplace_back(*this, simulator_, node);
    return *node_host_[i];
}

SimHost* Network::host(NodeId node) {
    const std::size_t i = index(node);
    return i < node_host_.size() ? node_host_[i] : nullptr;
}

void Network::deliver_local(NodeId node, const Packet& packet) {
    const std::size_t i = index(node);
    if (node_down_[i] != 0) return;
    SimHost* h = i < node_host_.size() ? node_host_[i] : nullptr;
    if (h != nullptr) {
        deliveries_made_->inc();
        h->deliver(simulator_.now(), packet);
    }
}

// ---------------------------------------------------------------------------
// Link burst batching (DESIGN.md "Link burst batching")
// ---------------------------------------------------------------------------

void Network::schedule_arrival(Link* l, bool was_busy, TimePoint arrival,
                               DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (!was_busy) {
        simulator_.schedule_at(arrival,
                               [d, hop, kind] { dispatch_arrival(d, hop, kind); });
        return;
    }
    // The packet queued behind earlier traffic: park the arrival in the
    // link's FIFO under the tiebreak an immediate schedule would have used,
    // so the drain event fires it at the exact (time, order) position of
    // the unbatched path.
    batched_arrivals_->inc();
    const std::uint64_t tiebreak = simulator_.reserve_tiebreak();
    if (l->drain_slot() == 0)
        l->set_drain_slot(simulator_.create_recurring([this, l] { drain_link(l); }));
    l->push_pending(arrival, tiebreak, d, hop, static_cast<std::uint8_t>(kind));
    if (!l->drain_armed()) {
        l->set_drain_armed(true);
        simulator_.arm_recurring(l->drain_slot(), arrival, tiebreak);
    }
}

void Network::drain_link(Link* l) {
    if (!l->drain_armed() || !l->has_pending()) return;
    batch_drains_->inc();
    const Link::PendingArrival entry = l->pop_pending();
    // Re-arm for the next pending arrival *before* resuming the delivery:
    // it may transmit on this same link, and any arrival it parks is later
    // than everything already in the FIFO (the busy horizon only moves
    // forward), so the FIFO stays sorted and the armed entry is always the
    // head.
    if (l->has_pending()) {
        const Link::PendingArrival& next = l->front_pending();
        simulator_.arm_recurring(l->drain_slot(), next.at, next.tiebreak);
    } else {
        l->set_drain_armed(false);
    }
    dispatch_arrival(static_cast<DeliveryBase*>(entry.delivery), entry.hop,
                     static_cast<ArrivalKind>(entry.kind));
}

// ---------------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------------

struct Network::UnicastDelivery final : DeliveryBase {
    UnicastDelivery(Network& n, const Packet& p, std::uint32_t to_index)
        : DeliveryBase(n), packet(p), bytes(encoded_size(p)), type(p.type()),
          to(to_index), hops_left(static_cast<std::uint32_t>(n.node_count())) {}

    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t to;         ///< destination node index
    std::uint32_t hops_left;  ///< loop guard (see forward_unicast)
};

// Delivery records come from the burst-scoped bump arena when enabled (the
// flag is sampled per record, so a mid-run toggle leaves in-flight records
// on their original backing).
template <typename T, typename... Args>
T* Network::make_delivery(Args&&... args) {
    if (!arena_enabled_) return new T(std::forward<Args>(args)...);
    void* p = delivery_arena_.allocate(sizeof(T), alignof(T));
    T* d = new (p) T(std::forward<Args>(args)...);
    d->arena_backed = true;
    return d;
}

void Network::unicast(NodeId from, NodeId to, const Packet& packet) {
    if (node_down_[index(from)] != 0) return;
    if (from != to && !finalized_)
        throw std::logic_error("Network: finalize() before sending traffic");
    unicast_sends_->inc();
    auto* d = make_delivery<UnicastDelivery>(*this, packet,
                                             static_cast<std::uint32_t>(index(to)));
    track(d);
    if (from == to) {  // local delivery without touching the network
        simulator_.schedule_in(Duration::zero(),
                               [d, at = d->to] { d->net.unicast_arrive(d, at); });
        return;
    }
    forward_unicast(d, static_cast<std::uint32_t>(index(from)));
}

void Network::forward_unicast(UnicastDelivery* d, std::uint32_t at) {
    // Loop guard: any consistent table walk reaches its destination within
    // n-1 hops, but a mid-flight re-finalize can mix hops from the old and
    // new tables into a cycle, so the budget caps the walk (build_tree has
    // the same guard on its path collection).
    if (d->hops_left == 0) {
        destroy(d);
        return;
    }
    --d->hops_left;
    const Hop h = hop_toward(at, d->to);
    if (h.link == nullptr) {  // unreachable
        destroy(d);
        return;
    }
    const bool was_busy = batching_enabled_ && h.link->busy(simulator_.now());
    auto arrival = h.link->transmit(rng_, simulator_.now(), d->bytes, d->type);
    if (tap_) tap_(simulator_.now(), *h.link, d->packet, arrival.has_value());
    if (!arrival) {
        destroy(d);
        return;
    }
    schedule_arrival(h.link, was_busy, *arrival, d, h.next, ArrivalKind::kUnicast);
}

void Network::unicast_arrive(UnicastDelivery* d, std::uint32_t at) {
    if (node_down_[at] != 0) {
        destroy(d);
        return;
    }
    if (at == d->to) {
        deliver_local(NodeId{at + 1}, d->packet);
        destroy(d);
        return;
    }
    forward_unicast(d, at);
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

struct Network::TreeDelivery final : DeliveryBase {
    TreeDelivery(Network& n, std::shared_ptr<const CachedTree> t, const Packet& p)
        : DeliveryBase(n), tree(std::move(t)), packet(p), bytes(encoded_size(p)),
          type(p.type()) {}

    std::shared_ptr<const CachedTree> tree;  ///< pins the tree across invalidation
    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t pending = 1;  ///< outstanding events + the sending frame
};

std::shared_ptr<const Network::CachedTree> Network::build_tree(
    NodeId from, const std::vector<NodeId>& members, McastScope scope) {
    LBRM_TRACE_SPAN("tree_build");
    std::chrono::steady_clock::time_point t0{};
    if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
    const std::size_t n = node_count();
    auto tree = std::make_shared<CachedTree>();

    // Scratch: node index -> tree entry slot, generation-marked.
    if (tree_mark_.size() != n) {
        tree_mark_.assign(n, 0);
        tree_slot_.assign(n, 0);
        tree_epoch_ = 0;
    }
    if (++tree_epoch_ == 0) {  // generation counter wrapped: hard reset
        std::fill(tree_mark_.begin(), tree_mark_.end(), 0u);
        tree_epoch_ = 1;
    }

    std::vector<std::pair<std::uint32_t, std::uint8_t>> entries;  // (node, member)
    std::vector<std::vector<CachedTree::Child>> kids;  // per entry, insertion order
    auto slot_of = [&](std::uint32_t node) {
        if (tree_mark_[node] != tree_epoch_) {
            tree_mark_[node] = tree_epoch_;
            tree_slot_[node] = static_cast<std::uint32_t>(entries.size());
            entries.emplace_back(node, 0);
            kids.emplace_back();
        }
        return tree_slot_[node];
    };

    const std::uint32_t from_index = static_cast<std::uint32_t>(index(from));
    slot_of(from_index);  // root = entry 0

    // Hop budget per scope: site scope is bounded by the site-containment
    // check below (a site never spans more hops than its own LAN); region
    // scope reaches adjacent sites through the backbone, up to 4 hops;
    // global scope is unbounded.
    const SiteId sender_site = site_of(from);
    const std::size_t hop_limit = scope == McastScope::kRegion
                                      ? 4u
                                      : std::numeric_limits<std::size_t>::max();

    std::vector<std::uint32_t> path;
    std::vector<Link*> path_links;
    for (NodeId member : members) {
        if (member == from || node_down_[index(member)] != 0) continue;
        if (scope == McastScope::kSite && site_of(member) != sender_site) continue;

        // Walk the route hop by hop; collect the node chain and its links.
        const std::uint32_t member_index = static_cast<std::uint32_t>(index(member));
        path.assign(1, from_index);
        path_links.clear();
        std::uint32_t at = from_index;
        bool reachable = true;
        while (at != member_index) {
            const Hop h = hop_toward(at, member_index);
            if (h.next == kNoIndex) {
                reachable = false;
                break;
            }
            path.push_back(h.next);
            path_links.push_back(h.link);
            at = h.next;
            if (path.size() > n) {
                reachable = false;  // routing loop guard
                break;
            }
        }
        if (!reachable || path.size() - 1 > hop_limit) continue;
        if (scope == McastScope::kSite) {
            bool stays = true;
            for (std::uint32_t node : path)
                if (node_site_id_[node] != sender_site) stays = false;
            if (!stays) continue;
        }

        entries[slot_of(member_index)].second = 1;
        tree->any_members = true;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const std::uint32_t parent = slot_of(path[i]);
            const std::uint32_t child = slot_of(path[i + 1]);
            auto& siblings = kids[parent];
            if (std::find_if(siblings.begin(), siblings.end(),
                             [child](const CachedTree::Child& c) {
                                 return c.entry == child;
                             }) == siblings.end())
                siblings.push_back(CachedTree::Child{child, path_links[i]});
        }
    }

    // Flatten to CSR, preserving per-node child insertion order (the
    // delivery transmit order, and hence the RNG draw order).
    tree->nodes.reserve(entries.size());
    std::size_t child_count = 0;
    for (const auto& k : kids) child_count += k.size();
    tree->children.reserve(child_count);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        CachedTree::Node node;
        node.node = entries[i].first;
        node.member = entries[i].second;
        node.child_begin = static_cast<std::uint32_t>(tree->children.size());
        tree->children.insert(tree->children.end(), kids[i].begin(), kids[i].end());
        node.child_end = static_cast<std::uint32_t>(tree->children.size());
        tree->nodes.push_back(node);
    }

    tree_builds_->inc();
    if constexpr (obs::kTelemetryEnabled) {
        tree_build_ns_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
    return tree;
}

void Network::multicast(NodeId from, const Packet& packet, McastScope scope) {
    if (!finalized_) throw std::logic_error("Network: finalize() before sending traffic");
    if (node_down_[index(from)] != 0) return;
    const GroupRec* group = find_group(packet.header.group);
    if (group == nullptr) return;
    multicast_sends_->inc();

    const std::uint64_t key = tree_key(packet.header.group, from);
    auto& by_scope = mcast_cache_[key];
    TreeSlot& slot = by_scope[static_cast<std::size_t>(scope)];
    if (!slot.tree) {
        slot.tree = build_tree(from, group->members, scope);
        tree_lru_.push_front(TreeRef{key, static_cast<std::uint8_t>(scope)});
        slot.lru = tree_lru_.begin();
        ++cached_trees_;
        enforce_tree_cache_bound();  // never evicts the just-inserted head
    } else {
        tree_cache_hits_->inc();
        tree_lru_.splice(tree_lru_.begin(), tree_lru_, slot.lru);
    }
    const std::shared_ptr<const CachedTree> tree = slot.tree;
    if (!tree->any_members) return;

    auto* d = make_delivery<TreeDelivery>(*this, tree, packet);
    track(d);
    multicast_step(d, 0);  // entry 0 = the sender
    unref(d);  // drop the sending frame's reference
}

void Network::multicast_step(TreeDelivery* d, std::uint32_t at) {
    const CachedTree::Node& node = d->tree->nodes[at];
    // Per-(site, packet) delivery batching: consecutive children whose
    // copies all arrive at the same instant on idle links (the common case:
    // a site router fanning one packet out to its LAN receivers over
    // identical, idle links) share ONE event that replays the run in child
    // order, instead of one event each.  Bit-identity argument: the
    // per-child events would receive consecutive tiebreaks with nothing
    // interleaved (only this loop consumes tiebreaks, and parked/dropped
    // children flush the run first), so they would pop back to back at the
    // same instant; multicast_arrive_run processes the same children in the
    // same order at that instant.  Consuming one tiebreak instead of k
    // preserves every relative (time, seq) order, because tiebreaks are
    // compared only between equal timestamps and stay monotone.
    std::uint32_t run_begin = 0;
    std::uint32_t run_len = 0;
    TimePoint run_at = time_zero();
    auto flush_run = [&] {
        if (run_len == 0) return;
        if (run_len == 1) {
            const std::uint32_t hop = d->tree->children[run_begin].entry;
            simulator_.schedule_at(run_at, [d, hop] {
                dispatch_arrival(d, hop, ArrivalKind::kMulticast);
            });
        } else {
            batched_runs_->inc();
            simulator_.schedule_at(run_at, [d, c0 = run_begin, n = run_len] {
                d->net.multicast_arrive_run(d, c0, n);
            });
        }
        run_len = 0;
    };
    for (std::uint32_t c = node.child_begin; c != node.child_end; ++c) {
        const CachedTree::Child& child = d->tree->children[c];
        const bool busy = child.link->busy(simulator_.now());
        auto arrival = child.link->transmit(rng_, simulator_.now(), d->bytes, d->type);
        if (tap_) tap_(simulator_.now(), *child.link, d->packet, arrival.has_value());
        if (!arrival) {
            flush_run();  // a dropped child splits the contiguous run
            continue;
        }
        ++d->pending;
        if (!delivery_batching_ || busy) {
            // A busy link always splits the run and takes the per-child
            // path, whether or not FIFO parking is on -- run formation must
            // not depend on the FIFO mode, or the two modes stop being
            // event-count-identical (BurstBatching tests).  FIFO parking
            // reserves the next tiebreak, so the run is emitted first to
            // keep tiebreak consumption in child order.
            flush_run();
            schedule_arrival(child.link, batching_enabled_ && busy, *arrival, d,
                             child.entry, ArrivalKind::kMulticast);
            continue;
        }
        if (run_len != 0 && *arrival == run_at) {
            ++run_len;
        } else {
            flush_run();
            run_begin = c;
            run_len = 1;
            run_at = *arrival;
        }
    }
    flush_run();
}

void Network::multicast_arrive_run(TreeDelivery* d, std::uint32_t child_begin,
                                   std::uint32_t count) {
    // Each child in the run holds one `pending` reference, so `d` (and the
    // tree it pins) outlives every iteration.
    for (std::uint32_t i = 0; i < count; ++i)
        multicast_arrive(d, d->tree->children[child_begin + i].entry);
}

void Network::multicast_arrive(TreeDelivery* d, std::uint32_t at) {
    const CachedTree::Node& node = d->tree->nodes[at];
    if (node_down_[node.node] == 0) {
        if (node.member) deliver_local(NodeId{node.node + 1}, d->packet);
        multicast_step(d, at);
    }
    unref(d);
}

void Network::unref(TreeDelivery* d) {
    if (--d->pending == 0) destroy(d);
}

// Defined here, after both delivery types are complete.
void Network::dispatch_arrival(DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (kind == ArrivalKind::kMulticast)
        d->net.multicast_arrive(static_cast<TreeDelivery*>(d), hop);
    else
        d->net.unicast_arrive(static_cast<UnicastDelivery*>(d), hop);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t Network::routing_table_bytes() const {
    if (built_flat_)
        return routes_.capacity() * sizeof(std::uint32_t) +
               route_links_.capacity() * sizeof(Link*);

    std::size_t total = 0;
    for (const SiteTable& t : site_tables_) {
        total += t.nodes.capacity() * sizeof(std::uint32_t) +
                 t.borders.capacity() * sizeof(std::uint32_t) +
                 t.rows.capacity() * sizeof(std::unique_ptr<RowCell[]>) +
                 sizeof(SiteTable);
        for (const auto& row : t.rows)
            if (row) total += t.size() * sizeof(RowCell);
    }
    total += node_site_.capacity() * sizeof(std::uint32_t) +
             node_local_.capacity() * sizeof(std::uint32_t) +
             border_nodes_.capacity() * sizeof(std::uint32_t) +
             node_border_.capacity() * sizeof(std::uint32_t) +
             route_down_.capacity() * sizeof(std::uint8_t) +
             border_down_.capacity() * sizeof(std::uint8_t);
    total += bb_dist_.capacity() * sizeof(std::int64_t) +
             bb_next_node_.capacity() * sizeof(std::uint32_t) +
             bb_next_link_.capacity() * sizeof(Link*);
    // Path cache: entry + key + list node + hash-table overhead estimate.
    total += path_cache_.size() *
             (sizeof(std::uint64_t) * 2 + sizeof(PathEntry) + 2 * sizeof(void*) + 16);
    return total;
}

std::uint64_t Network::count_packets(PacketType type,
                                     const std::function<bool(const Link&)>& pred) const {
    std::uint64_t total = 0;
    for (const Cable& c : cables_)
        for (const Link& l : c.dir)
            if (!pred || pred(l)) total += l.stats().packets_of(type);
    return total;
}

void Network::reset_link_stats() {
    for (Cable& c : cables_)
        for (Link& l : c.dir) l.reset_stats();
}

}  // namespace lbrm::sim
