#include "sim/network.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>

#include "sim/sim_host.hpp"

namespace lbrm::sim {

namespace {

constexpr std::int64_t kInfDist = std::numeric_limits<std::int64_t>::max();

/// Edge weight: propagation + 1 microsecond hop penalty (prefers fewer
/// hops between equal-latency paths, keeping routes deterministic).  The
/// flat and hierarchical schemes share this metric exactly, which makes
/// their paths identical whenever shortest paths are unique under it;
/// equal-cost multipaths may tie-break differently between the schemes
/// (DESIGN.md "Hierarchical routing", tie-breaking).
[[nodiscard]] std::int64_t edge_weight(const Link* l) {
    return l->spec().propagation.count() + 1000;
}

/// Multicast-tree cache key: (group id, sender id) packed into 64 bits.
[[nodiscard]] std::uint64_t tree_key(GroupId group, NodeId sender) {
    return (static_cast<std::uint64_t>(group.value()) << 32) | sender.value();
}

/// Path-cache key: (from node index, to node index) packed into 64 bits.
[[nodiscard]] std::uint64_t path_key(std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

Network::Network(Simulator& simulator, std::uint64_t seed, SimConfig config)
    : simulator_(simulator), rng_(seed),
      path_cache_capacity_(config.path_cache_capacity),
      tree_cache_capacity_(config.tree_cache_capacity),
      flat_routes_requested_(config.flat_routes ||
                             std::getenv("LBRM_SIM_FLAT_ROUTES") != nullptr),
      batching_enabled_(std::getenv("LBRM_SIM_NO_BATCH") == nullptr) {}

Network::~Network() {
    while (deliveries_ != nullptr) destroy(deliveries_);
}

void Network::track(DeliveryBase* d) {
    d->next = deliveries_;
    if (deliveries_ != nullptr) deliveries_->prev = d;
    deliveries_ = d;
}

void Network::destroy(DeliveryBase* d) {
    if (d->prev != nullptr) d->prev->next = d->next;
    if (d->next != nullptr) d->next->prev = d->prev;
    if (deliveries_ == d) deliveries_ = d->next;
    delete d;
}

void Network::reserve(std::size_t nodes, std::size_t directed_links) {
    nodes_.reserve(nodes);
    links_.reserve(directed_links);
}

NodeId Network::add_node(SiteId site, bool is_router) {
    NodeRec record;
    record.site = site;
    record.is_router = is_router;
    nodes_.push_back(std::move(record));
    finalized_ = false;
    return NodeId{static_cast<std::uint32_t>(nodes_.size())};
}

void Network::add_link(NodeId a, NodeId b, const LinkSpec& spec) {
    if (index(a) >= nodes_.size() || index(b) >= nodes_.size() || a == b)
        throw std::invalid_argument("Network::add_link: bad endpoints");
    auto install = [this, &spec](NodeId from, NodeId to) {
        if (Link* existing = link(from, to)) {
            existing->respec(spec);
            return;
        }
        links_.push_back(std::make_unique<Link>(from, to, spec));
        rec(from).out_links.push_back(
            OutEdge{static_cast<std::uint32_t>(index(to)), links_.back().get()});
    };
    install(a, b);
    install(b, a);
    // A changed edge can invalidate any cached tree or cached path, so both
    // caches drop immediately -- not just at the next finalize().  In-flight
    // deliveries keep their pinned trees and complete on the pre-change
    // routes, as before.
    invalidate_all_trees();
    clear_path_cache();
    finalized_ = false;
}

void Network::set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model) {
    Link* l = link(a, b);
    if (l == nullptr) throw std::invalid_argument("Network::set_loss: no such link");
    l->set_loss_model(std::move(model));
}

void Network::set_node_down(NodeId node, bool down) {
    if (rec(node).down != down) invalidate_all_trees();
    rec(node).down = down;
    // The path cache is untouched: routes are a pure function of the
    // tables built at the last finalize() -- the flat matrices bake
    // liveness into the Dijkstra runs, and compose_hop consults the
    // border_down_ snapshot taken by build_hierarchical_routes, never the
    // live flags -- so a downed relay blackholes until re-finalize, like
    // an unconverged routing protocol, and cache occupancy can never
    // change outcomes.  Trees must drop because membership pruning *does*
    // consult liveness at build time.
}

Link* Network::link(NodeId a, NodeId b) {
    const std::uint32_t want = static_cast<std::uint32_t>(index(b));
    for (const OutEdge& e : rec(a).out_links)
        if (e.to == want) return e.link;
    return nullptr;
}

const Link* Network::link(NodeId a, NodeId b) const {
    const std::uint32_t want = static_cast<std::uint32_t>(index(b));
    for (const OutEdge& e : rec(a).out_links)
        if (e.to == want) return e.link;
    return nullptr;
}

SiteId Network::site_of(NodeId node) const { return rec(node).site; }

// ---------------------------------------------------------------------------
// Routing: finalize() builds either the flat matrices or the hierarchical
// site/backbone tables (DESIGN.md "Hierarchical routing").
// ---------------------------------------------------------------------------

void Network::finalize() {
    invalidate_all_trees();
    clear_path_cache();
    built_flat_ = flat_routes_requested_;
    if (built_flat_) {
        // Release the hierarchical tables (mode may have flipped).
        std::vector<SiteTable>().swap(site_tables_);
        std::vector<std::uint32_t>().swap(node_site_);
        std::vector<std::uint32_t>().swap(node_local_);
        std::vector<std::uint32_t>().swap(border_nodes_);
        std::vector<std::uint32_t>().swap(node_border_);
        std::vector<std::uint8_t>().swap(border_down_);
        std::vector<std::int64_t>().swap(bb_dist_);
        std::vector<std::uint32_t>().swap(bb_next_node_);
        std::vector<Link*>().swap(bb_next_link_);
        build_flat_routes();
    } else {
        std::vector<std::uint32_t>().swap(routes_);
        std::vector<Link*>().swap(route_links_);
        build_hierarchical_routes();
    }
    finalized_ = true;
}

void Network::build_flat_routes() {
    const std::size_t n = nodes_.size();
    routes_.assign(n * n, 0);
    route_links_.assign(n * n, nullptr);

    // Dijkstra from every node.  A down node may still be an endpoint but
    // never relays: its edges are not expanded unless it is the source.
    std::vector<std::int64_t> dist(n);
    std::vector<std::uint32_t> first_hop(n);
    std::vector<Link*> first_link(n);

    for (std::size_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInfDist);
        std::fill(first_hop.begin(), first_hop.end(), 0u);
        std::fill(first_link.begin(), first_link.end(), nullptr);
        dist[src] = 0;

        using QE = std::pair<std::int64_t, std::uint32_t>;  // (distance, node index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));

        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != dist[u]) continue;
            if (u != src && nodes_[u].down) continue;  // no transit via dead nodes
            for (const OutEdge& e : nodes_[u].out_links) {
                const std::size_t v = e.to;
                const std::int64_t w = edge_weight(e.link);
                if (d + w < dist[v]) {
                    dist[v] = d + w;
                    first_hop[v] = (u == src) ? static_cast<std::uint32_t>(v + 1)
                                              : first_hop[u];
                    first_link[v] = (u == src) ? e.link : first_link[u];
                    pq.emplace(dist[v], static_cast<std::uint32_t>(v));
                }
            }
        }
        for (std::size_t dst = 0; dst < n; ++dst) {
            routes_[src * n + dst] = first_hop[dst];
            route_links_[src * n + dst] = first_link[dst];
        }
    }
}

void Network::build_hierarchical_routes() {
    const std::size_t n = nodes_.size();

    // 1. Group nodes into dense site indices (first-appearance order).
    site_tables_.clear();
    node_site_.assign(n, 0);
    node_local_.assign(n, 0);
    std::unordered_map<std::uint32_t, std::uint32_t> site_index;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t key = nodes_[i].site.value();
        auto [it, inserted] = site_index.emplace(
            key, static_cast<std::uint32_t>(site_tables_.size()));
        if (inserted) site_tables_.emplace_back();
        SiteTable& table = site_tables_[it->second];
        node_site_[i] = it->second;
        node_local_[i] = static_cast<std::uint32_t>(table.nodes.size());
        table.nodes.push_back(static_cast<std::uint32_t>(i));
    }

    // 2. Border nodes: any node with an inter-site link (ascending index).
    border_nodes_.clear();
    node_border_.assign(n, kNoIndex);
    for (std::size_t i = 0; i < n; ++i) {
        for (const OutEdge& e : nodes_[i].out_links) {
            if (node_site_[e.to] != node_site_[i]) {
                node_border_[i] = static_cast<std::uint32_t>(border_nodes_.size());
                border_nodes_.push_back(static_cast<std::uint32_t>(i));
                site_tables_[node_site_[i]].borders.push_back(
                    static_cast<std::uint32_t>(i));
                break;
            }
        }
    }
    // Snapshot border liveness: compose_hop must see the state the tables
    // were built under, not later set_node_down transitions (which only
    // take routing effect at the next finalize, in both schemes).
    border_down_.assign(border_nodes_.size(), 0);
    for (std::size_t b = 0; b < border_nodes_.size(); ++b)
        border_down_[b] = nodes_[border_nodes_[b]].down ? 1 : 0;

    // 3. Per-site all-pairs tables: Dijkstra from each site node over the
    //    site's own subgraph (same dead-relay rule as the flat scheme).
    std::vector<std::int64_t> dist;
    std::vector<std::uint32_t> first_hop;
    std::vector<Link*> first_link;
    for (SiteTable& table : site_tables_) {
        const std::size_t m = table.size();
        table.dist.assign(m * m, kInfDist);
        table.next.assign(m * m, kNoIndex);
        table.next_link.assign(m * m, nullptr);
        dist.assign(m, kInfDist);
        first_hop.assign(m, kNoIndex);
        first_link.assign(m, nullptr);

        for (std::size_t src = 0; src < m; ++src) {
            std::fill(dist.begin(), dist.end(), kInfDist);
            std::fill(first_hop.begin(), first_hop.end(), kNoIndex);
            std::fill(first_link.begin(), first_link.end(), nullptr);
            dist[src] = 0;

            using QE = std::pair<std::int64_t, std::uint32_t>;  // (distance, local index)
            std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
            pq.emplace(0, static_cast<std::uint32_t>(src));
            while (!pq.empty()) {
                auto [d, u] = pq.top();
                pq.pop();
                if (d != dist[u]) continue;
                const std::uint32_t gu = table.nodes[u];
                if (u != src && nodes_[gu].down) continue;
                for (const OutEdge& e : nodes_[gu].out_links) {
                    if (node_site_[e.to] != node_site_[gu]) continue;  // intra only
                    const std::uint32_t v = node_local_[e.to];
                    const std::int64_t w = edge_weight(e.link);
                    if (d + w < dist[v]) {
                        dist[v] = d + w;
                        first_hop[v] = (u == src) ? e.to : first_hop[u];
                        first_link[v] = (u == src) ? e.link : first_link[u];
                        pq.emplace(dist[v], v);
                    }
                }
            }
            for (std::size_t dst = 0; dst < m; ++dst) {
                table.dist[src * m + dst] = dist[dst];
                table.next[src * m + dst] = first_hop[dst];
                table.next_link[src * m + dst] = first_link[dst];
            }
        }
    }

    // 4. Backbone all-pairs over the border nodes.  Edges: real inter-site
    //    links, plus one virtual edge per same-site border pair weighted by
    //    the intra-site distance -- so inter-border travel *through* a
    //    site's interior is represented and the composed metric is exact.
    //    The first physical hop of each virtual edge is resolved through
    //    the intra-site table at build time, making descent O(1).
    const std::size_t nb = border_nodes_.size();
    bb_dist_.assign(nb * nb, kInfDist);
    bb_next_node_.assign(nb * nb, kNoIndex);
    bb_next_link_.assign(nb * nb, nullptr);

    std::vector<std::int64_t> bdist(nb);
    std::vector<std::uint32_t> bfirst_node(nb);
    std::vector<Link*> bfirst_link(nb);
    for (std::size_t src = 0; src < nb; ++src) {
        std::fill(bdist.begin(), bdist.end(), kInfDist);
        std::fill(bfirst_node.begin(), bfirst_node.end(), kNoIndex);
        std::fill(bfirst_link.begin(), bfirst_link.end(), nullptr);
        bdist[src] = 0;

        using QE = std::pair<std::int64_t, std::uint32_t>;  // (distance, border index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));
        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != bdist[u]) continue;
            const std::uint32_t gu = border_nodes_[u];
            if (u != src && nodes_[gu].down) continue;

            // Real inter-site links (adjacency order, as in the flat scheme).
            for (const OutEdge& e : nodes_[gu].out_links) {
                if (node_site_[e.to] == node_site_[gu]) continue;
                const std::uint32_t v = node_border_[e.to];  // inter-site => border
                const std::int64_t w = edge_weight(e.link);
                if (d + w < bdist[v]) {
                    bdist[v] = d + w;
                    bfirst_node[v] = (u == src) ? e.to : bfirst_node[u];
                    bfirst_link[v] = (u == src) ? e.link : bfirst_link[u];
                    pq.emplace(bdist[v], v);
                }
            }
            // Virtual intra-site edges to the site's other borders.
            const SiteTable& table = site_tables_[node_site_[gu]];
            const std::size_t m = table.size();
            const std::size_t lu = node_local_[gu];
            for (const std::uint32_t gv : table.borders) {
                if (gv == gu) continue;
                const std::int64_t w = table.dist[lu * m + node_local_[gv]];
                if (w == kInfDist) continue;
                const std::uint32_t v = node_border_[gv];
                if (d + w < bdist[v]) {
                    bdist[v] = d + w;
                    bfirst_node[v] = (u == src)
                                         ? table.next[lu * m + node_local_[gv]]
                                         : bfirst_node[u];
                    bfirst_link[v] = (u == src)
                                         ? table.next_link[lu * m + node_local_[gv]]
                                         : bfirst_link[u];
                    pq.emplace(bdist[v], v);
                }
            }
        }
        for (std::size_t dst = 0; dst < nb; ++dst) {
            bb_dist_[src * nb + dst] = bdist[dst];
            bb_next_node_[src * nb + dst] = bfirst_node[dst];
            bb_next_link_[src * nb + dst] = bfirst_link[dst];
        }
    }
}

Network::Hop Network::compose_hop(std::uint32_t from, std::uint32_t to) const {
    const std::uint32_t su = node_site_[from];
    const std::uint32_t sv = node_site_[to];
    const SiteTable& stu = site_tables_[su];
    const SiteTable& stv = site_tables_[sv];
    const std::size_t mu = stu.size();
    const std::size_t mv = stv.size();
    const std::size_t lu = node_local_[from];
    const std::size_t lv = node_local_[to];
    const std::size_t nb = border_nodes_.size();

    std::int64_t best = kInfDist;
    Hop choice;

    // Candidate 1: stay inside the shared site.
    if (su == sv) {
        const std::int64_t d = stu.dist[lu * mu + lv];
        if (d < kInfDist) {
            best = d;
            choice = Hop{stu.next[lu * mu + lv], stu.next_link[lu * mu + lv]};
        }
    }

    // Candidate 2: exit via border b1, cross the backbone, enter via b2.
    // (For same-site pairs this also covers leave-and-return paths.)
    // Borders down *at the last finalize* never relay, but may still be
    // the endpoint itself; liveness comes from the border_down_ snapshot,
    // never the live flags, so a mid-run set_node_down leaves routing
    // untouched until re-finalize (matching the flat matrices).
    for (const std::uint32_t b1 : stu.borders) {
        if (border_down_[node_border_[b1]] && b1 != from) continue;
        const std::int64_t du = (b1 == from) ? 0 : stu.dist[lu * mu + node_local_[b1]];
        if (du == kInfDist || du >= best) continue;
        const std::size_t row = node_border_[b1] * nb;
        for (const std::uint32_t b2 : stv.borders) {
            if (border_down_[node_border_[b2]] && b2 != to) continue;
            const std::int64_t bb = bb_dist_[row + node_border_[b2]];
            if (bb == kInfDist) continue;
            const std::int64_t dv =
                (b2 == to) ? 0 : stv.dist[node_local_[b2] * mv + lv];
            if (dv == kInfDist) continue;
            const std::int64_t total = du + bb + dv;
            if (total >= best) continue;
            best = total;
            if (from != b1) {
                const std::size_t idx = lu * mu + node_local_[b1];
                choice = Hop{stu.next[idx], stu.next_link[idx]};
            } else if (b1 != b2) {
                const std::size_t idx = row + node_border_[b2];
                choice = Hop{bb_next_node_[idx], bb_next_link_[idx]};
            } else {  // from is both exit and entry border: pure intra tail
                const std::size_t idx = node_local_[b2] * mv + lv;
                choice = Hop{stv.next[idx], stv.next_link[idx]};
            }
        }
    }
    return choice;
}

Network::Hop Network::hop_toward(std::uint32_t from, std::uint32_t to) {
    // No finalized_ check here: the traffic entry points enforce it, and
    // in-flight deliveries must keep forwarding on the (stale) tables after
    // a mid-run add_link, exactly as the flat matrices kept serving.
    if (from == to) return Hop{};
    if (built_flat_) {
        const std::size_t n = nodes_.size();
        const std::uint32_t hop = routes_[from * n + to];
        if (hop == 0) return Hop{};
        return Hop{hop - 1, route_links_[from * n + to]};
    }
    // Same-site next hops come straight from the intra-site matrices; only
    // cross-site compositions go through the LRU path cache.
    if (node_site_[from] == node_site_[to]) return compose_hop(from, to);

    const std::uint64_t key = path_key(from, to);
    auto it = path_cache_.find(key);
    if (it != path_cache_.end()) {
        path_lru_.splice(path_lru_.begin(), path_lru_, it->second.lru);
        return it->second.hop;
    }
    const Hop hop = compose_hop(from, to);
    path_lru_.push_front(key);
    path_cache_.emplace(key, PathEntry{hop, path_lru_.begin()});
    if (path_cache_capacity_ != 0 && path_cache_.size() > path_cache_capacity_) {
        path_cache_.erase(path_lru_.back());
        path_lru_.pop_back();
    }
    return hop;
}

void Network::clear_path_cache() {
    path_cache_.clear();
    path_lru_.clear();
}

// ---------------------------------------------------------------------------
// Membership & tree-cache bookkeeping
// ---------------------------------------------------------------------------

void Network::join(GroupId group, NodeId node) {
    groups_[group].insert(node);
    invalidate_trees_for(group);
}

void Network::leave(GroupId group, NodeId node) {
    auto it = groups_.find(group);
    if (it != groups_.end()) it->second.erase(node);
    invalidate_trees_for(group);
}

void Network::invalidate_trees_for(GroupId group) {
    for (auto it = mcast_cache_.begin(); it != mcast_cache_.end();) {
        if ((it->first >> 32) == group.value()) {
            for (TreeSlot& slot : it->second) {
                if (slot.tree) {
                    tree_lru_.erase(slot.lru);
                    slot.tree.reset();
                    --cached_trees_;
                }
            }
            it = mcast_cache_.erase(it);
        } else {
            ++it;
        }
    }
}

void Network::invalidate_all_trees() {
    mcast_cache_.clear();
    tree_lru_.clear();
    cached_trees_ = 0;
}

void Network::enforce_tree_cache_bound() {
    if (tree_cache_capacity_ == 0) return;
    while (cached_trees_ > tree_cache_capacity_) {
        const TreeRef victim = tree_lru_.back();
        tree_lru_.pop_back();
        auto it = mcast_cache_.find(victim.key);
        auto& by_scope = it->second;
        by_scope[victim.scope].tree.reset();
        --cached_trees_;
        const bool empty = std::none_of(by_scope.begin(), by_scope.end(),
                                        [](const TreeSlot& s) { return bool(s.tree); });
        if (empty) mcast_cache_.erase(it);
    }
}

void Network::set_tree_cache_capacity(std::size_t capacity) {
    tree_cache_capacity_ = capacity;
    enforce_tree_cache_bound();
}

std::size_t Network::tree_cache_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, by_scope] : mcast_cache_) {
        total += sizeof(key) + sizeof(by_scope) + 16;  // node + bucket overhead
        for (const TreeSlot& slot : by_scope)
            if (slot.tree) total += slot.tree->bytes() + sizeof(TreeRef) + 16;
    }
    return total;
}

SimHost& Network::attach_host(NodeId node) {
    NodeRec& record = rec(node);
    if (!record.host) record.host = std::make_unique<SimHost>(*this, simulator_, node);
    return *record.host;
}

SimHost* Network::host(NodeId node) { return rec(node).host.get(); }

void Network::deliver_local(NodeId node, const Packet& packet) {
    NodeRec& record = rec(node);
    if (record.down || !record.host) return;
    record.host->deliver(simulator_.now(), packet);
}

// ---------------------------------------------------------------------------
// Link burst batching (DESIGN.md "Link burst batching")
// ---------------------------------------------------------------------------

void Network::schedule_arrival(Link* l, bool was_busy, TimePoint arrival,
                               DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (!was_busy) {
        simulator_.schedule_at(arrival,
                               [d, hop, kind] { dispatch_arrival(d, hop, kind); });
        return;
    }
    // The packet queued behind earlier traffic: park the arrival in the
    // link's FIFO under the tiebreak an immediate schedule would have used,
    // so the drain event fires it at the exact (time, order) position of
    // the unbatched path.
    const std::uint64_t tiebreak = simulator_.reserve_tiebreak();
    if (l->drain_slot() == 0)
        l->set_drain_slot(simulator_.create_recurring([this, l] { drain_link(l); }));
    l->push_pending(arrival, tiebreak, d, hop, static_cast<std::uint8_t>(kind));
    if (!l->drain_armed()) {
        l->set_drain_armed(true);
        simulator_.arm_recurring(l->drain_slot(), arrival, tiebreak);
    }
}

void Network::drain_link(Link* l) {
    if (!l->drain_armed() || !l->has_pending()) return;
    const Link::PendingArrival entry = l->pop_pending();
    // Re-arm for the next pending arrival *before* resuming the delivery:
    // it may transmit on this same link, and any arrival it parks is later
    // than everything already in the FIFO (the busy horizon only moves
    // forward), so the FIFO stays sorted and the armed entry is always the
    // head.
    if (l->has_pending()) {
        const Link::PendingArrival& next = l->front_pending();
        simulator_.arm_recurring(l->drain_slot(), next.at, next.tiebreak);
    } else {
        l->set_drain_armed(false);
    }
    dispatch_arrival(static_cast<DeliveryBase*>(entry.delivery), entry.hop,
                     static_cast<ArrivalKind>(entry.kind));
}

// ---------------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------------

struct Network::UnicastDelivery final : DeliveryBase {
    UnicastDelivery(Network& n, const Packet& p, std::uint32_t to_index)
        : DeliveryBase(n), packet(p), bytes(encoded_size(p)), type(p.type()),
          to(to_index), hops_left(static_cast<std::uint32_t>(n.nodes_.size())) {}

    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t to;         ///< destination node index
    std::uint32_t hops_left;  ///< loop guard (see forward_unicast)
};

void Network::unicast(NodeId from, NodeId to, const Packet& packet) {
    if (rec(from).down) return;
    if (from != to && !finalized_)
        throw std::logic_error("Network: finalize() before sending traffic");
    auto* d = new UnicastDelivery(*this, packet, static_cast<std::uint32_t>(index(to)));
    track(d);
    if (from == to) {  // local delivery without touching the network
        simulator_.schedule_in(Duration::zero(),
                               [d, at = d->to] { d->net.unicast_arrive(d, at); });
        return;
    }
    forward_unicast(d, static_cast<std::uint32_t>(index(from)));
}

void Network::forward_unicast(UnicastDelivery* d, std::uint32_t at) {
    // Loop guard: any consistent table walk reaches its destination within
    // n-1 hops, but a mid-flight re-finalize can mix hops from the old and
    // new tables into a cycle, so the budget caps the walk (build_tree has
    // the same guard on its path collection).
    if (d->hops_left == 0) {
        destroy(d);
        return;
    }
    --d->hops_left;
    const Hop h = hop_toward(at, d->to);
    if (h.link == nullptr) {  // unreachable
        destroy(d);
        return;
    }
    const bool was_busy = batching_enabled_ && h.link->busy(simulator_.now());
    auto arrival = h.link->transmit(rng_, simulator_.now(), d->bytes, d->type);
    if (tap_) tap_(simulator_.now(), *h.link, d->packet, arrival.has_value());
    if (!arrival) {
        destroy(d);
        return;
    }
    schedule_arrival(h.link, was_busy, *arrival, d, h.next, ArrivalKind::kUnicast);
}

void Network::unicast_arrive(UnicastDelivery* d, std::uint32_t at) {
    if (nodes_[at].down) {
        destroy(d);
        return;
    }
    if (at == d->to) {
        deliver_local(NodeId{at + 1}, d->packet);
        destroy(d);
        return;
    }
    forward_unicast(d, at);
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

struct Network::TreeDelivery final : DeliveryBase {
    TreeDelivery(Network& n, std::shared_ptr<const CachedTree> t, const Packet& p)
        : DeliveryBase(n), tree(std::move(t)), packet(p), bytes(encoded_size(p)),
          type(p.type()) {}

    std::shared_ptr<const CachedTree> tree;  ///< pins the tree across invalidation
    Packet packet;
    std::size_t bytes;
    PacketType type;
    std::uint32_t pending = 1;  ///< outstanding events + the sending frame
};

std::shared_ptr<const Network::CachedTree> Network::build_tree(
    NodeId from, const std::set<NodeId>& members, McastScope scope) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = nodes_.size();
    auto tree = std::make_shared<CachedTree>();

    // Scratch: node index -> tree entry slot, generation-marked.
    if (tree_mark_.size() != n) {
        tree_mark_.assign(n, 0);
        tree_slot_.assign(n, 0);
        tree_epoch_ = 0;
    }
    if (++tree_epoch_ == 0) {  // generation counter wrapped: hard reset
        std::fill(tree_mark_.begin(), tree_mark_.end(), 0u);
        tree_epoch_ = 1;
    }

    std::vector<std::pair<std::uint32_t, std::uint8_t>> entries;  // (node, member)
    std::vector<std::vector<CachedTree::Child>> kids;  // per entry, insertion order
    auto slot_of = [&](std::uint32_t node) {
        if (tree_mark_[node] != tree_epoch_) {
            tree_mark_[node] = tree_epoch_;
            tree_slot_[node] = static_cast<std::uint32_t>(entries.size());
            entries.emplace_back(node, 0);
            kids.emplace_back();
        }
        return tree_slot_[node];
    };

    const std::uint32_t from_index = static_cast<std::uint32_t>(index(from));
    slot_of(from_index);  // root = entry 0

    // Hop budget per scope: site scope is bounded by the site-containment
    // check below (a site never spans more hops than its own LAN); region
    // scope reaches adjacent sites through the backbone, up to 4 hops;
    // global scope is unbounded.
    const SiteId sender_site = site_of(from);
    const std::size_t hop_limit = scope == McastScope::kRegion
                                      ? 4u
                                      : std::numeric_limits<std::size_t>::max();

    std::vector<std::uint32_t> path;
    std::vector<Link*> path_links;
    for (NodeId member : members) {
        if (member == from || rec(member).down) continue;
        if (scope == McastScope::kSite && site_of(member) != sender_site) continue;

        // Walk the route hop by hop; collect the node chain and its links.
        const std::uint32_t member_index = static_cast<std::uint32_t>(index(member));
        path.assign(1, from_index);
        path_links.clear();
        std::uint32_t at = from_index;
        bool reachable = true;
        while (at != member_index) {
            const Hop h = hop_toward(at, member_index);
            if (h.next == kNoIndex) {
                reachable = false;
                break;
            }
            path.push_back(h.next);
            path_links.push_back(h.link);
            at = h.next;
            if (path.size() > n) {
                reachable = false;  // routing loop guard
                break;
            }
        }
        if (!reachable || path.size() - 1 > hop_limit) continue;
        if (scope == McastScope::kSite) {
            bool stays = true;
            for (std::uint32_t node : path)
                if (nodes_[node].site != sender_site) stays = false;
            if (!stays) continue;
        }

        entries[slot_of(member_index)].second = 1;
        tree->any_members = true;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const std::uint32_t parent = slot_of(path[i]);
            const std::uint32_t child = slot_of(path[i + 1]);
            auto& siblings = kids[parent];
            if (std::find_if(siblings.begin(), siblings.end(),
                             [child](const CachedTree::Child& c) {
                                 return c.entry == child;
                             }) == siblings.end())
                siblings.push_back(CachedTree::Child{child, path_links[i]});
        }
    }

    // Flatten to CSR, preserving per-node child insertion order (the
    // delivery transmit order, and hence the RNG draw order).
    tree->nodes.reserve(entries.size());
    std::size_t child_count = 0;
    for (const auto& k : kids) child_count += k.size();
    tree->children.reserve(child_count);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        CachedTree::Node node;
        node.node = entries[i].first;
        node.member = entries[i].second;
        node.child_begin = static_cast<std::uint32_t>(tree->children.size());
        tree->children.insert(tree->children.end(), kids[i].begin(), kids[i].end());
        node.child_end = static_cast<std::uint32_t>(tree->children.size());
        tree->nodes.push_back(node);
    }

    ++tree_builds_;
    tree_build_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return tree;
}

void Network::multicast(NodeId from, const Packet& packet, McastScope scope) {
    if (!finalized_) throw std::logic_error("Network: finalize() before sending traffic");
    if (rec(from).down) return;
    auto git = groups_.find(packet.header.group);
    if (git == groups_.end()) return;

    const std::uint64_t key = tree_key(packet.header.group, from);
    auto& by_scope = mcast_cache_[key];
    TreeSlot& slot = by_scope[static_cast<std::size_t>(scope)];
    if (!slot.tree) {
        slot.tree = build_tree(from, git->second, scope);
        tree_lru_.push_front(TreeRef{key, static_cast<std::uint8_t>(scope)});
        slot.lru = tree_lru_.begin();
        ++cached_trees_;
        enforce_tree_cache_bound();  // never evicts the just-inserted head
    } else {
        tree_lru_.splice(tree_lru_.begin(), tree_lru_, slot.lru);
    }
    const std::shared_ptr<const CachedTree> tree = slot.tree;
    if (!tree->any_members) return;

    auto* d = new TreeDelivery(*this, tree, packet);
    track(d);
    multicast_step(d, 0);  // entry 0 = the sender
    unref(d);  // drop the sending frame's reference
}

void Network::multicast_step(TreeDelivery* d, std::uint32_t at) {
    const CachedTree::Node& node = d->tree->nodes[at];
    for (std::uint32_t c = node.child_begin; c != node.child_end; ++c) {
        const CachedTree::Child& child = d->tree->children[c];
        const bool was_busy = batching_enabled_ && child.link->busy(simulator_.now());
        auto arrival = child.link->transmit(rng_, simulator_.now(), d->bytes, d->type);
        if (tap_) tap_(simulator_.now(), *child.link, d->packet, arrival.has_value());
        if (!arrival) continue;
        ++d->pending;
        schedule_arrival(child.link, was_busy, *arrival, d, child.entry,
                         ArrivalKind::kMulticast);
    }
}

void Network::multicast_arrive(TreeDelivery* d, std::uint32_t at) {
    const CachedTree::Node& node = d->tree->nodes[at];
    if (!nodes_[node.node].down) {
        if (node.member) deliver_local(NodeId{node.node + 1}, d->packet);
        multicast_step(d, at);
    }
    unref(d);
}

void Network::unref(TreeDelivery* d) {
    if (--d->pending == 0) destroy(d);
}

// Defined here, after both delivery types are complete.
void Network::dispatch_arrival(DeliveryBase* d, std::uint32_t hop, ArrivalKind kind) {
    if (kind == ArrivalKind::kMulticast)
        d->net.multicast_arrive(static_cast<TreeDelivery*>(d), hop);
    else
        d->net.unicast_arrive(static_cast<UnicastDelivery*>(d), hop);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t Network::routing_table_bytes() const {
    if (built_flat_)
        return routes_.capacity() * sizeof(std::uint32_t) +
               route_links_.capacity() * sizeof(Link*);

    std::size_t total = 0;
    for (const SiteTable& t : site_tables_) {
        total += t.nodes.capacity() * sizeof(std::uint32_t) +
                 t.borders.capacity() * sizeof(std::uint32_t) +
                 t.dist.capacity() * sizeof(std::int64_t) +
                 t.next.capacity() * sizeof(std::uint32_t) +
                 t.next_link.capacity() * sizeof(Link*) + sizeof(SiteTable);
    }
    total += node_site_.capacity() * sizeof(std::uint32_t) +
             node_local_.capacity() * sizeof(std::uint32_t) +
             border_nodes_.capacity() * sizeof(std::uint32_t) +
             node_border_.capacity() * sizeof(std::uint32_t) +
             border_down_.capacity() * sizeof(std::uint8_t);
    total += bb_dist_.capacity() * sizeof(std::int64_t) +
             bb_next_node_.capacity() * sizeof(std::uint32_t) +
             bb_next_link_.capacity() * sizeof(Link*);
    // Path cache: entry + key + list node + hash-table overhead estimate.
    total += path_cache_.size() *
             (sizeof(std::uint64_t) * 2 + sizeof(PathEntry) + 2 * sizeof(void*) + 16);
    return total;
}

std::uint64_t Network::count_packets(PacketType type,
                                     const std::function<bool(const Link&)>& pred) const {
    std::uint64_t total = 0;
    for (const auto& l : links_)
        if (!pred || pred(*l)) total += l->stats().packets_of(type);
    return total;
}

void Network::reset_link_stats() {
    for (auto& l : links_) l->reset_stats();
}

}  // namespace lbrm::sim
