#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "sim/sim_host.hpp"

namespace lbrm::sim {

Network::Network(Simulator& simulator, std::uint64_t seed)
    : simulator_(simulator), rng_(seed) {}

Network::~Network() = default;

NodeId Network::add_node(SiteId site, bool is_router) {
    NodeRec record;
    record.site = site;
    record.is_router = is_router;
    nodes_.push_back(std::move(record));
    finalized_ = false;
    return NodeId{static_cast<std::uint32_t>(nodes_.size())};
}

void Network::add_link(NodeId a, NodeId b, const LinkSpec& spec) {
    if (index(a) >= nodes_.size() || index(b) >= nodes_.size() || a == b)
        throw std::invalid_argument("Network::add_link: bad endpoints");
    links_[{a, b}] = std::make_unique<Link>(a, b, spec);
    links_[{b, a}] = std::make_unique<Link>(b, a, spec);
    rec(a).neighbors.push_back(b);
    rec(b).neighbors.push_back(a);
    finalized_ = false;
}

void Network::set_loss(NodeId a, NodeId b, std::unique_ptr<LossModel> model) {
    Link* l = link(a, b);
    if (l == nullptr) throw std::invalid_argument("Network::set_loss: no such link");
    l->set_loss_model(std::move(model));
}

void Network::set_node_down(NodeId node, bool down) { rec(node).down = down; }

Link* Network::link(NodeId a, NodeId b) {
    auto it = links_.find({a, b});
    return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link(NodeId a, NodeId b) const {
    auto it = links_.find({a, b});
    return it == links_.end() ? nullptr : it->second.get();
}

SiteId Network::site_of(NodeId node) const { return rec(node).site; }

void Network::finalize() {
    const std::size_t n = nodes_.size();
    routes_.assign(n * n, 0);

    // Dijkstra from every node; weight = propagation + 1 microsecond hop
    // penalty (prefers fewer hops between equal-latency paths, keeping
    // routes deterministic).
    using Dist = std::int64_t;
    constexpr Dist kInf = std::numeric_limits<Dist>::max();
    std::vector<Dist> dist(n);
    std::vector<std::uint32_t> first_hop(n);

    for (std::size_t src = 0; src < n; ++src) {
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(first_hop.begin(), first_hop.end(), 0u);
        dist[src] = 0;

        using QE = std::pair<Dist, std::uint32_t>;  // (distance, node index)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        pq.emplace(0, static_cast<std::uint32_t>(src));

        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != dist[u]) continue;
            for (NodeId v_id : nodes_[u].neighbors) {
                const std::size_t v = index(v_id);
                const Link* l = link(NodeId{static_cast<std::uint32_t>(u + 1)}, v_id);
                const Dist w = l->spec().propagation.count() + 1000;  // +1us per hop
                if (d + w < dist[v]) {
                    dist[v] = d + w;
                    first_hop[v] = (u == src) ? v_id.value() : first_hop[u];
                    pq.emplace(dist[v], static_cast<std::uint32_t>(v));
                }
            }
        }
        for (std::size_t dst = 0; dst < n; ++dst) routes_[src * n + dst] = first_hop[dst];
    }
    finalized_ = true;
}

NodeId Network::next_hop(NodeId from, NodeId to) const {
    if (!finalized_) throw std::logic_error("Network: finalize() before sending traffic");
    const std::uint32_t hop = routes_[index(from) * nodes_.size() + index(to)];
    return hop == 0 ? kNoNode : NodeId{hop};
}

void Network::join(GroupId group, NodeId node) { groups_[group].insert(node); }

void Network::leave(GroupId group, NodeId node) {
    auto it = groups_.find(group);
    if (it != groups_.end()) it->second.erase(node);
}

SimHost& Network::attach_host(NodeId node) {
    NodeRec& record = rec(node);
    if (!record.host) record.host = std::make_unique<SimHost>(*this, simulator_, node);
    return *record.host;
}

SimHost* Network::host(NodeId node) { return rec(node).host.get(); }

void Network::deliver_local(NodeId node, std::shared_ptr<const Packet> packet) {
    NodeRec& record = rec(node);
    if (record.down || !record.host) return;
    record.host->deliver(simulator_.now(), *packet);
}

// ---------------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------------

void Network::unicast(NodeId from, NodeId to, const Packet& packet) {
    if (rec(from).down) return;
    if (from == to) {  // local delivery without touching the network
        auto shared = std::make_shared<const Packet>(packet);
        simulator_.schedule_in(Duration::zero(),
                               [this, to, shared] { deliver_local(to, shared); });
        return;
    }
    auto shared = std::make_shared<const Packet>(packet);
    const std::size_t bytes = encode(packet).size();
    forward_unicast(from, to, std::move(shared), bytes);
}

void Network::forward_unicast(NodeId at, NodeId to, std::shared_ptr<const Packet> packet,
                              std::size_t bytes) {
    const NodeId hop = next_hop(at, to);
    if (hop == kNoNode) return;  // unreachable
    Link* l = link(at, hop);
    auto arrival = l->transmit(rng_, simulator_.now(), bytes, packet->type());
    if (tap_) tap_(simulator_.now(), *l, *packet, arrival.has_value());
    if (!arrival) return;

    simulator_.schedule_at(*arrival, [this, hop, to, packet = std::move(packet), bytes] {
        if (rec(hop).down) return;
        if (hop == to) {
            deliver_local(to, packet);
        } else {
            forward_unicast(hop, to, packet, bytes);
        }
    });
}

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

struct Network::TreeDelivery {
    std::map<NodeId, std::vector<NodeId>> children;
    std::set<NodeId> members;
    std::shared_ptr<const Packet> packet;
    std::size_t bytes = 0;
};

void Network::multicast(NodeId from, const Packet& packet, McastScope scope) {
    if (rec(from).down) return;
    auto it = groups_.find(packet.header.group);
    if (it == groups_.end()) return;

    auto tree = std::make_shared<TreeDelivery>();
    tree->packet = std::make_shared<const Packet>(packet);
    tree->bytes = encode(packet).size();

    // Hop budget per scope: site = never leave the sender's site; region =
    // up to 4 hops (adjacent sites through the backbone); global = all.
    const SiteId sender_site = site_of(from);
    const std::size_t hop_limit = scope == McastScope::kRegion ? 4u
                                  : scope == McastScope::kSite
                                      ? std::numeric_limits<std::size_t>::max()
                                      : std::numeric_limits<std::size_t>::max();

    for (NodeId member : it->second) {
        if (member == from || rec(member).down) continue;
        if (scope == McastScope::kSite && site_of(member) != sender_site) continue;

        // Trace the unicast path; collect the edge chain.
        std::vector<NodeId> path{from};
        NodeId at = from;
        bool reachable = true;
        while (at != member) {
            const NodeId hop = next_hop(at, member);
            if (hop == kNoNode) {
                reachable = false;
                break;
            }
            path.push_back(hop);
            at = hop;
            if (path.size() > nodes_.size()) {
                reachable = false;  // routing loop guard
                break;
            }
        }
        if (!reachable || path.size() - 1 > hop_limit) continue;
        if (scope == McastScope::kSite) {
            bool stays = true;
            for (NodeId n : path)
                if (site_of(n) != sender_site) stays = false;
            if (!stays) continue;
        }

        tree->members.insert(member);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            auto& kids = tree->children[path[i]];
            if (std::find(kids.begin(), kids.end(), path[i + 1]) == kids.end())
                kids.push_back(path[i + 1]);
        }
    }

    if (!tree->members.empty()) multicast_step(tree, from);
}

void Network::multicast_step(const std::shared_ptr<TreeDelivery>& tree, NodeId at) {
    auto it = tree->children.find(at);
    if (it == tree->children.end()) return;
    for (NodeId child : it->second) {
        Link* l = link(at, child);
        if (l == nullptr) continue;
        auto arrival = l->transmit(rng_, simulator_.now(), tree->bytes, tree->packet->type());
        if (tap_) tap_(simulator_.now(), *l, *tree->packet, arrival.has_value());
        if (!arrival) continue;
        simulator_.schedule_at(*arrival, [this, tree, child] {
            if (rec(child).down) return;
            if (tree->members.contains(child)) deliver_local(child, tree->packet);
            multicast_step(tree, child);
        });
    }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::uint64_t Network::count_packets(PacketType type,
                                     const std::function<bool(const Link&)>& pred) const {
    std::uint64_t total = 0;
    for (const auto& [key, l] : links_)
        if (!pred || pred(*l)) total += l->stats().packets_of(type);
    return total;
}

void Network::reset_link_stats() {
    for (auto& [key, l] : links_) l->reset_stats();
}

}  // namespace lbrm::sim
