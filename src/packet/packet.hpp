// LBRM wire format.
//
// Every message on the wire is a fixed Header followed by a type-specific
// body.  The set of packet types covers the whole paper:
//
//   Data / Heartbeat                 basic receiver-reliable stream (S2)
//   Nack / Retransmission            log-based recovery (S2, S2.2)
//   LogStore / LogAck                source -> primary logger reliable handoff
//   ReplicaUpdate / ReplicaAck       primary logger replication (S2.2.3)
//   AckerSelection / AckerResponse   epoch setup (S2.3.1)
//   Ack                              designated-acker per-packet ACK (S2.3.1)
//   ProbeRequest / ProbeReply        Bolot-style group-size estimation (S2.3.3)
//   DiscoveryQuery / DiscoveryReply  scoped-multicast logger discovery (S2.2.1)
//   PrimaryQuery / PrimaryReply      primary-logger address refresh (S2.2.3)
//
// Encoding is explicit big-endian via ByteWriter/ByteReader; decode never
// trusts input (truncated or corrupt packets yield decode errors, not UB).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/seqnum.hpp"

namespace lbrm {

enum class PacketType : std::uint8_t {
    kData = 1,
    kHeartbeat = 2,
    kNack = 3,
    kRetransmission = 4,
    kLogStore = 5,
    kLogAck = 6,
    kReplicaUpdate = 7,
    kReplicaAck = 8,
    kAckerSelection = 9,
    kAckerResponse = 10,
    kAck = 11,
    kProbeRequest = 12,
    kProbeReply = 13,
    kDiscoveryQuery = 14,
    kDiscoveryReply = 15,
    kPrimaryQuery = 16,
    kPrimaryReply = 17,
    kPromoteRequest = 18,
    kPromoteReply = 19,
};

[[nodiscard]] const char* to_string(PacketType type);

/// Fields common to every LBRM packet.
struct Header {
    GroupId group;   ///< multicast group this packet belongs to
    NodeId source;   ///< the group's data source (group owner)
    NodeId sender;   ///< node that transmitted *this* packet (logger for repairs)

    friend bool operator==(const Header&, const Header&) = default;
};

/// Application data multicast by the source.  `epoch` tells Designated
/// Ackers whether they must acknowledge this packet (Section 2.3.1).
struct DataBody {
    SeqNum seq;
    EpochId epoch;
    std::vector<std::uint8_t> payload;

    friend bool operator==(const DataBody&, const DataBody&) = default;
};

/// Keep-alive repeating the last data sequence number (no payload).
/// `index` counts heartbeats since that data packet (diagnostics only).
struct HeartbeatBody {
    SeqNum last_seq;
    std::uint32_t index = 0;

    friend bool operator==(const HeartbeatBody&, const HeartbeatBody&) = default;
};

/// Retransmission request listing missing sequence numbers.
struct NackBody {
    std::vector<SeqNum> missing;

    friend bool operator==(const NackBody&, const NackBody&) = default;
};

/// A repaired data packet served from a log.  Carries the original data
/// sequence number; `multicast` distinguishes a local re-multicast repair
/// from a point-to-point one (receivers treat both identically).
struct RetransmissionBody {
    SeqNum seq;
    EpochId epoch;
    bool multicast = false;
    std::vector<std::uint8_t> payload;

    friend bool operator==(const RetransmissionBody&, const RetransmissionBody&) = default;
};

/// Reliable source -> primary-logger handoff of one data packet.
struct LogStoreBody {
    SeqNum seq;
    EpochId epoch;
    std::vector<std::uint8_t> payload;

    friend bool operator==(const LogStoreBody&, const LogStoreBody&) = default;
};

/// Primary logger's acknowledgement to the source.  Carries the two
/// cumulative sequence numbers of Section 2.2.3: everything up to
/// `primary_seq` is logged at the primary; everything up to `replica_seq`
/// is also held by at least one replica (safe for the source to discard).
struct LogAckBody {
    SeqNum primary_seq;
    SeqNum replica_seq;
    bool has_replica = false;  ///< false when the primary runs unreplicated

    friend bool operator==(const LogAckBody&, const LogAckBody&) = default;
};

/// Primary -> replica log propagation.
struct ReplicaUpdateBody {
    SeqNum seq;
    EpochId epoch;
    std::vector<std::uint8_t> payload;

    friend bool operator==(const ReplicaUpdateBody&, const ReplicaUpdateBody&) = default;
};

/// Replica -> primary cumulative acknowledgement.
struct ReplicaAckBody {
    SeqNum cumulative_seq;

    friend bool operator==(const ReplicaAckBody&, const ReplicaAckBody&) = default;
};

/// Multicast "Acker Selection Packet" opening a new epoch: each secondary
/// logger volunteers as a Designated Acker with probability `p_ack`.
struct AckerSelectionBody {
    EpochId epoch;
    double p_ack = 0.0;

    friend bool operator==(const AckerSelectionBody&, const AckerSelectionBody&) = default;
};

/// Unicast volunteer response from a secondary logger.
struct AckerResponseBody {
    EpochId epoch;

    friend bool operator==(const AckerResponseBody&, const AckerResponseBody&) = default;
};

/// Designated acker's per-data-packet positive acknowledgement.
struct AckBody {
    EpochId epoch;
    SeqNum seq;

    friend bool operator==(const AckBody&, const AckBody&) = default;
};

/// Group-size-estimation probe (Bolot/Turletti/Wakeman style): every
/// secondary logger replies with probability `p_ack`.
struct ProbeRequestBody {
    std::uint32_t round = 0;
    double p_ack = 0.0;

    friend bool operator==(const ProbeRequestBody&, const ProbeRequestBody&) = default;
};

struct ProbeReplyBody {
    std::uint32_t round = 0;

    friend bool operator==(const ProbeReplyBody&, const ProbeReplyBody&) = default;
};

/// Expanding-ring search for a nearby logging server (Section 2.2.1).
/// `ttl` is the multicast scope of the query ring.
struct DiscoveryQueryBody {
    std::uint8_t ttl = 1;
    std::uint32_t nonce = 0;

    friend bool operator==(const DiscoveryQueryBody&, const DiscoveryQueryBody&) = default;
};

struct DiscoveryReplyBody {
    std::uint32_t nonce = 0;
    NodeId logger;
    bool is_primary = false;

    friend bool operator==(const DiscoveryReplyBody&, const DiscoveryReplyBody&) = default;
};

/// "Who is the primary logger now?" — sent to the source after a primary
/// failure (the cached primary address went stale, Section 2.2.3).
struct PrimaryQueryBody {
    friend bool operator==(const PrimaryQueryBody&, const PrimaryQueryBody&) = default;
};

struct PrimaryReplyBody {
    NodeId primary;

    friend bool operator==(const PrimaryReplyBody&, const PrimaryReplyBody&) = default;
};

/// Source -> replica after a primary failure (Section 2.2.3): "you are the
/// new primary".  The replica answers with its log high-water mark so the
/// source can replay anything newer from its own retained buffer.
struct PromoteRequestBody {
    friend bool operator==(const PromoteRequestBody&, const PromoteRequestBody&) = default;
};

struct PromoteReplyBody {
    SeqNum log_high_water;  ///< highest contiguous sequence held by the replica
    bool accepted = false;

    friend bool operator==(const PromoteReplyBody&, const PromoteReplyBody&) = default;
};

using Body = std::variant<DataBody, HeartbeatBody, NackBody, RetransmissionBody,
                          LogStoreBody, LogAckBody, ReplicaUpdateBody, ReplicaAckBody,
                          AckerSelectionBody, AckerResponseBody, AckBody,
                          ProbeRequestBody, ProbeReplyBody, DiscoveryQueryBody,
                          DiscoveryReplyBody, PrimaryQueryBody, PrimaryReplyBody,
                          PromoteRequestBody, PromoteReplyBody>;

/// A complete LBRM packet: header + one typed body.
struct Packet {
    Header header;
    Body body;

    [[nodiscard]] PacketType type() const;

    friend bool operator==(const Packet&, const Packet&) = default;
};

/// Serialize to network byte order.  Throws std::length_error only if a
/// variable-length field exceeds its 16-bit length prefix.
[[nodiscard]] std::vector<std::uint8_t> encode(const Packet& packet);

/// Exact size of `encode(packet)` without serializing.  The simulator's
/// links charge bandwidth per byte, so the hot send path needs the wire
/// size but not the bytes; this avoids a serialize-and-discard allocation
/// per packet.  Invariant (tested): encoded_size(p) == encode(p).size().
[[nodiscard]] std::size_t encoded_size(const Packet& packet);

/// Parse a datagram.  Returns std::nullopt (never throws, never reads out
/// of bounds) for short, corrupt, wrong-magic or wrong-version input.
[[nodiscard]] std::optional<Packet> decode(std::span<const std::uint8_t> datagram);

/// Wire constants, exposed for tests.
inline constexpr std::uint16_t kMagic = 0x4C42;  // "LB"
inline constexpr std::uint8_t kVersion = 1;
/// Serialized size of the fixed header (magic+version+type+group+source+sender).
inline constexpr std::size_t kHeaderSize = 2 + 1 + 1 + 4 + 4 + 4;

}  // namespace lbrm
