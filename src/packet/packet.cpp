#include "packet/packet.hpp"

#include <limits>

namespace lbrm {

namespace {

// --- per-body encoders -----------------------------------------------------

void encode_body(ByteWriter& w, const DataBody& b) {
    w.u32(b.seq.value());
    w.u32(b.epoch.value());
    w.blob16(b.payload);
}

void encode_body(ByteWriter& w, const HeartbeatBody& b) {
    w.u32(b.last_seq.value());
    w.u32(b.index);
}

void encode_body(ByteWriter& w, const NackBody& b) {
    if (b.missing.size() > std::numeric_limits<std::uint16_t>::max())
        throw std::length_error("NackBody: too many missing sequence numbers");
    w.u16(static_cast<std::uint16_t>(b.missing.size()));
    for (SeqNum s : b.missing) w.u32(s.value());
}

void encode_body(ByteWriter& w, const RetransmissionBody& b) {
    w.u32(b.seq.value());
    w.u32(b.epoch.value());
    w.u8(b.multicast ? 1 : 0);
    w.blob16(b.payload);
}

void encode_body(ByteWriter& w, const LogStoreBody& b) {
    w.u32(b.seq.value());
    w.u32(b.epoch.value());
    w.blob16(b.payload);
}

void encode_body(ByteWriter& w, const LogAckBody& b) {
    w.u32(b.primary_seq.value());
    w.u32(b.replica_seq.value());
    w.u8(b.has_replica ? 1 : 0);
}

void encode_body(ByteWriter& w, const ReplicaUpdateBody& b) {
    w.u32(b.seq.value());
    w.u32(b.epoch.value());
    w.blob16(b.payload);
}

void encode_body(ByteWriter& w, const ReplicaAckBody& b) { w.u32(b.cumulative_seq.value()); }

void encode_body(ByteWriter& w, const AckerSelectionBody& b) {
    w.u32(b.epoch.value());
    w.f64(b.p_ack);
}

void encode_body(ByteWriter& w, const AckerResponseBody& b) { w.u32(b.epoch.value()); }

void encode_body(ByteWriter& w, const AckBody& b) {
    w.u32(b.epoch.value());
    w.u32(b.seq.value());
}

void encode_body(ByteWriter& w, const ProbeRequestBody& b) {
    w.u32(b.round);
    w.f64(b.p_ack);
}

void encode_body(ByteWriter& w, const ProbeReplyBody& b) { w.u32(b.round); }

void encode_body(ByteWriter& w, const DiscoveryQueryBody& b) {
    w.u8(b.ttl);
    w.u32(b.nonce);
}

void encode_body(ByteWriter& w, const DiscoveryReplyBody& b) {
    w.u32(b.nonce);
    w.u32(b.logger.value());
    w.u8(b.is_primary ? 1 : 0);
}

void encode_body(ByteWriter&, const PrimaryQueryBody&) {}

void encode_body(ByteWriter& w, const PrimaryReplyBody& b) { w.u32(b.primary.value()); }

void encode_body(ByteWriter&, const PromoteRequestBody&) {}

void encode_body(ByteWriter& w, const PromoteReplyBody& b) {
    w.u32(b.log_high_water.value());
    w.u8(b.accepted ? 1 : 0);
}

// --- per-body encoded sizes --------------------------------------------------
//
// Must mirror the encoders above field for field; packet_test asserts
// encoded_size(p) == encode(p).size() for every packet type.

std::size_t body_size(const DataBody& b) { return 4 + 4 + 2 + b.payload.size(); }
std::size_t body_size(const HeartbeatBody&) { return 4 + 4; }
std::size_t body_size(const NackBody& b) { return 2 + 4 * b.missing.size(); }
std::size_t body_size(const RetransmissionBody& b) { return 4 + 4 + 1 + 2 + b.payload.size(); }
std::size_t body_size(const LogStoreBody& b) { return 4 + 4 + 2 + b.payload.size(); }
std::size_t body_size(const LogAckBody&) { return 4 + 4 + 1; }
std::size_t body_size(const ReplicaUpdateBody& b) { return 4 + 4 + 2 + b.payload.size(); }
std::size_t body_size(const ReplicaAckBody&) { return 4; }
std::size_t body_size(const AckerSelectionBody&) { return 4 + 8; }
std::size_t body_size(const AckerResponseBody&) { return 4; }
std::size_t body_size(const AckBody&) { return 4 + 4; }
std::size_t body_size(const ProbeRequestBody&) { return 4 + 8; }
std::size_t body_size(const ProbeReplyBody&) { return 4; }
std::size_t body_size(const DiscoveryQueryBody&) { return 1 + 4; }
std::size_t body_size(const DiscoveryReplyBody&) { return 4 + 4 + 1; }
std::size_t body_size(const PrimaryQueryBody&) { return 0; }
std::size_t body_size(const PrimaryReplyBody&) { return 4; }
std::size_t body_size(const PromoteRequestBody&) { return 0; }
std::size_t body_size(const PromoteReplyBody&) { return 4 + 1; }

// --- per-body decoders -----------------------------------------------------

template <typename T>
std::optional<Body> decode_as(ByteReader& r);

template <>
std::optional<Body> decode_as<DataBody>(ByteReader& r) {
    auto seq = r.u32();
    auto epoch = r.u32();
    auto payload = r.blob16();
    if (!seq || !epoch || !payload) return std::nullopt;
    return DataBody{SeqNum{*seq}, EpochId{*epoch}, std::move(*payload)};
}

template <>
std::optional<Body> decode_as<HeartbeatBody>(ByteReader& r) {
    auto seq = r.u32();
    auto index = r.u32();
    if (!seq || !index) return std::nullopt;
    return HeartbeatBody{SeqNum{*seq}, *index};
}

template <>
std::optional<Body> decode_as<NackBody>(ByteReader& r) {
    auto count = r.u16();
    if (!count) return std::nullopt;
    NackBody b;
    b.missing.reserve(*count);
    for (std::uint16_t i = 0; i < *count; ++i) {
        auto s = r.u32();
        if (!s) return std::nullopt;
        b.missing.push_back(SeqNum{*s});
    }
    return b;
}

template <>
std::optional<Body> decode_as<RetransmissionBody>(ByteReader& r) {
    auto seq = r.u32();
    auto epoch = r.u32();
    auto mc = r.u8();
    auto payload = r.blob16();
    if (!seq || !epoch || !mc || !payload) return std::nullopt;
    return RetransmissionBody{SeqNum{*seq}, EpochId{*epoch}, *mc != 0, std::move(*payload)};
}

template <>
std::optional<Body> decode_as<LogStoreBody>(ByteReader& r) {
    auto seq = r.u32();
    auto epoch = r.u32();
    auto payload = r.blob16();
    if (!seq || !epoch || !payload) return std::nullopt;
    return LogStoreBody{SeqNum{*seq}, EpochId{*epoch}, std::move(*payload)};
}

template <>
std::optional<Body> decode_as<LogAckBody>(ByteReader& r) {
    auto p = r.u32();
    auto rep = r.u32();
    auto has = r.u8();
    if (!p || !rep || !has) return std::nullopt;
    return LogAckBody{SeqNum{*p}, SeqNum{*rep}, *has != 0};
}

template <>
std::optional<Body> decode_as<ReplicaUpdateBody>(ByteReader& r) {
    auto seq = r.u32();
    auto epoch = r.u32();
    auto payload = r.blob16();
    if (!seq || !epoch || !payload) return std::nullopt;
    return ReplicaUpdateBody{SeqNum{*seq}, EpochId{*epoch}, std::move(*payload)};
}

template <>
std::optional<Body> decode_as<ReplicaAckBody>(ByteReader& r) {
    auto seq = r.u32();
    if (!seq) return std::nullopt;
    return ReplicaAckBody{SeqNum{*seq}};
}

template <>
std::optional<Body> decode_as<AckerSelectionBody>(ByteReader& r) {
    auto epoch = r.u32();
    auto p = r.f64();
    if (!epoch || !p) return std::nullopt;
    return AckerSelectionBody{EpochId{*epoch}, *p};
}

template <>
std::optional<Body> decode_as<AckerResponseBody>(ByteReader& r) {
    auto epoch = r.u32();
    if (!epoch) return std::nullopt;
    return AckerResponseBody{EpochId{*epoch}};
}

template <>
std::optional<Body> decode_as<AckBody>(ByteReader& r) {
    auto epoch = r.u32();
    auto seq = r.u32();
    if (!epoch || !seq) return std::nullopt;
    return AckBody{EpochId{*epoch}, SeqNum{*seq}};
}

template <>
std::optional<Body> decode_as<ProbeRequestBody>(ByteReader& r) {
    auto round = r.u32();
    auto p = r.f64();
    if (!round || !p) return std::nullopt;
    return ProbeRequestBody{*round, *p};
}

template <>
std::optional<Body> decode_as<ProbeReplyBody>(ByteReader& r) {
    auto round = r.u32();
    if (!round) return std::nullopt;
    return ProbeReplyBody{*round};
}

template <>
std::optional<Body> decode_as<DiscoveryQueryBody>(ByteReader& r) {
    auto ttl = r.u8();
    auto nonce = r.u32();
    if (!ttl || !nonce) return std::nullopt;
    return DiscoveryQueryBody{*ttl, *nonce};
}

template <>
std::optional<Body> decode_as<DiscoveryReplyBody>(ByteReader& r) {
    auto nonce = r.u32();
    auto logger = r.u32();
    auto primary = r.u8();
    if (!nonce || !logger || !primary) return std::nullopt;
    return DiscoveryReplyBody{*nonce, NodeId{*logger}, *primary != 0};
}

template <>
std::optional<Body> decode_as<PrimaryQueryBody>(ByteReader&) {
    return PrimaryQueryBody{};
}

template <>
std::optional<Body> decode_as<PrimaryReplyBody>(ByteReader& r) {
    auto primary = r.u32();
    if (!primary) return std::nullopt;
    return PrimaryReplyBody{NodeId{*primary}};
}

template <>
std::optional<Body> decode_as<PromoteRequestBody>(ByteReader&) {
    return PromoteRequestBody{};
}

template <>
std::optional<Body> decode_as<PromoteReplyBody>(ByteReader& r) {
    auto hw = r.u32();
    auto accepted = r.u8();
    if (!hw || !accepted) return std::nullopt;
    return PromoteReplyBody{SeqNum{*hw}, *accepted != 0};
}

std::optional<Body> decode_body(PacketType type, ByteReader& r) {
    switch (type) {
        case PacketType::kData: return decode_as<DataBody>(r);
        case PacketType::kHeartbeat: return decode_as<HeartbeatBody>(r);
        case PacketType::kNack: return decode_as<NackBody>(r);
        case PacketType::kRetransmission: return decode_as<RetransmissionBody>(r);
        case PacketType::kLogStore: return decode_as<LogStoreBody>(r);
        case PacketType::kLogAck: return decode_as<LogAckBody>(r);
        case PacketType::kReplicaUpdate: return decode_as<ReplicaUpdateBody>(r);
        case PacketType::kReplicaAck: return decode_as<ReplicaAckBody>(r);
        case PacketType::kAckerSelection: return decode_as<AckerSelectionBody>(r);
        case PacketType::kAckerResponse: return decode_as<AckerResponseBody>(r);
        case PacketType::kAck: return decode_as<AckBody>(r);
        case PacketType::kProbeRequest: return decode_as<ProbeRequestBody>(r);
        case PacketType::kProbeReply: return decode_as<ProbeReplyBody>(r);
        case PacketType::kDiscoveryQuery: return decode_as<DiscoveryQueryBody>(r);
        case PacketType::kDiscoveryReply: return decode_as<DiscoveryReplyBody>(r);
        case PacketType::kPrimaryQuery: return decode_as<PrimaryQueryBody>(r);
        case PacketType::kPrimaryReply: return decode_as<PrimaryReplyBody>(r);
        case PacketType::kPromoteRequest: return decode_as<PromoteRequestBody>(r);
        case PacketType::kPromoteReply: return decode_as<PromoteReplyBody>(r);
    }
    return std::nullopt;
}

}  // namespace

PacketType Packet::type() const {
    struct Visitor {
        PacketType operator()(const DataBody&) const { return PacketType::kData; }
        PacketType operator()(const HeartbeatBody&) const { return PacketType::kHeartbeat; }
        PacketType operator()(const NackBody&) const { return PacketType::kNack; }
        PacketType operator()(const RetransmissionBody&) const {
            return PacketType::kRetransmission;
        }
        PacketType operator()(const LogStoreBody&) const { return PacketType::kLogStore; }
        PacketType operator()(const LogAckBody&) const { return PacketType::kLogAck; }
        PacketType operator()(const ReplicaUpdateBody&) const {
            return PacketType::kReplicaUpdate;
        }
        PacketType operator()(const ReplicaAckBody&) const { return PacketType::kReplicaAck; }
        PacketType operator()(const AckerSelectionBody&) const {
            return PacketType::kAckerSelection;
        }
        PacketType operator()(const AckerResponseBody&) const {
            return PacketType::kAckerResponse;
        }
        PacketType operator()(const AckBody&) const { return PacketType::kAck; }
        PacketType operator()(const ProbeRequestBody&) const { return PacketType::kProbeRequest; }
        PacketType operator()(const ProbeReplyBody&) const { return PacketType::kProbeReply; }
        PacketType operator()(const DiscoveryQueryBody&) const {
            return PacketType::kDiscoveryQuery;
        }
        PacketType operator()(const DiscoveryReplyBody&) const {
            return PacketType::kDiscoveryReply;
        }
        PacketType operator()(const PrimaryQueryBody&) const { return PacketType::kPrimaryQuery; }
        PacketType operator()(const PrimaryReplyBody&) const { return PacketType::kPrimaryReply; }
        PacketType operator()(const PromoteRequestBody&) const {
            return PacketType::kPromoteRequest;
        }
        PacketType operator()(const PromoteReplyBody&) const { return PacketType::kPromoteReply; }
    };
    return std::visit(Visitor{}, body);
}

std::vector<std::uint8_t> encode(const Packet& packet) {
    ByteWriter w{kHeaderSize + 64};
    w.u16(kMagic);
    w.u8(kVersion);
    w.u8(static_cast<std::uint8_t>(packet.type()));
    w.u32(packet.header.group.value());
    w.u32(packet.header.source.value());
    w.u32(packet.header.sender.value());
    std::visit([&w](const auto& b) { encode_body(w, b); }, packet.body);
    return w.take();
}

std::size_t encoded_size(const Packet& packet) {
    return kHeaderSize + std::visit([](const auto& b) { return body_size(b); }, packet.body);
}

std::optional<Packet> decode(std::span<const std::uint8_t> datagram) {
    ByteReader r{datagram};
    auto magic = r.u16();
    auto version = r.u8();
    auto type_raw = r.u8();
    auto group = r.u32();
    auto source = r.u32();
    auto sender = r.u32();
    if (!magic || !version || !type_raw || !group || !source || !sender) return std::nullopt;
    if (*magic != kMagic || *version != kVersion) return std::nullopt;
    if (*type_raw < static_cast<std::uint8_t>(PacketType::kData) ||
        *type_raw > static_cast<std::uint8_t>(PacketType::kPromoteReply))
        return std::nullopt;

    auto body = decode_body(static_cast<PacketType>(*type_raw), r);
    if (!body || !r.ok()) return std::nullopt;

    Packet p;
    p.header = Header{GroupId{*group}, NodeId{*source}, NodeId{*sender}};
    p.body = std::move(*body);
    return p;
}

const char* to_string(PacketType type) {
    switch (type) {
        case PacketType::kData: return "DATA";
        case PacketType::kHeartbeat: return "HEARTBEAT";
        case PacketType::kNack: return "NACK";
        case PacketType::kRetransmission: return "RETRANS";
        case PacketType::kLogStore: return "LOG_STORE";
        case PacketType::kLogAck: return "LOG_ACK";
        case PacketType::kReplicaUpdate: return "REPLICA_UPDATE";
        case PacketType::kReplicaAck: return "REPLICA_ACK";
        case PacketType::kAckerSelection: return "ACKER_SELECTION";
        case PacketType::kAckerResponse: return "ACKER_RESPONSE";
        case PacketType::kAck: return "ACK";
        case PacketType::kProbeRequest: return "PROBE_REQUEST";
        case PacketType::kProbeReply: return "PROBE_REPLY";
        case PacketType::kDiscoveryQuery: return "DISCOVERY_QUERY";
        case PacketType::kDiscoveryReply: return "DISCOVERY_REPLY";
        case PacketType::kPrimaryQuery: return "PRIMARY_QUERY";
        case PacketType::kPrimaryReply: return "PRIMARY_REPLY";
        case PacketType::kPromoteRequest: return "PROMOTE_REQUEST";
        case PacketType::kPromoteReply: return "PROMOTE_REPLY";
    }
    return "UNKNOWN";
}

}  // namespace lbrm
