#include "core/log_store.hpp"

namespace lbrm {

bool LogStore::insert(TimePoint now, SeqNum seq, EpochId epoch,
                      std::span<const std::uint8_t> payload) {
    auto [it, inserted] = entries_.try_emplace(
        seq, Entry{seq, epoch, {payload.begin(), payload.end()}, now});
    if (!inserted) return false;
    payload_bytes_ += it->second.payload.size();
    enforce_bounds();
    return true;
}

const LogStore::Entry* LogStore::find(SeqNum seq) const {
    auto it = entries_.find(seq);
    return it == entries_.end() ? nullptr : &it->second;
}

std::size_t LogStore::expire(TimePoint now) {
    if (policy_.max_age == Duration::zero()) return 0;
    std::size_t dropped = 0;
    while (!entries_.empty()) {
        auto oldest = serial_begin(entries_);
        if (now - oldest->second.stored_at <= policy_.max_age) break;
        payload_bytes_ -= oldest->second.payload.size();
        entries_.erase(oldest);
        ++dropped;
        ++evicted_;
    }
    return dropped;
}

void LogStore::release_through(SeqNum seq) {
    while (!entries_.empty()) {
        auto oldest = serial_begin(entries_);
        if (oldest->first > seq) break;
        payload_bytes_ -= oldest->second.payload.size();
        entries_.erase(oldest);
    }
}

bool LogStore::remove(SeqNum seq) {
    auto it = entries_.find(seq);
    if (it == entries_.end()) return false;
    payload_bytes_ -= it->second.payload.size();
    entries_.erase(it);
    return true;
}

std::vector<SeqNum> LogStore::gaps(SeqNum from, SeqNum to) const {
    std::vector<SeqNum> out;
    for (SeqNum s = from.next(); s <= to; ++s)
        if (!entries_.contains(s)) out.push_back(s);
    return out;
}

std::optional<SeqNum> LogStore::lowest() const {
    if (entries_.empty()) return std::nullopt;
    return serial_begin(entries_)->first;
}

std::optional<SeqNum> LogStore::highest() const {
    if (entries_.empty()) return std::nullopt;
    return serial_last(entries_)->first;
}

void LogStore::evict_oldest() {
    auto oldest = serial_begin(entries_);
    payload_bytes_ -= oldest->second.payload.size();
    entries_.erase(oldest);
    ++evicted_;
}

void LogStore::enforce_bounds() {
    if (policy_.max_entries != 0)
        while (entries_.size() > policy_.max_entries) evict_oldest();
    if (policy_.max_bytes != 0)
        while (payload_bytes_ > policy_.max_bytes && !entries_.empty()) evict_oldest();
}

}  // namespace lbrm
