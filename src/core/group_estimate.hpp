// Secondary-logger population estimation (Section 2.3.3).
//
// Two phases:
//
//  1. Probing (Bolot/Turletti/Wakeman style): the source multicasts probe
//     rounds with an increasing response probability p; each secondary
//     logger replies with probability p.  Once a round gathers enough
//     replies for a confident estimate, the *same* p is repeated several
//     more times and the estimates averaged -- each repetition shrinks the
//     standard deviation by 1/sqrt(n) (Table 2).
//
//  2. Continuous refresh: after probing, every data packet's ACK count k'
//     under the epoch's p_ack refines the estimate with the Jacobson-style
//     EWMA   N'_sl = (1 - alpha) * N_sl + alpha * k'/p_ack.
//
// The class is sans-IO: the StatAckEngine asks it which probe to send and
// feeds replies/round-closings back in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ewma.hpp"
#include "core/config.hpp"

namespace lbrm {

class GroupSizeEstimator {
public:
    explicit GroupSizeEstimator(const StatAckConfig& config);

    /// True until probing has converged; the engine keeps sending probe
    /// rounds while this holds.
    [[nodiscard]] bool probing() const { return phase_ != Phase::kDone; }

    struct ProbeSpec {
        std::uint32_t round;
        double p;
    };

    /// Parameters for the probe round to transmit now.
    [[nodiscard]] ProbeSpec current_round() const { return {round_, p_}; }

    /// A ProbeReply arrived for round `round` (stale rounds are ignored).
    void on_probe_reply(std::uint32_t round);

    /// The response window for the current round closed.  Advances to the
    /// next round (escalating p), to a repeat of the converged p, or to the
    /// continuous phase.
    void finish_round();

    /// Best current estimate of the number of secondary loggers.  Returns
    /// std::nullopt until at least one informative round has completed.
    [[nodiscard]] std::optional<double> estimate() const;

    /// Continuous refresh from a data packet that gathered k' ACKs under
    /// acknowledgement probability p_ack.
    void update_continuous(std::uint32_t k_acks, double p_ack);

    /// Force a known size (static configuration / tests).
    void set_estimate(double n);

    [[nodiscard]] std::uint32_t rounds_completed() const { return rounds_completed_; }

private:
    enum class Phase { kEscalating, kRepeating, kDone };

    StatAckConfig config_;
    Phase phase_ = Phase::kEscalating;
    std::uint32_t round_ = 1;
    double p_;
    std::uint32_t replies_this_round_ = 0;
    std::uint32_t repeats_done_ = 0;
    std::vector<double> repeat_estimates_;
    std::uint32_t rounds_completed_ = 0;
    Ewma smoothed_;
    bool have_estimate_ = false;
};

}  // namespace lbrm
