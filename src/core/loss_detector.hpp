// Receiver-side loss detection (Section 2).
//
// A receiver recognizes loss in two ways:
//   1. a gap in the sequence numbers of received packets (data, heartbeat
//      repeating last_seq, or retransmission), and
//   2. silence: no packet of any kind for MaxIT (handled by the receiver's
//      idle timer; this class only tracks the last-heard time).
//
// The detector tolerates reordering: a sequence number is only *reported*
// missing once something later has been seen, and an out-of-order arrival
// of a previously-missing number retracts it.
//
// Robustness: a single corrupted or far-future sequence number must not be
// able to open an unbounded gap (naively, up to 2^31 - 1 missing entries
// from one observation).  Gaps wider than `max_gap` are truncated to the
// most recent `max_gap` numbers -- anything older is unrecoverable at that
// point anyway -- the overflow is counted, and the stream position resyncs
// to the observed number.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace lbrm {

class LossDetector {
public:
    /// Widest gap (in sequence numbers) a single observation may open; see
    /// file comment.  Far larger than any plausible burst in the paper's
    /// scenarios, far smaller than a corrupted header's 2^31 - 1.
    static constexpr std::int32_t kDefaultMaxGap = 1024;

    LossDetector() = default;
    explicit LossDetector(std::int32_t max_gap)
        : max_gap_(max_gap > 0 ? max_gap : kDefaultMaxGap) {}

    /// Outcome of observing one sequence number.
    struct Observation {
        /// Sequence numbers that just became missing (gap opened).
        std::vector<SeqNum> newly_missing;
        /// True when `seq` itself fills a known gap (it was missing).
        bool fills_gap = false;
        /// True when `seq` is a duplicate of something already received.
        bool duplicate = false;
    };

    /// Record that a packet carrying `seq` was received at `now`.
    /// For heartbeats pass the repeated last_seq with `is_heartbeat = true`:
    /// the heartbeat proves `seq` was transmitted but carries no payload, so
    /// if we have not received that data packet it becomes missing too.
    Observation observe(TimePoint now, SeqNum seq, bool is_heartbeat = false);

    /// Sequence numbers currently known missing, oldest first.
    [[nodiscard]] std::vector<SeqNum> missing() const;

    [[nodiscard]] bool is_missing(SeqNum seq) const { return missing_.contains(seq); }

    /// When the gap containing `seq` was first detected (for latency stats).
    [[nodiscard]] std::optional<TimePoint> detected_at(SeqNum seq) const;

    /// Give up on a sequence number (recovery failed / application declined).
    void abandon(SeqNum seq) { missing_.erase(seq); }

    /// Highest sequence number proven transmitted, if any packet was seen.
    [[nodiscard]] std::optional<SeqNum> highest_seen() const {
        return started_ ? std::optional<SeqNum>(highest_) : std::nullopt;
    }

    /// Time the last packet (of any kind) was heard.
    [[nodiscard]] std::optional<TimePoint> last_heard() const {
        return started_ ? std::optional<TimePoint>(last_heard_) : std::nullopt;
    }

    [[nodiscard]] std::size_t missing_count() const { return missing_.size(); }

    /// Observations whose gap exceeded `max_gap` and was truncated.
    [[nodiscard]] std::uint64_t gap_overflows() const { return gap_overflows_; }

    [[nodiscard]] std::int32_t max_gap() const { return max_gap_; }

    /// Point the detector at a family-aggregate telemetry block (see
    /// obs/metrics.hpp).  The per-instance gap_overflows() accessor is
    /// unaffected; the block aggregates across every bound detector.
    void bind_metrics(const obs::LossDetectorMetrics& m) { obs_ = &m; }

private:
    bool started_ = false;
    SeqNum highest_{};  ///< highest seq proven transmitted
    TimePoint last_heard_{};
    std::int32_t max_gap_ = kDefaultMaxGap;
    std::uint64_t gap_overflows_ = 0;
    const obs::LossDetectorMetrics* obs_ = &obs::LossDetectorMetrics::disabled();
    /// missing seq -> time the gap was detected (WireOrder: see seqnum.hpp)
    std::map<SeqNum, TimePoint, SeqNum::WireOrder> missing_;
    /// received data seqs within the reorder horizon (duplicate detection);
    /// trimmed to a bounded window behind `highest_`.
    std::map<SeqNum, bool, SeqNum::WireOrder> received_;

    static constexpr std::int32_t kReceivedWindow = 4096;

    void trim_received();
};

}  // namespace lbrm
