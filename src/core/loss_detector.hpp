// Receiver-side loss detection (Section 2).
//
// A receiver recognizes loss in two ways:
//   1. a gap in the sequence numbers of received packets (data, heartbeat
//      repeating last_seq, or retransmission), and
//   2. silence: no packet of any kind for MaxIT (handled by the receiver's
//      idle timer; this class only tracks the last-heard time).
//
// The detector tolerates reordering: a sequence number is only *reported*
// missing once something later has been seen, and an out-of-order arrival
// of a previously-missing number retracts it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/seqnum.hpp"
#include "common/time.hpp"

namespace lbrm {

class LossDetector {
public:
    /// Outcome of observing one sequence number.
    struct Observation {
        /// Sequence numbers that just became missing (gap opened).
        std::vector<SeqNum> newly_missing;
        /// True when `seq` itself fills a known gap (it was missing).
        bool fills_gap = false;
        /// True when `seq` is a duplicate of something already received.
        bool duplicate = false;
    };

    /// Record that a packet carrying `seq` was received at `now`.
    /// For heartbeats pass the repeated last_seq with `is_heartbeat = true`:
    /// the heartbeat proves `seq` was transmitted but carries no payload, so
    /// if we have not received that data packet it becomes missing too.
    Observation observe(TimePoint now, SeqNum seq, bool is_heartbeat = false);

    /// Sequence numbers currently known missing, oldest first.
    [[nodiscard]] std::vector<SeqNum> missing() const;

    [[nodiscard]] bool is_missing(SeqNum seq) const { return missing_.contains(seq); }

    /// When the gap containing `seq` was first detected (for latency stats).
    [[nodiscard]] std::optional<TimePoint> detected_at(SeqNum seq) const;

    /// Give up on a sequence number (recovery failed / application declined).
    void abandon(SeqNum seq) { missing_.erase(seq); }

    /// Highest sequence number proven transmitted, if any packet was seen.
    [[nodiscard]] std::optional<SeqNum> highest_seen() const {
        return started_ ? std::optional<SeqNum>(highest_) : std::nullopt;
    }

    /// Time the last packet (of any kind) was heard.
    [[nodiscard]] std::optional<TimePoint> last_heard() const {
        return started_ ? std::optional<TimePoint>(last_heard_) : std::nullopt;
    }

    [[nodiscard]] std::size_t missing_count() const { return missing_.size(); }

private:
    bool started_ = false;
    SeqNum highest_{};  ///< highest seq proven transmitted
    TimePoint last_heard_{};
    /// missing seq -> time the gap was detected
    std::map<SeqNum, TimePoint> missing_;
    /// received data seqs within the reorder horizon (duplicate detection);
    /// trimmed to a bounded window behind `highest_`.
    std::map<SeqNum, bool> received_;

    static constexpr std::int32_t kReceivedWindow = 4096;

    void trim_received();
};

}  // namespace lbrm
