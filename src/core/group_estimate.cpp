#include "core/group_estimate.hpp"

#include <algorithm>
#include <numeric>

namespace lbrm {

GroupSizeEstimator::GroupSizeEstimator(const StatAckConfig& config)
    : config_(config), p_(std::clamp(config.initial_probe_p, 1e-6, 1.0)),
      smoothed_(config.alpha) {}

void GroupSizeEstimator::on_probe_reply(std::uint32_t round) {
    if (round == round_ && phase_ != Phase::kDone) ++replies_this_round_;
}

void GroupSizeEstimator::finish_round() {
    if (phase_ == Phase::kDone) return;
    ++rounds_completed_;

    const double round_estimate =
        static_cast<double>(replies_this_round_) / p_;

    switch (phase_) {
        case Phase::kEscalating:
            if (replies_this_round_ >= config_.probe_target_replies || p_ >= 1.0) {
                // Converged on a usable p; begin the repetition phase at the
                // same probability (Table 2: each repeat divides sigma by
                // sqrt(n)).
                repeat_estimates_.clear();
                repeat_estimates_.push_back(round_estimate);
                repeats_done_ = 1;
                have_estimate_ = true;
                if (repeats_done_ >= config_.probe_repeats) {
                    phase_ = Phase::kDone;
                    smoothed_.reset(round_estimate);
                } else {
                    phase_ = Phase::kRepeating;
                }
            } else {
                // Not enough replies: escalate the probability and retry.
                p_ = std::min(1.0, p_ * 2.0);
            }
            break;

        case Phase::kRepeating: {
            repeat_estimates_.push_back(round_estimate);
            ++repeats_done_;
            if (repeats_done_ >= config_.probe_repeats) {
                const double mean =
                    std::accumulate(repeat_estimates_.begin(), repeat_estimates_.end(), 0.0) /
                    static_cast<double>(repeat_estimates_.size());
                smoothed_.reset(mean);
                phase_ = Phase::kDone;
            }
            break;
        }

        case Phase::kDone:
            break;
    }

    ++round_;
    replies_this_round_ = 0;
}

std::optional<double> GroupSizeEstimator::estimate() const {
    if (!have_estimate_) return std::nullopt;
    if (phase_ == Phase::kDone) return std::max(1.0, smoothed_.value());
    // Mid-repetition: average what we have so far.
    const double mean =
        std::accumulate(repeat_estimates_.begin(), repeat_estimates_.end(), 0.0) /
        static_cast<double>(repeat_estimates_.size());
    return std::max(1.0, mean);
}

void GroupSizeEstimator::update_continuous(std::uint32_t k_acks, double p_ack) {
    if (p_ack <= 0.0) return;
    const double sample = static_cast<double>(k_acks) / p_ack;
    smoothed_.update(sample);
    have_estimate_ = true;
}

void GroupSizeEstimator::set_estimate(double n) {
    smoothed_.reset(std::max(1.0, n));
    have_estimate_ = true;
    phase_ = Phase::kDone;
}

}  // namespace lbrm
