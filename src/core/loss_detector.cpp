#include "core/loss_detector.hpp"

namespace lbrm {

LossDetector::Observation LossDetector::observe(TimePoint now, SeqNum seq,
                                                bool is_heartbeat) {
    Observation obs;
    last_heard_ = now;

    if (!started_) {
        // First packet defines the stream position.  A heartbeat repeating
        // last_seq proves `seq` was transmitted, but we joined late; treat
        // it as the starting point rather than retroactively missing.
        started_ = true;
        highest_ = seq;
        if (!is_heartbeat) received_[seq] = true;
        return obs;
    }

    if (seq > highest_) {
        // Gap: everything in (highest_, seq) is now known lost or reordered.
        // Bound the gap so one corrupted or far-future number cannot open
        // up to 2^31 - 1 missing entries; keep only the most recent max_gap_
        // of them (older ones are unrecoverable at that width anyway).
        SeqNum gap_start = highest_.next();
        if (highest_.distance_to(seq) - 1 > max_gap_) {
            ++gap_overflows_;
            obs_->gap_overflows->inc();
            gap_start = seq.plus(-max_gap_);
        }
        for (SeqNum s = gap_start; s < seq; ++s) {
            if (!received_.contains(s) && !missing_.contains(s)) {
                missing_.emplace(s, now);
                obs.newly_missing.push_back(s);
            }
        }
        highest_ = seq;
        if (is_heartbeat) {
            // The heartbeat proves `seq` itself was transmitted as data but
            // carries no payload; if we never received the data packet it is
            // missing as well.
            if (!received_.contains(seq) && !missing_.contains(seq)) {
                missing_.emplace(seq, now);
                obs.newly_missing.push_back(seq);
            }
        } else {
            received_[seq] = true;
        }
        trim_received();
        obs_->gaps_opened->inc(obs.newly_missing.size());
        return obs;
    }

    // seq <= highest_: retransmission, reordered arrival, or duplicate.
    if (is_heartbeat) return obs;  // heartbeat for an old seq adds nothing new

    if (auto it = missing_.find(seq); it != missing_.end()) {
        missing_.erase(it);
        received_[seq] = true;
        obs.fills_gap = true;
        return obs;
    }

    if (received_.contains(seq)) {
        obs.duplicate = true;
        return obs;
    }

    // Old seq outside both sets: beyond the reorder window; count duplicate.
    obs.duplicate = true;
    return obs;
}

std::vector<SeqNum> LossDetector::missing() const {
    std::vector<SeqNum> out;
    out.reserve(missing_.size());
    // Wire order is numeric; walk from the serially oldest entry and wrap.
    auto start = serial_begin(missing_);
    for (auto it = start; it != missing_.end(); ++it) out.push_back(it->first);
    for (auto it = missing_.begin(); it != start; ++it) out.push_back(it->first);
    return out;
}

std::optional<TimePoint> LossDetector::detected_at(SeqNum seq) const {
    auto it = missing_.find(seq);
    if (it == missing_.end()) return std::nullopt;
    return it->second;
}

void LossDetector::trim_received() {
    while (!received_.empty()) {
        auto oldest = serial_begin(received_);
        if (oldest->first.distance_to(highest_) > kReceivedWindow)
            received_.erase(oldest);
        else
            break;
    }
}

}  // namespace lbrm
