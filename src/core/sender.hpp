// The LBRM data source (Section 2).
//
// On every application send the source:
//   * assigns the next sequence number and multicasts the data packet,
//   * reliably hands the packet to the primary logging server (LogStore,
//     retransmitted until LogAck'd) -- unless the source hosts the primary
//     log itself,
//   * retains the payload until a *replica* has it (Section 2.2.3: the
//     application may continue after the primary's ack, but the data cannot
//     be discarded until the replicated-logger sequence number covers it),
//   * resets the variable-heartbeat schedule (Section 2.1), and
//   * starts statistical-ACK accounting for the packet (Section 2.3).
//
// The source also answers PrimaryQuery (receivers refreshing a stale cached
// primary address) and runs the primary-failover state machine: when the
// primary stops acking LogStores, the best replica is promoted and the
// retained buffer replayed to it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "core/actions.hpp"
#include "core/config.hpp"
#include "core/flow_control.hpp"
#include "core/heartbeat.hpp"
#include "core/log_store.hpp"
#include "core/stat_ack.hpp"
#include "obs/metrics.hpp"

namespace lbrm {

class SenderCore {
public:
    explicit SenderCore(SenderConfig config);

    /// Arm heartbeats, begin group-size probing / first epoch.
    Actions start(TimePoint now);

    /// Multicast one application payload.
    Actions send(TimePoint now, std::span<const std::uint8_t> payload);

    Actions on_packet(TimePoint now, const Packet& packet);
    Actions on_timer(TimePoint now, TimerId id);

    // --- observability -------------------------------------------------
    [[nodiscard]] SeqNum last_seq() const { return next_seq_.prev(); }
    [[nodiscard]] NodeId current_primary() const { return primary_; }
    [[nodiscard]] bool is_self_primary() const { return primary_ == config_.self; }
    /// Payload bytes retained pending replica safety.
    [[nodiscard]] std::size_t retained_bytes() const { return retained_.payload_bytes(); }
    [[nodiscard]] std::size_t retained_count() const { return retained_.size(); }
    [[nodiscard]] const StatAckEngine& stat_ack() const { return stat_ack_; }
    [[nodiscard]] StatAckEngine& stat_ack() { return stat_ack_; }
    [[nodiscard]] const HeartbeatScheduler& heartbeat() const { return heartbeat_; }
    /// Flow-control advice (Section 5 extension): the application should
    /// keep at least this much time between sends; zero = unconstrained.
    [[nodiscard]] Duration recommended_spacing() const {
        return flow_.recommended_spacing();
    }
    [[nodiscard]] const FlowController& flow_control() const { return flow_; }
    [[nodiscard]] std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
    [[nodiscard]] std::uint64_t data_sent() const { return data_sent_; }
    [[nodiscard]] const SenderConfig& config() const { return config_; }

    /// Bind the family-aggregate telemetry block (obs/metrics.hpp); the
    /// per-instance accessors above are unaffected.
    void bind_metrics(const obs::ProtocolMetrics& pm);

private:
    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.self, config_.self}, std::move(body)};
    }

    Actions handle_log_ack(TimePoint now, const LogAckBody& ack);
    Actions handle_nack(TimePoint now, NodeId from, const NackBody& nack);
    Actions retry_log_store(TimePoint now);
    Actions begin_failover(TimePoint now);
    Actions handle_promote_reply(TimePoint now, NodeId from, const PromoteReplyBody& reply);
    void remulticast(TimePoint now, const std::vector<SeqNum>& seqs, Actions& actions);
    void merge(Actions& dst, StatAckEngine::Result&& result, TimePoint now);
    /// Release retained payloads that are both replica-safe (Section 2.2.3)
    /// and past their statistical-ACK window (Section 2.3.2).
    void flush_retained();

    SenderConfig config_;
    HeartbeatScheduler heartbeat_;
    StatAckEngine stat_ack_;
    FlowController flow_;

    SeqNum next_seq_;
    NodeId primary_;

    /// Payloads retained until replica-safe (also serves failover replay,
    /// statistical re-multicasts, and direct NACK service when the source
    /// is its own primary).
    LogStore retained_;
    /// Highest sequence number safely logged at the primary.  Starts at
    /// initial_seq.prev() so the "nothing acked yet" state compares serially
    /// behind the first packet even when the stream begins near the wrap.
    SeqNum primary_acked_;
    /// Highest sequence number safely held by a replica.
    SeqNum replica_acked_;

    std::uint32_t log_store_retries_ = 0;

    /// Most recent payload (for data-carrying heartbeats, Section 7).
    std::vector<std::uint8_t> last_payload_;
    EpochId last_epoch_{0};

    /// Retransmission-channel progress: seq -> copies already sent.
    /// Wire-ordered (see seqnum.hpp); oldest entry found via serial_begin().
    std::map<SeqNum, std::uint32_t, SeqNum::WireOrder> retx_copies_;

    // Failover progress: index into config_.replicas being tried.
    bool failing_over_ = false;
    std::size_t failover_candidate_ = 0;

    std::uint64_t heartbeats_sent_ = 0;
    std::uint64_t data_sent_ = 0;
    const obs::SenderMetrics* obs_ = &obs::SenderMetrics::disabled();
};

}  // namespace lbrm
