#include "core/receiver.hpp"

#include <algorithm>

namespace lbrm {

ReceiverCore::ReceiverCore(ReceiverConfig config)
    : config_(std::move(config)), detector_(config_.max_detector_gap),
      logger_(config_.logger), expected_gap_(config_.heartbeat.h_min),
      jitter_state_(0x9E3779B97F4A7C15ull ^ config_.self.value()) {}

NodeId ReceiverCore::current_logger(TimePoint now) const {
    if (level_ == RecoveryLevel::kLocal && !config_.rotating_loggers.empty() &&
        config_.rotation_slot > Duration::zero()) {
        const auto slots = now.time_since_epoch() / config_.rotation_slot;
        const std::size_t owner = static_cast<std::size_t>(
            static_cast<std::uint64_t>(slots) % config_.rotating_loggers.size());
        return config_.rotating_loggers[owner];
    }
    return current_logger();
}

NodeId ReceiverCore::current_logger() const {
    switch (level_) {
        case RecoveryLevel::kLocal:
            if (logger_ != kNoNode) return logger_;
            [[fallthrough]];
        case RecoveryLevel::kFallback:
            if (config_.fallback_logger != kNoNode) return config_.fallback_logger;
            [[fallthrough]];
        case RecoveryLevel::kPrimary:
            return config_.source;
    }
    return config_.source;
}

Duration ReceiverCore::nack_jitter() {
    // xorshift64* step: deterministic per-receiver jitter stream.
    jitter_state_ ^= jitter_state_ >> 12;
    jitter_state_ ^= jitter_state_ << 25;
    jitter_state_ ^= jitter_state_ >> 27;
    const std::uint64_t r = jitter_state_ * 0x2545F4914F6CDD1Dull;
    const double frac = static_cast<double>(r >> 11) / 9007199254740992.0;  // [0,1)
    const Duration span = config_.nack_delay_max - config_.nack_delay_min;
    return config_.nack_delay_min + scale(span, frac);
}

Actions ReceiverCore::start(TimePoint now) {
    Actions actions;
    started_ = true;
    actions.push_back(StartTimer{
        {TimerKind::kIdle, 0}, now + idle_threshold(config_.heartbeat.h_min)});
    if (logger_ == kNoNode) {
        discovering_ = true;
        discovery_round_ = 0;
        append(actions, discovery_round(now));
    }
    return actions;
}

Actions ReceiverCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) {
        // Retransmission-channel copies arrive on their own group.
        if (config_.retrans_channel != kNoGroup &&
            packet.header.group == config_.retrans_channel) {
            if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body))
                return accept_payload(now, rt->seq, rt->epoch, rt->payload,
                                      /*recovered=*/true);
        }
        return actions;
    }

    if (const auto* data = std::get_if<DataBody>(&packet.body)) {
        // After a data packet the first heartbeat is due within h_min;
        // a *repeated* data packet is a data-carrying heartbeat (Section 7)
        // whose successor follows the grown backoff schedule.
        const bool repeat =
            detector_.highest_seen() && data->seq <= *detector_.highest_seen();
        expected_gap_ = repeat ? std::min(config_.heartbeat.h_max,
                                          scale(expected_gap_, config_.heartbeat.backoff))
                               : config_.heartbeat.h_min;
        note_live_traffic(now, expected_gap_, actions);
        append(actions, accept_payload(now, data->seq, data->epoch, data->payload,
                                       /*recovered=*/false));
        return actions;
    }

    if (const auto* hb = std::get_if<HeartbeatBody>(&packet.body)) {
        expected_gap_ = gap_after_heartbeat(hb->index);
        note_live_traffic(now, expected_gap_, actions);
        auto obs = detector_.observe(now, hb->last_seq, /*is_heartbeat=*/true);
        if (!obs.newly_missing.empty()) {
            for (SeqNum s : obs.newly_missing)
                actions.push_back(Notice{NoticeKind::kLossDetected, s.value()});
            for (SeqNum s : obs.newly_missing) pending_.emplace(s, PendingRecovery{now, 0});
            begin_recovery(now, actions);
        }
        return actions;
    }

    if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body)) {
        // Repairs come from loggers, not the source: they fill gaps but do
        // not prove the live stream is healthy, so the idle watchdog is
        // deliberately not re-armed here.
        append(actions, accept_payload(now, rt->seq, rt->epoch, rt->payload,
                                       /*recovered=*/true));
        return actions;
    }

    if (const auto* reply = std::get_if<DiscoveryReplyBody>(&packet.body)) {
        if (discovering_ && reply->nonce == discovery_nonce_) {
            discovering_ = false;
            logger_ = reply->logger;
            level_ = RecoveryLevel::kLocal;
            actions.push_back(CancelTimer{{TimerKind::kDiscovery, 0}});
            actions.push_back(Notice{NoticeKind::kLoggerChanged, logger_.value()});
            if (!pending_.empty()) schedule_nack(now, actions);
        }
        return actions;
    }

    if (const auto* reply = std::get_if<PrimaryReplyBody>(&packet.body)) {
        if (primary_query_outstanding_) {
            primary_query_outstanding_ = false;
            logger_ = reply->primary;
            level_ = RecoveryLevel::kLocal;
            for (auto& [seq, rec] : pending_) rec.attempts_at_level = 0;
            actions.push_back(Notice{NoticeKind::kLoggerChanged, logger_.value()});
            if (!pending_.empty()) schedule_nack(now, actions);
        }
        return actions;
    }

    return actions;
}

Actions ReceiverCore::accept_payload(TimePoint now, SeqNum seq, EpochId epoch,
                                     const std::vector<std::uint8_t>& payload,
                                     bool recovered) {
    (void)epoch;
    Actions actions;
    auto obs = detector_.observe(now, seq, /*is_heartbeat=*/false);

    if (obs.duplicate) {
        ++duplicates_;
        obs_->duplicates->inc();
        return actions;
    }

    for (SeqNum s : obs.newly_missing)
        actions.push_back(Notice{NoticeKind::kLossDetected, s.value()});
    for (SeqNum s : obs.newly_missing) pending_.emplace(s, PendingRecovery{now, 0});
    if (!obs.newly_missing.empty()) begin_recovery(now, actions);

    if (obs.fills_gap) {
        if (auto pit = pending_.find(seq); pit != pending_.end()) {
            obs_->recovery_latency->observe(
                to_seconds(now - pit->second.first_detected));
            pending_.erase(pit);
        }
        ++recovered_;
        obs_->recovered->inc();
        if (pending_.empty()) {
            actions.push_back(CancelTimer{{TimerKind::kNackRetry, 0}});
        }
        if (detector_.missing_count() == 0) recovery_complete(now, actions);
    }

    ++delivered_;
    obs_->delivered->inc();
    actions.push_back(DeliverData{seq, payload, recovered || obs.fills_gap});
    return actions;
}

Duration ReceiverCore::gap_after_heartbeat(std::uint32_t index) const {
    // After the heartbeat with index k the sender's interval has been grown
    // k+1 times: h_min * backoff^(k+1), saturating at h_max.
    Duration gap = config_.heartbeat.h_min;
    if (config_.heartbeat.fixed) return gap;
    const std::uint32_t steps = std::min<std::uint32_t>(index + 1, 64);
    for (std::uint32_t i = 0; i < steps; ++i) {
        gap = scale(gap, config_.heartbeat.backoff);
        if (gap >= config_.heartbeat.h_max) return config_.heartbeat.h_max;
    }
    return gap;
}

Duration ReceiverCore::idle_threshold(Duration expected_gap) const {
    const Duration scaled = scale(expected_gap, config_.idle_safety);
    return scaled > config_.max_idle ? scaled : config_.max_idle;
}

void ReceiverCore::note_live_traffic(TimePoint now, Duration expected_gap,
                                     Actions& actions) {
    if (!fresh_) {
        fresh_ = true;
        actions.push_back(Notice{NoticeKind::kFreshnessRestored, 0});
    }
    actions.push_back(
        StartTimer{{TimerKind::kIdle, 0}, now + idle_threshold(expected_gap)});
}

void ReceiverCore::begin_recovery(TimePoint now, Actions& actions) {
    if (config_.retrans_channel == kNoGroup) {
        schedule_nack(now, actions);
        return;
    }
    // Section 7 strategy: subscribe to the retransmission channel and wait
    // for the sender's exponentially-spaced copies; NACKs only as fallback.
    if (!retx_joined_) {
        retx_joined_ = true;
        actions.push_back(JoinGroup{config_.retrans_channel});
    }
    actions.push_back(CancelTimer{{TimerKind::kRetxLinger, 0}});
    actions.push_back(StartTimer{{TimerKind::kRetxFallback, 0},
                                 now + config_.retrans_channel_window});
}

void ReceiverCore::recovery_complete(TimePoint now, Actions& actions) {
    if (!retx_joined_) return;
    actions.push_back(CancelTimer{{TimerKind::kRetxFallback, 0}});
    actions.push_back(StartTimer{{TimerKind::kRetxLinger, 0},
                                 now + config_.retrans_channel_linger});
}

void ReceiverCore::schedule_nack(TimePoint now, Actions& actions) {
    if (nack_timer_armed_) return;
    nack_timer_armed_ = true;
    // Short randomized delay lets reordered packets land before we NACK
    // (Appendix A: "this delay allows out-of-order packets to arrive").
    actions.push_back(StartTimer{{TimerKind::kNackDelay, 0}, now + nack_jitter()});
}

Actions ReceiverCore::fire_nack(TimePoint now) {
    Actions actions;
    // Drop entries the detector no longer considers missing (recovered while
    // the delay timer was pending).
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (!detector_.is_missing(it->first))
            it = pending_.erase(it);
        else
            ++it;
    }
    if (pending_.empty()) return actions;

    NackBody nack;
    for (const auto& [seq, rec] : pending_) nack.missing.push_back(seq);
    ++nacks_sent_;
    obs_->nacks_sent->inc();
    actions.push_back(SendUnicast{current_logger(now), make_packet(std::move(nack))});
    actions.push_back(
        StartTimer{{TimerKind::kNackRetry, 0}, now + config_.nack_retry});
    return actions;
}

Actions ReceiverCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    switch (id.kind) {
        case TimerKind::kIdle: {
            // Every live packet re-arms this timer, so firing means the
            // expected transmission never came: the stream is stale (source
            // dead, disconnected, or an undetectable burst in progress).
            (void)now;
            if (fresh_) {
                fresh_ = false;
                actions.push_back(Notice{NoticeKind::kFreshnessLost, 0});
            }
            // No re-arm: the next live packet restores freshness and the
            // watchdog with it.
            return actions;
        }
        case TimerKind::kNackDelay:
            nack_timer_armed_ = false;
            return fire_nack(now);
        case TimerKind::kNackRetry: {
            for (auto it = pending_.begin(); it != pending_.end();) {
                if (!detector_.is_missing(it->first))
                    it = pending_.erase(it);
                else
                    ++it;
            }
            if (pending_.empty()) return actions;
            bool exhausted = false;
            for (auto& [seq, rec] : pending_) {
                if (++rec.attempts_at_level >= config_.nack_max_retries) exhausted = true;
            }
            if (exhausted) return escalate(now);
            append(actions, fire_nack(now));
            return actions;
        }
        case TimerKind::kDiscovery:
            return discovery_round(now);
        case TimerKind::kRetxFallback: {
            // The retransmission channel did not repair everything in time:
            // fall back to the logging hierarchy (Section 7: "logging
            // servers would provide retransmissions of packets that were no
            // longer being transmitted on the retransmission channel").
            for (auto it = pending_.begin(); it != pending_.end();) {
                if (!detector_.is_missing(it->first))
                    it = pending_.erase(it);
                else
                    ++it;
            }
            if (!pending_.empty()) schedule_nack(now, actions);
            return actions;
        }
        case TimerKind::kRetxLinger:
            if (retx_joined_ && detector_.missing_count() == 0) {
                retx_joined_ = false;
                actions.push_back(LeaveGroup{config_.retrans_channel});
            }
            return actions;
        default:
            return actions;
    }
}

Actions ReceiverCore::escalate(TimePoint now) {
    Actions actions;
    switch (level_) {
        case RecoveryLevel::kLocal:
            if (config_.fallback_logger != kNoNode &&
                config_.fallback_logger != current_logger()) {
                level_ = RecoveryLevel::kFallback;
                for (auto& [seq, rec] : pending_) rec.attempts_at_level = 0;
                actions.push_back(
                    Notice{NoticeKind::kLoggerChanged, config_.fallback_logger.value()});
                append(actions, fire_nack(now));
                return actions;
            }
            [[fallthrough]];
        case RecoveryLevel::kFallback:
            // Ask the source who the current primary is (Section 2.2.3).
            level_ = RecoveryLevel::kPrimary;
            primary_query_outstanding_ = true;
            actions.push_back(
                SendUnicast{config_.source, make_packet(PrimaryQueryBody{})});
            actions.push_back(
                StartTimer{{TimerKind::kNackRetry, 0}, now + config_.nack_retry});
            return actions;
        case RecoveryLevel::kPrimary: {
            // Already tried the refreshed primary.  One walk of the chain
            // going unanswered usually means an outage in progress (a
            // primary mid-failover, a partition yet to heal), not packet
            // death: park the survivors and restart the chain from kLocal
            // after a cold pause.  Only packets that have outlived
            // recovery_cold_cycles whole walks are abandoned.
            bool parked = false;
            for (auto it = pending_.begin(); it != pending_.end();) {
                PendingRecovery& rec = it->second;
                if (rec.cold_cycles < config_.recovery_cold_cycles) {
                    ++rec.cold_cycles;
                    rec.attempts_at_level = 0;
                    parked = true;
                    ++it;
                } else {
                    detector_.abandon(it->first);
                    ++recovery_failures_;
                    obs_->recovery_failures->inc();
                    actions.push_back(
                        Notice{NoticeKind::kRecoveryFailed, it->first.value()});
                    it = pending_.erase(it);
                }
            }
            level_ = RecoveryLevel::kLocal;
            if (parked)
                actions.push_back(StartTimer{{TimerKind::kNackRetry, 0},
                                             now + config_.recovery_cold_retry});
            return actions;
        }
    }
    return actions;
}

Actions ReceiverCore::discovery_round(TimePoint now) {
    Actions actions;
    if (!discovering_) return actions;
    if (discovery_round_ >= config_.discovery_max_rounds) {
        // Give up: fall back to the static chain (fallback logger / source).
        discovering_ = false;
        if (config_.fallback_logger != kNoNode) {
            logger_ = config_.fallback_logger;
            actions.push_back(Notice{NoticeKind::kLoggerChanged, logger_.value()});
        }
        return actions;
    }

    ++discovery_round_;
    ++discovery_nonce_;
    McastScope scope = McastScope::kSite;
    std::uint8_t ttl = 1;
    if (discovery_round_ > 4) {
        scope = McastScope::kGlobal;
        ttl = 255;
    } else if (discovery_round_ > 2) {
        scope = McastScope::kRegion;
        ttl = 16;
    }
    actions.push_back(SendMulticast{
        make_packet(DiscoveryQueryBody{ttl, discovery_nonce_}), scope});
    actions.push_back(StartTimer{{TimerKind::kDiscovery, 0},
                                 now + config_.discovery_interval});
    return actions;
}

}  // namespace lbrm
