// The logging server (Sections 2, 2.2).
//
// One class implements all three roles -- the paper notes "much of the code
// is reusable across different components of the system because of the
// recursive nature of the distributed logging architecture":
//
//  * PRIMARY   logs packets handed off reliably by the source (LogStore),
//              acknowledges them with the dual sequence numbers of Section
//              2.2.3 (primary high-water + replica high-water), keeps the
//              replica set synchronized, and serves NACKs.
//  * SECONDARY passively logs the group's multicast stream at its site,
//              serves local NACKs (unicast, or site-scoped re-multicast when
//              enough receivers lost the same packet or the secondary itself
//              missed it), and calls back to the primary for packets the
//              whole site lost.  Secondaries also volunteer as Designated
//              Ackers and answer group-size probes (Section 2.3).
//  * REPLICA   mirrors the primary's log (ReplicaUpdate/ReplicaAck) and can
//              be promoted to primary after a failure (PromoteRequest).
//
// All roles answer expanding-ring DiscoveryQuery packets.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/actions.hpp"
#include "core/config.hpp"
#include "core/log_store.hpp"
#include "core/loss_detector.hpp"

namespace lbrm {

class LoggerCore {
public:
    /// `rng_seed` drives the probabilistic acker/probe volunteering only.
    LoggerCore(LoggerConfig config, std::uint64_t rng_seed);

    Actions start(TimePoint now);
    Actions on_packet(TimePoint now, const Packet& packet);
    Actions on_timer(TimePoint now, TimerId id);

    // --- observability -------------------------------------------------
    [[nodiscard]] LoggerRole role() const { return role_; }
    [[nodiscard]] const LogStore& store() const { return store_; }
    [[nodiscard]] SeqNum contiguous_high_water() const { return contiguous_; }
    [[nodiscard]] bool is_designated_acker() const { return !designated_epochs_.empty(); }
    [[nodiscard]] std::uint64_t nacks_served_unicast() const { return served_unicast_; }
    [[nodiscard]] std::uint64_t nacks_served_multicast() const { return served_multicast_; }
    [[nodiscard]] std::uint64_t upstream_fetches() const { return upstream_fetches_; }
    [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
    [[nodiscard]] std::uint64_t nacks_received() const { return nacks_received_; }
    /// Stream-gap detector (secondary role): exposes gap_overflows() etc.
    [[nodiscard]] const LossDetector& detector() const { return detector_; }
    [[nodiscard]] const LoggerConfig& config() const { return config_; }
    /// Secondary's current fetch target: the configured upstream until a
    /// PrimaryReply from the source refreshes it (failover, Section 2.2.3).
    [[nodiscard]] NodeId upstream() const { return upstream_; }

    /// Bind the family-aggregate telemetry block (obs/metrics.hpp); the
    /// per-instance accessors above are unaffected.
    void bind_metrics(const obs::ProtocolMetrics& pm) {
        obs_ = &pm.logger;
        detector_.bind_metrics(pm.loss);
    }

private:
    struct FetchState {
        std::set<NodeId> requesters;  ///< local receivers waiting for this seq
        std::uint32_t attempts = 0;
        TimePoint last_request{};  ///< when the last upstream NACK named this seq
        std::uint32_t cold_cycles = 0;  ///< attempt budgets exhausted so far
        TimePoint cold_until{};         ///< no requests before this instant
    };

    /// Re-multicast decision window (Section 2.2.1): NACK count per seq.
    struct RequestWindow {
        std::uint32_t count = 0;
        bool multicast_served = false;
    };

    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }

    /// Store a payload (any source: LogStore, multicast data, retransmission,
    /// replica update) and run everything that hangs off a new packet:
    /// contiguous high-water advance, pending local requester service,
    /// designated-acker duty, replica fan-out.
    void ingest(TimePoint now, SeqNum seq, EpochId epoch,
                const std::vector<std::uint8_t>& payload, bool from_live_stream,
                Actions& actions);

    void advance_contiguous();
    void serve_nack(TimePoint now, NodeId from, const NackBody& nack, Actions& actions);
    void serve_one(TimePoint now, NodeId from, SeqNum seq, Actions& actions);
    void schedule_fetch(TimePoint now, Actions& actions);
    Actions fire_fetch(TimePoint now);
    void watch_stream_seq(TimePoint now, SeqNum seq, bool is_heartbeat, Actions& actions);

    // Primary-only helpers.
    void primary_ack_source(Actions& actions);
    void fan_out_to_replicas(const LogStore::Entry& entry, Actions& actions);
    [[nodiscard]] SeqNum best_replica_seq() const;

    LoggerConfig config_;
    LoggerRole role_;
    Rng rng_;

    LogStore store_;
    /// Highest contiguous sequence in the log; starts at
    /// config_.initial_seq.prev() ("nothing yet"), which stays serially
    /// behind the stream even across the 2^32 wrap.
    SeqNum contiguous_;

    /// Secondary: stream-gap detection for proactive primary callbacks.
    LossDetector detector_;

    /// Secondary: packets we must obtain from upstream.
    std::map<SeqNum, FetchState, SeqNum::WireOrder> fetch_pending_;
    bool fetch_delay_armed_ = false;
    /// Current fetch target: starts at config_.upstream, refreshed from the
    /// source's PrimaryReply after the configured upstream stops answering
    /// (Section 2.2.3 failover -- the primary a secondary was wired to may
    /// no longer be the primary).
    NodeId upstream_;
    TimePoint last_primary_query_{};
    bool primary_query_sent_ = false;

    /// NACK-count windows keyed by sequence number.
    std::map<SeqNum, RequestWindow, SeqNum::WireOrder> windows_;

    /// Designated-acker state: epochs this logger volunteered for.
    std::map<EpochId, bool> designated_epochs_;

    /// Primary: per-replica cumulative acknowledgement.
    std::map<NodeId, SeqNum> replica_acked_;
    bool replica_retry_armed_ = false;

    std::uint64_t served_unicast_ = 0;
    std::uint64_t served_multicast_ = 0;
    std::uint64_t upstream_fetches_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t nacks_received_ = 0;
    const obs::LoggerMetrics* obs_ = &obs::LoggerMetrics::disabled();
};

}  // namespace lbrm
