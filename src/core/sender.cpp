#include "core/sender.hpp"

#include <algorithm>

namespace lbrm {

SenderCore::SenderCore(SenderConfig config)
    : config_(std::move(config)), heartbeat_(config_.heartbeat),
      stat_ack_(config_.self, config_.group, config_.stat_ack),
      flow_(config_.flow_control), next_seq_(config_.initial_seq),
      primary_(config_.primary_logger == kNoNode ? config_.self : config_.primary_logger),
      primary_acked_(config_.initial_seq.prev()),
      replica_acked_(config_.initial_seq.prev()) {}

void SenderCore::bind_metrics(const obs::ProtocolMetrics& pm) {
    obs_ = &pm.sender;
    stat_ack_.bind_metrics(pm.stat_ack);
}

Actions SenderCore::start(TimePoint now) {
    Actions actions;
    // MaxIT guarantee holds from the start: arm the first heartbeat even
    // before any data has been sent.
    actions.push_back(
        StartTimer{{TimerKind::kHeartbeat, 0}, heartbeat_.on_data_sent(now)});
    if (config_.stat_ack.enabled) merge(actions, stat_ack_.start(now), now);
    return actions;
}

void SenderCore::merge(Actions& dst, StatAckEngine::Result&& result, TimePoint now) {
    append(dst, std::move(result.actions));
    if (!result.remulticast.empty()) remulticast(now, result.remulticast, dst);

    if (config_.flow_control.enabled) {
        // Section 5 extension: incomplete ACK accounting (and re-multicast
        // decisions) are loss signals; clean packets ease the governor off.
        bool slowed = false;
        for (std::size_t i = 0; i < result.remulticast.size() + result.incomplete.size();
             ++i)
            slowed = flow_.on_loss_signal() || slowed;
        if (slowed) {
            const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                                flow_.recommended_spacing())
                                .count();
            dst.push_back(Notice{NoticeKind::kCongestionSlowdown,
                                 static_cast<std::uint64_t>(us)});
        }
        bool cleared = false;
        for (std::size_t i = 0; i < result.completed.size(); ++i)
            cleared = flow_.on_clean_packet() || cleared;
        if (cleared) dst.push_back(Notice{NoticeKind::kCongestionCleared, 0});
    }
    flush_retained();
}

void SenderCore::flush_retained() {
    // Replica safety says everything through replica_acked_ is droppable
    // (Section 2.2.3) -- but Section 2.3.2 additionally requires retaining
    // each packet until its statistical-ACK accounting settles, so a
    // re-multicast decision still has the payload at hand.
    SeqNum releasable = replica_acked_;
    if (config_.stat_ack.enabled) {
        if (const auto floor = stat_ack_.lowest_pending();
            floor && (*floor <= releasable))
            releasable = floor->prev();
    }
    // The retransmission channel needs payloads until their copies ran out.
    if (!retx_copies_.empty()) {
        const SeqNum oldest = serial_begin(retx_copies_)->first;
        if (oldest <= releasable) releasable = oldest.prev();
    }
    retained_.release_through(releasable);
}

Actions SenderCore::send(TimePoint now, std::span<const std::uint8_t> payload) {
    Actions actions;
    const SeqNum seq = next_seq_++;
    const EpochId epoch = stat_ack_.current_epoch();
    ++data_sent_;
    obs_->data_sent->inc();

    retained_.insert(now, seq, epoch, payload);
    last_payload_.assign(payload.begin(), payload.end());
    last_epoch_ = epoch;

    actions.push_back(SendMulticast{make_packet(
        DataBody{seq, epoch, {payload.begin(), payload.end()}})});

    if (config_.retrans_channel != kNoGroup) {
        // Section 7: schedule the packet's copies on the retransmission
        // channel (exponentially spaced, like heartbeats).
        retx_copies_.emplace(seq, 0);
        actions.push_back(StartTimer{{TimerKind::kRetxChannel, seq.value()},
                                     now + config_.retrans_channel_first_delay});
    }

    if (!is_self_primary()) {
        actions.push_back(SendUnicast{
            primary_,
            make_packet(LogStoreBody{seq, epoch, {payload.begin(), payload.end()}})});
        actions.push_back(StartTimer{{TimerKind::kLogStoreRetry, 0},
                                     now + config_.log_store_retry});
    } else {
        // Source doubles as primary: the packet is logged by `retained_`
        // and is immediately replica-safe only if there are no replicas.
        primary_acked_ = seq;
        if (config_.replicas.empty()) {
            replica_acked_ = seq;
        }
    }

    actions.push_back(
        StartTimer{{TimerKind::kHeartbeat, 0}, heartbeat_.on_data_sent(now)});

    if (config_.stat_ack.enabled) merge(actions, stat_ack_.on_data_sent(now, seq), now);
    return actions;
}

Actions SenderCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) return actions;

    if (const auto* ack = std::get_if<LogAckBody>(&packet.body))
        return handle_log_ack(now, *ack);

    if (const auto* nack = std::get_if<NackBody>(&packet.body))
        return handle_nack(now, packet.header.sender, *nack);

    if (std::holds_alternative<PrimaryQueryBody>(packet.body)) {
        actions.push_back(
            SendUnicast{packet.header.sender, make_packet(PrimaryReplyBody{primary_})});
        return actions;
    }

    if (const auto* reply = std::get_if<PromoteReplyBody>(&packet.body))
        return handle_promote_reply(now, packet.header.sender, *reply);

    if (config_.stat_ack.enabled) {
        merge(actions, stat_ack_.on_packet(now, packet), now);
        return actions;
    }
    return actions;
}

Actions SenderCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    switch (id.kind) {
        case TimerKind::kHeartbeat: {
            ++heartbeats_sent_;
            obs_->heartbeats_sent->inc();
            if (config_.heartbeat_carries_small_data && data_sent_ > 0 &&
                last_payload_.size() <= config_.heartbeat_data_max_bytes) {
                // Section 7: repeat the (small) data packet instead of an
                // empty heartbeat -- a receiver that lost it is repaired
                // without any retransmission request.
                actions.push_back(SendMulticast{
                    make_packet(DataBody{last_seq(), last_epoch_, last_payload_})});
            } else {
                actions.push_back(SendMulticast{make_packet(
                    HeartbeatBody{last_seq(), heartbeat_.heartbeat_index()})});
            }
            actions.push_back(
                StartTimer{{TimerKind::kHeartbeat, 0}, heartbeat_.on_heartbeat_sent(now)});
            return actions;
        }
        case TimerKind::kRetxChannel: {
            const SeqNum seq{static_cast<std::uint32_t>(id.arg)};
            auto it = retx_copies_.find(seq);
            if (it == retx_copies_.end()) return actions;
            const LogStore::Entry* entry = retained_.find(seq);
            if (entry != nullptr) {
                Packet copy{Header{config_.retrans_channel, config_.self, config_.self},
                            RetransmissionBody{entry->seq, entry->epoch, true,
                                               entry->payload}};
                actions.push_back(SendMulticast{std::move(copy)});
            }
            const std::uint32_t done = ++it->second;
            if (done >= config_.retrans_channel_copies || entry == nullptr) {
                retx_copies_.erase(it);
                flush_retained();
            } else {
                // Exponential spacing: first_delay, x2, x4, ...
                const Duration next =
                    scale(config_.retrans_channel_first_delay,
                          static_cast<double>(1u << done));
                actions.push_back(
                    StartTimer{{TimerKind::kRetxChannel, seq.value()}, now + next});
            }
            return actions;
        }
        case TimerKind::kLogStoreRetry:
            return retry_log_store(now);
        case TimerKind::kFailover:
            // Promote candidate did not answer; try the next one.
            ++failover_candidate_;
            return begin_failover(now);
        default:
            if (config_.stat_ack.enabled) merge(actions, stat_ack_.on_timer(now, id), now);
            return actions;
    }
}

Actions SenderCore::handle_log_ack(TimePoint now, const LogAckBody& ack) {
    Actions actions;
    log_store_retries_ = 0;

    if (ack.primary_seq > primary_acked_) primary_acked_ = ack.primary_seq;

    // Discard rule (Section 2.2.3): data is droppable once a replica has it;
    // with an unreplicated primary the primary ack suffices.
    const SeqNum safe =
        ack.has_replica ? ack.replica_seq
                        : (config_.replicas.empty() ? ack.primary_seq : replica_acked_);
    if (safe > replica_acked_) replica_acked_ = safe;
    flush_retained();

    if (primary_acked_ == last_seq()) {
        actions.push_back(CancelTimer{{TimerKind::kLogStoreRetry, 0}});
    } else {
        actions.push_back(StartTimer{{TimerKind::kLogStoreRetry, 0},
                                     now + config_.log_store_retry});
    }
    return actions;
}

Actions SenderCore::handle_nack(TimePoint now, NodeId from, const NackBody& nack) {
    // Receivers normally NACK their logging servers; they only reach the
    // source as a last resort (logger hierarchy unreachable).  Serve what
    // the retained buffer still has.
    (void)now;
    Actions actions;
    for (SeqNum seq : nack.missing) {
        if (const LogStore::Entry* entry = retained_.find(seq)) {
            actions.push_back(SendUnicast{
                from, make_packet(RetransmissionBody{
                          entry->seq, entry->epoch, false, entry->payload})});
        }
    }
    return actions;
}

Actions SenderCore::retry_log_store(TimePoint now) {
    Actions actions;
    if (primary_acked_ == last_seq()) return actions;  // nothing outstanding

    // A failover round owns recovery once it starts: the kFailover timer
    // chain advances candidates, and the eventual promotion (or self-primary
    // fallback) replays the retained buffer.  A kLogStoreRetry armed by a
    // send() that raced the failover must not re-enter here -- it would
    // reset failover_candidate_ and spawn a second PromoteRequest chain
    // competing with the one in flight (double promotion).  Let the stale
    // timer expire inert; whoever ends the failover re-arms retries.
    if (failing_over_) return actions;

    if (++log_store_retries_ > config_.log_store_max_retries) {
        log_store_retries_ = 0;
        failing_over_ = true;
        failover_candidate_ = 0;
        obs_->failovers->inc();
        return begin_failover(now);
    }
    obs_->log_store_retries->inc();

    // Re-send every retained packet the primary has not acknowledged yet.
    for (SeqNum seq = primary_acked_.next(); seq <= last_seq(); ++seq) {
        const LogStore::Entry* entry = retained_.find(seq);
        if (entry == nullptr) continue;  // already replica-safe and released
        actions.push_back(SendUnicast{
            primary_,
            make_packet(LogStoreBody{entry->seq, entry->epoch, entry->payload})});
    }
    actions.push_back(
        StartTimer{{TimerKind::kLogStoreRetry, 0}, now + config_.log_store_retry});
    return actions;
}

Actions SenderCore::begin_failover(TimePoint now) {
    Actions actions;
    if (!failing_over_) return actions;

    if (failover_candidate_ >= config_.replicas.size()) {
        // No replica answered: fall back to acting as our own primary so the
        // stream keeps flowing; retained data keeps serving NACKs.  This is
        // terminal for the round -- surface it loudly (notice + counter)
        // instead of stalling silently with a dead log hierarchy.
        failing_over_ = false;
        primary_ = config_.self;
        primary_acked_ = last_seq();
        obs_->failover_exhausted->inc();
        actions.push_back(Notice{NoticeKind::kFailoverExhausted,
                                 static_cast<std::uint64_t>(config_.replicas.size())});
        actions.push_back(Notice{NoticeKind::kPrimaryFailover, config_.self.value()});
        return actions;
    }

    const NodeId candidate = config_.replicas[failover_candidate_];
    actions.push_back(SendUnicast{candidate, make_packet(PromoteRequestBody{})});
    actions.push_back(
        StartTimer{{TimerKind::kFailover, 0}, now + config_.log_store_retry * 2});
    return actions;
}

Actions SenderCore::handle_promote_reply(TimePoint now, NodeId from,
                                         const PromoteReplyBody& reply) {
    Actions actions;
    if (!failing_over_ || !reply.accepted) return actions;
    if (failover_candidate_ >= config_.replicas.size() ||
        config_.replicas[failover_candidate_] != from)
        return actions;  // stale reply from an earlier candidate

    failing_over_ = false;
    primary_ = from;
    actions.push_back(CancelTimer{{TimerKind::kFailover, 0}});
    actions.push_back(Notice{NoticeKind::kPrimaryFailover, from.value()});

    // Replay everything the new primary might be missing from the retained
    // buffer (Section 2.2.3: "the source reliably transmits to the replica
    // any packets being held in its buffer").
    primary_acked_ = reply.log_high_water;
    for (SeqNum seq = reply.log_high_water.next(); seq <= last_seq(); ++seq) {
        const LogStore::Entry* entry = retained_.find(seq);
        if (entry == nullptr) continue;
        actions.push_back(SendUnicast{
            from, make_packet(LogStoreBody{entry->seq, entry->epoch, entry->payload})});
    }
    if (primary_acked_ != last_seq())
        actions.push_back(StartTimer{{TimerKind::kLogStoreRetry, 0},
                                     now + config_.log_store_retry});
    return actions;
}

void SenderCore::remulticast(TimePoint now, const std::vector<SeqNum>& seqs,
                             Actions& actions) {
    (void)now;
    for (SeqNum seq : seqs) {
        const LogStore::Entry* entry = retained_.find(seq);
        if (entry == nullptr) continue;  // already released: loggers serve it
        // Re-multicast as a fresh copy of the data packet (Figure 8); the
        // designated ackers acknowledge it again and receivers dedup by seq.
        obs_->remulticasts->inc();
        actions.push_back(SendMulticast{make_packet(
            DataBody{entry->seq, entry->epoch, entry->payload})});
    }
}

}  // namespace lbrm
