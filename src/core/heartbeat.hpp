// Variable-heartbeat scheduler (Section 2.1).
//
// The sender maintains an inter-heartbeat time h.  When a data packet is
// sent, h resets to h_min; after each heartbeat it multiplies by `backoff`
// until it saturates at h_max.  The effect (Figure 3) is a burst of
// heartbeats right after each data packet -- exactly when a receiver that
// lost the packet most needs a gap signal -- thinning out exponentially
// while the channel stays idle.
//
// Setting `fixed = true` (or backoff = 1) degenerates to the fixed-rate
// heartbeat baseline of Section 2.1.2.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/time.hpp"
#include "core/config.hpp"

namespace lbrm {

class HeartbeatScheduler {
public:
    explicit HeartbeatScheduler(const HeartbeatConfig& config) : config_(config) {
        if (config.h_min <= Duration::zero() || config.h_max < config.h_min)
            throw std::invalid_argument("HeartbeatScheduler: need 0 < h_min <= h_max");
        if (config.backoff < 1.0)
            throw std::invalid_argument("HeartbeatScheduler: backoff must be >= 1");
        reset_to_min();
    }

    /// The application transmitted a data packet at `now`.
    /// Returns the deadline for the next heartbeat (now + h_min).
    TimePoint on_data_sent(TimePoint now) {
        reset_to_min();
        heartbeat_index_ = 0;
        return now + current_;
    }

    /// A heartbeat fired at `now` (and is being transmitted).
    /// Grows h and returns the next heartbeat deadline.
    TimePoint on_heartbeat_sent(TimePoint now) {
        ++heartbeat_index_;
        grow();
        return now + current_;
    }

    /// Interval that will separate the most recent transmission from the
    /// next heartbeat.
    [[nodiscard]] Duration current_interval() const { return current_; }

    /// Heartbeats emitted since the last data packet (wire diagnostic field).
    [[nodiscard]] std::uint32_t heartbeat_index() const { return heartbeat_index_; }

    [[nodiscard]] const HeartbeatConfig& config() const { return config_; }

private:
    void reset_to_min() { current_ = config_.h_min; }

    void grow() {
        if (config_.fixed) return;
        Duration next = scale(current_, config_.backoff);
        current_ = next > config_.h_max ? config_.h_max : next;
    }

    HeartbeatConfig config_;
    Duration current_{};
    std::uint32_t heartbeat_index_ = 0;
};

}  // namespace lbrm
