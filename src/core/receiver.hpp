// The LBRM receiving endpoint (Sections 2, 2.2).
//
// Receivers define their own reliability: this core detects loss (sequence
// gaps and MaxIT silence), requests missing packets from its logging-server
// hierarchy, and reports freshness to the application.  It never positively
// acknowledges anything to the source.
//
// Recovery escalation mirrors Section 2.2.1/2.2.3:
//   local (secondary) logger -> configured fallback (usually the primary)
//   -> ask the source for the current primary (PrimaryQuery) -> abandon.
// The logging-server address is treated as a cached value throughout.
//
// When no logger is configured the core locates one with expanding-ring
// scoped multicast discovery (site ring, then region, then global).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/actions.hpp"
#include "core/config.hpp"
#include "core/loss_detector.hpp"

namespace lbrm {

class ReceiverCore {
public:
    explicit ReceiverCore(ReceiverConfig config);

    /// Arm the freshness watchdog and start logger discovery if needed.
    Actions start(TimePoint now);

    Actions on_packet(TimePoint now, const Packet& packet);
    Actions on_timer(TimePoint now, TimerId id);

    // --- observability -------------------------------------------------
    [[nodiscard]] NodeId current_logger() const;
    /// Like current_logger(), but at the local level resolves the rotating
    /// log-server schedule (Section 2.2.1 alternative) for time `now`.
    [[nodiscard]] NodeId current_logger(TimePoint now) const;
    [[nodiscard]] bool fresh() const { return fresh_; }
    [[nodiscard]] const LossDetector& detector() const { return detector_; }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
    [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
    [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
    [[nodiscard]] std::uint64_t recovery_failures() const { return recovery_failures_; }
    [[nodiscard]] const ReceiverConfig& config() const { return config_; }

    /// Bind the family-aggregate telemetry block (obs/metrics.hpp); the
    /// per-instance accessors above are unaffected.
    void bind_metrics(const obs::ProtocolMetrics& pm) {
        obs_ = &pm.receiver;
        detector_.bind_metrics(pm.loss);
    }

    // --- dormant-receiver support (runtime/protocol_host.hpp) ----------
    /// The idle-watchdog delay start() arms before any packet is seen,
    /// exposed so a dormant record can schedule the identical timer
    /// without materialising the core.
    [[nodiscard]] static Duration initial_idle_threshold(const ReceiverConfig& config) {
        const Duration scaled = scale(config.heartbeat.h_min, config.idle_safety);
        return scaled > config.max_idle ? scaled : config.max_idle;
    }

    /// Restore the post-start() flags on a freshly constructed core when a
    /// dormant receiver wakes.  The constructor is pure and start() only
    /// sets these two fields (plus discovery state, which dormant mode
    /// excludes -- the logger is statically configured), so a woken core
    /// is bit-identical to one that called start() and then idled.
    void restore_started(bool fresh) {
        started_ = true;
        fresh_ = fresh;
    }

private:
    enum class RecoveryLevel : std::uint8_t {
        kLocal = 0,     ///< discovered/configured (secondary) logger
        kFallback = 1,  ///< configured fallback (usually the primary)
        kPrimary = 2,   ///< primary learned from the source via PrimaryQuery
    };

    struct PendingRecovery {
        TimePoint first_detected{};
        std::uint32_t attempts_at_level = 0;
        std::uint32_t cold_cycles = 0;  ///< full escalation walks exhausted
    };

    [[nodiscard]] Packet make_packet(Body body) const {
        return Packet{Header{config_.group, config_.source, config_.self}, std::move(body)};
    }

    Actions accept_payload(TimePoint now, SeqNum seq, EpochId epoch,
                           const std::vector<std::uint8_t>& payload, bool recovered);
    /// Route newly-detected losses into recovery: NACK scheduling, or the
    /// retransmission channel when configured.
    void begin_recovery(TimePoint now, Actions& actions);
    /// All gaps just closed: wind recovery down.
    void recovery_complete(TimePoint now, Actions& actions);
    /// Live-stream packet heard: restore freshness and re-arm the idle
    /// watchdog for `expected_gap` (the known time to the next heartbeat).
    void note_live_traffic(TimePoint now, Duration expected_gap, Actions& actions);
    /// Expected silence after a heartbeat carrying index k.
    [[nodiscard]] Duration gap_after_heartbeat(std::uint32_t index) const;
    [[nodiscard]] Duration idle_threshold(Duration expected_gap) const;
    void schedule_nack(TimePoint now, Actions& actions);
    Actions fire_nack(TimePoint now);
    Actions escalate(TimePoint now);
    Actions discovery_round(TimePoint now);

    /// Deterministic jitter in [min, max) derived from self id + a counter,
    /// keeping the core free of hidden RNG state.
    [[nodiscard]] Duration nack_jitter();

    ReceiverConfig config_;
    LossDetector detector_;

    NodeId logger_;  ///< cached logging-server address (kNoNode = unknown)
    RecoveryLevel level_ = RecoveryLevel::kLocal;
    bool primary_query_outstanding_ = false;

    std::map<SeqNum, PendingRecovery, SeqNum::WireOrder> pending_;
    bool nack_timer_armed_ = false;

    bool fresh_ = true;
    bool started_ = false;

    /// Expected silence until the next live transmission; grows with the
    /// sender's backoff.  Tracked explicitly (not just from heartbeat
    /// indices) so data-carrying heartbeats -- duplicates of the last data
    /// packet, Section 7 -- keep the watchdog calibrated too.
    Duration expected_gap_;

    /// Section 7 retransmission channel: currently subscribed?
    bool retx_joined_ = false;

    // Discovery state
    bool discovering_ = false;
    std::uint32_t discovery_round_ = 0;
    std::uint32_t discovery_nonce_ = 0;

    std::uint64_t jitter_state_;

    std::uint64_t delivered_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t nacks_sent_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t recovery_failures_ = 0;
    const obs::ReceiverMetrics* obs_ = &obs::ReceiverMetrics::disabled();
};

}  // namespace lbrm
