#include "core/logger.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace lbrm {

LoggerCore::LoggerCore(LoggerConfig config, std::uint64_t rng_seed)
    : config_(std::move(config)), role_(config_.role), rng_(rng_seed),
      store_(config_.retention), contiguous_(config_.initial_seq.prev()),
      detector_(config_.max_detector_gap), upstream_(config_.upstream) {}

Actions LoggerCore::start(TimePoint now) {
    (void)now;
    return {};
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

Actions LoggerCore::on_packet(TimePoint now, const Packet& packet) {
    Actions actions;
    if (packet.header.group != config_.group) return actions;
    const NodeId from = packet.header.sender;

    // --- log ingestion paths -------------------------------------------
    if (const auto* data = std::get_if<DataBody>(&packet.body)) {
        // Secondary loggers (and a primary that also listens) log the live
        // multicast stream.
        watch_stream_seq(now, data->seq, /*is_heartbeat=*/false, actions);
        ingest(now, data->seq, data->epoch, data->payload, /*from_live_stream=*/true,
               actions);
        return actions;
    }

    if (const auto* hb = std::get_if<HeartbeatBody>(&packet.body)) {
        watch_stream_seq(now, hb->last_seq, /*is_heartbeat=*/true, actions);
        return actions;
    }

    if (const auto* rt = std::get_if<RetransmissionBody>(&packet.body)) {
        watch_stream_seq(now, rt->seq, /*is_heartbeat=*/false, actions);
        ingest(now, rt->seq, rt->epoch, rt->payload, /*from_live_stream=*/false, actions);
        return actions;
    }

    if (const auto* ls = std::get_if<LogStoreBody>(&packet.body)) {
        // Reliable handoff from the source (primary role; a replica being
        // replayed after promotion accepts these too).
        if (role_ == LoggerRole::kPrimary) {
            ingest(now, ls->seq, ls->epoch, ls->payload, /*from_live_stream=*/false,
                   actions);
            primary_ack_source(actions);
        }
        return actions;
    }

    if (const auto* ru = std::get_if<ReplicaUpdateBody>(&packet.body)) {
        if (role_ == LoggerRole::kReplica) {
            ingest(now, ru->seq, ru->epoch, ru->payload, /*from_live_stream=*/false,
                   actions);
            actions.push_back(
                SendUnicast{from, make_packet(ReplicaAckBody{contiguous_})});
        }
        return actions;
    }

    if (const auto* ra = std::get_if<ReplicaAckBody>(&packet.body)) {
        if (role_ == LoggerRole::kPrimary) {
            SeqNum& acked = replica_acked_[from];
            if (ra->cumulative_seq > acked) acked = ra->cumulative_seq;
            // Let the source release buffers as replicas catch up.
            primary_ack_source(actions);
        }
        return actions;
    }

    if (const auto* pr = std::get_if<PrimaryReplyBody>(&packet.body)) {
        // The source's answer to our fire_fetch PrimaryQuery: adopt the
        // current primary as the fetch target (Section 2.2.3 -- the
        // statically configured upstream may have crashed and been
        // replaced).  Ignore an answer naming ourselves: serving our own
        // fetches cannot work.
        if (role_ == LoggerRole::kSecondary && pr->primary != kNoNode &&
            pr->primary != config_.self)
            upstream_ = pr->primary;
        return actions;
    }

    // --- recovery service ----------------------------------------------
    if (const auto* nack = std::get_if<NackBody>(&packet.body)) {
        serve_nack(now, from, *nack, actions);
        return actions;
    }

    // --- statistical acknowledgement duties (Section 2.3) ----------------
    if (const auto* sel = std::get_if<AckerSelectionBody>(&packet.body)) {
        if (config_.participate_in_acking && role_ == LoggerRole::kSecondary) {
            if (rng_.bernoulli(sel->p_ack)) {
                designated_epochs_[sel->epoch] = true;
                while (designated_epochs_.size() > 2)
                    designated_epochs_.erase(designated_epochs_.begin());
                actions.push_back(SendUnicast{
                    config_.source, make_packet(AckerResponseBody{sel->epoch})});
                actions.push_back(
                    Notice{NoticeKind::kDesignatedAcker, sel->epoch.value()});
            }
        }
        return actions;
    }

    if (const auto* probe = std::get_if<ProbeRequestBody>(&packet.body)) {
        if (config_.participate_in_acking && role_ == LoggerRole::kSecondary &&
            rng_.bernoulli(probe->p_ack)) {
            actions.push_back(
                SendUnicast{config_.source, make_packet(ProbeReplyBody{probe->round})});
        }
        return actions;
    }

    // --- control plane ---------------------------------------------------
    if (const auto* dq = std::get_if<DiscoveryQueryBody>(&packet.body)) {
        if (config_.answer_discovery) {
            actions.push_back(SendUnicast{
                from, make_packet(DiscoveryReplyBody{
                          dq->nonce, config_.self, role_ == LoggerRole::kPrimary})});
        }
        return actions;
    }

    if (std::holds_alternative<PromoteRequestBody>(packet.body)) {
        if (role_ == LoggerRole::kReplica) {
            role_ = LoggerRole::kPrimary;
            actions.push_back(Notice{NoticeKind::kPrimaryFailover, config_.self.value()});
        }
        // Idempotent: an already-promoted primary re-confirms.
        actions.push_back(SendUnicast{
            from, make_packet(PromoteReplyBody{contiguous_,
                                               role_ == LoggerRole::kPrimary})});
        return actions;
    }

    return actions;
}

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

void LoggerCore::watch_stream_seq(TimePoint now, SeqNum seq, bool is_heartbeat,
                                  Actions& actions) {
    if (role_ != LoggerRole::kSecondary) return;
    auto obs = detector_.observe(now, seq, is_heartbeat);
    if (obs.newly_missing.empty()) return;
    // Call back to the primary for everything the site lost (Section 2.2.1),
    // after the configured delay that gives the source's own statistical
    // re-multicast a chance to repair first (Section 2.3.2).
    for (SeqNum s : obs.newly_missing) fetch_pending_.try_emplace(s);
    schedule_fetch(now, actions);
}

void LoggerCore::ingest(TimePoint now, SeqNum seq, EpochId epoch,
                        const std::vector<std::uint8_t>& payload,
                        bool from_live_stream, Actions& actions) {
    store_.expire(now);
    const bool fresh = store_.insert(now, seq, epoch, payload);
    advance_contiguous();

    if (fresh && role_ == LoggerRole::kPrimary && !config_.replicas.empty()) {
        const LogStore::Entry* entry = store_.find(seq);
        if (entry != nullptr) fan_out_to_replicas(*entry, actions);
    }

    // Designated-acker duty: unicast an ACK to the source for each packet of
    // an epoch we volunteered for, whether it arrived live or via recovery.
    if (fresh && designated_epochs_.contains(epoch)) {
        ++acks_sent_;
        obs_->acks_sent->inc();
        actions.push_back(SendUnicast{config_.source, make_packet(AckBody{epoch, seq})});
    }

    // Satisfy receivers that were waiting for this packet.
    auto pending = fetch_pending_.find(seq);
    if (pending != fetch_pending_.end()) {
        detector_.observe(now, seq);  // keep the gap tracker consistent
        const bool self_missed = !from_live_stream;
        const auto requesters = std::move(pending->second.requesters);
        fetch_pending_.erase(pending);
        if (const LogStore::Entry* entry = store_.find(seq)) {
            if (self_missed && !requesters.empty() && config_.site_multicast_repairs) {
                // The secondary itself lost the packet: the whole site most
                // likely did; one site-scoped re-multicast repairs everyone
                // (Section 2.2.1).
                ++served_multicast_;
                obs_->served_multicast->inc();
                actions.push_back(SendMulticast{
                    make_packet(RetransmissionBody{entry->seq, entry->epoch, true,
                                                   entry->payload}),
                    McastScope::kSite});
                actions.push_back(Notice{NoticeKind::kRemulticast, seq.value()});
            } else {
                for (NodeId r : requesters) {
                    ++served_unicast_;
                    obs_->served_unicast->inc();
                    actions.push_back(SendUnicast{
                        r, make_packet(RetransmissionBody{entry->seq, entry->epoch, false,
                                                          entry->payload})});
                }
            }
        }
    }
}

void LoggerCore::advance_contiguous() {
    while (store_.contains(contiguous_.next())) contiguous_ = contiguous_.next();
}

// ---------------------------------------------------------------------------
// NACK service (Sections 2.2.1, 2.2.2)
// ---------------------------------------------------------------------------

void LoggerCore::serve_nack(TimePoint now, NodeId from, const NackBody& nack,
                            Actions& actions) {
    ++nacks_received_;
    obs_->nacks_received->inc();
    LBRM_TRACE_SPAN("log_recover");
    for (SeqNum seq : nack.missing) serve_one(now, from, seq, actions);
}

void LoggerCore::serve_one(TimePoint now, NodeId from, SeqNum seq, Actions& actions) {
    store_.expire(now);
    const LogStore::Entry* entry = store_.find(seq);

    if (entry == nullptr) {
        if (role_ == LoggerRole::kSecondary && upstream_ != kNoNode) {
            // We do not have it either: remember the requester and call back
            // to the primary.
            auto [it, inserted] = fetch_pending_.try_emplace(seq);
            it->second.requesters.insert(from);
            schedule_fetch(now, actions);
        }
        // A primary without the packet (expired from the log) cannot help;
        // the receiver's retry/escalation handles it.
        return;
    }

    RequestWindow& window = windows_[seq];
    if (window.count == 0)
        actions.push_back(StartTimer{{TimerKind::kRemcastWindow, seq.value()},
                                     now + config_.remulticast_window});
    ++window.count;

    if (window.multicast_served) return;  // repair already on the wire

    if (config_.site_multicast_repairs &&
        window.count >= config_.remulticast_request_threshold) {
        // Enough losers in one window: one scoped multicast beats N unicasts.
        window.multicast_served = true;
        ++served_multicast_;
        obs_->served_multicast->inc();
        const McastScope scope = role_ == LoggerRole::kSecondary ? McastScope::kSite
                                                                 : McastScope::kGlobal;
        actions.push_back(SendMulticast{
            make_packet(RetransmissionBody{entry->seq, entry->epoch, true,
                                           entry->payload}),
            scope});
        actions.push_back(Notice{NoticeKind::kRemulticast, seq.value()});
    } else {
        ++served_unicast_;
        obs_->served_unicast->inc();
        actions.push_back(SendUnicast{
            from, make_packet(RetransmissionBody{entry->seq, entry->epoch, false,
                                                 entry->payload})});
    }
}

// ---------------------------------------------------------------------------
// Upstream fetch (secondary -> primary callback)
// ---------------------------------------------------------------------------

void LoggerCore::schedule_fetch(TimePoint now, Actions& actions) {
    if (fetch_delay_armed_ || fetch_pending_.empty()) return;
    fetch_delay_armed_ = true;
    actions.push_back(
        StartTimer{{TimerKind::kNackDelay, 0}, now + config_.fetch_delay});
}

Actions LoggerCore::fire_fetch(TimePoint now) {
    Actions actions;
    NackBody nack;
    bool budget_exhausted = false;
    for (auto it = fetch_pending_.begin(); it != fetch_pending_.end();) {
        FetchState& state = it->second;
        if (store_.contains(it->first)) {
            // Arrived while we waited.
            it = fetch_pending_.erase(it);
            continue;
        }
        if (state.attempts >= config_.fetch_max_retries) {
            if (state.cold_cycles >= config_.fetch_cold_cycles) {
                actions.push_back(
                    Notice{NoticeKind::kRecoveryFailed, it->first.value()});
                detector_.abandon(it->first);
                it = fetch_pending_.erase(it);
                continue;
            }
            // A whole attempt budget unanswered: the upstream is likely
            // crashed or mid-failover, or simply does not hold the packet
            // yet (the source's own LogStore handoff is retried).  Park
            // the fetch for a cold pause and restart the budget -- and ask
            // the source below who the primary is *now*.
            ++state.cold_cycles;
            state.attempts = 0;
            state.cold_until = now + config_.fetch_cold_retry;
            budget_exhausted = true;
        }
        // Pace per sequence: a request fired less than fetch_retry ago is
        // still outstanding -- re-asking now would just double the NACK load
        // the hierarchy exists to reduce.  Parked sequences wait out their
        // cold pause first.
        if (now >= state.cold_until &&
            (state.attempts == 0 || now - state.last_request >= config_.fetch_retry)) {
            ++state.attempts;
            state.last_request = now;
            nack.missing.push_back(it->first);
        }
        ++it;
    }

    if (upstream_ == kNoNode) return actions;
    if (budget_exhausted &&
        (!primary_query_sent_ ||
         now - last_primary_query_ >= config_.fetch_cold_retry)) {
        primary_query_sent_ = true;
        last_primary_query_ = now;
        actions.push_back(
            SendUnicast{config_.source, make_packet(PrimaryQueryBody{})});
    }
    if (!nack.missing.empty()) {
        ++upstream_fetches_;
        obs_->upstream_fetches->inc();
        actions.push_back(SendUnicast{upstream_, make_packet(std::move(nack))});
    }
    if (!fetch_pending_.empty())
        actions.push_back(
            StartTimer{{TimerKind::kNackRetry, 0}, now + config_.fetch_retry});
    return actions;
}

// ---------------------------------------------------------------------------
// Primary: source acknowledgement and replica synchronization (Section 2.2.3)
// ---------------------------------------------------------------------------

SeqNum LoggerCore::best_replica_seq() const {
    SeqNum best = config_.initial_seq.prev();  // "no replica has anything"
    for (const auto& [node, seq] : replica_acked_)
        if (seq > best) best = seq;
    return best;
}

void LoggerCore::primary_ack_source(Actions& actions) {
    actions.push_back(SendUnicast{
        config_.source,
        make_packet(LogAckBody{contiguous_, best_replica_seq(),
                               !config_.replicas.empty()})});
}

void LoggerCore::fan_out_to_replicas(const LogStore::Entry& entry, Actions& actions) {
    for (NodeId replica : config_.replicas) {
        actions.push_back(SendUnicast{
            replica,
            make_packet(ReplicaUpdateBody{entry.seq, entry.epoch, entry.payload})});
    }
    if (!replica_retry_armed_) {
        replica_retry_armed_ = true;
        actions.push_back(StartTimer{{TimerKind::kReplicaRetry, 0},
                                     TimePoint{entry.stored_at + config_.replica_retry}});
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

Actions LoggerCore::on_timer(TimePoint now, TimerId id) {
    Actions actions;
    switch (id.kind) {
        case TimerKind::kNackDelay:
            fetch_delay_armed_ = false;
            return fire_fetch(now);

        case TimerKind::kNackRetry:
            // Outstanding upstream fetch unanswered: re-request.
            return fire_fetch(now);

        case TimerKind::kRemcastWindow:
            windows_.erase(SeqNum{static_cast<std::uint32_t>(id.arg)});
            return actions;

        case TimerKind::kReplicaRetry: {
            replica_retry_armed_ = false;
            if (role_ != LoggerRole::kPrimary || config_.replicas.empty()) return actions;
            bool outstanding = false;
            for (NodeId replica : config_.replicas) {
                SeqNum acked = config_.initial_seq.prev();
                if (auto it = replica_acked_.find(replica); it != replica_acked_.end())
                    acked = it->second;
                for (SeqNum s = acked.next(); s <= contiguous_; ++s) {
                    const LogStore::Entry* entry = store_.find(s);
                    if (entry == nullptr) continue;
                    outstanding = true;
                    actions.push_back(SendUnicast{
                        replica, make_packet(ReplicaUpdateBody{entry->seq, entry->epoch,
                                                               entry->payload})});
                }
            }
            if (outstanding) {
                replica_retry_armed_ = true;
                actions.push_back(StartTimer{{TimerKind::kReplicaRetry, 0},
                                             now + config_.replica_retry});
            }
            return actions;
        }

        default:
            return actions;
    }
}

}  // namespace lbrm
