#include "core/stat_ack.hpp"

#include <algorithm>

namespace lbrm {

StatAckEngine::StatAckEngine(NodeId self, GroupId group, const StatAckConfig& config)
    : self_(self), group_(group), config_(config), estimator_(config),
      t_wait_ewma_(config.alpha, to_seconds(config.initial_t_wait)) {}

Duration StatAckEngine::t_wait() const {
    Duration d = secs(t_wait_ewma_.value());
    return std::clamp(d, config_.min_t_wait, config_.max_t_wait);
}

double StatAckEngine::n_sl() const { return estimator_.estimate().value_or(0.0); }

Duration StatAckEngine::response_window() const { return 2 * t_wait(); }

Packet StatAckEngine::make_packet(Body body) const {
    return Packet{Header{group_, self_, self_}, std::move(body)};
}

void StatAckEngine::set_group_size(double n_sl) {
    estimator_.set_estimate(n_sl);
    statically_sized_ = true;
}

StatAckEngine::Result StatAckEngine::start(TimePoint now) {
    started_ = true;
    if (probing()) return send_probe(now);
    return open_epoch(now);
}

StatAckEngine::Result StatAckEngine::send_probe(TimePoint now) {
    Result result;
    auto spec = estimator_.current_round();
    result.actions.push_back(
        SendMulticast{make_packet(ProbeRequestBody{spec.round, spec.p})});
    result.actions.push_back(
        StartTimer{{TimerKind::kProbeRound, 0}, now + response_window()});
    return result;
}

StatAckEngine::Result StatAckEngine::open_epoch(TimePoint now) {
    Result result;
    const double n = std::max(1.0, n_sl());
    EpochRecord record;
    record.p_ack = std::min(1.0, static_cast<double>(config_.k) / n);
    record.open = true;

    opening_epoch_ = EpochId{next_epoch_number_++};
    epochs_[opening_epoch_] = std::move(record);
    obs_->epochs_opened->inc();

    // Keep at most: the epoch being opened, the active epoch, and one stale
    // epoch for ACK overlap across the transition (Section 2.3.1).
    while (epochs_.size() > 3) epochs_.erase(epochs_.begin());

    result.actions.push_back(SendMulticast{
        make_packet(AckerSelectionBody{opening_epoch_, epochs_[opening_epoch_].p_ack})});
    result.actions.push_back(
        StartTimer{{TimerKind::kEpochOpen, 0}, now + response_window()});
    return result;
}

void StatAckEngine::close_epoch_window(TimePoint now, Actions& actions) {
    auto it = epochs_.find(opening_epoch_);
    if (it == epochs_.end()) return;
    EpochRecord& record = it->second;
    record.open = false;
    record.expected = static_cast<std::uint32_t>(record.designated.size());

    // The responses themselves are a group-size probe (Section 2.3.3).
    if (record.p_ack > 0.0)
        estimator_.update_continuous(record.expected, record.p_ack);

    active_epoch_ = opening_epoch_;
    active_expected_ = record.expected;

    if (record.expected == 0) {
        // Zero volunteers: with active_expected_ == 0 no packet gets ACK
        // accounting, so waiting a whole epoch_interval would leave the
        // group dark.  Surface the outage and re-solicit soon.
        ++empty_epoch_resolicits_;
        obs_->empty_epoch_resolicits->inc();
        actions.push_back(Notice{NoticeKind::kAckerOutage, active_epoch_.value()});
        actions.push_back(
            StartTimer{{TimerKind::kEpochRotate, 0}, now + config_.empty_epoch_retry});
        return;
    }

    actions.push_back(Notice{NoticeKind::kEpochStarted, active_epoch_.value()});
    actions.push_back(
        StartTimer{{TimerKind::kEpochRotate, 0}, now + config_.epoch_interval});
}

StatAckEngine::Result StatAckEngine::on_data_sent(TimePoint now, SeqNum seq) {
    Result result;
    if (!config_.enabled || active_expected_ == 0) return result;

    PendingAck pending;
    pending.epoch = active_epoch_;
    pending.sent_at = now;
    pending.expected = active_expected_;
    pending_.emplace(seq, std::move(pending));

    result.actions.push_back(
        StartTimer{{TimerKind::kAckWait, seq.value()}, now + t_wait()});
    return result;
}

StatAckEngine::Result StatAckEngine::on_packet(TimePoint now, const Packet& packet) {
    Result result;

    if (const auto* probe = std::get_if<ProbeReplyBody>(&packet.body)) {
        estimator_.on_probe_reply(probe->round);
        return result;
    }

    if (const auto* volunteer = std::get_if<AckerResponseBody>(&packet.body)) {
        auto it = epochs_.find(volunteer->epoch);
        if (it != epochs_.end() && it->second.open &&
            !blacklist_.contains(packet.header.sender))
            it->second.designated.insert(packet.header.sender);
        return result;
    }

    const auto* ack = std::get_if<AckBody>(&packet.body);
    if (ack == nullptr) return result;

    const NodeId from = packet.header.sender;
    if (blacklist_.contains(from)) return result;

    auto epoch_it = epochs_.find(ack->epoch);
    if (epoch_it == epochs_.end() || !epoch_it->second.designated.contains(from)) {
        note_spurious_ack(from);
        return result;
    }

    auto pending_it = pending_.find(ack->seq);
    if (pending_it == pending_.end()) return result;  // late beyond 2*t_wait
    PendingAck& pending = pending_it->second;

    // ACKs are valid from the packet's own epoch and, across a transition,
    // from the overlapping previous epoch's designated set.
    pending.got.insert(from);
    pending.last_ack_at = now;

    if (!pending.decided && pending.got.size() >= pending.expected) {
        // Complete before t_wait: settle immediately.
        finalize(now, ack->seq, pending);
        Result done;
        done.actions.push_back(CancelTimer{{TimerKind::kAckWait, ack->seq.value()}});
        done.completed.push_back(ack->seq);
        obs_->packets_completed->inc();
        pending_.erase(pending_it);
        return done;
    }
    return result;
}

StatAckEngine::Result StatAckEngine::on_timer(TimePoint now, TimerId id) {
    Result result;
    switch (id.kind) {
        case TimerKind::kProbeRound: {
            estimator_.finish_round();
            if (probing()) return send_probe(now);
            return open_epoch(now);
        }
        case TimerKind::kEpochOpen: {
            close_epoch_window(now, result.actions);
            return result;
        }
        case TimerKind::kEpochRotate:
            return open_epoch(now);
        case TimerKind::kAckWait: {
            const SeqNum seq{static_cast<std::uint32_t>(id.arg)};
            auto it = pending_.find(seq);
            if (it == pending_.end()) return result;
            PendingAck& pending = it->second;
            if (!pending.decided) {
                pending.decided = true;
                decide(now, seq, pending, result);
                if (pending_.contains(seq)) {
                    // Keep listening for late ACKs until 2 * t_wait so the
                    // RTT estimator can observe stragglers (Section 2.3.2).
                    result.actions.push_back(StartTimer{
                        {TimerKind::kAckWait, seq.value()}, now + t_wait()});
                }
            } else {
                if (pending.got.size() >= pending.expected) {
                    result.completed.push_back(seq);
                    obs_->packets_completed->inc();
                } else {
                    result.incomplete.push_back(seq);
                    obs_->packets_incomplete->inc();
                }
                finalize(now, seq, pending);
                pending_.erase(it);
            }
            return result;
        }
        default:
            return result;
    }
}

void StatAckEngine::decide(TimePoint now, SeqNum seq, PendingAck& pending,
                           Result& result) {
    const std::uint32_t got = static_cast<std::uint32_t>(pending.got.size());
    if (got >= pending.expected) return;  // everyone answered: rely on NACKs

    const std::uint32_t missing = pending.expected - got;
    const double n = std::max(1.0, n_sl());
    const double sites_per_acker =
        pending.expected > 0 ? n / static_cast<double>(pending.expected) : n;
    const double represented_sites = static_cast<double>(missing) * sites_per_acker;

    if (represented_sites >= config_.remulticast_site_threshold &&
        pending.remulticasts < config_.max_remulticasts) {
        // Missing ACKs stand in for a significant number of sites: multicast
        // the retransmission immediately (Section 2.3.2, Figure 8).
        ++pending.remulticasts;
        ++remulticast_decisions_;
        obs_->remulticast_decisions->inc();
        pending.decided = false;  // the re-multicast gets its own t_wait cycle
        pending.sent_at = now;
        pending.got.clear();
        result.remulticast.push_back(seq);
        result.actions.push_back(Notice{NoticeKind::kRemulticast, seq.value()});
    }
    (void)now;
}

void StatAckEngine::finalize(TimePoint now, SeqNum seq, PendingAck& pending) {
    (void)seq;
    if (!pending.got.empty()) {
        // rtt_new = arrival time of the last ACK, capped at 2 * t_wait.
        Duration rtt = pending.last_ack_at - pending.sent_at;
        rtt = std::min(rtt, 2 * t_wait());
        t_wait_ewma_.update(to_seconds(rtt));
    } else {
        // No ACK at all within 2 * t_wait: assert loss; nudge the estimator
        // upward so t_wait does not collapse during outages.
        t_wait_ewma_.update(to_seconds(std::min(now - pending.sent_at, 2 * t_wait())));
    }

    auto epoch_it = epochs_.find(pending.epoch);
    if (epoch_it != epochs_.end() && epoch_it->second.p_ack > 0.0)
        estimator_.update_continuous(static_cast<std::uint32_t>(pending.got.size()),
                                     epoch_it->second.p_ack);
}

void StatAckEngine::note_spurious_ack(NodeId from) {
    const std::uint32_t count = ++spurious_[from];
    if (count >= config_.faulty_acker_limit) {
        blacklist_.insert(from);
        spurious_.erase(from);
    }
}

}  // namespace lbrm
