// Sender-side flow control from statistical-acknowledgement feedback --
// the Section 5 future-work item: "we are looking into use [of] statistical
// acknowledgement information to slow down the sender during periods of
// high loss."
//
// The paper only sketches the idea, so this implementation keeps it
// minimal and conventional: an AIMD governor over the *recommended minimum
// spacing* between application sends.
//
//   * Every packet whose designated-acker accounting ends incomplete (the
//     engine decided to re-multicast, or gave up waiting) is a loss signal:
//     the recommended spacing doubles (multiplicative backoff).
//   * A streak of fully-acknowledged packets is a health signal: spacing
//     halves (fast recovery toward zero -- LBRM sources are low-rate by
//     design, so there is no steady-state probing like TCP's).
//
// The governor is advisory: LBRM remains receiver-reliable and never
// blocks a send.  The application reads recommended_spacing() (or watches
// the kCongestionSlowdown / kCongestionCleared notices) and paces itself.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace lbrm {

struct FlowControlConfig {
    bool enabled = false;
    /// Spacing applied on the first loss signal (then doubled per signal).
    Duration initial_backoff = millis(250);
    Duration max_backoff = secs(8.0);
    /// Consecutive fully-acked packets required before easing off.
    std::uint32_t recovery_streak = 3;
};

class FlowController {
public:
    explicit FlowController(const FlowControlConfig& config) : config_(config) {}

    /// Statistical-ack accounting for one packet ended incomplete.
    /// Returns true if the recommended spacing just *increased* (the
    /// caller should surface a kCongestionSlowdown notice).
    bool on_loss_signal() {
        streak_ = 0;
        const Duration before = spacing_;
        spacing_ = spacing_ == Duration::zero()
                       ? config_.initial_backoff
                       : std::min(config_.max_backoff, 2 * spacing_);
        ++loss_signals_;
        return spacing_ > before;
    }

    /// A packet completed with every designated ACK received.
    /// Returns true if the spacing just dropped back to zero (surface a
    /// kCongestionCleared notice).
    bool on_clean_packet() {
        if (spacing_ == Duration::zero()) return false;
        if (++streak_ < config_.recovery_streak) return false;
        streak_ = 0;
        spacing_ = spacing_ / 2;
        if (spacing_ < millis(1)) {
            spacing_ = Duration::zero();
            return true;
        }
        return false;
    }

    /// Advisory minimum spacing between sends right now (zero = no limit).
    [[nodiscard]] Duration recommended_spacing() const { return spacing_; }
    [[nodiscard]] bool congested() const { return spacing_ > Duration::zero(); }
    [[nodiscard]] std::uint64_t loss_signals() const { return loss_signals_; }
    [[nodiscard]] const FlowControlConfig& config() const { return config_; }

private:
    FlowControlConfig config_;
    Duration spacing_ = Duration::zero();
    std::uint32_t streak_ = 0;
    std::uint64_t loss_signals_ = 0;
};

}  // namespace lbrm
