// Configuration for every protocol role, with defaults taken from the paper
// (Section 2.1 heartbeat parameters, Section 2.3 statistical-ack constants).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/flow_control.hpp"

namespace lbrm::obs {
class Metrics;
}

namespace lbrm {

/// How finalize() builds the per-site all-pairs routing tables (see
/// DESIGN.md "Scale engineering").  All three modes produce bit-identical
/// tables and traffic: rows are a pure function of the finalize-time
/// adjacency and liveness snapshots, independent of build order or time.
enum class SimFinalizeMode : std::uint8_t {
    kSerial = 0,    ///< build every row inline (the baseline)
    kParallel = 1,  ///< worker pool over sites, pre-sized disjoint row slots
    kLazy = 2,      ///< border rows + backbone at finalize; rows on first use
};

/// Simulator-substrate knobs consumed by sim::Network (see DESIGN.md
/// "Hierarchical routing").  These tune memory/speed trade-offs of the
/// simulated internetwork, not protocol behaviour.  The cache bounds are
/// exact: occupancy never changes packet timings, drop decisions or RNG
/// draw order (routes are a pure function of the last finalize()).
struct SimConfig {
    /// Route with the flat O(n^2) next-hop matrices instead of the two-level
    /// site/backbone tables.  The LBRM_SIM_FLAT_ROUTES environment variable
    /// forces this on at Network construction (A/B escape hatch).  The two
    /// schemes are bit-identical on any topology whose shortest paths are
    /// unique under the hop-penalised metric -- true of every shipped
    /// scenario; with equal-cost multipaths they may tie-break differently
    /// (DESIGN.md "Hierarchical routing", tie-breaking).
    bool flat_routes = false;

    /// Bound on the on-demand cache of cross-site node-to-node next hops
    /// (LRU eviction).  0 = unbounded.
    std::size_t path_cache_capacity = 65536;

    /// Bound on the number of cached multicast delivery trees across all
    /// (group, sender, scope) keys (LRU eviction; invalidation on
    /// join/leave/node-down/finalize is unaffected).  0 = unbounded.
    std::size_t tree_cache_capacity = 0;

    /// Site-table build strategy (ignored under flat_routes).  The
    /// LBRM_SIM_FINALIZE environment variable (serial|parallel|lazy)
    /// overrides this at Network construction (A/B escape hatch).
    SimFinalizeMode finalize_mode = SimFinalizeMode::kSerial;

    /// Worker-pool width for kParallel; 0 = std::thread::hardware_concurrency.
    unsigned finalize_threads = 0;

    /// Batch same-time multicast fan-out: consecutive tree children whose
    /// copies arrive at the same instant on idle links (a site router's LAN
    /// fan-out) share one event instead of one each (DESIGN.md "Memory
    /// engineering").  Bit-identical to the per-child path; the
    /// LBRM_SIM_NO_DELIVERY_BATCH environment variable forces it off at
    /// Network construction (A/B escape hatch).
    bool delivery_batching = true;

    /// Allocate in-flight delivery records from a burst-scoped bump arena
    /// (reset when the burst drains) instead of the global heap.
    /// Bit-identical; LBRM_SIM_NO_DELIVERY_ARENA forces it off at Network
    /// construction (A/B escape hatch).
    bool delivery_arena = true;

    /// Telemetry registry shared with the network (obs/metrics.hpp).  Null =
    /// the Network creates a private one; pass a registry to share it across
    /// networks or to read it after the network is gone.  Telemetry is
    /// observation-only and never alters simulation behaviour.
    std::shared_ptr<obs::Metrics> metrics;
};

/// Variable-heartbeat parameters (Section 2.1).  The defaults are the
/// paper's running example: h_min = 0.25 s, h_max = 32 s, backoff = 2.
struct HeartbeatConfig {
    Duration h_min = secs(0.25);
    Duration h_max = secs(32.0);
    double backoff = 2.0;
    /// When true the interval never grows: the "fixed heartbeat" baseline
    /// of Section 2.1.2 (equivalent to backoff = 1).
    bool fixed = false;
};

/// Statistical acknowledgement (Section 2.3).
struct StatAckConfig {
    bool enabled = true;
    /// Desired number of designated ackers per epoch; the paper suggests
    /// "between 5 and 20".
    std::uint32_t k = 10;
    /// EWMA gain for both the t_wait RTT estimator and the N_sl group-size
    /// estimator ("alpha is some small number, say 1/8").
    double alpha = 0.125;
    /// Initial t_wait before any ACK has been observed.
    Duration initial_t_wait = millis(100);
    /// Floor/ceiling keeping the estimator sane under pathological ACK loss.
    Duration min_t_wait = millis(1);
    Duration max_t_wait = secs(5.0);
    /// Start a new epoch (fresh Acker Selection Packet) this often.
    Duration epoch_interval = secs(30.0);
    /// Re-multicast when the missing designated ackers represent at least
    /// this many sites (missing * N_sl / expected >= threshold).
    double remulticast_site_threshold = 2.0;
    /// Maximum automatic re-multicasts per data packet.
    std::uint32_t max_remulticasts = 2;
    /// Group-size estimation (Section 2.3.3): first probe probability and
    /// number of repetitions of the final probe.
    double initial_probe_p = 0.05;
    std::uint32_t probe_repeats = 3;
    /// Replies sought per probe round before the estimate is trusted.
    std::uint32_t probe_target_replies = 10;
    /// A node ACKing packets it was not designated for is blacklisted after
    /// this many spurious ACKs (Section 2.3.3 "hotlist").
    std::uint32_t faulty_acker_limit = 3;
    /// When an epoch's acker-selection window closes with zero volunteers,
    /// re-solicit after this delay instead of leaving ACK coverage dark for
    /// a whole epoch_interval.
    Duration empty_epoch_retry = secs(1.0);
};

/// Data-source configuration.
struct SenderConfig {
    NodeId self;
    GroupId group;
    /// Primary logging server; kNoNode means the source itself is primary
    /// ("the logging server need not be co-located with the source host").
    NodeId primary_logger = kNoNode;
    /// Replicas, in promotion preference order (Section 2.2.3).
    std::vector<NodeId> replicas;

    HeartbeatConfig heartbeat;
    StatAckConfig stat_ack;

    /// Source -> primary logger handoff retransmit interval and give-up
    /// count; exhaustion triggers failover to the best replica.
    Duration log_store_retry = millis(50);
    std::uint32_t log_store_max_retries = 5;

    /// First sequence number to assign (default 1).  Exposed so tests and
    /// long-lived deployments can exercise wraparound.
    SeqNum initial_seq{1};

    /// Section 7 extension: "for small packets, it might be cost-effective
    /// to retransmit the original packet instead of an empty heartbeat".
    /// When enabled and the most recent payload is at most
    /// `heartbeat_data_max_bytes`, heartbeats carry the data packet itself,
    /// repairing receivers that lost it without any retransmission request.
    bool heartbeat_carries_small_data = false;
    std::size_t heartbeat_data_max_bytes = 256;

    /// Section 7 extension: dedicated retransmission channel.  Every data
    /// packet is re-multicast `retrans_channel_copies` times on a second
    /// multicast group with exponentially growing spacing (first after
    /// `retrans_channel_first_delay`, then x2 each).  Receivers subscribe to
    /// that group on loss instead of NACKing (see ReceiverConfig).
    /// Disabled when `retrans_channel == kNoGroup`.
    GroupId retrans_channel = kNoGroup;
    std::uint32_t retrans_channel_copies = 3;
    Duration retrans_channel_first_delay = millis(40);

    /// Section 5 future-work item: slow the sender down when statistical
    /// acknowledgements report sustained loss (see core/flow_control.hpp).
    FlowControlConfig flow_control;
};

/// Receiving-application configuration.
struct ReceiverConfig {
    NodeId self;
    GroupId group;
    NodeId source;
    /// Statically configured logging server; kNoNode enables discovery.
    NodeId logger = kNoNode;
    /// Fallback used when the local logger stops answering (normally the
    /// primary; the source will be asked via PrimaryQuery as last resort).
    NodeId fallback_logger = kNoNode;

    /// Maximum Idle Time: freshness bound (Section 2; 0.25 s for terrain).
    /// With the variable heartbeat this acts as the *floor* of the idle
    /// watchdog: after a heartbeat with index k the receiver knows the next
    /// transmission is due within h_min * backoff^(k+1) (capped at h_max),
    /// so the watchdog waits max(max_idle, idle_safety * expected_gap).
    Duration max_idle = secs(0.25);
    /// The sender's heartbeat schedule (protocol constants shared by all
    /// group members) -- used to compute the expected next-packet time.
    HeartbeatConfig heartbeat;
    /// Multiplier on the expected inter-packet gap before declaring the
    /// stream stale; 2.0 mirrors the paper's 2 x t_burst detection bound.
    double idle_safety = 2.0;
    /// Widest sequence gap one packet may open in the loss detector; 0 =
    /// LossDetector::kDefaultMaxGap.  Bounds the damage of a corrupted or
    /// far-future sequence number (see loss_detector.hpp).
    std::int32_t max_detector_gap = 0;
    /// Small randomized delay before NACKing, letting reordered packets
    /// arrive (Appendix A "short retransmission request timer").
    Duration nack_delay_min = millis(5);
    Duration nack_delay_max = millis(15);
    /// Outstanding-NACK retry interval and per-server retry budget.
    Duration nack_retry = millis(200);
    std::uint32_t nack_max_retries = 3;

    /// When the whole escalation chain (local logger -> fallback ->
    /// refreshed primary) exhausts, park the missing packets and restart
    /// the chain after this pause instead of abandoning them: an outage
    /// longer than one escalation walk (a primary failing over, a healing
    /// partition) is not packet death.  recovery_cold_cycles bounds the
    /// restarts -- 0 restores the old walk-once-then-abandon behaviour --
    /// and after the last one the packets are abandoned with
    /// kRecoveryFailed (log retention is finite, so recovery must be too).
    Duration recovery_cold_retry = secs(1.0);
    std::uint32_t recovery_cold_cycles = 4;

    /// Expanding-ring discovery (Section 2.2.1): per-ring response window.
    Duration discovery_interval = millis(250);
    std::uint32_t discovery_max_rounds = 6;

    /// Section 7 extension: recover by subscribing to the sender's
    /// retransmission channel instead of NACKing.  kNoGroup disables it
    /// (standard NACK recovery).  If the channel has not repaired the gap
    /// within `retrans_channel_window` the receiver falls back to NACKs;
    /// after the last gap fills it lingers `retrans_channel_linger` before
    /// unsubscribing.
    GroupId retrans_channel = kNoGroup;
    Duration retrans_channel_window = millis(500);
    Duration retrans_channel_linger = millis(250);

    /// Section 2.2.1 alternative: "distributed logging at each site by
    /// rotating the role of log server among the local hosts in order to
    /// distribute the load".  Every listed host runs a secondary logger;
    /// receivers direct NACKs at the host owning the current time slot
    /// (slot owner = list[(now / rotation_slot) mod size]).  Empty list =
    /// dedicated-logger mode.  Escalation past the local level is
    /// unchanged.
    std::vector<NodeId> rotating_loggers;
    Duration rotation_slot = secs(2.0);
};

/// Log retention policy (Section 2: "the length of time that the logging
/// server must store a packet is application-specific").
struct RetentionPolicy {
    /// 0 = unbounded.
    std::size_t max_entries = 0;
    std::size_t max_bytes = 0;
    /// Zero duration = keep forever.
    Duration max_age = Duration::zero();
};

enum class LoggerRole : std::uint8_t {
    kPrimary = 1,
    kSecondary = 2,
    kReplica = 3,
};

/// Logging-server configuration (one instance per group served).
struct LoggerConfig {
    NodeId self;
    GroupId group;
    NodeId source;
    LoggerRole role = LoggerRole::kSecondary;
    /// For secondaries: where to fetch packets the site lost entirely.
    NodeId upstream = kNoNode;
    /// For primaries: replica set to keep synchronized.
    std::vector<NodeId> replicas;

    RetentionPolicy retention;

    /// First sequence number of the stream being logged (must match the
    /// source's SenderConfig::initial_seq).  Anchors the contiguous
    /// high-water mark so "nothing logged yet" compares serially *behind*
    /// the first packet even when the stream starts near the 2^32 wrap.
    SeqNum initial_seq{1};

    /// Widest sequence gap one packet may open in the stream-watch loss
    /// detector; 0 = LossDetector::kDefaultMaxGap (see loss_detector.hpp).
    std::int32_t max_detector_gap = 0;

    /// Secondary re-multicasts a repair (site scope) instead of unicasting
    /// when at least this many local NACKs arrive for one seq inside the
    /// counting window, or when the secondary itself missed the packet.
    std::uint32_t remulticast_request_threshold = 3;
    Duration remulticast_window = millis(30);

    /// Whether scoped-multicast repairs can reach this logger's clients.
    /// True for a site secondary (its receivers share its LAN); false for a
    /// mid-hierarchy logger (e.g. the Section 7 regional tier) whose
    /// clients are loggers at *other* sites -- those are always unicast.
    bool site_multicast_repairs = true;

    /// Delay before a secondary calls back to the primary for a missing
    /// packet.  Section 2.3.2: secondaries "should delay their
    /// retransmission requests until the primary logging server has had a
    /// chance to re-multicast the packet" (t_wait - h_min after the first
    /// heartbeat); deployments tune this to that quantity.
    Duration fetch_delay = millis(20);
    /// Secondary->primary fetch retry behaviour.
    Duration fetch_retry = millis(200);
    std::uint32_t fetch_max_retries = 5;

    /// When a full fetch attempt budget goes unanswered, the upstream may
    /// have crashed and been failed over (Section 2.2.3) -- or simply not
    /// hold the packet yet (the source's LogStore handoff is itself
    /// retried).  Rather than declaring the packet dead, re-learn the
    /// current primary from the source (PrimaryQuery) and restart the
    /// budget after this pause.  fetch_cold_cycles bounds the restarts --
    /// 0 restores the old exhaust-once-then-abandon behaviour.
    Duration fetch_cold_retry = secs(1.0);
    std::uint32_t fetch_cold_cycles = 4;

    /// Primary->replica update retransmit interval.
    Duration replica_retry = millis(100);

    /// Whether this logger answers expanding-ring discovery queries.
    bool answer_discovery = true;

    /// Secondaries volunteer as designated ackers / probe responders.
    bool participate_in_acking = true;
};

}  // namespace lbrm
