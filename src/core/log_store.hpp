// The packet log backing every logging server (Section 2).
//
// "The length of time that the logging server must store a packet is
// application-specific" -- so retention is a policy object: bound by entry
// count, by total payload bytes, by age, or unbounded.  Eviction is always
// oldest-first, mirroring a TCP-style send buffer from which acknowledged
// data has been flushed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/config.hpp"

namespace lbrm {

class LogStore {
public:
    struct Entry {
        SeqNum seq;
        EpochId epoch;
        std::vector<std::uint8_t> payload;
        TimePoint stored_at{};
    };

    LogStore() = default;
    explicit LogStore(RetentionPolicy policy) : policy_(policy) {}

    /// Insert (idempotently) a packet.  Returns true if newly stored.
    bool insert(TimePoint now, SeqNum seq, EpochId epoch,
                std::span<const std::uint8_t> payload);

    [[nodiscard]] const Entry* find(SeqNum seq) const;
    [[nodiscard]] bool contains(SeqNum seq) const { return entries_.contains(seq); }

    /// Drop entries older than the age bound (count/byte bounds are enforced
    /// eagerly on insert).  Returns the number evicted.
    std::size_t expire(TimePoint now);

    /// Remove everything at or below `seq` (e.g. source buffer flush after a
    /// replica acknowledgement).
    void release_through(SeqNum seq);

    /// Remove exactly one entry; returns true if it existed.
    bool remove(SeqNum seq);

    /// Sequence numbers in (`from`, `to`] that are *not* in the log.  Used by
    /// a secondary logger to work out what to fetch from the primary.
    [[nodiscard]] std::vector<SeqNum> gaps(SeqNum from, SeqNum to) const;

    [[nodiscard]] std::optional<SeqNum> lowest() const;
    [[nodiscard]] std::optional<SeqNum> highest() const;

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] const RetentionPolicy& policy() const { return policy_; }

    /// Total entries ever evicted by policy (observability).
    [[nodiscard]] std::size_t evicted() const { return evicted_; }

private:
    void evict_oldest();
    void enforce_bounds();

    RetentionPolicy policy_{};
    /// Wire-ordered (see seqnum.hpp); oldest-first walks use serial_begin().
    std::map<SeqNum, Entry, SeqNum::WireOrder> entries_;
    std::size_t payload_bytes_ = 0;
    std::size_t evicted_ = 0;
};

}  // namespace lbrm
