// Statistical acknowledgement engine (Section 2.3), run by the data source.
//
// Responsibilities:
//   * Group-size estimation probing at stream start (Section 2.3.3), via
//     GroupSizeEstimator.
//   * Epoch management (Section 2.3.1): periodically multicast an Acker
//     Selection Packet carrying p_ack = k / N_sl; secondary loggers that
//     volunteer become the epoch's Designated Ackers; after the response
//     window (2 * t_wait) closes the source knows exactly how many ACKs to
//     expect per data packet.
//   * Per-data-packet ACK accounting: at t_wait decide whether missing ACKs
//     represent enough sites to justify an immediate multicast
//     retransmission (Section 2.3.2); keep accepting late ACKs until
//     2 * t_wait for the RTT estimator.
//   * t_wait adaptation with the Jacobson-style EWMA
//       t'_wait = alpha * rtt_new + (1 - alpha) * t_wait.
//   * Continuous N_sl refresh from per-packet ACK counts.
//   * Faulty-acker hotlist: nodes ACKing packets they were not designated
//     for are eventually ignored (Section 2.3.3).
//
// Sans-IO: every entry point returns Actions plus the sequence numbers the
// sender must re-multicast (the engine does not hold payloads).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ewma.hpp"
#include "core/actions.hpp"
#include "core/config.hpp"
#include "core/group_estimate.hpp"
#include "obs/metrics.hpp"

namespace lbrm {

class StatAckEngine {
public:
    /// `self`/`group` identify the source; `config` is SenderConfig::stat_ack.
    StatAckEngine(NodeId self, GroupId group, const StatAckConfig& config);

    /// Output of every entry point.
    struct Result {
        Actions actions;
        /// Data packets the sender should immediately re-multicast.
        std::vector<SeqNum> remulticast;
        /// ACK accounting outcomes, for flow control (Section 5): packets
        /// that ended with every designated ACK in hand...
        std::vector<SeqNum> completed;
        /// ...and packets that ended with ACKs still missing.
        std::vector<SeqNum> incomplete;
    };

    /// Begin operation: starts probing (or the first epoch when the group
    /// size is already known via set_group_size).
    Result start(TimePoint now);

    /// The sender just multicast data packet `seq` stamped with
    /// current_epoch().  Begins ACK accounting for it.
    Result on_data_sent(TimePoint now, SeqNum seq);

    /// Feed ProbeReply / AckerResponse / Ack packets.  Other types no-op.
    Result on_packet(TimePoint now, const Packet& packet);

    /// Timer dispatch for kProbeRound / kEpochOpen / kEpochRotate / kAckWait.
    Result on_timer(TimePoint now, TimerId id);

    /// Epoch to stamp into outgoing data packets.
    [[nodiscard]] EpochId current_epoch() const { return active_epoch_; }

    /// Lowest sequence number still under ACK accounting; the sender must
    /// retain payloads from here on so a re-multicast decision can act
    /// (Section 2.3.2: retain each packet for t_wait after sending).
    [[nodiscard]] std::optional<SeqNum> lowest_pending() const {
        if (pending_.empty()) return std::nullopt;
        return serial_begin(pending_)->first;
    }

    [[nodiscard]] Duration t_wait() const;
    [[nodiscard]] double n_sl() const;
    [[nodiscard]] std::uint32_t expected_acks() const { return active_expected_; }
    [[nodiscard]] bool probing() const { return estimator_.probing() && !statically_sized_; }
    [[nodiscard]] std::size_t blacklisted_count() const { return blacklist_.size(); }
    [[nodiscard]] std::uint64_t remulticast_decisions() const { return remulticast_decisions_; }
    /// Epoch windows that closed with zero Designated-Acker volunteers and
    /// were re-solicited after `empty_epoch_retry` (Section 2.3.1 outage).
    [[nodiscard]] std::uint64_t empty_epoch_resolicits() const {
        return empty_epoch_resolicits_;
    }
    [[nodiscard]] const StatAckConfig& config() const { return config_; }

    /// Skip probing: the deployment knows its site count (static config).
    void set_group_size(double n_sl);

    /// Bind the family-aggregate telemetry block (obs/metrics.hpp).
    void bind_metrics(const obs::StatAckMetrics& m) { obs_ = &m; }

private:
    struct EpochRecord {
        double p_ack = 0.0;
        std::set<NodeId> designated;
        std::uint32_t expected = 0;  ///< designated.size() once window closed
        bool open = false;           ///< still collecting AckerResponses
    };

    struct PendingAck {
        EpochId epoch;
        TimePoint sent_at{};
        TimePoint last_ack_at{};
        std::set<NodeId> got;
        std::uint32_t expected = 0;
        std::uint32_t remulticasts = 0;
        bool decided = false;  ///< t_wait decision point passed
    };

    Result open_epoch(TimePoint now);
    Result send_probe(TimePoint now);
    void close_epoch_window(TimePoint now, Actions& actions);
    void decide(TimePoint now, SeqNum seq, PendingAck& pending, Result& result);
    void finalize(TimePoint now, SeqNum seq, PendingAck& pending);
    void note_spurious_ack(NodeId from);

    [[nodiscard]] Packet make_packet(Body body) const;
    [[nodiscard]] Duration response_window() const;

    NodeId self_;
    GroupId group_;
    StatAckConfig config_;
    GroupSizeEstimator estimator_;
    bool statically_sized_ = false;
    bool started_ = false;

    EpochId active_epoch_{0};
    EpochId opening_epoch_{0};
    std::uint32_t active_expected_ = 0;
    /// Recent epochs (active + the one being opened + one stale for overlap).
    std::map<EpochId, EpochRecord> epochs_;

    std::map<SeqNum, PendingAck, SeqNum::WireOrder> pending_;

    Ewma t_wait_ewma_;

    std::unordered_map<NodeId, std::uint32_t> spurious_;
    std::set<NodeId> blacklist_;

    std::uint64_t remulticast_decisions_ = 0;
    std::uint64_t empty_epoch_resolicits_ = 0;
    std::uint32_t next_epoch_number_ = 1;
    const obs::StatAckMetrics* obs_ = &obs::StatAckMetrics::disabled();
};

}  // namespace lbrm
