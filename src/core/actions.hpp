// The sans-IO core interface.
//
// Protocol cores (SenderCore, ReceiverCore, LoggerCore) are pure state
// machines.  They receive inputs -- a decoded packet, a timer expiry, or an
// application call -- together with the current time, and return a list of
// Actions.  A driver (the discrete-event simulator or the epoll/UDP runtime)
// executes the actions.  Cores never touch sockets, clocks or threads, so
// the exact same object runs deterministically inside the simulator and
// "for real" over UDP.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "packet/packet.hpp"

namespace lbrm {

/// Timer classes used across the cores.  A (kind, arg) pair identifies one
/// logical timer; re-arming an armed timer replaces its deadline.
enum class TimerKind : std::uint8_t {
    kHeartbeat = 1,       ///< sender: next heartbeat due
    kIdle = 2,            ///< receiver: MaxIT freshness watchdog
    kNackDelay = 3,       ///< receiver/secondary: short delay before NACKing
    kNackRetry = 4,       ///< receiver/secondary: outstanding NACK not answered
    kLogStoreRetry = 5,   ///< source: primary logger has not acked LogStore
    kAckWait = 6,         ///< source: t_wait expiry for data seq (arg = seq)
    kEpochOpen = 7,       ///< source: acker-selection response window closes
    kEpochRotate = 8,     ///< source: time to start a new epoch
    kProbeRound = 9,      ///< source: group-size-estimation probe round window
    kRemcastWindow = 10,  ///< logger: NACK-counting window for re-multicast (arg = seq)
    kReplicaRetry = 11,   ///< primary: replica has not acked updates
    kDiscovery = 12,      ///< receiver: next expanding-ring discovery attempt
    kFailover = 13,       ///< source: promote-reply wait during failover
    kRetxChannel = 14,    ///< source: next retransmission-channel copy (arg = seq)
    kRetxFallback = 15,   ///< receiver: channel did not repair; fall back to NACK
    kRetxLinger = 16,     ///< receiver: leave the retransmission channel
};

struct TimerId {
    TimerKind kind{};
    std::uint64_t arg = 0;

    friend constexpr bool operator==(TimerId, TimerId) = default;
    friend constexpr auto operator<=>(TimerId, TimerId) = default;
};

/// Send `packet` point-to-point to node `to`.
struct SendUnicast {
    NodeId to;
    Packet packet;
};

/// Multicast scope: drivers map these onto TTLs (UDP) or tree pruning (sim).
enum class McastScope : std::uint8_t {
    kSite = 1,    ///< confined to the sender's site (local repair, discovery ring 1)
    kRegion = 2,  ///< intermediate discovery ring
    kGlobal = 3,  ///< whole group
};

/// Multicast `packet` to the group in the header, within `scope`.
struct SendMulticast {
    Packet packet;
    McastScope scope = McastScope::kGlobal;
};

/// Arm (or re-arm) a timer to fire at `deadline`.
struct StartTimer {
    TimerId id;
    TimePoint deadline;
};

/// Disarm a timer if armed; no-op otherwise.
struct CancelTimer {
    TimerId id;
};

/// Hand a data payload to the receiving application (receiver core only).
/// Delivery is in arrival order -- receiver-reliable multicast imposes no
/// ordering (Section 2: "message causality and ordering are strictly an
/// application-level concern").
struct DeliverData {
    SeqNum seq;
    std::vector<std::uint8_t> payload;
    bool recovered = false;  ///< true when served from a log, not the live stream
};

/// Subscribe this endpoint to an additional multicast group (Section 7's
/// retransmission channel: receivers join it only while recovering).
struct JoinGroup {
    GroupId group;
};

/// Unsubscribe from a group joined with JoinGroup.
struct LeaveGroup {
    GroupId group;
};

/// Application-visible protocol notifications.
enum class NoticeKind : std::uint8_t {
    kLossDetected,       ///< receiver: gap discovered (arg = first missing seq)
    kRecoveryFailed,     ///< receiver: exhausted all logging servers for a seq
    kFreshnessLost,      ///< receiver: nothing heard for MaxIT
    kFreshnessRestored,  ///< receiver: traffic resumed after FreshnessLost
    kLoggerChanged,      ///< receiver: switched to a different logging server
    kEpochStarted,       ///< sender: new statistical-ack epoch opened
    kRemulticast,        ///< sender/logger: decided to re-multicast a packet
    kPrimaryFailover,    ///< sender: promoted a replica to primary
    kDesignatedAcker,    ///< logger: became a designated acker this epoch
    kCongestionSlowdown,  ///< sender: flow control raised the send spacing
                          ///< (arg = recommended spacing in microseconds)
    kCongestionCleared,   ///< sender: loss subsided, spacing back to zero
    kAckerOutage,         ///< sender: an epoch closed with zero volunteers;
                          ///< ACK coverage is dark until the re-solicit
                          ///< (arg = the epoch id)
    kFailoverExhausted,   ///< sender: every promotion candidate was tried
                          ///< and none answered; the source falls back to
                          ///< acting as its own primary (arg = replicas
                          ///< tried).  Terminal for this failover round --
                          ///< emitted alongside kPrimaryFailover{self}.
};

struct Notice {
    NoticeKind kind{};
    std::uint64_t arg = 0;  ///< kind-specific (sequence number, epoch, node id)
};

using Action = std::variant<SendUnicast, SendMulticast, StartTimer, CancelTimer,
                            DeliverData, Notice, JoinGroup, LeaveGroup>;

using Actions = std::vector<Action>;

/// Append all of `src` to `dst` (helper for cores composing sub-engines).
inline void append(Actions& dst, Actions&& src) {
    for (auto& a : src) dst.push_back(std::move(a));
}

}  // namespace lbrm
