// RAII UDP sockets (IPv4) with the multicast options LBRM needs.
//
// Errors at setup time throw std::system_error (a socket that cannot be
// created/bound is a configuration bug); per-datagram send/recv errors are
// returned as status because they are routine under load.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace lbrm::transport {

/// An IPv4 address + port in host byte order.
struct SockAddr {
    std::uint32_t ip = 0;  ///< e.g. 0x7F000001 for 127.0.0.1
    std::uint16_t port = 0;

    friend bool operator==(SockAddr, SockAddr) = default;
    friend auto operator<=>(SockAddr, SockAddr) = default;

    [[nodiscard]] bool is_multicast() const { return (ip >> 28) == 0xE; }
    [[nodiscard]] std::string to_string() const;

    /// Parse "a.b.c.d:port"; throws std::invalid_argument on bad input.
    static SockAddr parse(const std::string& text);
    static SockAddr loopback(std::uint16_t port) { return {0x7F000001u, port}; }
};

/// Owns a file descriptor; closes on destruction.
class FileDescriptor {
public:
    FileDescriptor() = default;
    explicit FileDescriptor(int fd) : fd_(fd) {}
    ~FileDescriptor();

    FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
    FileDescriptor& operator=(FileDescriptor&& other) noexcept;
    FileDescriptor(const FileDescriptor&) = delete;
    FileDescriptor& operator=(const FileDescriptor&) = delete;

    [[nodiscard]] int get() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    int release() {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

private:
    int fd_ = -1;
};

class UdpSocket {
public:
    /// Create a non-blocking UDP socket bound to `addr` (port 0 = ephemeral).
    /// SO_REUSEADDR is set so several multicast listeners share a port.
    static UdpSocket bind(SockAddr addr);

    /// Join an IPv4 multicast group on the loopback/default interface, with
    /// IP_MULTICAST_LOOP enabled so same-host listeners hear each other.
    void join_multicast(SockAddr group);

    /// Multicast TTL for outgoing datagrams (maps LBRM scopes to rings).
    void set_multicast_ttl(int ttl);

    /// Returns true on success, false on transient failure (EAGAIN, full
    /// buffers, ...); throws only on programming errors (EBADF...).
    bool send_to(SockAddr dest, std::span<const std::uint8_t> payload);

    /// Non-blocking receive; std::nullopt when no datagram is ready.
    struct Datagram {
        SockAddr from;
        std::size_t size = 0;
    };
    std::optional<Datagram> recv_into(std::span<std::uint8_t> buffer);

    [[nodiscard]] int fd() const { return fd_.get(); }
    /// The locally bound address (resolves ephemeral ports).
    [[nodiscard]] SockAddr local_addr() const;

private:
    explicit UdpSocket(FileDescriptor fd) : fd_(std::move(fd)) {}
    FileDescriptor fd_;
};

}  // namespace lbrm::transport
