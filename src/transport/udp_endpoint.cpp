#include "transport/udp_endpoint.hpp"

#include <array>

namespace lbrm::transport {

UdpEndpoint::UdpEndpoint(Reactor& reactor, UdpEndpointConfig config)
    : reactor_(reactor), config_(std::move(config)),
      unicast_(UdpSocket::bind(config_.bind_addr)),
      protocol_(std::make_unique<ProtocolHost>(*this, *this)) {
    reactor_.add_fd(unicast_.fd(), [this] { on_readable(unicast_); });

    if (config_.multicast_addr.ip != 0) {
        // Dedicated receive socket bound to the group port; senders address
        // the group directly from the unicast socket.
        multicast_ = std::make_unique<UdpSocket>(
            UdpSocket::bind(SockAddr{0, config_.multicast_addr.port}));
        multicast_->join_multicast(config_.multicast_addr);
        reactor_.add_fd(multicast_->fd(), [this] { on_readable(*multicast_); });
    }
}

UdpEndpoint::~UdpEndpoint() {
    reactor_.remove_fd(unicast_.fd());
    if (multicast_) reactor_.remove_fd(multicast_->fd());
    for (const auto& [group, socket] : joined_) reactor_.remove_fd(socket->fd());
    for (const auto& [key, token] : timers_) reactor_.cancel_timer(token);
}

void UdpEndpoint::join_group(GroupId group) {
    if (joined_.contains(group)) return;
    auto it = config_.group_addrs.find(group);
    if (it == config_.group_addrs.end()) return;  // fan-out mode: no-op
    auto socket =
        std::make_unique<UdpSocket>(UdpSocket::bind(SockAddr{0, it->second.port}));
    socket->join_multicast(it->second);
    UdpSocket* raw = socket.get();
    reactor_.add_fd(socket->fd(), [this, raw] { on_readable(*raw); });
    joined_.emplace(group, std::move(socket));
}

void UdpEndpoint::leave_group(GroupId group) {
    auto it = joined_.find(group);
    if (it == joined_.end()) return;
    reactor_.remove_fd(it->second->fd());
    joined_.erase(it);
}

void UdpEndpoint::on_readable(UdpSocket& socket) {
    std::array<std::uint8_t, 65536> buffer;
    while (auto datagram = socket.recv_into(buffer)) {
        ++datagrams_received_;
        protocol_->on_datagram(reactor_.now(),
                               std::span<const std::uint8_t>(buffer.data(), datagram->size));
    }
}

void UdpEndpoint::send_unicast(NodeId to, const Packet& packet) {
    auto it = config_.peers.find(to);
    if (it == config_.peers.end()) return;  // unknown peer: drop (like a bad route)
    const auto bytes = encode(packet);
    if (unicast_.send_to(it->second, bytes)) ++datagrams_sent_;
}

void UdpEndpoint::send_multicast(const Packet& packet, McastScope scope) {
    const auto bytes = encode(packet);
    // Per-group address (retransmission channel) takes precedence over the
    // endpoint's main group address.
    SockAddr dest = config_.multicast_addr;
    if (auto it = config_.group_addrs.find(packet.header.group);
        it != config_.group_addrs.end())
        dest = it->second;
    if (dest.ip != 0) {
        const int ttl = scope == McastScope::kSite     ? config_.ttl_site
                        : scope == McastScope::kRegion ? config_.ttl_region
                                                       : config_.ttl_global;
        unicast_.set_multicast_ttl(ttl);
        if (unicast_.send_to(dest, bytes)) ++datagrams_sent_;
        return;
    }
    // Fan-out fallback: one unicast per known peer.
    for (const auto& [node, addr] : config_.peers) {
        if (node == config_.self) continue;
        if (unicast_.send_to(addr, bytes)) ++datagrams_sent_;
    }
}

void UdpEndpoint::arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) {
    const TimerKey key{core_tag, id};
    if (auto it = timers_.find(key); it != timers_.end()) {
        reactor_.cancel_timer(it->second);
        timers_.erase(it);
    }
    const std::uint64_t token = reactor_.arm_timer(deadline, [this, key] {
        timers_.erase(key);
        protocol_->on_timer(reactor_.now(), key.tag, key.id);
    });
    timers_.emplace(key, token);
}

void UdpEndpoint::cancel(std::uint32_t core_tag, TimerId id) {
    const TimerKey key{core_tag, id};
    if (auto it = timers_.find(key); it != timers_.end()) {
        reactor_.cancel_timer(it->second);
        timers_.erase(it);
    }
}

}  // namespace lbrm::transport
