#include "transport/reactor.hpp"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <vector>

namespace lbrm::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Reactor::Reactor() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (!epoll_fd_.valid()) throw_errno("epoll_create1");
}

Reactor::~Reactor() = default;

TimePoint Reactor::now() const {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return TimePoint{Duration{static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
                              ts.tv_nsec}};
}

void Reactor::add_fd(int fd, std::function<void()> on_readable) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0)
        throw_errno("epoll_ctl(ADD)");
    fd_handlers_[fd] = std::move(on_readable);
}

void Reactor::remove_fd(int fd) {
    if (fd_handlers_.erase(fd) == 0) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

std::uint64_t Reactor::arm_timer(TimePoint deadline, std::function<void()> fn) {
    const std::uint64_t token = next_token_++;
    timer_heap_.push(TimerEntry{deadline, token});
    timer_callbacks_[token] = std::move(fn);
    return token;
}

void Reactor::cancel_timer(std::uint64_t token) { timer_callbacks_.erase(token); }

void Reactor::fire_due_timers() {
    const TimePoint current = now();
    while (!timer_heap_.empty() && timer_heap_.top().deadline <= current) {
        const std::uint64_t token = timer_heap_.top().token;
        timer_heap_.pop();
        auto it = timer_callbacks_.find(token);
        if (it == timer_callbacks_.end()) continue;  // cancelled
        auto fn = std::move(it->second);
        timer_callbacks_.erase(it);
        fn();
    }
}

int Reactor::next_timeout_ms(Duration max_wait) {
    // Skim cancelled timers off the top so they don't shorten the wait.
    while (!timer_heap_.empty() && !timer_callbacks_.contains(timer_heap_.top().token))
        timer_heap_.pop();

    Duration wait = max_wait;
    if (!timer_heap_.empty()) {
        const Duration until = timer_heap_.top().deadline - now();
        if (until < wait) wait = until;
    }
    if (wait < Duration::zero()) return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(wait).count();
    return static_cast<int>(ms > 60'000 ? 60'000 : ms);
}

bool Reactor::run_once(Duration max_wait) {
    if (stopped_) return false;

    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, next_timeout_ms(max_wait));
    if (n < 0 && errno != EINTR) throw_errno("epoll_wait");

    fire_due_timers();
    for (int i = 0; i < n; ++i) {
        auto it = fd_handlers_.find(events[i].data.fd);
        if (it != fd_handlers_.end()) it->second();
    }
    return !stopped_;
}

void Reactor::run() {
    while (run_once(secs(1.0))) {
    }
}

}  // namespace lbrm::transport
