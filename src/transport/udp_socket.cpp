#include "transport/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace lbrm::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in to_sockaddr(SockAddr addr) {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(addr.ip);
    sa.sin_port = htons(addr.port);
    return sa;
}

SockAddr from_sockaddr(const sockaddr_in& sa) {
    return SockAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

std::string SockAddr::to_string() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                  (ip >> 8) & 0xFF, ip & 0xFF, port);
    return buf;
}

SockAddr SockAddr::parse(const std::string& text) {
    const auto colon = text.rfind(':');
    if (colon == std::string::npos)
        throw std::invalid_argument("SockAddr::parse: missing ':' in " + text);
    in_addr addr{};
    const std::string host = text.substr(0, colon);
    if (inet_pton(AF_INET, host.c_str(), &addr) != 1)
        throw std::invalid_argument("SockAddr::parse: bad address " + host);
    const long port = std::stol(text.substr(colon + 1));
    if (port < 0 || port > 65535)
        throw std::invalid_argument("SockAddr::parse: bad port in " + text);
    return SockAddr{ntohl(addr.s_addr), static_cast<std::uint16_t>(port)};
}

FileDescriptor::~FileDescriptor() {
    if (fd_ >= 0) ::close(fd_);
}

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.release();
    }
    return *this;
}

UdpSocket UdpSocket::bind(SockAddr addr) {
    FileDescriptor fd{::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)};
    if (!fd.valid()) throw_errno("socket");

    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
        throw_errno("setsockopt(SO_REUSEADDR)");

    sockaddr_in sa = to_sockaddr(addr);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0)
        throw_errno("bind");

    return UdpSocket{std::move(fd)};
}

void UdpSocket::join_multicast(SockAddr group) {
    ip_mreq mreq{};
    mreq.imr_multiaddr.s_addr = htonl(group.ip);
    mreq.imr_interface.s_addr = htonl(INADDR_ANY);
    if (::setsockopt(fd_.get(), IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) < 0)
        throw_errno("setsockopt(IP_ADD_MEMBERSHIP)");

    const int loop = 1;
    if (::setsockopt(fd_.get(), IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop)) < 0)
        throw_errno("setsockopt(IP_MULTICAST_LOOP)");
}

void UdpSocket::set_multicast_ttl(int ttl) {
    if (::setsockopt(fd_.get(), IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl)) < 0)
        throw_errno("setsockopt(IP_MULTICAST_TTL)");
}

bool UdpSocket::send_to(SockAddr dest, std::span<const std::uint8_t> payload) {
    sockaddr_in sa = to_sockaddr(dest);
    const ssize_t n = ::sendto(fd_.get(), payload.data(), payload.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (n >= 0) return true;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS || errno == ECONNREFUSED)
        return false;
    throw_errno("sendto");
}

std::optional<UdpSocket::Datagram> UdpSocket::recv_into(std::span<std::uint8_t> buffer) {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    const ssize_t n = ::recvfrom(fd_.get(), buffer.data(), buffer.size(), 0,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED)
            return std::nullopt;
        throw_errno("recvfrom");
    }
    return Datagram{from_sockaddr(sa), static_cast<std::size_t>(n)};
}

SockAddr UdpSocket::local_addr() const {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&sa), &len) < 0)
        throw_errno("getsockname");
    return from_sockaddr(sa);
}

}  // namespace lbrm::transport
