// Single-threaded epoll reactor with a timer heap.
//
// Drives the real-socket LBRM endpoints: readable file descriptors invoke
// callbacks, timers fire in deadline order, and time is CLOCK_MONOTONIC
// mapped onto the same TimePoint type the cores use everywhere else.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/time.hpp"
#include "transport/udp_socket.hpp"

namespace lbrm::transport {

class Reactor {
public:
    Reactor();
    ~Reactor();

    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// Current CLOCK_MONOTONIC time as a protocol TimePoint.
    [[nodiscard]] TimePoint now() const;

    /// Watch `fd` for readability; `on_readable` runs until remove_fd.
    void add_fd(int fd, std::function<void()> on_readable);
    void remove_fd(int fd);

    /// One-shot timer; returns a token for cancel_timer.
    std::uint64_t arm_timer(TimePoint deadline, std::function<void()> fn);
    void cancel_timer(std::uint64_t token);

    /// Process events until stop() is called.
    void run();
    /// Process at most one epoll wakeup (bounded by `max_wait`); runs any
    /// due timers.  Returns false if stopped.
    bool run_once(Duration max_wait);
    void stop() { stopped_ = true; }
    [[nodiscard]] bool stopped() const { return stopped_; }

private:
    struct TimerEntry {
        TimePoint deadline;
        std::uint64_t token;
    };
    struct TimerLater {
        bool operator()(const TimerEntry& a, const TimerEntry& b) const {
            if (a.deadline != b.deadline) return a.deadline > b.deadline;
            return a.token > b.token;
        }
    };

    void fire_due_timers();
    [[nodiscard]] int next_timeout_ms(Duration max_wait);

    FileDescriptor epoll_fd_;
    std::unordered_map<int, std::function<void()>> fd_handlers_;
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timer_heap_;
    std::unordered_map<std::uint64_t, std::function<void()>> timer_callbacks_;
    std::uint64_t next_token_ = 1;
    bool stopped_ = false;
};

}  // namespace lbrm::transport
