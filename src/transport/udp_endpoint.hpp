// UdpEndpoint: runs a ProtocolHost over real UDP sockets.
//
// Each endpoint owns a unicast socket (its stable address) and, when a
// multicast group address is configured, a second socket joined to that
// group.  LBRM scopes map to IP multicast TTLs exactly as in the paper's
// scoped-discovery scheme.  Deployments without working IP multicast (some
// containers) set no group address and the endpoint transparently falls
// back to unicast fan-out over the peer directory -- same protocol, just a
// star topology.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "runtime/protocol_host.hpp"
#include "runtime/services.hpp"
#include "transport/reactor.hpp"
#include "transport/udp_socket.hpp"

namespace lbrm::transport {

struct UdpEndpointConfig {
    NodeId self;
    /// Unicast bind address (port 0 picks an ephemeral port).
    SockAddr bind_addr = SockAddr::loopback(0);
    /// Multicast group address; ip == 0 disables IP multicast and fans
    /// multicasts out over the peer directory instead.
    SockAddr multicast_addr{};
    /// NodeId -> unicast address directory.
    std::map<NodeId, SockAddr> peers;
    /// Extra multicast groups joinable at runtime (Section 7 retransmission
    /// channel): GroupId -> group address.
    std::map<GroupId, SockAddr> group_addrs;
    /// TTLs for the three LBRM scopes.
    int ttl_site = 1;
    int ttl_region = 16;
    int ttl_global = 64;
};

class UdpEndpoint final : public NetworkService, public TimerService {
public:
    UdpEndpoint(Reactor& reactor, UdpEndpointConfig config);
    ~UdpEndpoint() override;

    UdpEndpoint(const UdpEndpoint&) = delete;
    UdpEndpoint& operator=(const UdpEndpoint&) = delete;

    [[nodiscard]] ProtocolHost& protocol() { return *protocol_; }
    [[nodiscard]] NodeId id() const { return config_.self; }
    /// The resolved unicast address (after ephemeral-port binding).
    [[nodiscard]] SockAddr unicast_addr() const { return unicast_.local_addr(); }

    /// Late peer registration (e.g. after another endpoint binds).
    void add_peer(NodeId node, SockAddr addr) { config_.peers[node] = addr; }

    // NetworkService
    void send_unicast(NodeId to, const Packet& packet) override;
    void send_multicast(const Packet& packet, McastScope scope) override;
    /// Joins/leaves the IP multicast group registered for `group` in
    /// `UdpEndpointConfig::group_addrs`.  In unicast fan-out mode every
    /// endpoint already receives everything, so these are no-ops.
    void join_group(GroupId group) override;
    void leave_group(GroupId group) override;

    // TimerService
    void arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) override;
    void cancel(std::uint32_t core_tag, TimerId id) override;

    [[nodiscard]] std::uint64_t datagrams_received() const { return datagrams_received_; }
    [[nodiscard]] std::uint64_t datagrams_sent() const { return datagrams_sent_; }

private:
    struct TimerKey {
        std::uint32_t tag;
        TimerId id;
        friend bool operator<(const TimerKey& a, const TimerKey& b) {
            if (a.tag != b.tag) return a.tag < b.tag;
            return a.id < b.id;
        }
    };

    void on_readable(UdpSocket& socket);

    Reactor& reactor_;
    UdpEndpointConfig config_;
    UdpSocket unicast_;
    std::unique_ptr<UdpSocket> multicast_;  // null when fan-out mode
    /// Dynamically joined groups (retransmission channel), keyed by group.
    std::map<GroupId, std::unique_ptr<UdpSocket>> joined_;
    std::unique_ptr<ProtocolHost> protocol_;
    std::map<TimerKey, std::uint64_t> timers_;
    std::uint64_t datagrams_received_ = 0;
    std::uint64_t datagrams_sent_ = 0;
};

}  // namespace lbrm::transport
